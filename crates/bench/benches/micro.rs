//! Criterion micro-benchmarks of the building blocks: evaluation,
//! operator sampling, neighborhood chunks, archive maintenance, and the
//! construction heuristics.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use detrand::Xoshiro256StarStar;
use pareto::Archive;
use std::hint::black_box;
use std::sync::Arc;
use tsmo_core::generate_chunk;
use vrptw::generator::{GeneratorConfig, InstanceClass};
use vrptw::solution::EvaluatedSolution;
use vrptw::{evaluate_route, Instance};
use vrptw_construct::{i1, nearest_neighbor, savings, I1Config};
use vrptw_operators::{sample_move, SampleParams};

fn setup(size: usize) -> (Arc<Instance>, EvaluatedSolution) {
    let inst = Arc::new(GeneratorConfig::new(InstanceClass::R1, size, 1).build());
    let sol = i1(&inst, &I1Config::default());
    let ev = EvaluatedSolution::new(sol, &inst);
    (inst, ev)
}

fn bench_evaluation(c: &mut Criterion) {
    let mut g = c.benchmark_group("evaluation");
    for size in [100usize, 400, 600] {
        let (inst, ev) = setup(size);
        let longest = (0..ev.n_routes())
            .map(|i| ev.route(i).to_vec())
            .max_by_key(|r| r.len())
            .expect("routes exist");
        g.bench_with_input(BenchmarkId::new("route", size), &size, |b, _| {
            b.iter(|| evaluate_route(&inst, black_box(&longest)))
        });
        let sol = ev.solution().clone();
        g.bench_with_input(BenchmarkId::new("full_solution", size), &size, |b, _| {
            b.iter(|| black_box(&sol).evaluate(&inst))
        });
    }
    g.finish();
}

fn bench_operators(c: &mut Criterion) {
    let mut g = c.benchmark_group("operators");
    let (inst, ev) = setup(400);
    g.bench_function("sample_move_400", |b| {
        let mut rng = Xoshiro256StarStar::seed_from_u64(7);
        b.iter(|| sample_move(&mut rng, &inst, &ev, SampleParams::default()))
    });
    g.bench_function("neighborhood_chunk_50_of_400", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            generate_chunk(&inst, &ev, seed, 50, SampleParams::default(), 0)
        })
    });
    g.finish();
}

fn bench_archive(c: &mut Criterion) {
    let mut g = c.benchmark_group("archive");
    let mut points = Vec::new();
    let mut x = 5u64;
    for _ in 0..1000 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        points.push(vec![
            ((x >> 33) % 10_000) as f64,
            ((x >> 13) % 100) as f64,
            ((x >> 3) % 1_000) as f64,
        ]);
    }
    g.bench_function("insert_1000_into_capacity_20", |b| {
        b.iter_batched(
            || points.clone(),
            |pts| {
                let mut a = Archive::new(20);
                for p in pts {
                    a.insert(p);
                }
                a
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_construction(c: &mut Criterion) {
    let mut g = c.benchmark_group("construction");
    g.sample_size(10);
    for size in [100usize, 400] {
        let inst = Arc::new(GeneratorConfig::new(InstanceClass::C1, size, 2).build());
        g.bench_with_input(BenchmarkId::new("i1", size), &size, |b, _| {
            b.iter(|| i1(&inst, &I1Config::default()))
        });
        g.bench_with_input(BenchmarkId::new("nearest_neighbor", size), &size, |b, _| {
            b.iter(|| nearest_neighbor(&inst))
        });
        g.bench_with_input(BenchmarkId::new("savings", size), &size, |b, _| {
            b.iter(|| savings(&inst))
        });
    }
    g.finish();
}

fn bench_tabu(c: &mut Criterion) {
    use tsmo_core::TabuList;
    let mut g = c.benchmark_group("tabu");
    g.bench_function("push_and_query_tenure_20", |b| {
        let mut list = TabuList::new(20);
        let mut i = 0u16;
        b.iter(|| {
            i = i.wrapping_add(1);
            list.push(vec![(i, i.wrapping_add(1)), (i.wrapping_add(2), i)]);
            black_box(list.is_tabu(&[(i, i.wrapping_add(1)), (7, 9)]))
        })
    });
    g.finish();
}

fn bench_pareto(c: &mut Criterion) {
    use pareto::{coverage, crowding_distances, non_dominated_indices};
    let mut g = c.benchmark_group("pareto");
    let mut points = Vec::new();
    let mut x = 11u64;
    for _ in 0..200 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        points.push([
            ((x >> 33) % 10_000) as f64,
            ((x >> 13) % 100) as f64,
            ((x >> 3) % 1_000) as f64,
        ]);
    }
    g.bench_function("non_dominated_200", |b| {
        b.iter(|| non_dominated_indices(black_box(&points)))
    });
    let nd: Vec<[f64; 3]> = {
        let idx = non_dominated_indices(&points);
        idx.into_iter().map(|i| points[i]).collect()
    };
    g.bench_function("crowding_front", |b| {
        b.iter(|| crowding_distances(black_box(&nd)))
    });
    g.bench_function("coverage_front_vs_front", |b| {
        b.iter(|| coverage(black_box(&nd), black_box(&points)))
    });
    g.finish();
}

fn bench_descent(c: &mut Criterion) {
    use vrptw_operators::{descend, DescentConfig};
    let mut g = c.benchmark_group("descent");
    g.sample_size(10);
    let inst = Arc::new(GeneratorConfig::new(InstanceClass::R2, 60, 4).build());
    let start = i1(&inst, &I1Config::default());
    g.bench_function("polish_i1_start_60", |b| {
        b.iter(|| descend(&inst, start.clone(), &DescentConfig::default()))
    });
    g.finish();
}

fn bench_giant_tour(c: &mut Criterion) {
    let mut g = c.benchmark_group("representation");
    let (inst, ev) = setup(400);
    let sol = ev.solution().clone();
    g.bench_function("giant_tour_encode_400", |b| {
        b.iter(|| sol.giant_tour(&inst))
    });
    let tour = sol.giant_tour(&inst);
    g.bench_function("giant_tour_decode_400", |b| {
        b.iter(|| vrptw::Solution::from_giant_tour(&inst, black_box(&tour)).expect("valid"))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_evaluation,
    bench_operators,
    bench_archive,
    bench_construction,
    bench_tabu,
    bench_pareto,
    bench_descent,
    bench_giant_tour
);
criterion_main!(benches);
