//! Criterion benches mirroring the paper's evaluation: one bench per table
//! (miniature budgets so `cargo bench` stays minutes, not hours — the
//! `tables` binary runs the full-scale regeneration) and one for the Fig. 1
//! trace run. Each measures a complete run of every algorithm in the
//! lineup, so the relative runtimes (sync < seq, async < sync, coll > seq)
//! are visible directly in the criterion report.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use tsmo_core::{AsyncTsmo, ParallelVariant, TsmoConfig};
use vrptw::generator::GeneratorConfig;

fn mini_cfg() -> TsmoConfig {
    TsmoConfig {
        max_evaluations: 4_000,
        neighborhood_size: 100,
        ..TsmoConfig::default()
    }
}

fn bench_table(c: &mut Criterion, table: usize) {
    let (classes, _) = bench::table_problem_set(table, false);
    let size = 100; // miniature
    let mut g = c.benchmark_group(format!("table{table}"));
    g.sample_size(10);
    let inst = Arc::new(GeneratorConfig::new(classes[0], size, 1).build());
    for variant in [
        ParallelVariant::Sequential,
        ParallelVariant::Synchronous(3),
        ParallelVariant::Asynchronous(3),
        ParallelVariant::Collaborative(3),
    ] {
        g.bench_with_input(BenchmarkId::new(variant.label(), size), &variant, |b, v| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                v.run(&inst, &mini_cfg().with_seed(seed))
            })
        });
    }
    g.finish();
}

fn bench_tables(c: &mut Criterion) {
    for t in 1..=4 {
        bench_table(c, t);
    }
}

fn bench_fig1(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1");
    g.sample_size(10);
    let inst = Arc::new(GeneratorConfig::new(vrptw::generator::InstanceClass::R1, 60, 42).build());
    g.bench_function("async_traced_run", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let cfg = TsmoConfig {
                trace: true,
                seed,
                ..mini_cfg()
            };
            AsyncTsmo::new(cfg, 4).run(&inst)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_tables, bench_fig1);
criterion_main!(benches);
