//! Ablation studies over the design choices DESIGN.md calls out.
//!
//! ```text
//! cargo run --release -p bench --bin ablation -- <study> [--evals E]
//!     [--size N] [--runs R] [--seed S] [--fault-seed S]
//!
//! studies:
//!   tenure       tabu tenure sweep {5, 10, 20, 40}
//!   nbhd         neighborhood size sweep {50, 100, 200, 400}
//!   archive      archive capacity sweep {10, 20, 50}
//!   feasibility  local feasibility criterion on/off
//!   decision     async decision-function wait bound sweep
//!   comm         collaborative searcher count sweep {1, 2, 4, 8}
//!   moea         NSGA-II vs sequential TSMO on equal budgets
//!   hybrid       future-work hybrid (coll × async) vs its two parents
//!   selection    MO selection rule: random non-dominated vs prefer-dominating
//!   weights      §II.C: k weighted-sum TS runs vs one TSMO on equal budgets
//!   hetero       async vs sync speedup on a heterogeneous virtual machine
//!   polish       best-improvement descent as a front post-processor
//!   levels       §I's taxonomy: functional vs domain vs multisearch decomposition
//!   faults       fault-rate sweep on the self-healing async runtime (virtual time)
//!   migration    elastic mesh migration policy: exchange interval x elite
//!                count x replication period under a mid-run node kill
//!   all          run every study
//! ```

use moea::{Nsga2, Nsga2Config, Spea2, Spea2Config};
use pareto::coverage;
use runstats::Summary;
use std::sync::Arc;
use tsmo_core::{
    weighted_front, AdaptiveMemoryTs, AsyncTsmo, CollaborativeTsmo, HybridTsmo, SequentialTsmo,
    SimAsyncTsmo, SimSyncTsmo, TsmoConfig,
};
use tsmo_faults::{FaultConfig, FaultPlan};
use tsmo_obs::{metrics::names, MemoryRecorder};
use vrptw::generator::{GeneratorConfig, InstanceClass};
use vrptw::Instance;
use vrptw_operators::{descend, DescentConfig};

struct Opts {
    evals: u64,
    size: usize,
    runs: usize,
    seed: u64,
    fault_seed: u64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let study = args.first().cloned().unwrap_or_else(|| "all".to_string());
    let opts = Opts {
        evals: get("--evals").map_or(10_000, |s| s.parse().expect("--evals")),
        size: get("--size").map_or(80, |s| s.parse().expect("--size")),
        runs: get("--runs").map_or(3, |s| s.parse().expect("--runs")),
        seed: get("--seed").map_or(7, |s| s.parse().expect("--seed")),
        fault_seed: get("--fault-seed").map_or(7, |s| s.parse().expect("--fault-seed")),
    };
    match study.as_str() {
        "tenure" => tenure(&opts),
        "nbhd" => nbhd(&opts),
        "archive" => archive(&opts),
        "feasibility" => feasibility(&opts),
        "decision" => decision(&opts),
        "comm" => comm(&opts),
        "moea" => moea_cmp(&opts),
        "hybrid" => hybrid(&opts),
        "selection" => selection(&opts),
        "weights" => weights(&opts),
        "hetero" => hetero(&opts),
        "polish" => polish(&opts),
        "levels" => levels(&opts),
        "faults" => faults(&opts),
        "migration" => migration(&opts),
        "all" => {
            for f in [
                tenure,
                nbhd,
                archive,
                feasibility,
                decision,
                comm,
                moea_cmp,
                hybrid,
                selection,
                weights,
                hetero,
                polish,
                levels,
                faults,
                migration,
            ] {
                f(&opts);
                println!();
            }
        }
        other => panic!("unknown study {other:?} (see --help in the source header)"),
    }
}

fn instance(opts: &Opts) -> Arc<Instance> {
    Arc::new(GeneratorConfig::new(InstanceClass::R1, opts.size, opts.seed).build())
}

fn base_cfg(opts: &Opts) -> TsmoConfig {
    TsmoConfig {
        max_evaluations: opts.evals,
        neighborhood_size: 100,
        ..TsmoConfig::default()
    }
}

/// Runs the sequential algorithm `runs` times, returns best distances.
fn seq_best_distances(inst: &Arc<Instance>, cfg: &TsmoConfig, opts: &Opts) -> Vec<f64> {
    (0..opts.runs)
        .map(|r| {
            let out = SequentialTsmo::new(cfg.clone().with_seed(opts.seed + r as u64)).run(inst);
            out.best_distance().unwrap_or(f64::NAN)
        })
        .filter(|d| d.is_finite())
        .collect()
}

fn print_row(label: &str, xs: &[f64]) {
    if xs.is_empty() {
        println!("  {label:<28} (no feasible solutions)");
    } else {
        let s = Summary::of(xs);
        println!("  {label:<28} best distance {}", s.cell());
    }
}

fn tenure(opts: &Opts) {
    println!("Ablation: tabu tenure sweep (paper default 20)");
    let inst = instance(opts);
    for tenure in [5usize, 10, 20, 40] {
        let cfg = TsmoConfig {
            tabu_tenure: tenure,
            ..base_cfg(opts)
        };
        print_row(
            &format!("tenure = {tenure}"),
            &seq_best_distances(&inst, &cfg, opts),
        );
    }
}

fn nbhd(opts: &Opts) {
    println!("Ablation: neighborhood size sweep (paper default 200)");
    let inst = instance(opts);
    for size in [50usize, 100, 200, 400] {
        let cfg = TsmoConfig {
            neighborhood_size: size,
            ..base_cfg(opts)
        };
        print_row(
            &format!("neighborhood = {size}"),
            &seq_best_distances(&inst, &cfg, opts),
        );
    }
}

fn archive(opts: &Opts) {
    println!("Ablation: archive capacity sweep (paper default 20)");
    let inst = instance(opts);
    for cap in [10usize, 20, 50] {
        let cfg = TsmoConfig {
            archive_capacity: cap,
            ..base_cfg(opts)
        };
        print_row(
            &format!("archive = {cap}"),
            &seq_best_distances(&inst, &cfg, opts),
        );
    }
}

fn feasibility(opts: &Opts) {
    println!("Ablation: local feasibility criterion (paper: on)");
    let inst = instance(opts);
    for on in [true, false] {
        let cfg = TsmoConfig {
            feasibility_criterion: on,
            ..base_cfg(opts)
        };
        print_row(
            if on { "criterion on" } else { "criterion off" },
            &seq_best_distances(&inst, &cfg, opts),
        );
    }
}

fn decision(opts: &Opts) {
    println!("Ablation: async decision-function wait bound (c3)");
    let inst = instance(opts);
    for wait_ms in [0u64, 1, 20, 200] {
        let cfg = TsmoConfig {
            async_max_wait_ms: wait_ms,
            ..base_cfg(opts)
        };
        let mut dists = Vec::new();
        let mut times = Vec::new();
        for r in 0..opts.runs {
            let out = AsyncTsmo::new(cfg.clone().with_seed(opts.seed + r as u64), 4).run(&inst);
            if let Some(d) = out.best_distance() {
                dists.push(d);
            }
            times.push(out.runtime_seconds);
        }
        let t = Summary::of(&times);
        if dists.is_empty() {
            println!(
                "  wait = {wait_ms:>3} ms: runtime {} (no feasible solutions)",
                t.cell()
            );
        } else {
            println!(
                "  wait = {wait_ms:>3} ms: best distance {} runtime {}",
                Summary::of(&dists).cell(),
                t.cell()
            );
        }
    }
}

fn comm(opts: &Opts) {
    println!("Ablation: collaborative searcher count (per-searcher budgets)");
    let inst = instance(opts);
    let reference = {
        let out = SequentialTsmo::new(base_cfg(opts).with_seed(opts.seed ^ 0xF00)).run(&inst);
        out.feasible_vectors()
    };
    for searchers in [1usize, 2, 4, 8] {
        let mut covs = Vec::new();
        let mut times = Vec::new();
        for r in 0..opts.runs {
            let out =
                CollaborativeTsmo::new(base_cfg(opts).with_seed(opts.seed + r as u64), searchers)
                    .run(&inst);
            covs.push(coverage(&out.feasible_vectors(), &reference) * 100.0);
            times.push(out.runtime_seconds);
        }
        println!(
            "  searchers = {searchers}: coverage of reference {} runtime {}",
            Summary::of(&covs).cell(),
            Summary::of(&times).cell()
        );
    }
}

/// Per-algorithm measurements: label, per-run fronts, per-run wall times.
type LabeledRuns<'a> = Vec<(&'a str, Vec<Vec<[f64; 3]>>, Vec<f64>)>;

fn hybrid(opts: &Opts) {
    println!("Extension: hybrid (collaborative x async) vs its parents (paper future work)");
    let inst = instance(opts);
    let mut rows: LabeledRuns = Vec::new();
    for (label, runner) in [
        (
            "async (4 procs)",
            Box::new(|seed: u64| AsyncTsmo::new(base_cfg(opts).with_seed(seed), 4).run(&inst))
                as Box<dyn Fn(u64) -> tsmo_core::TsmoOutcome>,
        ),
        (
            "collaborative (4)",
            Box::new(|seed: u64| {
                CollaborativeTsmo::new(base_cfg(opts).with_seed(seed), 4).run(&inst)
            }),
        ),
        (
            "hybrid (2 x 2)",
            Box::new(|seed: u64| HybridTsmo::new(base_cfg(opts).with_seed(seed), 2, 2).run(&inst)),
        ),
    ] {
        let mut fronts = Vec::new();
        let mut times = Vec::new();
        for r in 0..opts.runs {
            let out = runner(opts.seed + r as u64);
            fronts.push(out.feasible_vectors());
            times.push(out.runtime_seconds);
        }
        rows.push((label, fronts, times));
    }
    // Pairwise coverage between the three.
    for (i, (label, fronts, times)) in rows.iter().enumerate() {
        let mut covs = Vec::new();
        for (j, (_, other_fronts, _)) in rows.iter().enumerate() {
            if i == j {
                continue;
            }
            for a in fronts {
                for b in other_fronts {
                    covs.push(coverage(a, b) * 100.0);
                }
            }
        }
        println!(
            "  {label:<20} covers others {} wall time {}",
            Summary::of(&covs).cell(),
            Summary::of(times).cell()
        );
    }
}

fn selection(opts: &Opts) {
    println!("Ablation: MO selection rule (the paper leaves it unspecified)");
    let inst = instance(opts);
    use tsmo_core::SelectionRule;
    for (label, rule) in [
        ("random non-dominated", SelectionRule::RandomNonDominated),
        ("prefer dominating", SelectionRule::PreferDominating),
    ] {
        let cfg = TsmoConfig {
            selection: rule,
            ..base_cfg(opts)
        };
        print_row(label, &seq_best_distances(&inst, &cfg, opts));
    }
}

fn weights(opts: &Opts) {
    println!("Ablation (§II.C): k weighted-sum TS runs vs one TSMO, equal total budget");
    let inst = instance(opts);
    // Compare the raw three-objective fronts (tardiness is a dimension, so
    // infeasible-but-interesting points still count).
    let mut ts_fronts = Vec::new();
    for r in 0..opts.runs {
        let out = SequentialTsmo::new(base_cfg(opts).with_seed(opts.seed + r as u64)).run(&inst);
        ts_fronts.push(
            out.archive
                .iter()
                .map(|e| e.objectives.to_vector())
                .collect::<Vec<_>>(),
        );
    }
    for k in [3usize, 5, 10] {
        let mut c_mo = Vec::new();
        let mut c_ws = Vec::new();
        for r in 0..opts.runs {
            let front = weighted_front(
                &inst,
                &base_cfg(opts).with_seed(opts.seed ^ (r as u64) << 8),
                k,
                opts.evals,
            );
            let ws: Vec<[f64; 3]> = front
                .items()
                .iter()
                .map(|e| e.objectives.to_vector())
                .collect();
            for mo in &ts_fronts {
                c_mo.push(coverage(mo, &ws) * 100.0);
                c_ws.push(coverage(&ws, mo) * 100.0);
            }
        }
        println!(
            "  k = {k:>2} weighted runs: C(TSMO, weighted) {}  C(weighted, TSMO) {}",
            Summary::of(&c_mo).cell(),
            Summary::of(&c_ws).cell()
        );
    }
}

fn hetero(opts: &Opts) {
    println!("Ablation: heterogeneous machine (half-speed workers), virtual time");
    println!("  the paper motivates async with heterogeneity: \"asynchronous algorithms …");
    println!("  should perform well on both homogenous and heterogenous systems\"");
    let inst = instance(opts);
    let p = 4usize;
    // Homogeneous reference vs a machine whose last two workers run at
    // half speed.
    let speeds_hetero = vec![1.0, 1.0, 0.5, 0.5];
    for (label, speeds) in [
        ("homogeneous", vec![1.0; p]),
        ("half-speed workers", speeds_hetero),
    ] {
        let mut sync_t = Vec::new();
        let mut async_t = Vec::new();
        for r in 0..opts.runs {
            let cfg = base_cfg(opts).with_seed(opts.seed + r as u64);
            let s = SimSyncTsmo::new(cfg.clone(), p)
                .with_speeds(speeds.clone())
                .run(&inst);
            let a = SimAsyncTsmo::new(cfg, p)
                .with_speeds(speeds.clone())
                .run(&inst);
            sync_t.push(s.runtime_seconds);
            async_t.push(a.runtime_seconds);
        }
        println!(
            "  {label:<20} sync makespan {}  async makespan {}",
            Summary::of(&sync_t).cell(),
            Summary::of(&async_t).cell()
        );
    }
    println!("  (the sync barrier absorbs the slow workers' lag in waiting time;");
    println!("   async folds late chunks into later iterations instead)");
}

fn levels(opts: &Opts) {
    println!("Extension (§I's taxonomy): the three parallel-TS levels on equal budgets");
    println!("  functional decomposition = async master-worker (the paper's §III.D)");
    println!("  domain decomposition     = adaptive-memory TS (Taillard/Badeau, refs [8][9])");
    println!("  multisearch              = collaborative TS (the paper's §III.E)");
    let inst = instance(opts);
    let p = 4usize;
    let mut rows: Vec<(&str, Vec<Vec<[f64; 3]>>)> = Vec::new();
    for (label, runner) in [
        (
            "functional (async)",
            Box::new(|seed: u64| AsyncTsmo::new(base_cfg(opts).with_seed(seed), p).run(&inst))
                as Box<dyn Fn(u64) -> tsmo_core::TsmoOutcome>,
        ),
        (
            "domain (adaptive)",
            Box::new(|seed: u64| {
                let mut ts = AdaptiveMemoryTs::new(base_cfg(opts).with_seed(seed), p);
                ts.task_evaluations = (opts.evals as usize / 10).max(200);
                ts.run(&inst).expect("adaptive-memory worker pool failed")
            }),
        ),
        (
            "multisearch (coll)",
            Box::new(|seed: u64| {
                // Same *total* budget: divide by the searcher count since the
                // collaborative variant budgets per searcher.
                let mut cfg = base_cfg(opts).with_seed(seed);
                cfg.max_evaluations = (opts.evals / p as u64).max(1);
                CollaborativeTsmo::new(cfg, p).run(&inst)
            }),
        ),
    ] {
        let mut fronts = Vec::new();
        for r in 0..opts.runs {
            let out = runner(opts.seed + r as u64);
            fronts.push(
                out.archive
                    .iter()
                    .map(|e| e.objectives.to_vector())
                    .collect::<Vec<_>>(),
            );
        }
        rows.push((label, fronts));
    }
    for (i, (label, fronts)) in rows.iter().enumerate() {
        let mut covs = Vec::new();
        for (j, (_, other)) in rows.iter().enumerate() {
            if i == j {
                continue;
            }
            for a in fronts {
                for b in other {
                    covs.push(coverage(a, b) * 100.0);
                }
            }
        }
        println!(
            "  {label:<20} covers the other levels {}",
            Summary::of(&covs).cell()
        );
    }
}

fn polish(opts: &Opts) {
    println!("Extension: best-improvement descent as a front post-processor");
    let inst = instance(opts);
    let mut before = Vec::new();
    let mut after = Vec::new();
    let mut moves = Vec::new();
    for r in 0..opts.runs {
        let out = SequentialTsmo::new(base_cfg(opts).with_seed(opts.seed + r as u64)).run(&inst);
        for entry in &out.archive {
            let b = entry.objectives;
            let polished = descend(&inst, entry.solution.clone(), &DescentConfig::default());
            before.push(b.distance);
            after.push(polished.objectives.distance);
            moves.push(polished.moves_applied as f64);
        }
    }
    println!("  archive distances before {}", Summary::of(&before).cell());
    println!("  archive distances after  {}", Summary::of(&after).cell());
    println!("  improving moves applied  {}", Summary::of(&moves).cell());
}

fn faults(opts: &Opts) {
    println!("Robustness: fault-rate sweep on the self-healing async runtime (virtual time)");
    println!("  rates split evenly between worker panics and stalls; recovery is the");
    println!("  supervisor's resend/quarantine/respawn policy (see crates/faults, deme)");
    let inst = instance(opts);
    for rate in [0.0f64, 0.1, 0.2, 0.4] {
        let mut dists = Vec::new();
        let mut injected = Vec::new();
        let mut resent = Vec::new();
        let mut lost = Vec::new();
        for r in 0..opts.runs {
            let mut cfg = base_cfg(opts).with_seed(opts.seed + r as u64);
            // Pin the virtual cost: the chaos schedule is then reproducible.
            cfg.sim_eval_cost = Some(1e-4);
            let rec = MemoryRecorder::shared();
            let plan = FaultPlan::shared(FaultConfig::uniform(opts.fault_seed + r as u64, rate));
            let out = SimAsyncTsmo::new(cfg, 4)
                .with_fault_hook(plan.clone())
                .run_with(&inst, rec.clone());
            if let Some(d) = out.best_distance() {
                dists.push(d);
            }
            let m = rec.metrics();
            injected.push(plan.stats().total() as f64);
            resent.push(m.counter(names::TASKS_RESENT) as f64);
            lost.push(m.counter(names::TASKS_LOST) as f64);
        }
        let fmt = |xs: &[f64]| Summary::of(xs).cell();
        if dists.is_empty() {
            println!(
                "  rate = {rate:.1}: injected {} resent {} lost {} (no feasible solutions)",
                fmt(&injected),
                fmt(&resent),
                fmt(&lost)
            );
        } else {
            println!(
                "  rate = {rate:.1}: best distance {} injected {} resent {} lost {}",
                fmt(&dists),
                fmt(&injected),
                fmt(&resent),
                fmt(&lost)
            );
        }
    }
}

fn migration(opts: &Opts) {
    println!("Robustness: elastic-mesh migration policy under a mid-run node kill");
    println!("  4 node slots x 2 searchers on the virtual net; node 2 dies at round 20");
    println!("  and never rejoins — whatever its ring successor holds is all that");
    println!("  survives of its slice. Sweep: exchange interval x checkpoint elite");
    println!("  count x replication period.");
    use tsmo_cluster::{run_elastic, ChurnEvent, ChurnKind, ElasticMeshConfig};
    let inst = instance(opts);
    struct Cell {
        label: String,
        fronts: Vec<Vec<[f64; 3]>>,
        recovered: Vec<f64>,
        checkpoints: Vec<f64>,
    }
    let mut cells: Vec<Cell> = Vec::new();
    for exchange_interval in [1usize, 4, 16] {
        for elite in [5usize, 20] {
            for replication in [0u64, 10, 40] {
                let mut cell = Cell {
                    label: format!(
                        "exch={exchange_interval:>2} elite={elite:>2} repl={replication:>2}"
                    ),
                    fronts: Vec::new(),
                    recovered: Vec::new(),
                    checkpoints: Vec::new(),
                };
                for r in 0..opts.runs {
                    let cfg = TsmoConfig {
                        exchange_interval,
                        // Small per-searcher budgets keep the 18-cell grid
                        // tractable; the kill lands mid-run regardless.
                        max_evaluations: (opts.evals / 8).max(500),
                        neighborhood_size: 50,
                        stagnation_limit: 8,
                        ..TsmoConfig::default()
                    }
                    .with_seed(opts.seed + r as u64);
                    let em = ElasticMeshConfig {
                        replication_every: replication,
                        elite_count: elite,
                        churn: vec![ChurnEvent {
                            round: 20,
                            node: 2,
                            kind: ChurnKind::Kill,
                        }],
                        ..ElasticMeshConfig::fixed(4, 2, cfg)
                    };
                    let out = run_elastic(
                        &inst,
                        &em,
                        Arc::new(MemoryRecorder::metrics_only()),
                        tsmo_faults::none(),
                    );
                    cell.fronts
                        .push(out.front.iter().map(|e| e.objectives.to_vector()).collect());
                    cell.recovered.push(out.recovered_in_front as f64);
                    let ckpts = out
                        .log
                        .iter()
                        .filter(|rec| matches!(rec, tsmo_cluster::NetRecord::Checkpoint { .. }))
                        .count();
                    cell.checkpoints.push(ckpts as f64);
                }
                cells.push(cell);
            }
        }
    }
    // One shared reference point so hypervolumes are comparable cell to cell.
    let mut reference = [0.0f64; 3];
    for v in cells.iter().flat_map(|c| c.fronts.iter().flatten()) {
        for (r, x) in reference.iter_mut().zip(*v) {
            *r = r.max(x * 1.05 + 1.0);
        }
    }
    for cell in &cells {
        let hvs: Vec<f64> = cell
            .fronts
            .iter()
            .map(|f| pareto::hypervolume_3d(f, reference))
            .collect();
        println!(
            "  {}: hv {} recovered-in-front {} checkpoints {}",
            cell.label,
            Summary::of(&hvs).cell(),
            Summary::of(&cell.recovered).cell(),
            Summary::of(&cell.checkpoints).cell()
        );
    }
    println!("  (repl=0 forfeits the dead slice; short periods buy recovery with");
    println!("   checkpoint traffic that scales inversely with the period)");
}

fn moea_cmp(opts: &Opts) {
    println!("Extension: NSGA-II & SPEA2 vs sequential TSMO on equal budgets (paper future work)");
    let inst = instance(opts);
    let mut fronts: Vec<(&str, Vec<Vec<[f64; 3]>>)> = vec![
        ("TSMO", Vec::new()),
        ("NSGA-II", Vec::new()),
        ("SPEA2", Vec::new()),
    ];
    for r in 0..opts.runs {
        let seed = opts.seed + r as u64;
        let ts = SequentialTsmo::new(base_cfg(opts).with_seed(seed)).run(&inst);
        fronts[0].1.push(ts.feasible_vectors());
        let ea = Nsga2::new(Nsga2Config {
            max_evaluations: opts.evals,
            seed,
            ..Nsga2Config::default()
        })
        .run(&inst);
        fronts[1].1.push(ea.feasible_vectors());
        let sp = Spea2::new(Spea2Config {
            max_evaluations: opts.evals,
            seed,
            ..Spea2Config::default()
        })
        .run(&inst);
        fronts[2].1.push(sp.feasible_vectors());
    }
    for i in 0..fronts.len() {
        for j in 0..fronts.len() {
            if i == j {
                continue;
            }
            let mut covs = Vec::new();
            for a in &fronts[i].1 {
                for b in &fronts[j].1 {
                    covs.push(coverage(a, b) * 100.0);
                }
            }
            println!(
                "  C({:<7}, {:<7}) = {}",
                fronts[i].0,
                fronts[j].0,
                Summary::of(&covs).cell()
            );
        }
    }
}
