//! CI perf-regression gate over the `BENCH_*.json` artifacts.
//!
//! ```text
//! benchdiff --baseline crates/bench/baselines/BENCH_evals.json \
//!           --fresh BENCH_evals.json \
//!           [--tolerance PCT] [--tolerance-for SUBSTR=PCT ...] \
//!           [--informational SUBSTR ...]
//! ```
//!
//! Prints the per-metric delta table and exits 1 when any direction-aware
//! metric moved the wrong way beyond its band, or when a baseline metric
//! vanished from the fresh run. `--tolerance-for` widens the band for
//! paths containing a substring (timing metrics on shared CI runners need
//! more slack than deterministic counters); `--informational` tracks a
//! noisy metric in the table without letting it fail the gate.

use bench::diff::{diff_texts, Tolerances};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: benchdiff --baseline FILE --fresh FILE [--tolerance PCT] \
         [--tolerance-for SUBSTR=PCT ...] [--informational SUBSTR ...]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut baseline = None;
    let mut fresh = None;
    let mut tolerances = Tolerances::default();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let Some(value) = args.get(i + 1) else {
            return usage();
        };
        match flag {
            "--baseline" => baseline = Some(value.clone()),
            "--fresh" => fresh = Some(value.clone()),
            "--tolerance" => match value.parse() {
                Ok(pct) => tolerances.default_pct = pct,
                Err(_) => return usage(),
            },
            "--tolerance-for" => match value.split_once('=') {
                Some((sub, pct)) => match pct.parse() {
                    Ok(pct) => tolerances.overrides.push((sub.to_string(), pct)),
                    Err(_) => return usage(),
                },
                None => return usage(),
            },
            "--informational" => tolerances.informational.push(value.clone()),
            _ => return usage(),
        }
        i += 2;
    }
    let (Some(baseline), Some(fresh)) = (baseline, fresh) else {
        return usage();
    };

    let read = |path: &str| -> Result<String, ExitCode> {
        std::fs::read_to_string(path).map_err(|e| {
            eprintln!("cannot read {path}: {e}");
            ExitCode::from(2)
        })
    };
    let baseline_text = match read(&baseline) {
        Ok(t) => t,
        Err(code) => return code,
    };
    let fresh_text = match read(&fresh) {
        Ok(t) => t,
        Err(code) => return code,
    };
    let report = match diff_texts(&baseline_text, &fresh_text, &tolerances) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("benchdiff: {e}");
            return ExitCode::from(2);
        }
    };
    println!("benchdiff {baseline} vs {fresh}");
    print!("{}", report.render());
    if report.regressed() {
        eprintln!("benchdiff: regression detected ({fresh} vs {baseline})");
        ExitCode::FAILURE
    } else {
        println!("benchdiff: no regression");
        ExitCode::SUCCESS
    }
}
