//! Warm-vs-cold study for dynamic re-optimization.
//!
//! ```text
//! cargo run --release -p bench --bin dynbench --
//!     [--epochs N] [--mutations M] [--evals E] [--customers C]
//!     [--seed S] [--assert-warm] [--out BENCH_dynamic.json]
//! ```
//!
//! Three scenario scripts (classes R1, C2, RC1) are replayed twice each
//! at identical per-epoch evaluation budgets and identical per-epoch
//! seeds: once warm-starting every epoch from the previous epoch's
//! repaired front (plus adaptive-memory recombinations), once
//! constructing cold. The two arms differ *only* in their starting
//! solutions, so front quality differences are attributable to the
//! warm-start machinery. Epoch 0 is excluded from the comparison — with
//! no previous front both arms are identical there by construction.
//!
//! Quality is measured per mutated epoch with the two-set coverage
//! indicator C(A,B) (fraction of B weakly dominated by A): a scenario
//! counts as a warm win when the mean C(warm, cold) over its mutated
//! epochs is at least the mean C(cold, warm). `--assert-warm` exits
//! non-zero unless warm wins at least 2 of the 3 scenarios — the
//! acceptance gate CI runs with pinned seeds.

use pareto::coverage;
use std::process::ExitCode;
use tsmo_core::{CancelToken, ParallelVariant, TsmoConfig};
use tsmo_scenario::{run_dynamic, DynamicConfig, EpochOutcome, Generator, ScenarioScript};
use vrptw::generator::InstanceClass;

struct EpochRow {
    epoch: usize,
    customers: usize,
    cov_warm_over_cold: f64,
    cov_cold_over_warm: f64,
    warm_best: f64,
    cold_best: f64,
    warm_seeds: usize,
}

struct ScenarioRow {
    class: &'static str,
    script_seed: u64,
    epochs: Vec<EpochRow>,
    mean_warm_over_cold: f64,
    mean_cold_over_warm: f64,
    warm_wins: bool,
}

fn best_distance(e: &EpochOutcome) -> f64 {
    e.outcome
        .archive
        .iter()
        .map(|en| pareto::Dominance::objectives(en)[0])
        .fold(f64::INFINITY, f64::min)
}

fn run_scenario(
    class: InstanceClass,
    gen_seed: u64,
    script_seed: u64,
    customers: usize,
    epochs: usize,
    mutations: usize,
    cfg: &TsmoConfig,
) -> ScenarioRow {
    let base = Generator::new(gen_seed, class, customers).instance();
    let script = ScenarioScript::generate(&base, script_seed, epochs, mutations);
    let warm_cfg = DynamicConfig::new(ParallelVariant::Sequential, cfg.clone());
    let mut cold_cfg = warm_cfg.clone();
    cold_cfg.warm = false;
    let warm = run_dynamic(
        &base,
        &script,
        &warm_cfg,
        Vec::new(),
        tsmo_obs::noop(),
        CancelToken::never(),
    );
    let cold = run_dynamic(
        &base,
        &script,
        &cold_cfg,
        Vec::new(),
        tsmo_obs::noop(),
        CancelToken::never(),
    );
    let rows: Vec<EpochRow> = warm
        .iter()
        .zip(&cold)
        .skip(1) // epoch 0 has no previous front: both arms identical
        .map(|(w, c)| {
            assert_eq!(
                w.outcome.evaluations, c.outcome.evaluations,
                "arms must spend equal budgets"
            );
            EpochRow {
                epoch: w.epoch,
                customers: w.customers,
                cov_warm_over_cold: coverage(&w.outcome.archive, &c.outcome.archive),
                cov_cold_over_warm: coverage(&c.outcome.archive, &w.outcome.archive),
                warm_best: best_distance(w),
                cold_best: best_distance(c),
                warm_seeds: w.warm_seeds,
            }
        })
        .collect();
    let n = rows.len().max(1) as f64;
    let mean_wc = rows.iter().map(|r| r.cov_warm_over_cold).sum::<f64>() / n;
    let mean_cw = rows.iter().map(|r| r.cov_cold_over_warm).sum::<f64>() / n;
    ScenarioRow {
        class: class.label(),
        script_seed,
        epochs: rows,
        mean_warm_over_cold: mean_wc,
        mean_cold_over_warm: mean_cw,
        warm_wins: mean_wc >= mean_cw,
    }
}

fn scenario_json(s: &ScenarioRow) -> String {
    let mut epochs = String::new();
    for (i, r) in s.epochs.iter().enumerate() {
        if i > 0 {
            epochs.push_str(",\n");
        }
        epochs.push_str(&format!(
            "        {{\"epoch\": {}, \"customers\": {}, \
             \"coverage_warm_over_cold\": {:.4}, \"coverage_cold_over_warm\": {:.4}, \
             \"warm_best_distance\": {:.2}, \"cold_best_distance\": {:.2}, \
             \"warm_seeds\": {}}}",
            r.epoch,
            r.customers,
            r.cov_warm_over_cold,
            r.cov_cold_over_warm,
            r.warm_best,
            r.cold_best,
            r.warm_seeds
        ));
    }
    format!(
        "    {{\n      \"class\": \"{}\",\n      \"script_seed\": {},\n      \
         \"mean_coverage_warm_over_cold\": {:.4},\n      \
         \"mean_coverage_cold_over_warm\": {:.4},\n      \
         \"warm_wins\": {},\n      \"epochs\": [\n{}\n      ]\n    }}",
        s.class, s.script_seed, s.mean_warm_over_cold, s.mean_cold_over_warm, s.warm_wins, epochs
    )
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let epochs: usize = get("--epochs").map_or(4, |s| s.parse().expect("--epochs"));
    let mutations: usize = get("--mutations").map_or(4, |s| s.parse().expect("--mutations"));
    let evals: u64 = get("--evals").map_or(4_000, |s| s.parse().expect("--evals"));
    let customers: usize = get("--customers").map_or(40, |s| s.parse().expect("--customers"));
    let seed: u64 = get("--seed").map_or(11, |s| s.parse().expect("--seed"));
    let assert_warm = args.iter().any(|a| a == "--assert-warm");

    let cfg = TsmoConfig {
        max_evaluations: evals,
        neighborhood_size: 50,
        seed,
        ..TsmoConfig::default()
    };
    let classes = [InstanceClass::R1, InstanceClass::C2, InstanceClass::RC1];
    let scenarios: Vec<ScenarioRow> = classes
        .iter()
        .enumerate()
        .map(|(i, &class)| {
            let row = run_scenario(
                class,
                seed ^ (i as u64 + 1),
                seed.wrapping_mul(31) ^ (i as u64),
                customers,
                epochs,
                mutations,
                &cfg,
            );
            eprintln!(
                "dynbench: {} — C(warm,cold)={:.3} C(cold,warm)={:.3} → {}",
                row.class,
                row.mean_warm_over_cold,
                row.mean_cold_over_warm,
                if row.warm_wins {
                    "warm wins"
                } else {
                    "cold wins"
                }
            );
            for r in &row.epochs {
                eprintln!(
                    "  epoch {}: customers={} C(w,c)={:.3} C(c,w)={:.3} \
                     best warm={:.1} cold={:.1} ({} seeds)",
                    r.epoch,
                    r.customers,
                    r.cov_warm_over_cold,
                    r.cov_cold_over_warm,
                    r.warm_best,
                    r.cold_best,
                    r.warm_seeds
                );
            }
            row
        })
        .collect();
    let wins = scenarios.iter().filter(|s| s.warm_wins).count();
    println!(
        "dynbench: warm-start wins {wins}/{} scenarios at {evals} evals x {epochs} epochs",
        scenarios.len()
    );

    if let Some(path) = get("--out") {
        let body: Vec<String> = scenarios.iter().map(scenario_json).collect();
        let json = format!(
            "{{\n  \"benchmark\": \"tsmo-scenario dynbench\",\n  \"variant\": \"sequential\",\n  \
             \"epochs\": {epochs},\n  \"mutations_per_epoch\": {mutations},\n  \
             \"evals_per_epoch\": {evals},\n  \"customers\": {customers},\n  \"seed\": {seed},\n  \
             \"warm_wins_scenarios\": {wins},\n  \"total_scenarios\": {},\n  \
             \"scenarios\": [\n{}\n  ]\n}}\n",
            scenarios.len(),
            body.join(",\n")
        );
        std::fs::write(&path, json).expect("write benchmark JSON");
        eprintln!("wrote {path}");
    }

    if assert_warm && wins < 2 {
        eprintln!("dynbench: FAIL — warm-start won only {wins}/3 scenarios");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
