//! Evaluation-throughput microbench: how many solution evaluations per
//! second the evaluator and the full search loop sustain.
//!
//! ```text
//! cargo run --release -p bench --bin evalbench -- [--size N] [--seed S]
//!     [--raw-evals K] [--search-evals E] [--out BENCH_evals.json]
//! ```
//!
//! Three measurements, written as one JSON document (default
//! `BENCH_evals.json`):
//!
//! - `raw` — a tight loop over [`Solution::evaluate`] on an I1-built
//!   solution: the evaluator's ceiling, no search overhead.
//! - `search` — a sequential TSMO run against the no-op recorder:
//!   end-to-end evaluations per second including neighborhood
//!   generation, tabu checks, and archive maintenance.
//! - `search_profiled` — the same run with the span profiler attached
//!   (a metrics-only recorder), so the profiling overhead is a
//!   side-by-side number instead of a claim.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;
use tsmo_core::{ParallelVariant, TsmoConfig};
use tsmo_obs::MemoryRecorder;
use vrptw::generator::{GeneratorConfig, InstanceClass};
use vrptw::Solution;

struct Measure {
    evaluations: u64,
    seconds: f64,
}

impl Measure {
    fn rate(&self) -> f64 {
        if self.seconds > 0.0 {
            self.evaluations as f64 / self.seconds
        } else {
            0.0
        }
    }

    fn write_json(&self, out: &mut String, key: &str) {
        let _ = write!(
            out,
            "\"{key}\":{{\"evaluations\":{},\"seconds\":{:.6},\"evals_per_sec\":{:.1}}}",
            self.evaluations,
            self.seconds,
            self.rate()
        );
    }
}

fn run_search(inst: &Arc<vrptw::Instance>, cfg: &TsmoConfig, profiled: bool) -> Measure {
    let recorder: Arc<dyn tsmo_obs::Recorder> = if profiled {
        Arc::new(MemoryRecorder::metrics_only())
    } else {
        tsmo_obs::noop()
    };
    let start = Instant::now();
    let outcome = ParallelVariant::Sequential.run_with(inst, cfg, recorder);
    Measure {
        evaluations: outcome.evaluations,
        seconds: start.elapsed().as_secs_f64(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let size: usize = get("--size").map_or(100, |s| s.parse().expect("--size"));
    let seed: u64 = get("--seed").map_or(0, |s| s.parse().expect("--seed"));
    let raw_evals: u64 = get("--raw-evals").map_or(200_000, |s| s.parse().expect("--raw-evals"));
    let search_evals: u64 =
        get("--search-evals").map_or(20_000, |s| s.parse().expect("--search-evals"));
    let out_path = get("--out").unwrap_or_else(|| "BENCH_evals.json".to_string());

    let inst = Arc::new(GeneratorConfig::new(InstanceClass::R1, size, seed).build());
    eprintln!(
        "evalbench: instance {} ({} customers)",
        inst.name,
        inst.n_customers()
    );

    // Raw evaluator throughput: evaluate one realistic (I1-constructed)
    // solution over and over, folding the objectives into an accumulator
    // so the loop cannot be optimized away.
    let mut rng = detrand::Xoshiro256StarStar::seed_from_u64(seed);
    let solution: Solution = vrptw_construct::randomized_i1(&inst, &mut rng);
    let start = Instant::now();
    let mut sink = 0.0f64;
    for _ in 0..raw_evals {
        let obj = solution.evaluate(&inst);
        sink += obj.distance + obj.tardiness + obj.vehicles as f64;
    }
    let raw = Measure {
        evaluations: raw_evals,
        seconds: start.elapsed().as_secs_f64(),
    };
    eprintln!("raw: {:.0} evals/sec (checksum {sink:.1})", raw.rate());

    let cfg = TsmoConfig {
        max_evaluations: search_evals,
        seed,
        ..TsmoConfig::default()
    };
    let search = run_search(&inst, &cfg, false);
    eprintln!("search (noop recorder): {:.0} evals/sec", search.rate());
    let search_profiled = run_search(&inst, &cfg, true);
    eprintln!(
        "search (span profiler): {:.0} evals/sec ({:+.1}% vs noop)",
        search_profiled.rate(),
        100.0 * (search_profiled.rate() - search.rate()) / search.rate().max(1e-9)
    );

    let mut json = String::from("{");
    let _ = write!(
        json,
        "\"instance\":\"{}\",\"customers\":{},\"seed\":{seed},",
        inst.name,
        inst.n_customers()
    );
    raw.write_json(&mut json, "raw");
    json.push(',');
    search.write_json(&mut json, "search");
    json.push(',');
    search_profiled.write_json(&mut json, "search_profiled");
    json.push('}');
    json.push('\n');
    std::fs::write(&out_path, &json).expect("failed to write the benchmark JSON");
    eprintln!("wrote {out_path}");
}
