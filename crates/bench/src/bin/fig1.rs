//! Regenerates Fig. 1: the asynchronous TS search trajectory in objective
//! space, with iteration-tagged neighborhoods and the selected currents.
//!
//! ```text
//! cargo run --release -p bench --bin fig1 -- [--evals E] [--procs P]
//!     [--size N] [--seed S] [--csv PATH] [--iters-shown K]
//!     [--metrics-out PATH] [--events-out PATH]
//! ```
//!
//! Prints an ASCII rendition of the figure (distance × tardiness plane,
//! digits = creating iteration mod 10, `●` = selected current solutions)
//! and optionally writes the full trace CSV for external plotting.
//! `--metrics-out`/`--events-out` export the run's telemetry (Prometheus
//! text and structured JSONL events; see the `tsmo-obs` crate) — useful
//! for relating the trajectory to staleness and worker utilization.

use std::sync::Arc;
use tsmo_core::{AsyncTsmo, TsmoConfig};
use tsmo_obs::{MemoryRecorder, Recorder};
use vrptw::generator::{GeneratorConfig, InstanceClass};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let evals: u64 = get("--evals").map_or(4_000, |s| s.parse().expect("--evals"));
    let procs: usize = get("--procs").map_or(4, |s| s.parse().expect("--procs"));
    let size: usize = get("--size").map_or(60, |s| s.parse().expect("--size"));
    let seed: u64 = get("--seed").map_or(42, |s| s.parse().expect("--seed"));
    let iters_shown: usize = get("--iters-shown").map_or(12, |s| s.parse().expect("--iters-shown"));

    let inst = Arc::new(GeneratorConfig::new(InstanceClass::R1, size, seed).build());
    let cfg = TsmoConfig {
        max_evaluations: evals,
        neighborhood_size: 120,
        trace: true,
        seed,
        ..TsmoConfig::default()
    };
    eprintln!(
        "async TSMO on {} ({} customers), {} processors, {} evaluations",
        inst.name, size, procs, evals
    );
    let metrics_out = get("--metrics-out");
    let events_out = get("--events-out");
    let memory = (metrics_out.is_some() || events_out.is_some()).then(MemoryRecorder::shared);
    let recorder: Arc<dyn Recorder> = memory
        .clone()
        .map_or_else(tsmo_obs::noop, |m| m as Arc<dyn Recorder>);
    let out = AsyncTsmo::new(cfg, procs).run_with(&inst, recorder);
    if let Some(memory) = &memory {
        if let Some(path) = &metrics_out {
            std::fs::write(path, memory.prometheus()).expect("failed to write metrics");
            eprintln!("wrote {path}");
        }
        if let Some(path) = &events_out {
            std::fs::write(path, memory.events_jsonl()).expect("failed to write events");
            eprintln!("wrote {path} ({} events)", memory.event_count());
        }
        eprint!("{}", memory.summary());
    }
    let trace = out.trace.expect("tracing was enabled");

    eprintln!(
        "{} trace points, {} selected currents, max staleness {} iterations",
        trace.len(),
        trace.trajectory().len(),
        trace.max_staleness()
    );

    // Show the early search (the figure sketches the approach to the
    // front), restricted to the first `iters_shown` iterations.
    let pts: Vec<_> = trace
        .iter()
        .filter(|p| p.iter_considered <= iters_shown)
        .collect();
    if pts.is_empty() {
        eprintln!("nothing to plot");
        return;
    }
    // Axes: f1 (distance) on x, f3 (tardiness) on y, like the trajectory
    // approaching the pareto-optimal front.
    let (w, h) = (78usize, 24usize);
    let min_x = pts
        .iter()
        .map(|p| p.objectives.distance)
        .fold(f64::INFINITY, f64::min);
    let max_x = pts
        .iter()
        .map(|p| p.objectives.distance)
        .fold(f64::NEG_INFINITY, f64::max);
    let min_y = pts
        .iter()
        .map(|p| p.objectives.tardiness)
        .fold(f64::INFINITY, f64::min);
    let max_y = pts
        .iter()
        .map(|p| p.objectives.tardiness)
        .fold(f64::NEG_INFINITY, f64::max);
    let sx = |x: f64| (((x - min_x) / (max_x - min_x).max(1e-9)) * (w - 1) as f64).round() as usize;
    let sy = |y: f64| {
        (h - 1) - (((y - min_y) / (max_y - min_y).max(1e-9)) * (h - 1) as f64).round() as usize
    };
    let mut grid = vec![vec![' '; w]; h];
    for p in &pts {
        let (cx, cy) = (sx(p.objectives.distance), sy(p.objectives.tardiness));
        grid[cy][cx] = char::from_digit((p.iter_created % 10) as u32, 10).unwrap_or('?');
    }
    for p in &pts {
        if p.chosen {
            grid[sy(p.objectives.tardiness)][sx(p.objectives.distance)] = 'O';
        }
    }
    println!(
        "Fig. 1 — async TS trajectory (first {iters_shown} iterations; digits = creating iteration mod 10, O = selected current)"
    );
    println!("tardiness {:>10.1} ┐", max_y);
    for row in grid {
        println!("            │{}", row.into_iter().collect::<String>());
    }
    println!("{:>10.1}  └{}", min_y, "─".repeat(w));
    println!("            distance: {min_x:.1} … {max_x:.1}");

    if let Some(path) = get("--csv") {
        std::fs::write(&path, trace.to_csv()).expect("failed to write CSV");
        eprintln!("wrote {path}");
    }
}
