//! Load generator for the solver service (`tsmo-serve`).
//!
//! ```text
//! cargo run --release -p bench --bin loadgen -- [FILE]
//!     [--addr HOST:PORT] [--clients N] [--jobs-per-client M]
//!     [--evals E] [--neighborhood H] [--workers W] [--queue Q]
//!     [--deadline-every K] [--deadline-ms D] [--seed S]
//!     [--out BENCH_server.json]
//! ```
//!
//! Without `--addr` an in-process daemon is started (`--workers`,
//! `--queue` size it); with `--addr` an already-running `served` is
//! driven instead. `N` client threads each submit `M` jobs over their
//! own connection and block for the result; every `K`-th job carries a
//! `--deadline-ms` deadline, exercising the truncation path under load.
//! `QueueFull` rejections are retried with a short backoff and counted —
//! backpressure is part of the measured behavior, not an error.
//!
//! The report gives submit-to-result latency percentiles and end-to-end
//! throughput, printed and (with `--out`) written as a small JSON
//! document alongside the other `BENCH_*.json` artifacts.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tsmo_serve::{Client, JobSpec, Server, ServerConfig};
use vrptw::generator::{GeneratorConfig, InstanceClass};

struct JobRecord {
    latency_ms: f64,
    truncated: bool,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let file = args.first().filter(|a| !a.starts_with("--")).cloned();
    let clients: usize = get("--clients").map_or(8, |s| s.parse().expect("--clients"));
    let jobs_per_client: usize =
        get("--jobs-per-client").map_or(4, |s| s.parse().expect("--jobs-per-client"));
    let evals: u64 = get("--evals").map_or(5_000, |s| s.parse().expect("--evals"));
    let neighborhood: usize =
        get("--neighborhood").map_or(50, |s| s.parse().expect("--neighborhood"));
    let workers: usize = get("--workers").map_or(4, |s| s.parse().expect("--workers"));
    let queue: usize = get("--queue").map_or(16, |s| s.parse().expect("--queue"));
    let deadline_every: usize =
        get("--deadline-every").map_or(4, |s| s.parse().expect("--deadline-every"));
    let deadline_ms: u64 = get("--deadline-ms").map_or(100, |s| s.parse().expect("--deadline-ms"));
    let seed: u64 = get("--seed").map_or(0, |s| s.parse().expect("--seed"));

    let instance_text = match &file {
        Some(path) => std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read instance {path:?}: {e}")),
        None => vrptw::solomon::write(&GeneratorConfig::new(InstanceClass::R2, 15, seed).build()),
    };

    // Either drive a remote daemon or host one in-process.
    let (addr, local) = match get("--addr") {
        Some(addr) => (addr, None),
        None => {
            let server = Server::start(ServerConfig {
                workers,
                queue_capacity: queue,
                ..ServerConfig::default()
            })
            .expect("start in-process daemon");
            (server.local_addr().to_string(), Some(server))
        }
    };
    eprintln!(
        "loadgen: {clients} clients x {jobs_per_client} jobs ({evals} evals each) against {addr}"
    );

    let retries = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let addr = addr.clone();
            let text = instance_text.clone();
            let retries = Arc::clone(&retries);
            std::thread::spawn(move || -> Vec<JobRecord> {
                let mut client = Client::connect(&addr).expect("connect to daemon");
                let mut records = Vec::with_capacity(jobs_per_client);
                for j in 0..jobs_per_client {
                    let global = c * jobs_per_client + j;
                    let spec = JobSpec {
                        instance_text: text.clone(),
                        variant: "sequential".to_string(),
                        max_evaluations: evals,
                        neighborhood_size: neighborhood,
                        seed: seed ^ (global as u64),
                        deadline_ms: (deadline_every > 0 && global.is_multiple_of(deadline_every))
                            .then_some(deadline_ms),
                        ..JobSpec::default()
                    };
                    let submitted = Instant::now();
                    let job = loop {
                        match client.submit(spec.clone()).expect("submit") {
                            Ok(job) => break job,
                            Err(_capacity) => {
                                retries.fetch_add(1, Ordering::Relaxed);
                                std::thread::sleep(Duration::from_millis(10));
                            }
                        }
                    };
                    let result = client
                        .wait_result(job, Duration::from_secs(300))
                        .expect("job result");
                    records.push(JobRecord {
                        latency_ms: submitted.elapsed().as_secs_f64() * 1000.0,
                        truncated: result.truncated,
                    });
                }
                records
            })
        })
        .collect();
    let records: Vec<JobRecord> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("client thread"))
        .collect();
    let wall = start.elapsed().as_secs_f64();

    let mut latencies: Vec<f64> = records.iter().map(|r| r.latency_ms).collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("latencies are not NaN"));
    let total = records.len();
    let truncated = records.iter().filter(|r| r.truncated).count();
    let mean = latencies.iter().sum::<f64>() / total.max(1) as f64;
    let (p50, p95, p99) = (
        percentile(&latencies, 50.0),
        percentile(&latencies, 95.0),
        percentile(&latencies, 99.0),
    );
    let max = latencies.last().copied().unwrap_or(0.0);
    let throughput = total as f64 / wall;
    let queue_full_retries = retries.load(Ordering::Relaxed);

    println!(
        "completed {total} jobs in {wall:.2}s  ({throughput:.1} jobs/s, {truncated} truncated, \
         {queue_full_retries} QueueFull retries)"
    );
    println!("latency ms: p50={p50:.1} p95={p95:.1} p99={p99:.1} mean={mean:.1} max={max:.1}");

    if let Some(path) = get("--out") {
        let json = format!(
            "{{\n  \"benchmark\": \"tsmo-serve loadgen\",\n  \"clients\": {clients},\n  \
             \"jobs_per_client\": {jobs_per_client},\n  \"total_jobs\": {total},\n  \
             \"workers\": {workers},\n  \"queue_capacity\": {queue},\n  \
             \"evals_per_job\": {evals},\n  \"deadline_every\": {deadline_every},\n  \
             \"deadline_ms\": {deadline_ms},\n  \"wall_seconds\": {wall:.3},\n  \
             \"throughput_jobs_per_s\": {throughput:.2},\n  \
             \"latency_ms\": {{\"p50\": {p50:.2}, \"p95\": {p95:.2}, \"p99\": {p99:.2}, \
             \"mean\": {mean:.2}, \"max\": {max:.2}}},\n  \
             \"truncated_jobs\": {truncated},\n  \"queue_full_retries\": {queue_full_retries}\n}}\n"
        );
        std::fs::write(&path, json).expect("write benchmark JSON");
        eprintln!("wrote {path}");
    }

    if let Some(server) = local {
        server.shutdown();
    }
}
