//! Load generator for the solver service (`tsmo-serve`).
//!
//! ```text
//! cargo run --release -p bench --bin loadgen -- [FILE]
//!     [--addr HOST:PORT] [--clients N] [--jobs-per-client M]
//!     [--instance-class C] [--customers N]
//!     [--evals E] [--neighborhood H] [--workers W] [--queue Q]
//!     [--deadline-every K] [--deadline-ms D] [--seed S]
//!     [--cluster NODES] [--out BENCH_server.json]
//! ```
//!
//! Without `FILE` the workload instance is generated on the fly:
//! `--instance-class` picks the extended-Solomon class (C1/C2/R1/R2/
//! RC1/RC2, default R2) and `--customers` its size (default 15), so
//! scaling studies need no instance files on disk. Without `--addr` an
//! in-process daemon is started (`--workers`, `--queue` size it); with
//! `--addr` an already-running `served` is driven instead. `N` client threads each submit `M` jobs over their
//! own connection and block for the result; every `K`-th job carries a
//! `--deadline-ms` deadline, exercising the truncation path under load.
//! `QueueFull` rejections are retried with a short backoff and counted —
//! backpressure is part of the measured behavior, not an error.
//!
//! `--cluster NODES` adds a second phase against a mesh-backed daemon:
//! `NODES` in-process `noded` daemons are spawned (or, with `--addr`, the
//! remote daemon is assumed to be mesh-backed already) and the same load
//! is replayed as `collaborative` jobs that fan out over the mesh. Mesh
//! jobs carry no deadlines — cancellation does not propagate to remote
//! nodes — and the daemon runs one worker so concurrent jobs queue
//! instead of racing for the nodes.
//!
//! The report gives submit-to-result latency percentiles and end-to-end
//! throughput, printed and (with `--out`) written as a small JSON
//! document alongside the other `BENCH_*.json` artifacts. With
//! `--cluster` the document is a two-entry array: the single-process
//! phase first, the mesh phase second.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tsmo_cluster::{NodeConfig, Noded};
use tsmo_serve::{Client, JobSpec, Server, ServerConfig};
use vrptw::generator::GeneratorConfig;

struct JobRecord {
    latency_ms: f64,
    truncated: bool,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// One measured load phase: all client threads joined, wall clock closed.
struct Phase {
    records: Vec<JobRecord>,
    wall_seconds: f64,
    queue_full_retries: u64,
}

/// Drives `clients` threads of `jobs_per_client` jobs each against the
/// daemon at `addr`; `spec_of(global_job_index)` shapes each submission.
fn drive(
    addr: &str,
    clients: usize,
    jobs_per_client: usize,
    spec_of: Arc<dyn Fn(usize) -> JobSpec + Send + Sync>,
) -> Phase {
    let retries = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let addr = addr.to_string();
            let retries = Arc::clone(&retries);
            let spec_of = Arc::clone(&spec_of);
            std::thread::spawn(move || -> Vec<JobRecord> {
                let mut client = Client::connect(&addr).expect("connect to daemon");
                let mut records = Vec::with_capacity(jobs_per_client);
                for j in 0..jobs_per_client {
                    let spec = spec_of(c * jobs_per_client + j);
                    let submitted = Instant::now();
                    let job = loop {
                        match client.submit(spec.clone()).expect("submit") {
                            Ok(job) => break job,
                            Err(_capacity) => {
                                retries.fetch_add(1, Ordering::Relaxed);
                                std::thread::sleep(Duration::from_millis(10));
                            }
                        }
                    };
                    let result = client
                        .wait_result(job, Duration::from_secs(300))
                        .expect("job result");
                    records.push(JobRecord {
                        latency_ms: submitted.elapsed().as_secs_f64() * 1000.0,
                        truncated: result.truncated,
                    });
                }
                records
            })
        })
        .collect();
    let records: Vec<JobRecord> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("client thread"))
        .collect();
    Phase {
        records,
        wall_seconds: start.elapsed().as_secs_f64(),
        queue_full_retries: retries.load(Ordering::Relaxed),
    }
}

struct Summary {
    total: usize,
    truncated: usize,
    throughput: f64,
    mean: f64,
    p50: f64,
    p95: f64,
    p99: f64,
    max: f64,
}

fn summarize(phase: &Phase) -> Summary {
    let mut latencies: Vec<f64> = phase.records.iter().map(|r| r.latency_ms).collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("latencies are not NaN"));
    let total = phase.records.len();
    Summary {
        total,
        truncated: phase.records.iter().filter(|r| r.truncated).count(),
        throughput: total as f64 / phase.wall_seconds,
        mean: latencies.iter().sum::<f64>() / total.max(1) as f64,
        p50: percentile(&latencies, 50.0),
        p95: percentile(&latencies, 95.0),
        p99: percentile(&latencies, 99.0),
        max: latencies.last().copied().unwrap_or(0.0),
    }
}

#[allow(clippy::too_many_arguments)]
fn entry_json(
    mode: &str,
    extra: &str,
    instance_class: &str,
    customers: usize,
    clients: usize,
    jobs_per_client: usize,
    workers: usize,
    queue: usize,
    evals: u64,
    deadline_every: usize,
    deadline_ms: u64,
    phase: &Phase,
    s: &Summary,
) -> String {
    format!(
        "{{\n  \"benchmark\": \"tsmo-serve loadgen\",\n  \"mode\": \"{mode}\",{extra}\n  \
         \"instance_class\": \"{instance_class}\",\n  \"customers\": {customers},\n  \
         \"clients\": {clients},\n  \"jobs_per_client\": {jobs_per_client},\n  \
         \"total_jobs\": {},\n  \"workers\": {workers},\n  \"queue_capacity\": {queue},\n  \
         \"evals_per_job\": {evals},\n  \"deadline_every\": {deadline_every},\n  \
         \"deadline_ms\": {deadline_ms},\n  \"wall_seconds\": {:.3},\n  \
         \"throughput_jobs_per_s\": {:.2},\n  \
         \"latency_ms\": {{\"p50\": {:.2}, \"p95\": {:.2}, \"p99\": {:.2}, \
         \"mean\": {:.2}, \"max\": {:.2}}},\n  \
         \"truncated_jobs\": {},\n  \"queue_full_retries\": {}\n}}",
        s.total,
        phase.wall_seconds,
        s.throughput,
        s.p50,
        s.p95,
        s.p99,
        s.mean,
        s.max,
        s.truncated,
        phase.queue_full_retries
    )
}

fn print_summary(label: &str, phase: &Phase, s: &Summary) {
    println!(
        "{label}: completed {} jobs in {:.2}s  ({:.1} jobs/s, {} truncated, \
         {} QueueFull retries)",
        s.total, phase.wall_seconds, s.throughput, s.truncated, phase.queue_full_retries
    );
    println!(
        "{label}: latency ms: p50={:.1} p95={:.1} p99={:.1} mean={:.1} max={:.1}",
        s.p50, s.p95, s.p99, s.mean, s.max
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let file = args.first().filter(|a| !a.starts_with("--")).cloned();
    let clients: usize = get("--clients").map_or(8, |s| s.parse().expect("--clients"));
    let jobs_per_client: usize =
        get("--jobs-per-client").map_or(4, |s| s.parse().expect("--jobs-per-client"));
    let evals: u64 = get("--evals").map_or(5_000, |s| s.parse().expect("--evals"));
    let neighborhood: usize =
        get("--neighborhood").map_or(50, |s| s.parse().expect("--neighborhood"));
    let workers: usize = get("--workers").map_or(4, |s| s.parse().expect("--workers"));
    let queue: usize = get("--queue").map_or(16, |s| s.parse().expect("--queue"));
    let deadline_every: usize =
        get("--deadline-every").map_or(4, |s| s.parse().expect("--deadline-every"));
    let deadline_ms: u64 = get("--deadline-ms").map_or(100, |s| s.parse().expect("--deadline-ms"));
    let seed: u64 = get("--seed").map_or(0, |s| s.parse().expect("--seed"));
    let cluster: Option<usize> = get("--cluster").map(|s| s.parse().expect("--cluster"));

    let class_s = get("--instance-class").unwrap_or_else(|| "R2".to_string());
    let class = tsmo_scenario::parse_class(&class_s).unwrap_or_else(|| {
        panic!("unknown --instance-class {class_s:?} (use C1/C2/R1/R2/RC1/RC2)")
    });
    let customers: usize = get("--customers").map_or(15, |s| s.parse().expect("--customers"));
    let instance_text = match &file {
        Some(path) => std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read instance {path:?}: {e}")),
        None => vrptw::solomon::write(&GeneratorConfig::new(class, customers, seed).build()),
    };
    // Report the size actually driven, whether generated or from a file.
    let (instance_class, customers) = match &file {
        None => (class.label().to_string(), customers),
        Some(_) => {
            let parsed = vrptw::solomon::parse(&instance_text).expect("parse instance file");
            ("file".to_string(), parsed.n_customers())
        }
    };

    // Phase 1 — single-process daemon: either drive a remote one or host
    // one in-process.
    let (addr, local) = match get("--addr") {
        Some(addr) => (addr, None),
        None => {
            let server = Server::start(ServerConfig {
                workers,
                queue_capacity: queue,
                ..ServerConfig::default()
            })
            .expect("start in-process daemon");
            (server.local_addr().to_string(), Some(server))
        }
    };
    eprintln!(
        "loadgen: {clients} clients x {jobs_per_client} jobs ({evals} evals each) against {addr}"
    );
    let spec_of: Arc<dyn Fn(usize) -> JobSpec + Send + Sync> = {
        let text = instance_text.clone();
        Arc::new(move |global| JobSpec {
            instance_text: text.clone(),
            variant: "sequential".to_string(),
            max_evaluations: evals,
            neighborhood_size: neighborhood,
            seed: seed ^ (global as u64),
            deadline_ms: (deadline_every > 0 && global.is_multiple_of(deadline_every))
                .then_some(deadline_ms),
            ..JobSpec::default()
        })
    };
    let single = drive(&addr, clients, jobs_per_client, spec_of);
    let single_summary = summarize(&single);
    print_summary("single", &single, &single_summary);
    if let Some(server) = local {
        server.shutdown();
    }

    // Phase 2 — the same load as collaborative jobs over a node mesh.
    let cluster_phase = cluster.map(|nodes_n| {
        let nodes_n = nodes_n.max(1);
        let (mesh_addr, nodes, mesh_server) = match get("--addr") {
            Some(addr) => (addr, Vec::new(), None), // remote daemon is mesh-backed
            None => {
                let nodes: Vec<Noded> = (0..nodes_n)
                    .map(|_| Noded::start(NodeConfig::default()).expect("bind node"))
                    .collect();
                let peers = nodes.iter().map(|n| n.local_addr().to_string()).collect();
                // One worker: mesh jobs hold every node, so extra workers
                // would only race for Start and fail; the queue serializes.
                let server = Server::start(ServerConfig {
                    workers: 1,
                    queue_capacity: queue,
                    mesh: Some(peers),
                    ..ServerConfig::default()
                })
                .expect("start mesh-backed daemon");
                (server.local_addr().to_string(), nodes, Some(server))
            }
        };
        eprintln!(
            "loadgen: cluster phase — {clients} clients x {jobs_per_client} collaborative jobs \
             over {nodes_n} nodes against {mesh_addr}"
        );
        let spec_of: Arc<dyn Fn(usize) -> JobSpec + Send + Sync> = {
            let text = instance_text.clone();
            Arc::new(move |global| JobSpec {
                instance_text: text.clone(),
                variant: "collaborative".to_string(),
                processors: 2 * nodes_n,
                max_evaluations: evals,
                neighborhood_size: neighborhood,
                seed: seed ^ (global as u64),
                ..JobSpec::default()
            })
        };
        let phase = drive(&mesh_addr, clients, jobs_per_client, spec_of);
        let summary = summarize(&phase);
        print_summary("cluster", &phase, &summary);
        if let Some(server) = mesh_server {
            server.shutdown();
        }
        for node in nodes {
            node.halt();
        }
        (nodes_n, phase, summary)
    });

    if let Some(path) = get("--out") {
        let single_entry = entry_json(
            "single",
            "",
            &instance_class,
            customers,
            clients,
            jobs_per_client,
            workers,
            queue,
            evals,
            deadline_every,
            deadline_ms,
            &single,
            &single_summary,
        );
        let json = match &cluster_phase {
            None => format!("{single_entry}\n"),
            Some((nodes_n, phase, summary)) => {
                let extra = format!("\n  \"nodes\": {nodes_n},");
                let cluster_entry = entry_json(
                    "cluster",
                    &extra,
                    &instance_class,
                    customers,
                    clients,
                    jobs_per_client,
                    1,
                    queue,
                    evals,
                    0,
                    0,
                    phase,
                    summary,
                );
                format!("[\n{single_entry},\n{cluster_entry}\n]\n")
            }
        };
        std::fs::write(&path, json).expect("write benchmark JSON");
        eprintln!("wrote {path}");
    }
}
