//! Per-algorithm win rates for budget-raced portfolios.
//!
//! ```text
//! cargo run --release -p bench --bin portbench --
//!     [--algos tsmo-collab,nsga2,spea2] [--rounds R] [--evals E]
//!     [--customers 100,200] [--seed S] [--assert-valid]
//!     [--out BENCH_portfolio.json]
//! ```
//!
//! One pinned-seed portfolio race is run per (class, size) cell over the
//! extended-Solomon classes C1 / R1 / RC1. Every cell reports which
//! contender won each scored round (coverage first, hypervolume
//! tiebreak) and the evaluations each contender actually consumed, then
//! re-runs every arm *standalone* with the race's entire budget and
//! compares fronts with the two-set coverage indicator. Cells aggregate
//! into per-algorithm win rates: rounds won divided by rounds contested
//! (a retired contender stops contesting).
//!
//! `--assert-valid` exits non-zero unless every cell's merged front is
//! mutually non-dominated, never covered (C < 1) by any standalone arm
//! given the equal total budget, and every round has exactly one
//! winner — the acceptance gate CI runs with pinned seeds.

use std::process::ExitCode;
use std::sync::Arc;
use tsmo_core::CancelToken;
use tsmo_portfolio::{contender, Portfolio, PortfolioConfig, PortfolioOutcome, RaceParams};
use tsmo_scenario::Generator;
use vrptw::generator::InstanceClass;

struct AlgoCell {
    name: String,
    rounds_won: u32,
    rounds_contested: usize,
    evaluations: u64,
    front_size: usize,
    retired_round: Option<u32>,
    merged_covers_solo: f64,
    solo_covers_merged: f64,
}

struct Cell {
    class: &'static str,
    customers: usize,
    rounds: usize,
    merged_size: usize,
    merged_non_dominated: bool,
    evaluations: u64,
    algos: Vec<AlgoCell>,
}

fn run_cell(
    class: InstanceClass,
    customers: usize,
    algos: &[String],
    cfg: &PortfolioConfig,
    gen_seed: u64,
) -> Cell {
    let inst = Arc::new(Generator::new(gen_seed, class, customers).instance());
    let params = RaceParams::default();
    let contenders = algos
        .iter()
        .map(|n| contender(n, &params).unwrap_or_else(|| panic!("unknown algorithm '{n}'")))
        .collect();
    let out: PortfolioOutcome =
        Portfolio::new(cfg.clone()).run(&inst, contenders, tsmo_obs::noop(), CancelToken::never());
    let algo_cells = out
        .contenders
        .iter()
        .enumerate()
        .map(|(i, c)| {
            // The standalone arm gets the race's ENTIRE budget in one
            // run — strictly more than its share inside the race.
            let mut solo = contender(&c.name, &params)
                .unwrap_or_else(|| panic!("unknown algorithm '{}'", c.name));
            solo.run_slice(
                &inst,
                cfg.total_evaluations,
                cfg.seed,
                &CancelToken::never(),
            );
            AlgoCell {
                name: c.name.clone(),
                rounds_won: c.rounds_won,
                rounds_contested: out
                    .ledger
                    .iter()
                    .filter(|r| r.entries.iter().any(|e| e.contender == i as u32))
                    .count(),
                evaluations: c.evaluations,
                front_size: c.front.len(),
                retired_round: c.retired_round,
                merged_covers_solo: pareto::coverage(&out.merged, solo.front()),
                solo_covers_merged: pareto::coverage(solo.front(), &out.merged),
            }
        })
        .collect();
    Cell {
        class: class.label(),
        customers,
        rounds: out.ledger.len(),
        merged_size: out.merged.len(),
        merged_non_dominated: pareto::non_dominated_indices(&out.merged).len() == out.merged.len(),
        evaluations: out.evaluations,
        algos: algo_cells,
    }
}

fn cell_json(c: &Cell) -> String {
    let mut algos = String::new();
    for (i, a) in c.algos.iter().enumerate() {
        if i > 0 {
            algos.push_str(",\n");
        }
        algos.push_str(&format!(
            "        {{\"name\": \"{}\", \"rounds_won\": {}, \"rounds_contested\": {}, \
             \"evaluations\": {}, \"front_size\": {}, \"retired_round\": {}, \
             \"merged_covers_solo\": {:.4}, \"solo_covers_merged\": {:.4}}}",
            a.name,
            a.rounds_won,
            a.rounds_contested,
            a.evaluations,
            a.front_size,
            a.retired_round
                .map_or("null".to_string(), |r| r.to_string()),
            a.merged_covers_solo,
            a.solo_covers_merged
        ));
    }
    format!(
        "    {{\n      \"class\": \"{}\",\n      \"customers\": {},\n      \
         \"rounds\": {},\n      \"evaluations\": {},\n      \"merged_size\": {},\n      \
         \"merged_non_dominated\": {},\n      \"algorithms\": [\n{}\n      ]\n    }}",
        c.class, c.customers, c.rounds, c.evaluations, c.merged_size, c.merged_non_dominated, algos
    )
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let algos: Vec<String> = get("--algos")
        .unwrap_or_else(|| "tsmo-collab,nsga2,spea2".to_string())
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    let rounds: u32 = get("--rounds").map_or(3, |s| s.parse().expect("--rounds"));
    let evals: u64 = get("--evals").map_or(12_000, |s| s.parse().expect("--evals"));
    let sizes: Vec<usize> = get("--customers")
        .unwrap_or_else(|| "100,200".to_string())
        .split(',')
        .map(|s| s.trim().parse().expect("--customers"))
        .collect();
    let seed: u64 = get("--seed").map_or(23, |s| s.parse().expect("--seed"));
    let assert_valid = args.iter().any(|a| a == "--assert-valid");

    let cfg = PortfolioConfig {
        rounds,
        total_evaluations: evals,
        seed,
        ..PortfolioConfig::default()
    };
    let classes = [InstanceClass::C1, InstanceClass::R1, InstanceClass::RC1];
    let mut cells = Vec::new();
    for (ci, &class) in classes.iter().enumerate() {
        for (si, &customers) in sizes.iter().enumerate() {
            let gen_seed = seed ^ ((ci as u64 + 1) << 8) ^ (si as u64 + 1);
            let cell = run_cell(class, customers, &algos, &cfg, gen_seed);
            eprintln!(
                "portbench: {}x{} — merged {} pts over {} rounds ({} evals)",
                cell.class, cell.customers, cell.merged_size, cell.rounds, cell.evaluations
            );
            for a in &cell.algos {
                eprintln!(
                    "  {}: won {}/{} rounds, spent {}, front {}, C(merged,solo)={:.3} \
                     C(solo,merged)={:.3}{}",
                    a.name,
                    a.rounds_won,
                    a.rounds_contested,
                    a.evaluations,
                    a.front_size,
                    a.merged_covers_solo,
                    a.solo_covers_merged,
                    a.retired_round
                        .map_or(String::new(), |r| format!(" (retired round {r})"))
                );
            }
            cells.push(cell);
        }
    }

    // Aggregate win rates per algorithm across every cell.
    let totals: Vec<(String, usize, usize)> = algos
        .iter()
        .map(|name| {
            let (won, contested) = cells
                .iter()
                .flat_map(|c| c.algos.iter().filter(|a| &a.name == name))
                .fold((0, 0), |(w, t), a| {
                    (w + a.rounds_won as usize, t + a.rounds_contested)
                });
            (name.clone(), won, contested)
        })
        .collect();
    for (name, won, contested) in &totals {
        println!(
            "portbench: {name} win rate {:.3} ({won}/{contested} rounds)",
            *won as f64 / (*contested).max(1) as f64
        );
    }

    if let Some(path) = get("--out") {
        let rates: Vec<String> = totals
            .iter()
            .map(|(name, won, contested)| {
                format!(
                    "    {{\"name\": \"{name}\", \"rounds_won\": {won}, \
                     \"rounds_contested\": {contested}, \"win_rate\": {:.4}}}",
                    *won as f64 / (*contested).max(1) as f64
                )
            })
            .collect();
        let body: Vec<String> = cells.iter().map(cell_json).collect();
        let json = format!(
            "{{\n  \"benchmark\": \"tsmo-portfolio portbench\",\n  \
             \"algorithms\": [{}],\n  \"rounds\": {rounds},\n  \
             \"total_evaluations\": {evals},\n  \"seed\": {seed},\n  \
             \"win_rates\": [\n{}\n  ],\n  \"cells\": [\n{}\n  ]\n}}\n",
            algos
                .iter()
                .map(|a| format!("\"{a}\""))
                .collect::<Vec<_>>()
                .join(", "),
            rates.join(",\n"),
            body.join(",\n")
        );
        std::fs::write(&path, json).expect("write benchmark JSON");
        eprintln!("wrote {path}");
    }

    if assert_valid {
        let mut ok = true;
        for c in &cells {
            if !c.merged_non_dominated || c.merged_size == 0 {
                eprintln!(
                    "portbench: FAIL — {}x{} merged front invalid",
                    c.class, c.customers
                );
                ok = false;
            }
            let won: usize = c.algos.iter().map(|a| a.rounds_won as usize).sum();
            if won != c.rounds {
                eprintln!(
                    "portbench: FAIL — {}x{} rounds without a unique winner ({won}/{})",
                    c.class, c.customers, c.rounds
                );
                ok = false;
            }
            for a in &c.algos {
                if a.solo_covers_merged >= 1.0 {
                    eprintln!(
                        "portbench: FAIL — {}x{}: standalone {} covers the merged front \
                         at equal budget",
                        c.class, c.customers, a.name
                    );
                    ok = false;
                }
            }
        }
        if !ok {
            return ExitCode::FAILURE;
        }
        eprintln!("portbench: all validity gates passed");
    }
    ExitCode::SUCCESS
}
