//! General-purpose solver CLI: load (or generate) an instance, run any of
//! the algorithm variants, print the Pareto front, and optionally export
//! the solutions.
//!
//! ```text
//! cargo run --release -p bench --bin solve -- [FILE]
//!     [--variant seq|sync|async|coll|hybrid|nsga2] [--procs P]
//!     [--searchers S] [--evals E] [--seed S] [--class R1] [--size N]
//!     [--out solutions.txt] [--metrics-out metrics.txt]
//!     [--events-out events.jsonl] [--profile-out profile.json]
//!     [--span-events] [--timeline-every K]
//!     [--fault-seed S] [--fault-rate R]
//!     [--deadline-ms D] [--cancel-after-iters K]
//! ```
//!
//! With a FILE argument the instance is parsed from Solomon format;
//! otherwise one is generated from `--class`/`--size`/`--seed`.
//!
//! `--metrics-out` writes the run's metrics in Prometheus text exposition
//! (and prints a human-readable summary on stderr); `--events-out` writes
//! the structured JSONL event stream (see the `tsmo-obs` crate). All
//! apply to the TSMO variants; the `hybrid` and `nsga2` baselines are not
//! instrumented.
//!
//! `--profile-out` writes the folded span profile — wall seconds and
//! call counts per search phase — as one JSON document.
//! `--span-events` additionally records span enter/exit markers in the
//! `--events-out` stream (off by default to keep the default stream a
//! byte-stable prefix under truncation); `--timeline-every K` samples
//! the live archive's hypervolume and coverage every `K` evaluations
//! into the event stream as `front_sample` events.
//!
//! `--deadline-ms D` stops the run after `D` milliseconds of wall clock;
//! `--cancel-after-iters K` stops it deterministically after `K`
//! iterations. Both use the same cooperative [`tsmo_core::CancelToken`]
//! the solver service threads into every job: the run ends at an
//! iteration boundary and the best-so-far front is printed as a valid,
//! truncated result (the cause lands on stderr). TSMO variants only —
//! the `hybrid` and `nsga2` baselines reject the flags.
//!
//! `--fault-rate R` (with an optional `--fault-seed S`, default 0) arms
//! deterministic chaos: worker tasks panic or stall and exchange messages
//! drop or lag at the given per-site rate (see the `tsmo-faults` crate),
//! and the self-healing runtime must absorb it. Applies to the `async`
//! and `coll` variants; the others have no fault surface and reject it.
//! Recovery totals (`tsmo_tasks_resent_total` etc.) land in
//! `--metrics-out`.

use moea::{Nsga2, Nsga2Config};
use std::sync::Arc;
use tsmo_core::{CancelToken, HybridTsmo, ParallelVariant, TsmoConfig};
use tsmo_faults::{FaultConfig, FaultHook, FaultPlan};
use tsmo_obs::{MemoryRecorder, Recorder};
use vrptw::generator::{GeneratorConfig, InstanceClass};
use vrptw::{solomon, Instance, Objectives, Solution};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let file = args.first().filter(|a| !a.starts_with("--")).cloned();
    let variant = get("--variant").unwrap_or_else(|| "seq".into());
    let procs: usize = get("--procs").map_or(4, |s| s.parse().expect("--procs"));
    let searchers: usize = get("--searchers").map_or(4, |s| s.parse().expect("--searchers"));
    let evals: u64 = get("--evals").map_or(50_000, |s| s.parse().expect("--evals"));
    let seed: u64 = get("--seed").map_or(0, |s| s.parse().expect("--seed"));
    let fault_seed: u64 = get("--fault-seed").map_or(0, |s| s.parse().expect("--fault-seed"));
    let fault_rate: f64 = get("--fault-rate").map_or(0.0, |s| s.parse().expect("--fault-rate"));
    let deadline_ms: Option<u64> = get("--deadline-ms").map(|s| s.parse().expect("--deadline-ms"));
    let cancel_after_iters: Option<u64> =
        get("--cancel-after-iters").map(|s| s.parse().expect("--cancel-after-iters"));
    if (deadline_ms.is_some() || cancel_after_iters.is_some())
        && matches!(variant.as_str(), "hybrid" | "nsga2")
    {
        panic!("--deadline-ms/--cancel-after-iters apply to the TSMO variants only");
    }
    let cancel = CancelToken::with_limits(
        deadline_ms.map(std::time::Duration::from_millis),
        cancel_after_iters,
    );
    assert!(
        (0.0..=1.0).contains(&fault_rate),
        "--fault-rate must be in [0, 1]"
    );
    let fault_plan: Option<Arc<FaultPlan>> =
        (fault_rate > 0.0).then(|| FaultPlan::shared(FaultConfig::uniform(fault_seed, fault_rate)));
    if fault_plan.is_some() {
        assert!(
            matches!(variant.as_str(), "async" | "coll"),
            "--fault-rate applies to the async and coll variants only"
        );
        // Injected worker panics are expected events, not crashes: keep the
        // default hook from printing a backtrace per fault, but let every
        // other panic through untouched.
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.starts_with("injected fault:"));
            if !injected {
                default_hook(info);
            }
        }));
    }
    let faults: Arc<dyn FaultHook> = fault_plan
        .clone()
        .map_or_else(tsmo_faults::none, |p| p as Arc<dyn FaultHook>);

    let inst = Arc::new(match &file {
        Some(path) => solomon::read_file(path).expect("failed to parse Solomon file"),
        None => {
            let class = match get("--class").as_deref() {
                None | Some("R1") => InstanceClass::R1,
                Some("R2") => InstanceClass::R2,
                Some("C1") => InstanceClass::C1,
                Some("C2") => InstanceClass::C2,
                Some("RC1") => InstanceClass::RC1,
                Some("RC2") => InstanceClass::RC2,
                Some(other) => panic!("unknown class {other:?}"),
            };
            let size: usize = get("--size").map_or(100, |s| s.parse().expect("--size"));
            GeneratorConfig::new(class, size, seed).build()
        }
    });
    eprintln!(
        "instance {}: {} customers, R = {}, capacity = {}",
        inst.name,
        inst.n_customers(),
        inst.max_vehicles(),
        inst.capacity()
    );

    let metrics_out = get("--metrics-out");
    let events_out = get("--events-out");
    let profile_out = get("--profile-out");
    let span_events = args.iter().any(|a| a == "--span-events");
    let timeline_every: Option<u64> =
        get("--timeline-every").map(|s| s.parse().expect("--timeline-every"));
    let memory =
        (metrics_out.is_some() || events_out.is_some() || profile_out.is_some()).then(|| {
            let recorder = MemoryRecorder::new();
            Arc::new(if span_events {
                recorder.with_span_events()
            } else {
                recorder
            })
        });
    let recorder: Arc<dyn Recorder> = memory
        .clone()
        .map_or_else(tsmo_obs::noop, |m| m as Arc<dyn Recorder>);
    if memory.is_some() && matches!(variant.as_str(), "hybrid" | "nsga2") {
        eprintln!("note: the {variant} baseline is not instrumented; telemetry will be empty");
    }

    let cfg = TsmoConfig {
        max_evaluations: evals,
        seed,
        timeline_every,
        ..TsmoConfig::default()
    };
    let front: Vec<(Solution, Objectives)> = match variant.as_str() {
        "seq" => collect(ParallelVariant::Sequential.run_with_cancel(
            &inst,
            &cfg,
            recorder,
            faults,
            cancel.clone(),
        )),
        "sync" => collect(ParallelVariant::Synchronous(procs).run_with_cancel(
            &inst,
            &cfg,
            recorder,
            faults,
            cancel.clone(),
        )),
        "async" => collect(ParallelVariant::Asynchronous(procs).run_with_cancel(
            &inst,
            &cfg,
            recorder,
            faults,
            cancel.clone(),
        )),
        "coll" => collect(ParallelVariant::Collaborative(searchers).run_with_cancel(
            &inst,
            &cfg,
            recorder,
            faults,
            cancel.clone(),
        )),
        "hybrid" => collect(HybridTsmo::new(cfg, searchers, procs).run(&inst)),
        "nsga2" => {
            Nsga2::new(Nsga2Config {
                max_evaluations: evals,
                seed,
                ..Default::default()
            })
            .run(&inst)
            .front
        }
        other => panic!("unknown variant {other:?} (seq|sync|async|coll|hybrid|nsga2)"),
    };

    if let Some(cause) = cancel.cause() {
        eprintln!(
            "run truncated: {} (best-so-far front below)",
            cause.as_str()
        );
    }

    if let Some(plan) = &fault_plan {
        let s = plan.stats();
        eprintln!(
            "chaos: injected {} faults ({} panics, {} stalls, {} late, {} drops, {} delays); \
             the run above survived them",
            s.total(),
            s.task_panics,
            s.task_stalls,
            s.task_lates,
            s.exchange_drops,
            s.exchange_delays
        );
    }

    if let Some(memory) = &memory {
        if let Some(path) = &metrics_out {
            std::fs::write(path, memory.prometheus()).expect("failed to write metrics");
            eprintln!("wrote {path}");
        }
        if let Some(path) = &events_out {
            std::fs::write(path, memory.events_jsonl()).expect("failed to write events");
            eprintln!("wrote {path} ({} events)", memory.event_count());
        }
        if let Some(path) = &profile_out {
            std::fs::write(path, memory.profile_json()).expect("failed to write profile");
            eprintln!("wrote {path}");
        }
        eprint!("{}", memory.summary());
    }

    println!("{:>12} {:>9} {:>11}", "distance", "vehicles", "tardiness");
    let mut rows: Vec<&(Solution, Objectives)> = front.iter().collect();
    rows.sort_by(|a, b| a.1.distance.partial_cmp(&b.1.distance).expect("not NaN"));
    for (_, o) in &rows {
        println!(
            "{:>12.2} {:>9} {:>11.2}",
            o.distance, o.vehicles, o.tardiness
        );
    }

    if let Some(path) = get("--out") {
        let mut text = String::new();
        for (i, (sol, o)) in front.iter().enumerate() {
            text.push_str(&format!(
                "# solution {i}: distance {:.2}, vehicles {}, tardiness {:.2}\n",
                o.distance, o.vehicles, o.tardiness
            ));
            for (ri, route) in sol.routes().iter().enumerate() {
                let stops: Vec<String> = route.iter().map(|c| c.to_string()).collect();
                text.push_str(&format!("route {ri}: 0 {} 0\n", stops.join(" ")));
            }
            text.push('\n');
        }
        std::fs::write(&path, text).expect("failed to write solutions");
        eprintln!("wrote {path}");
    }
    let _ = check_front(&inst, &front);
}

fn collect(out: tsmo_core::TsmoOutcome) -> Vec<(Solution, Objectives)> {
    out.archive
        .into_iter()
        .map(|e| (e.solution, e.objectives))
        .collect()
}

fn check_front(inst: &Instance, front: &[(Solution, Objectives)]) -> usize {
    let mut ok = 0;
    for (sol, _) in front {
        assert!(
            sol.check(inst).is_empty(),
            "solver produced an invalid solution"
        );
        ok += 1;
    }
    ok
}
