//! Regenerates Tables I–IV of the paper.
//!
//! ```text
//! cargo run --release -p bench --bin tables -- [--table N] [--full]
//!     [--runs R] [--evals E] [--size S] [--procs 3,6,12] [--ttest]
//!     [--seed S] [--csv PATH] [--metrics-out PATH] [--events-out PATH]
//! ```
//!
//! Without `--table` all four tables are produced. `--full` switches to the
//! paper's scale (400/600 customers, 100,000 evaluations, 30 runs — hours
//! of runtime); the default is a laptop-scale configuration with the same
//! structure.
//!
//! `--metrics-out` writes Prometheus-format metrics accumulated over every
//! cell of every requested table; `--events-out` writes the combined
//! structured event stream as JSONL (large — prefer single-cell
//! configurations when recording events).

use bench::{render_table, run_table_with, ttest_report, TableOpts, TimingMode};
use std::io::Write;
use std::sync::Arc;
use tsmo_obs::{MemoryRecorder, Recorder};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let has = |flag: &str| args.iter().any(|a| a == flag);

    if has("--help") || has("-h") {
        println!(
            "{}",
            include_str!("tables.rs")
                .lines()
                .take(12)
                .collect::<Vec<_>>()
                .join("\n")
        );
        return;
    }

    let metrics_out = get("--metrics-out");
    let events_out = get("--events-out");
    let memory = (metrics_out.is_some() || events_out.is_some()).then(MemoryRecorder::shared);

    let full = has("--full");
    let tables: Vec<usize> = match get("--table") {
        Some(t) => vec![t.parse().expect("--table takes 1..=4")],
        None => vec![1, 2, 3, 4],
    };

    for table in tables {
        let mut opts = if full {
            TableOpts::full(table)
        } else {
            TableOpts::quick(table)
        };
        if let Some(r) = get("--runs") {
            opts.runs = r.parse().expect("--runs takes a positive integer");
        }
        if let Some(e) = get("--evals") {
            opts.evals = e.parse().expect("--evals takes a positive integer");
        }
        if let Some(s) = get("--size") {
            opts.size = s.parse().expect("--size takes a positive integer");
        }
        if let Some(s) = get("--seed") {
            opts.seed = s.parse().expect("--seed takes a u64");
        }
        if let Some(p) = get("--procs") {
            opts.procs = p
                .split(',')
                .map(|x| x.trim().parse().expect("--procs takes a comma list"))
                .collect();
        }
        if let Some(t) = get("--timing") {
            opts.timing = match t.as_str() {
                "real" => TimingMode::Real,
                "virtual" => TimingMode::Virtual,
                other => panic!("--timing takes real|virtual, got {other:?}"),
            };
        }

        let window = match table {
            1 | 3 => "small time windows (C1, R1)",
            _ => "large time windows (C2, R2)",
        };
        eprintln!(
            "Table {table}: {} customers, {window}, {} runs x {} evals",
            opts.size, opts.runs, opts.evals
        );
        let total_cells =
            (1 + 3 * opts.procs.len()) * opts.classes.len() * opts.instances_per_class * opts.runs;
        let mut done = 0usize;
        let recorder: Arc<dyn Recorder> = memory
            .clone()
            .map_or_else(tsmo_obs::noop, |m| m as Arc<dyn Recorder>);
        let results = run_table_with(&opts, recorder, |label, _, _| {
            done += 1;
            eprint!("\r  [{done}/{total_cells}] {label}                    ");
            let _ = std::io::stderr().flush();
        });
        eprintln!();
        let title = format!(
            "Table {table} — {} city problems, {window} (generated set; {} runs, {} evaluations)",
            opts.size, opts.runs, opts.evals
        );
        let rendered = render_table(&title, &results);
        println!("{rendered}");
        if has("--ttest") {
            println!("{}", ttest_report(&results));
        }
        if let Some(path) = get("--csv") {
            let mut csv = String::from("algorithm,run,distance,vehicles,runtime\n");
            for algo in &results {
                for (run, agg) in algo.per_run.iter().enumerate() {
                    csv.push_str(&format!(
                        "{},{},{:.4},{:.4},{:.4}\n",
                        algo.label, run, agg.distance, agg.vehicles, agg.runtime
                    ));
                }
            }
            let file = format!("{path}.table{table}.csv");
            std::fs::write(&file, csv).expect("failed to write CSV");
            eprintln!("wrote {file}");
        }
    }

    if let Some(memory) = &memory {
        if let Some(path) = &metrics_out {
            std::fs::write(path, memory.prometheus()).expect("failed to write metrics");
            eprintln!("wrote {path}");
        }
        if let Some(path) = &events_out {
            std::fs::write(path, memory.events_jsonl()).expect("failed to write events");
            eprintln!("wrote {path} ({} events)", memory.event_count());
        }
        eprint!("{}", memory.summary());
    }
}
