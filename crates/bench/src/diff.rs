//! The perf-regression observatory: compares a freshly generated
//! `BENCH_*.json` against a committed baseline, metric by metric.
//!
//! Both documents are flattened to dotted numeric paths
//! (`points.1.mesh.seconds`, `win_rates.0.win_rate`, …); each shared
//! path is judged by a direction heuristic — throughputs and quality
//! scores should not drop, latencies and loss counts should not rise —
//! against a relative tolerance band. Paths that moved the *good* way or
//! stayed inside the band pass; informational paths (seeds, sizes,
//! configuration echoes) never fail. The `benchdiff` binary renders the
//! delta table and exits non-zero on any regression, which is what makes
//! the CI bench steps a gate instead of an archive.

use std::fmt::Write as _;
use tsmo_obs::json::{self, Json};

/// Which way a metric is allowed to move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// A drop beyond tolerance is a regression (throughput, quality).
    HigherIsBetter,
    /// A rise beyond tolerance is a regression (latency, losses).
    LowerIsBetter,
    /// Tracked and printed, never a failure (configuration echoes,
    /// seeds, identifiers).
    Informational,
}

/// Classifies a flattened path by its last segment. The heuristic is
/// deliberately name-based: bench writers pick conventional suffixes
/// (`*_per_sec`, `*_ms`, `*_seconds`) and the observatory follows them.
pub fn direction_of(path: &str) -> Direction {
    let leaf = path.rsplit('.').next().unwrap_or(path);
    const HIGHER: [&str; 7] = [
        "evals_per_sec",
        "per_sec",
        "throughput",
        "hypervolume",
        "coverage",
        "win",
        "front",
    ];
    const LOWER: [&str; 8] = [
        "seconds", "_ms", "latency", "p50", "p95", "p99", "dropped", "lost",
    ];
    if HIGHER.iter().any(|m| leaf.contains(m)) {
        return Direction::HigherIsBetter;
    }
    if LOWER.iter().any(|m| leaf.contains(m)) {
        return Direction::LowerIsBetter;
    }
    Direction::Informational
}

/// One compared metric.
#[derive(Debug, Clone)]
pub struct DiffEntry {
    /// Dotted path into both documents.
    pub path: String,
    /// The committed value.
    pub baseline: f64,
    /// The freshly measured value.
    pub fresh: f64,
    /// Relative change in percent, signed (`fresh` vs `baseline`).
    pub delta_pct: f64,
    /// How the path is judged.
    pub direction: Direction,
    /// The tolerance band (percent) the entry was judged against.
    pub tolerance_pct: f64,
    /// Whether the move is a regression.
    pub regressed: bool,
}

/// The observatory's verdict over one baseline/fresh pair.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// Every shared numeric path, in path order.
    pub entries: Vec<DiffEntry>,
    /// Paths the baseline has but the fresh run lost — always a failure:
    /// a silently vanished metric is how regressions hide.
    pub missing_in_fresh: Vec<String>,
    /// Paths only the fresh run has (new metrics; informational).
    pub new_in_fresh: Vec<String>,
}

impl DiffReport {
    /// True when any entry regressed or any baseline metric vanished.
    pub fn regressed(&self) -> bool {
        !self.missing_in_fresh.is_empty() || self.entries.iter().any(|e| e.regressed)
    }

    /// The human-readable delta table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let width = self
            .entries
            .iter()
            .map(|e| e.path.len())
            .max()
            .unwrap_or(4)
            .max(4);
        let _ = writeln!(
            out,
            "{:width$}  {:>14}  {:>14}  {:>9}  {:>6}  verdict",
            "path", "baseline", "fresh", "delta", "band"
        );
        for e in &self.entries {
            let verdict = if e.regressed {
                "REGRESSED"
            } else {
                match e.direction {
                    Direction::Informational => "info",
                    _ => "ok",
                }
            };
            let _ = writeln!(
                out,
                "{:width$}  {:>14.4}  {:>14.4}  {:>+8.2}%  {:>5.0}%  {verdict}",
                e.path, e.baseline, e.fresh, e.delta_pct, e.tolerance_pct
            );
        }
        for path in &self.missing_in_fresh {
            let _ = writeln!(out, "{path:width$}  MISSING from the fresh run: REGRESSED");
        }
        for path in &self.new_in_fresh {
            let _ = writeln!(out, "{path:width$}  new in the fresh run (no baseline)");
        }
        out
    }
}

/// Per-metric tolerance bands: the default plus `(substring, percent)`
/// overrides, last match wins. CI widens timing-dominated paths
/// (`seconds=80`) without loosening deterministic ones.
#[derive(Debug, Clone)]
pub struct Tolerances {
    /// Band applied when no override matches (percent).
    pub default_pct: f64,
    /// `(path substring, band percent)` overrides.
    pub overrides: Vec<(String, f64)>,
    /// Path substrings forced to [`Direction::Informational`] — for
    /// metrics that are quality-tracked but machine-noisy.
    pub informational: Vec<String>,
}

impl Default for Tolerances {
    fn default() -> Self {
        Self {
            default_pct: 10.0,
            overrides: Vec::new(),
            informational: Vec::new(),
        }
    }
}

impl Tolerances {
    fn band_for(&self, path: &str) -> f64 {
        self.overrides
            .iter()
            .rev()
            .find(|(sub, _)| path.contains(sub.as_str()))
            .map(|(_, pct)| *pct)
            .unwrap_or(self.default_pct)
    }

    fn is_informational(&self, path: &str) -> bool {
        self.informational.iter().any(|sub| path.contains(sub))
    }
}

/// Flattens every numeric leaf of `doc` to `(dotted.path, value)`.
/// Booleans count as 0/1 so flags like `merged_non_dominated` are
/// guarded too; strings and nulls are skipped.
pub fn flatten(doc: &Json) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    walk(doc, String::new(), &mut out);
    out
}

fn walk(node: &Json, path: String, out: &mut Vec<(String, f64)>) {
    match node {
        Json::Number(x) => out.push((path, *x)),
        Json::Bool(b) => out.push((path, if *b { 1.0 } else { 0.0 })),
        Json::Array(items) => {
            for (i, item) in items.iter().enumerate() {
                walk(item, join(&path, &i.to_string()), out);
            }
        }
        Json::Object(map) => {
            for (k, v) in map {
                walk(v, join(&path, k), out);
            }
        }
        Json::Null | Json::String(_) => {}
    }
}

fn join(prefix: &str, key: &str) -> String {
    if prefix.is_empty() {
        key.to_string()
    } else {
        format!("{prefix}.{key}")
    }
}

/// Compares two parsed bench documents under the given tolerances.
pub fn diff(baseline: &Json, fresh: &Json, tolerances: &Tolerances) -> DiffReport {
    let base = flatten(baseline);
    let new = flatten(fresh);
    let fresh_map: std::collections::BTreeMap<&str, f64> =
        new.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    let base_keys: std::collections::BTreeSet<&str> =
        base.iter().map(|(k, _)| k.as_str()).collect();

    let mut report = DiffReport::default();
    for (path, baseline_value) in &base {
        let Some(&fresh_value) = fresh_map.get(path.as_str()) else {
            report.missing_in_fresh.push(path.clone());
            continue;
        };
        let direction = if tolerances.is_informational(path) {
            Direction::Informational
        } else {
            direction_of(path)
        };
        let tolerance_pct = tolerances.band_for(path);
        let delta_pct = if *baseline_value != 0.0 {
            100.0 * (fresh_value - baseline_value) / baseline_value.abs()
        } else if fresh_value == 0.0 {
            0.0
        } else {
            100.0 * fresh_value.signum()
        };
        let regressed = match direction {
            Direction::Informational => false,
            Direction::HigherIsBetter => delta_pct < -tolerance_pct,
            Direction::LowerIsBetter => delta_pct > tolerance_pct,
        };
        report.entries.push(DiffEntry {
            path: path.clone(),
            baseline: *baseline_value,
            fresh: fresh_value,
            delta_pct,
            direction,
            tolerance_pct,
            regressed,
        });
    }
    for (path, _) in &new {
        if !base_keys.contains(path.as_str()) {
            report.new_in_fresh.push(path.clone());
        }
    }
    report
}

/// Parses one bench file's text and diffs it against the baseline text.
pub fn diff_texts(
    baseline_text: &str,
    fresh_text: &str,
    tolerances: &Tolerances,
) -> Result<DiffReport, String> {
    let baseline = json::parse(baseline_text).map_err(|e| format!("baseline: {e}"))?;
    let fresh = json::parse(fresh_text).map_err(|e| format!("fresh: {e}"))?;
    Ok(diff(&baseline, &fresh, tolerances))
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASELINE: &str = r#"{"evals_per_sec": 1000000.0, "seconds": 2.0,
        "seed": 1, "points": [{"hypervolume": 500.0}, {"hypervolume": 600.0}]}"#;

    #[test]
    fn identical_documents_pass() {
        let report = diff_texts(BASELINE, BASELINE, &Tolerances::default()).unwrap();
        assert!(!report.regressed(), "{}", report.render());
        assert!(report.missing_in_fresh.is_empty());
        assert!(report.new_in_fresh.is_empty());
    }

    #[test]
    fn a_throughput_drop_beyond_the_band_fails() {
        // 20% below baseline with a 10% band: regression.
        let fresh = BASELINE.replace("1000000.0", "800000.0");
        let report = diff_texts(BASELINE, &fresh, &Tolerances::default()).unwrap();
        assert!(report.regressed());
        let entry = report
            .entries
            .iter()
            .find(|e| e.path == "evals_per_sec")
            .unwrap();
        assert!(entry.regressed);
        assert_eq!(entry.direction, Direction::HigherIsBetter);
        assert!(report.render().contains("REGRESSED"));
    }

    #[test]
    fn a_throughput_gain_and_in_band_noise_pass() {
        // Faster, and quality wiggling inside the band: both fine.
        let fresh = BASELINE
            .replace("1000000.0", "1200000.0")
            .replace("500.0", "480.0");
        let report = diff_texts(BASELINE, &fresh, &Tolerances::default()).unwrap();
        assert!(!report.regressed(), "{}", report.render());
    }

    #[test]
    fn a_latency_rise_beyond_the_band_fails() {
        let fresh = BASELINE.replace("2.0", "3.0");
        let report = diff_texts(BASELINE, &fresh, &Tolerances::default()).unwrap();
        let entry = report.entries.iter().find(|e| e.path == "seconds").unwrap();
        assert_eq!(entry.direction, Direction::LowerIsBetter);
        assert!(entry.regressed);
    }

    #[test]
    fn overrides_widen_and_informational_silences() {
        let fresh = BASELINE.replace("2.0", "3.0").replace("600.0", "100.0");
        // A 100% band on seconds absorbs the rise; hypervolume is
        // forced informational, so its collapse is reported, not fatal.
        let tol = Tolerances {
            default_pct: 10.0,
            overrides: vec![("seconds".to_string(), 100.0)],
            informational: vec!["hypervolume".to_string()],
        };
        let report = diff_texts(BASELINE, &fresh, &tol).unwrap();
        assert!(!report.regressed(), "{}", report.render());
    }

    #[test]
    fn a_vanished_metric_fails() {
        let fresh = r#"{"evals_per_sec": 1000000.0, "seconds": 2.0, "seed": 1}"#;
        let report = diff_texts(BASELINE, fresh, &Tolerances::default()).unwrap();
        assert!(report.regressed());
        assert_eq!(report.missing_in_fresh.len(), 2);
        assert!(report.render().contains("MISSING"));
    }

    #[test]
    fn configuration_echoes_never_fail() {
        let fresh = BASELINE.replace("\"seed\": 1", "\"seed\": 9");
        let report = diff_texts(BASELINE, &fresh, &Tolerances::default()).unwrap();
        let entry = report.entries.iter().find(|e| e.path == "seed").unwrap();
        assert_eq!(entry.direction, Direction::Informational);
        assert!(!report.regressed());
    }

    #[test]
    fn real_bench_shapes_flatten_to_dotted_paths() {
        let doc = json::parse(BASELINE).unwrap();
        let flat = flatten(&doc);
        let paths: Vec<&str> = flat.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            paths,
            [
                "evals_per_sec",
                "points.0.hypervolume",
                "points.1.hypervolume",
                "seconds",
                "seed"
            ]
        );
    }
}
