//! Experiment harness: regenerates the paper's tables and figure.
//!
//! Tables I–IV report, for the sequential TSMO and for each of
//! {synchronous, asynchronous, collaborative} × {3, 6, 12} processors:
//! mean±std of total distance and vehicles (summed over the problems of the
//! set, averaged over repeated runs), mean±std runtime, the pairwise
//! set-coverage metric against all other algorithms, and speedup relative
//! to the sequential algorithm. This crate computes exactly those columns;
//! the `tables` binary prints them, and `EXPERIMENTS.md` records the
//! paper-vs-measured comparison.
//!
//! The problem sets are generated (see `vrptw::generator` and DESIGN.md —
//! the original Gehring–Homberger files are no longer hosted); `--full`
//! switches the harness to the paper's scale (400/600 customers, 100,000
//! evaluations, 30 runs).

use pareto::coverage;
use runstats::{speedup_percent, welch_t_test, Summary};
use std::sync::Arc;
use tsmo_core::{ParallelVariant, TsmoConfig, TsmoOutcome};
use vrptw::generator::{GeneratorConfig, InstanceClass};
use vrptw::Instance;

pub mod diff;

/// Options of one table regeneration.
#[derive(Debug, Clone)]
pub struct TableOpts {
    /// Instance classes of the problem set (e.g. `[C1, R1]` for Table I).
    pub classes: Vec<InstanceClass>,
    /// Customers per instance (400 for Tables I/II, 600 for III/IV).
    pub size: usize,
    /// Instances generated per class.
    pub instances_per_class: usize,
    /// Repeated runs per algorithm per problem (paper: 30).
    pub runs: usize,
    /// Evaluation budget per run (paper: 100,000).
    pub evals: u64,
    /// Processor counts for the parallel variants (paper: 3, 6, 12).
    pub procs: Vec<usize>,
    /// Neighborhood size (paper: 200).
    pub neighborhood: usize,
    /// Base seed; instance generation and run seeds derive from it.
    pub seed: u64,
    /// How parallel runtime is measured (see [`TimingMode`]).
    pub timing: TimingMode,
}

/// How the parallel variants' runtimes are obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimingMode {
    /// OS threads and wall clocks — only meaningful when the host has at
    /// least as many cores as the largest processor count in the lineup.
    Real,
    /// Virtual-time simulation (`deme::virtual_time`): the same algorithms
    /// scheduled on a modeled cluster; the default, and the only mode that
    /// reproduces the paper's speedup columns on small hosts.
    Virtual,
}

impl TableOpts {
    /// Laptop-scale defaults preserving the paper's structure: the same
    /// classes and processor counts, smaller instances and budgets.
    pub fn quick(table: usize) -> Self {
        let (classes, size) = table_problem_set(table, false);
        Self {
            classes,
            size,
            instances_per_class: 1,
            runs: 3,
            evals: 20_000,
            procs: vec![3, 6, 12],
            neighborhood: 200,
            seed: 0xBE11A,
            timing: TimingMode::Virtual,
        }
    }

    /// The paper's settings (expect hours of runtime).
    pub fn full(table: usize) -> Self {
        let (classes, size) = table_problem_set(table, true);
        Self {
            classes,
            size,
            instances_per_class: 5,
            runs: 30,
            evals: 100_000,
            procs: vec![3, 6, 12],
            neighborhood: 200,
            seed: 0xBE11A,
            timing: TimingMode::Virtual,
        }
    }
}

/// The problem set of each paper table: I = 400-city small-TW (C1, R1),
/// II = 400-city large-TW (C2, R2), III = 600-city small-TW, IV = 600-city
/// large-TW. In quick mode the sizes shrink to 150/225 customers.
pub fn table_problem_set(table: usize, full: bool) -> (Vec<InstanceClass>, usize) {
    let classes = match table {
        1 | 3 => vec![InstanceClass::C1, InstanceClass::R1],
        2 | 4 => vec![InstanceClass::C2, InstanceClass::R2],
        _ => panic!("tables are numbered 1..=4"),
    };
    let size = match (table, full) {
        (1 | 2, true) => 400,
        (3 | 4, true) => 600,
        (1 | 2, false) => 150,
        (3 | 4, false) => 225,
        _ => unreachable!(),
    };
    (classes, size)
}

/// Per-run aggregate over the problem set (the paper sums the set).
#[derive(Debug, Clone, Copy)]
pub struct RunAggregate {
    /// Σ over problems of the feasible front's mean distance.
    pub distance: f64,
    /// Σ over problems of the feasible front's mean vehicle count.
    pub vehicles: f64,
    /// Σ over problems of wall-clock runtime (seconds).
    pub runtime: f64,
}

/// All measurements for one algorithm across the table's problem set.
#[derive(Debug, Clone)]
pub struct AlgoResult {
    /// Display label.
    pub label: String,
    /// One aggregate per run index.
    pub per_run: Vec<RunAggregate>,
    /// Feasible fronts: `fronts[problem][run]` as objective vectors.
    pub fronts: Vec<Vec<Vec<[f64; 3]>>>,
}

impl AlgoResult {
    /// Column summaries `(distance, vehicles, runtime)`.
    pub fn summaries(&self) -> (Summary, Summary, Summary) {
        let d: Vec<f64> = self.per_run.iter().map(|r| r.distance).collect();
        let v: Vec<f64> = self.per_run.iter().map(|r| r.vehicles).collect();
        let t: Vec<f64> = self.per_run.iter().map(|r| r.runtime).collect();
        (Summary::of(&d), Summary::of(&v), Summary::of(&t))
    }
}

/// The algorithm lineup of every table: sequential, then
/// {sync, async, coll} for each processor count.
pub fn algorithm_lineup(procs: &[usize]) -> Vec<ParallelVariant> {
    let mut out = vec![ParallelVariant::Sequential];
    for &p in procs {
        out.push(ParallelVariant::Synchronous(p));
        out.push(ParallelVariant::Asynchronous(p));
        out.push(ParallelVariant::Collaborative(p));
    }
    out
}

/// Generates the problem set of a table.
pub fn problem_set(opts: &TableOpts) -> Vec<Arc<Instance>> {
    let mut out = Vec::new();
    for &class in &opts.classes {
        for k in 0..opts.instances_per_class {
            out.push(Arc::new(
                GeneratorConfig::new(class, opts.size, opts.seed ^ (k as u64 + 1)).build(),
            ));
        }
    }
    out
}

/// Extracts the per-problem measurement from one run's outcome: the
/// feasible front's mean distance and vehicle count (0 contribution when
/// the front is empty — matching the paper's exclusion of infeasible
/// solutions) plus the runtime.
fn measure(outcome: &TsmoOutcome) -> (f64, f64, f64) {
    (
        outcome.mean_distance().unwrap_or(0.0),
        outcome.mean_vehicles().unwrap_or(0.0),
        outcome.runtime_seconds,
    )
}

/// Runs the full lineup over the problem set. `progress` is invoked after
/// every `(algorithm, problem, run)` cell for live feedback.
pub fn run_table(opts: &TableOpts, progress: impl FnMut(&str, usize, usize)) -> Vec<AlgoResult> {
    run_table_with(opts, tsmo_obs::noop(), progress)
}

/// [`run_table`] with a telemetry sink shared by every cell: counters
/// (iterations, evaluations, restarts, tabu hits, exchanges) accumulate
/// over the whole table, which is what the `tables` binary's
/// `--metrics-out` flag exposes.
pub fn run_table_with(
    opts: &TableOpts,
    recorder: Arc<dyn tsmo_obs::Recorder>,
    mut progress: impl FnMut(&str, usize, usize),
) -> Vec<AlgoResult> {
    let problems = problem_set(opts);
    let lineup = algorithm_lineup(&opts.procs);
    let mut results = Vec::with_capacity(lineup.len());
    for variant in lineup {
        let label = variant.label();
        let mut per_run = vec![
            RunAggregate {
                distance: 0.0,
                vehicles: 0.0,
                runtime: 0.0
            };
            opts.runs
        ];
        let mut fronts: Vec<Vec<Vec<[f64; 3]>>> = vec![vec![Vec::new(); opts.runs]; problems.len()];
        for (pi, inst) in problems.iter().enumerate() {
            for run in 0..opts.runs {
                let cfg = TsmoConfig {
                    max_evaluations: opts.evals,
                    neighborhood_size: opts.neighborhood,
                    seed: opts.seed
                        ^ (run as u64).wrapping_mul(0x9E3779B97F4A7C15)
                        ^ (pi as u64) << 40,
                    ..TsmoConfig::default()
                };
                let out = match opts.timing {
                    TimingMode::Real => variant.run_with(inst, &cfg, Arc::clone(&recorder)),
                    TimingMode::Virtual => {
                        variant.run_simulated_with(inst, &cfg, Arc::clone(&recorder))
                    }
                };
                let (d, v, t) = measure(&out);
                per_run[run].distance += d;
                per_run[run].vehicles += v;
                per_run[run].runtime += t;
                fronts[pi][run] = out.feasible_vectors();
                progress(&label, pi, run);
            }
        }
        results.push(AlgoResult {
            label,
            per_run,
            fronts,
        });
    }
    results
}

/// The paper's coverage column for algorithm `a`: the average of
/// `C(front_a, front_b)` over every other algorithm `b`, every problem, and
/// every ordered run pair — and the reverse direction. Returned as
/// `(covers_others, covered_by_others)` in percent.
pub fn coverage_pair(results: &[AlgoResult], a: usize) -> (f64, f64) {
    let mut fwd = Vec::new();
    let mut bwd = Vec::new();
    for (b, other) in results.iter().enumerate() {
        if b == a {
            continue;
        }
        for (pi, mine_runs) in results[a].fronts.iter().enumerate() {
            for mine in mine_runs {
                for theirs in &other.fronts[pi] {
                    fwd.push(coverage(mine, theirs));
                    bwd.push(coverage(theirs, mine));
                }
            }
        }
    }
    let avg = |v: &[f64]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    (avg(&fwd) * 100.0, avg(&bwd) * 100.0)
}

/// Renders the table in the paper's layout.
pub fn render_table(title: &str, results: &[AlgoResult]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    out.push_str(&format!(
        "{:<22} {:>22} {:>16} {:>18} {:>20} {:>10}\n",
        "Algorithm", "distance", "vehicles", "runtime [s]", "coverage", "speedup"
    ));
    let seq_runtime = results
        .first()
        .map(|r| r.summaries().2.mean)
        .expect("lineup starts with the sequential algorithm");
    for (i, algo) in results.iter().enumerate() {
        let (d, v, t) = algo.summaries();
        let (fwd, bwd) = coverage_pair(results, i);
        let speedup = if i == 0 {
            String::new()
        } else {
            format!("{:+.2}%", speedup_percent(seq_runtime, t.mean))
        };
        out.push_str(&format!(
            "{:<22} {:>22} {:>16} {:>18} {:>9.2}% <> {:>6.2}% {:>10}\n",
            algo.label,
            d.cell(),
            v.cell(),
            t.cell(),
            fwd,
            bwd,
            speedup
        ));
    }
    out
}

/// The paper's significance analysis: collaborative vs. every other
/// algorithm, and synchronous vs. sequential, as Welch t-tests on the
/// per-run distance aggregates.
pub fn ttest_report(results: &[AlgoResult]) -> String {
    let mut out = String::from("Pairwise Welch t-tests on per-run total distance:\n");
    let dist = |r: &AlgoResult| -> Vec<f64> { r.per_run.iter().map(|x| x.distance).collect() };
    for a in results {
        for b in results {
            let is_coll_pair = a.label.contains("coll") && !b.label.contains("coll");
            let is_sync_seq = a.label.contains("sync") && b.label.starts_with("Sequential");
            if is_coll_pair || is_sync_seq {
                let r = welch_t_test(&dist(a), &dist(b));
                out.push_str(&format!(
                    "  {:<22} vs {:<22} p = {:.4}{}\n",
                    a.label,
                    b.label,
                    r.p_value,
                    if r.significant(0.05) {
                        "  (significant)"
                    } else {
                        ""
                    }
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts() -> TableOpts {
        TableOpts {
            classes: vec![InstanceClass::R2],
            size: 25,
            instances_per_class: 1,
            runs: 2,
            evals: 800,
            procs: vec![2],
            neighborhood: 40,
            seed: 3,
            timing: TimingMode::Virtual,
        }
    }

    #[test]
    fn lineup_matches_paper_structure() {
        let lineup = algorithm_lineup(&[3, 6, 12]);
        assert_eq!(lineup.len(), 10); // sequential + 3 variants × 3 proc counts
        assert_eq!(lineup[0], ParallelVariant::Sequential);
        assert_eq!(lineup[1], ParallelVariant::Synchronous(3));
        assert_eq!(lineup[9], ParallelVariant::Collaborative(12));
    }

    #[test]
    fn table_problem_sets_match_paper() {
        assert_eq!(
            table_problem_set(1, true),
            (vec![InstanceClass::C1, InstanceClass::R1], 400)
        );
        assert_eq!(
            table_problem_set(2, true),
            (vec![InstanceClass::C2, InstanceClass::R2], 400)
        );
        assert_eq!(
            table_problem_set(3, true),
            (vec![InstanceClass::C1, InstanceClass::R1], 600)
        );
        assert_eq!(
            table_problem_set(4, true),
            (vec![InstanceClass::C2, InstanceClass::R2], 600)
        );
    }

    #[test]
    #[should_panic]
    fn table_numbers_are_validated() {
        table_problem_set(5, true);
    }

    #[test]
    fn run_table_produces_complete_results() {
        let opts = tiny_opts();
        let mut cells = 0;
        let results = run_table(&opts, |_, _, _| cells += 1);
        // 1 sequential + 3 parallel variants at 1 proc count = 4 algorithms.
        assert_eq!(results.len(), 4);
        assert_eq!(cells, 4 * 2);
        for r in &results {
            assert_eq!(r.per_run.len(), 2);
            assert!(r.per_run.iter().all(|a| a.runtime > 0.0));
        }
    }

    #[test]
    fn rendering_includes_all_columns() {
        let results = run_table(&tiny_opts(), |_, _, _| {});
        let table = render_table("Test table", &results);
        assert!(table.contains("Sequential TSMO"));
        assert!(table.contains("TSMO coll. (2)"));
        assert!(table.contains("<>"));
        assert!(table.contains('%'));
        let report = ttest_report(&results);
        assert!(report.contains("p = "));
    }

    #[test]
    fn coverage_pairs_are_percentages() {
        let results = run_table(&tiny_opts(), |_, _, _| {});
        for i in 0..results.len() {
            let (f, b) = coverage_pair(&results, i);
            assert!((0.0..=100.0).contains(&f));
            assert!((0.0..=100.0).contains(&b));
        }
    }
}
