//! The observatory gate, end to end: the real `benchdiff` binary must
//! pass an unchanged bench file, fail (exit 1) on a synthetically
//! regressed one, and fail when a baseline metric vanishes.

use std::path::PathBuf;
use std::process::Command;

fn write_temp(name: &str, text: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("benchdiff_{name}_{}", std::process::id()));
    std::fs::write(&path, text).expect("write temp bench file");
    path
}

fn run(args: &[&str]) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_benchdiff"))
        .args(args)
        .output()
        .expect("spawn benchdiff");
    (
        out.status.code().expect("exit code"),
        String::from_utf8_lossy(&out.stdout).to_string(),
        String::from_utf8_lossy(&out.stderr).to_string(),
    )
}

const BASELINE: &str = r#"{"evals_per_sec": 1500000.0, "raw": {"seconds": 0.5},
    "points": [{"hypervolume": 96049.25, "seconds": 2.7}]}"#;

#[test]
fn an_unchanged_bench_file_passes_the_gate() {
    let baseline = write_temp("pass_base", BASELINE);
    let fresh = write_temp("pass_fresh", BASELINE);
    let (code, stdout, _) = run(&[
        "--baseline",
        baseline.to_str().unwrap(),
        "--fresh",
        fresh.to_str().unwrap(),
    ]);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("no regression"), "{stdout}");
}

#[test]
fn a_synthetically_regressed_bench_file_fails_the_gate() {
    // Throughput down 30% against a 10% band.
    let baseline = write_temp("fail_base", BASELINE);
    let fresh = write_temp("fail_fresh", &BASELINE.replace("1500000.0", "1050000.0"));
    let (code, stdout, stderr) = run(&[
        "--baseline",
        baseline.to_str().unwrap(),
        "--fresh",
        fresh.to_str().unwrap(),
        "--tolerance",
        "10",
    ]);
    assert_eq!(code, 1, "{stdout}{stderr}");
    assert!(stdout.contains("REGRESSED"), "{stdout}");
    assert!(stderr.contains("regression detected"), "{stderr}");
}

#[test]
fn wide_bands_absorb_the_same_move_and_vanished_metrics_still_fail() {
    let baseline = write_temp("band_base", BASELINE);
    let fresh = write_temp("band_fresh", &BASELINE.replace("1500000.0", "1050000.0"));
    let (code, stdout, _) = run(&[
        "--baseline",
        baseline.to_str().unwrap(),
        "--fresh",
        fresh.to_str().unwrap(),
        "--tolerance-for",
        "evals_per_sec=50",
    ]);
    assert_eq!(code, 0, "{stdout}");

    // Dropping a metric entirely is never absorbable.
    let gutted = write_temp(
        "band_gutted",
        r#"{"evals_per_sec": 1500000.0, "raw": {"seconds": 0.5}}"#,
    );
    let (code, stdout, _) = run(&[
        "--baseline",
        baseline.to_str().unwrap(),
        "--fresh",
        gutted.to_str().unwrap(),
        "--tolerance",
        "99",
    ]);
    assert_eq!(code, 1, "{stdout}");
    assert!(stdout.contains("MISSING"), "{stdout}");
}
