//! Measured comparison for EXPERIMENTS.md: a 3-node distributed mesh
//! (2 searchers per node, real TCP on localhost) against single-process
//! collaborative multisearch with the same 6 searchers and the same
//! per-searcher evaluation budget.
//!
//! ```text
//! cargo run --release -p tsmo-cluster --example mesh_vs_single -- \
//!     [INSTANCE.txt] [--evals E] [--seed S]
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};
use tsmo_cluster::{run_mesh, MeshJob, NodeConfig, Noded};
use tsmo_core::{FrontEntry, ParallelVariant, TsmoConfig};

fn hv(front: &[FrontEntry], reference: [f64; 3]) -> f64 {
    let points: Vec<[f64; 3]> = front.iter().map(|e| e.objectives.to_vector()).collect();
    pareto::hypervolume_3d(&points, reference)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let path = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "data/r1-25.txt".to_string());
    let evals: u64 = get("--evals").map_or(50_000, |s| s.parse().expect("--evals"));
    let seed: u64 = get("--seed").map_or(1, |s| s.parse().expect("--seed"));
    let text = std::fs::read_to_string(&path).expect("read instance");
    let inst = Arc::new(vrptw::solomon::parse(&text).expect("parse instance"));
    let cfg = TsmoConfig {
        max_evaluations: evals,
        stagnation_limit: 25,
        ..TsmoConfig::default()
    }
    .with_seed(seed);

    // Single process: 6 collaborative searchers in one address space.
    let started = Instant::now();
    let single = ParallelVariant::Collaborative(6).run(&inst, &cfg);
    let single_secs = started.elapsed().as_secs_f64();

    // Distributed: the same 6 searchers as 3 nodes x 2, exchanging over
    // real TCP, fronts merged node-by-node then globally.
    let nodes: Vec<Noded> = (0..3)
        .map(|_| Noded::start(NodeConfig::default()).expect("bind node"))
        .collect();
    let peers = nodes.iter().map(|n| n.local_addr().to_string()).collect();
    let job = MeshJob {
        instance_text: text,
        node_index: 0,
        peers,
        searchers_per_node: 2,
        seed,
        max_evaluations: evals,
        neighborhood_size: cfg.neighborhood_size,
        stagnation_limit: cfg.stagnation_limit,
        fault_seed: 0,
        fault_rate: 0.0,
        trace_id: 0,
    };
    let started = Instant::now();
    let mesh = run_mesh(&job, Duration::from_secs(5), Duration::from_secs(600)).expect("mesh run");
    let mesh_secs = started.elapsed().as_secs_f64();
    for node in nodes {
        node.halt();
    }

    // One shared reference point so the hypervolumes are comparable.
    let mut reference = [0.0f64; 3];
    for entry in single.archive.iter().chain(mesh.front.iter()) {
        let v = entry.objectives.to_vector();
        for (r, x) in reference.iter_mut().zip(v) {
            *r = r.max(x * 1.05 + 1.0);
        }
    }
    let single_points: Vec<[f64; 3]> = single
        .archive
        .iter()
        .map(|e| e.objectives.to_vector())
        .collect();
    let mesh_points: Vec<[f64; 3]> = mesh
        .front
        .iter()
        .map(|e| e.objectives.to_vector())
        .collect();

    println!(
        "reference point: [{:.1}, {:.1}, {:.1}]",
        reference[0], reference[1], reference[2]
    );
    println!(
        "single  (1 process, 6 searchers): front={:2}  evals={}  hv={:.4e}  C(single,mesh)={:.2}  {:.1}s",
        single.archive.len(),
        single.evaluations,
        hv(&single.archive, reference),
        pareto::coverage(&single_points, &mesh_points),
        single_secs
    );
    println!(
        "mesh    (3 nodes x 2 searchers):  front={:2}  evals={}  hv={:.4e}  C(mesh,single)={:.2}  {:.1}s",
        mesh.front.len(),
        mesh.evaluations,
        hv(&mesh.front, reference),
        pareto::coverage(&mesh_points, &single_points),
        mesh_secs
    );
}
