//! Measured scaling curve for EXPERIMENTS.md: distributed meshes of
//! 1..=N nodes (2 searchers per node, real TCP on localhost) against
//! single-process collaborative multisearch with the same total searcher
//! count and the same per-searcher evaluation budget. Each point is
//! printed and the whole curve is written to `BENCH_mesh.json`.
//!
//! ```text
//! cargo run --release -p tsmo-cluster --example mesh_vs_single -- \
//!     [INSTANCE.txt] [--evals E] [--seed S] [--max-nodes N] [--out FILE]
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};
use tsmo_cluster::{run_mesh, MeshJob, NodeConfig, Noded};
use tsmo_core::{FrontEntry, ParallelVariant, TsmoConfig};

fn hv(front: &[FrontEntry], reference: [f64; 3]) -> f64 {
    let points: Vec<[f64; 3]> = front.iter().map(|e| e.objectives.to_vector()).collect();
    pareto::hypervolume_3d(&points, reference)
}

struct Point {
    nodes: usize,
    searchers: usize,
    single_front: Vec<FrontEntry>,
    single_evals: u64,
    single_secs: f64,
    mesh_front: Vec<FrontEntry>,
    mesh_evals: u64,
    mesh_secs: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let path = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "data/r1-25.txt".to_string());
    let evals: u64 = get("--evals").map_or(50_000, |s| s.parse().expect("--evals"));
    let seed: u64 = get("--seed").map_or(1, |s| s.parse().expect("--seed"));
    let max_nodes: usize = get("--max-nodes").map_or(4, |s| s.parse().expect("--max-nodes"));
    let out_path = get("--out").unwrap_or_else(|| "BENCH_mesh.json".to_string());
    let text = std::fs::read_to_string(&path).expect("read instance");
    let inst = Arc::new(vrptw::solomon::parse(&text).expect("parse instance"));
    let cfg = TsmoConfig {
        max_evaluations: evals,
        stagnation_limit: 25,
        ..TsmoConfig::default()
    }
    .with_seed(seed);

    let mut points = Vec::new();
    for nodes in 1..=max_nodes {
        let searchers = nodes * 2;

        // Single process: the same searcher count in one address space.
        let started = Instant::now();
        let single = ParallelVariant::Collaborative(searchers).run(&inst, &cfg);
        let single_secs = started.elapsed().as_secs_f64();

        // Distributed: `nodes` daemons x 2 searchers, exchanging over real
        // TCP, ring-replicating once a second, fronts merged node-by-node
        // then globally.
        let daemons: Vec<Noded> = (0..nodes)
            .map(|_| Noded::start(NodeConfig::default()).expect("bind node"))
            .collect();
        let peers = daemons.iter().map(|n| n.local_addr().to_string()).collect();
        let job = MeshJob {
            instance_text: text.clone(),
            node_index: 0,
            peers,
            searchers_per_node: 2,
            seed,
            max_evaluations: evals,
            neighborhood_size: cfg.neighborhood_size,
            stagnation_limit: cfg.stagnation_limit,
            replication_ms: 1_000,
            ..MeshJob::default()
        };
        let started = Instant::now();
        let mesh =
            run_mesh(&job, Duration::from_secs(5), Duration::from_secs(600)).expect("mesh run");
        let mesh_secs = started.elapsed().as_secs_f64();
        for node in daemons {
            node.halt();
        }

        points.push(Point {
            nodes,
            searchers,
            single_front: single.archive.clone(),
            single_evals: single.evaluations,
            single_secs,
            mesh_front: mesh.front,
            mesh_evals: mesh.evaluations,
            mesh_secs,
        });
    }

    // One shared reference point across every front, so the hypervolumes
    // are comparable along the whole curve.
    let mut reference = [0.0f64; 3];
    for entry in points
        .iter()
        .flat_map(|p| p.single_front.iter().chain(p.mesh_front.iter()))
    {
        let v = entry.objectives.to_vector();
        for (r, x) in reference.iter_mut().zip(v) {
            *r = r.max(x * 1.05 + 1.0);
        }
    }
    println!(
        "reference point: [{:.1}, {:.1}, {:.1}]",
        reference[0], reference[1], reference[2]
    );

    let vectors = |front: &[FrontEntry]| -> Vec<[f64; 3]> {
        front.iter().map(|e| e.objectives.to_vector()).collect()
    };
    let mut rows = Vec::new();
    for p in &points {
        let sv = vectors(&p.single_front);
        let mv = vectors(&p.mesh_front);
        let single_hv = hv(&p.single_front, reference);
        let mesh_hv = hv(&p.mesh_front, reference);
        let c_sm = pareto::coverage(&sv, &mv);
        let c_ms = pareto::coverage(&mv, &sv);
        println!(
            "{} node(s), {} searchers: single hv={:.4e} ({:.1}s)  mesh hv={:.4e} ({:.1}s)  C(single,mesh)={:.2} C(mesh,single)={:.2}",
            p.nodes, p.searchers, single_hv, p.single_secs, mesh_hv, p.mesh_secs, c_sm, c_ms
        );
        rows.push(format!(
            concat!(
                "{{\"nodes\":{},\"searchers\":{},",
                "\"single\":{{\"front\":{},\"evaluations\":{},\"hypervolume\":{:.6},\"seconds\":{:.3}}},",
                "\"mesh\":{{\"front\":{},\"evaluations\":{},\"hypervolume\":{:.6},\"seconds\":{:.3}}},",
                "\"coverage_single_over_mesh\":{:.4},\"coverage_mesh_over_single\":{:.4}}}"
            ),
            p.nodes,
            p.searchers,
            p.single_front.len(),
            p.single_evals,
            single_hv,
            p.single_secs,
            p.mesh_front.len(),
            p.mesh_evals,
            mesh_hv,
            p.mesh_secs,
            c_sm,
            c_ms
        ));
    }

    let json = format!(
        concat!(
            "{{\"instance\":{:?},\"per_searcher_evaluations\":{},\"seed\":{},",
            "\"reference\":[{:.3},{:.3},{:.3}],\"replication_ms\":1000,\"points\":[\n  {}\n]}}\n"
        ),
        path,
        evals,
        seed,
        reference[0],
        reference[1],
        reference[2],
        rows.join(",\n  ")
    );
    std::fs::write(&out_path, json).expect("write curve");
    println!("wrote {out_path}");
}
