//! `clusterctl` — bootstrap a mesh, run a distributed search, merge fronts.
//!
//! ```text
//! # distributed, against running noded daemons:
//! clusterctl INSTANCE.txt --peers 127.0.0.1:4001,127.0.0.1:4002,127.0.0.1:4003 \
//!     [--searchers 2] [--evals 20000] [--neighborhood 50] [--stagnation 100] \
//!     [--seed 1] [--fault-rate 0] [--fault-seed 7] [--connect-timeout-ms 2000] \
//!     [--wait-ms 300000] [--require-exchanges] [--shutdown]
//!
//! # deterministic single-process loopback (record, then verifying replay):
//! clusterctl INSTANCE.txt --virtual-net 3 [--searchers 2] [...]
//!
//! # assemble one causally-ordered trace from the nodes' last mesh job:
//! clusterctl trace-merge --peers 127.0.0.1:4001,127.0.0.1:4002,127.0.0.1:4003 \
//!     [--out trace.jsonl] [--connect-timeout-ms 2000]
//! ```
//!
//! Exits non-zero when the merged front is empty or not mutually
//! non-dominated, when `--require-exchanges` finds a node with a zero
//! `tsmo_exchanges_received_total`, when a `--virtual-net` replay
//! diverges from its recording, or when `trace-merge` finds the nodes
//! disagreeing on the run's trace id — so CI can assert the distributed
//! semantics by running this binary alone.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;
use tsmo_cluster::mesh::{self, prometheus_counter};
use tsmo_cluster::{
    front_fingerprint, replay_elastic, replay_virtual, run_elastic, run_virtual, ElasticMeshConfig,
    MeshJob, VirtualMeshConfig,
};
use tsmo_core::{FrontEntry, TsmoConfig};
use tsmo_faults::{FaultConfig, FaultHook, FaultPlan};
use tsmo_obs::metrics::names;
use tsmo_obs::{parse_events_jsonl, MemoryRecorder, Recorder, SearchEvent, TimedEvent};

fn usage() -> ExitCode {
    eprintln!(
        "usage: clusterctl INSTANCE.txt (--peers A,B,... | --virtual-net N) \
         [--searchers S] [--evals E] [--neighborhood H] [--stagnation L] [--seed S] \
         [--fault-rate R] [--fault-seed S] [--connect-timeout-ms MS] [--wait-ms MS] \
         [--require-exchanges] [--shutdown]\n\
         \x20      virtual-net only: [--churn kill:2@20,join:2@42] [--replication-every N] \
         [--events-out FILE] [--require-recovered]\n\
         \x20      clusterctl trace-merge --peers A,B,... [--out FILE] [--allow-partial] \
         [--connect-timeout-ms MS]\n\
         \x20      clusterctl metrics-merge --peers A,B,... [--out FILE] [--allow-partial] \
         [--connect-timeout-ms MS]\n\
         \x20      clusterctl members --peer ADDR\n\
         \x20      clusterctl join --peer COORD --addr NEW_NODE\n\
         \x20      clusterctl leave --peer COORD --node K"
    );
    ExitCode::FAILURE
}

/// Membership operations against a running mesh: query a node's view,
/// admit a new node via the coordinator, or retire a slot. `join` prints
/// the assigned slot and the warm-front size so an operator (or script)
/// can dispatch the job to the joiner with `node_index = slot`.
fn membership_cmd(cmd: &str, args: &[String]) -> ExitCode {
    let get = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let Some(peer) = get("--peer") else {
        return usage();
    };
    let timeout = Duration::from_millis(
        get("--connect-timeout-ms")
            .and_then(|v| v.parse().ok())
            .unwrap_or(2_000),
    );
    let client = mesh::MeshClient::new(peer.clone(), timeout);
    let outcome = match cmd {
        "members" => client.members().map(|(epoch, members)| {
            println!("epoch {epoch}");
            for (slot, m) in members.iter().enumerate() {
                let state = if m.live { "live" } else { "dead" };
                println!("  slot {slot}: {} ({state})", m.addr);
            }
        }),
        "join" => {
            let Some(addr) = get("--addr") else {
                return usage();
            };
            client.join(&addr).map(|(epoch, slot, members, warm)| {
                println!(
                    "joined: slot {slot} at epoch {epoch}, {} member(s), \
                     {} warm-start entr(ies)",
                    members.len(),
                    warm.len()
                );
            })
        }
        "leave" => {
            let Some(node) = get("--node").and_then(|v| v.parse::<usize>().ok()) else {
                return usage();
            };
            client
                .leave(node)
                .map(|epoch| println!("left: slot {node}, epoch now {epoch}"))
        }
        _ => return usage(),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("clusterctl: {cmd} against {peer} failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Fetches every node's metrics registry in mergeable JSON form, stamps
/// each sample with a `node="k"` label, folds them into one federated
/// registry (counters sum, gauges keep the maximum, histogram buckets
/// add), adds a `tsmo_node_up{node="k"}` liveness gauge per peer, and
/// renders the result as a single Prometheus exposition.
fn metrics_merge(args: &[String]) -> ExitCode {
    let get = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let Some(peers) = get("--peers") else {
        return usage();
    };
    let peers: Vec<String> = peers
        .split(',')
        .map(str::trim)
        .filter(|p| !p.is_empty())
        .map(str::to_string)
        .collect();
    let timeout_ms: u64 = match get("--connect-timeout-ms").map(|v| v.parse()) {
        Some(Ok(n)) => n,
        None => 2_000,
        Some(Err(_)) => {
            eprintln!("clusterctl: --connect-timeout-ms expects an integer");
            return ExitCode::FAILURE;
        }
    };
    let timeout = Duration::from_millis(timeout_ms);
    let allow_partial = args.iter().any(|a| a == "--allow-partial");
    let mut federated = tsmo_obs::MetricsRegistry::new();
    let mut reached = 0usize;
    for (k, peer) in peers.iter().enumerate() {
        let node = k.to_string();
        match mesh::MeshClient::new(peer.clone(), timeout).metrics_registry() {
            Ok(registry) => {
                federated.merge(&registry.with_label("node", &node));
                federated.gauge_set(&names::node_up(&node), 1.0);
                reached += 1;
            }
            Err(e) if allow_partial => {
                eprintln!("clusterctl: node {k} ({peer}) unreachable, marked down: {e}");
                federated.gauge_set(&names::node_up(&node), 0.0);
            }
            Err(e) => {
                eprintln!("clusterctl: node {k} ({peer}): metrics fetch failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if reached == 0 {
        eprintln!("clusterctl: no node contributed metrics");
        return ExitCode::FAILURE;
    }
    let exposition = federated.to_prometheus();
    println!("metrics-merge: {reached}/{} node(s) federated", peers.len());
    match get("--out") {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &exposition) {
                eprintln!("clusterctl: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("metrics-merge: wrote {path}");
            ExitCode::SUCCESS
        }
        None => {
            print!("{exposition}");
            ExitCode::SUCCESS
        }
    }
}

/// Fetches every node's recorded trace for its last mesh job, verifies
/// the nodes agree on one shared non-zero trace id, and merges the
/// per-node streams into one causally ordered trace: a stable merge by
/// (local sequence, node index) — the local sequence is the causal
/// order within a node, the node index breaks cross-node ties
/// deterministically — with span ids offset per node so they stay
/// unique, and the global sequence re-stamped.
fn trace_merge(args: &[String]) -> ExitCode {
    let get = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let Some(peers) = get("--peers") else {
        return usage();
    };
    let peers: Vec<String> = peers
        .split(',')
        .map(str::trim)
        .filter(|p| !p.is_empty())
        .map(str::to_string)
        .collect();
    let timeout_ms: u64 = match get("--connect-timeout-ms").map(|v| v.parse()) {
        Some(Ok(n)) => n,
        None => 2_000,
        Some(Err(_)) => {
            eprintln!("clusterctl: --connect-timeout-ms expects an integer");
            return ExitCode::FAILURE;
        }
    };
    let timeout = Duration::from_millis(timeout_ms);
    // With `--allow-partial`, an unreachable or trace-less node is
    // reported and skipped instead of failing the whole merge — the trace
    // of a churned mesh is assembled from whoever survived.
    let allow_partial = args.iter().any(|a| a == "--allow-partial");
    let mut per_node: Vec<(usize, Vec<TimedEvent>)> = Vec::with_capacity(peers.len());
    let mut skipped: Vec<usize> = Vec::new();
    for (k, peer) in peers.iter().enumerate() {
        let jsonl = match mesh::MeshClient::new(peer.clone(), timeout).trace() {
            Ok(jsonl) => jsonl,
            Err(e) if allow_partial => {
                eprintln!("clusterctl: node {k} ({peer}) unreachable, skipped: {e}");
                skipped.push(k);
                continue;
            }
            Err(e) => {
                eprintln!("clusterctl: node {k} ({peer}): trace fetch failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        let events = match parse_events_jsonl(&jsonl) {
            Ok(events) => events,
            Err(e) => {
                eprintln!("clusterctl: node {k} ({peer}): bad trace: {e}");
                return ExitCode::FAILURE;
            }
        };
        if events.is_empty() {
            if allow_partial {
                eprintln!("clusterctl: node {k} ({peer}) has no recorded trace, skipped");
                skipped.push(k);
                continue;
            }
            eprintln!("clusterctl: node {k} ({peer}) has no recorded trace");
            return ExitCode::FAILURE;
        }
        per_node.push((k, events));
    }
    if per_node.is_empty() {
        eprintln!("clusterctl: no node contributed a trace");
        return ExitCode::FAILURE;
    }
    let mut ids = std::collections::BTreeSet::new();
    for (_, events) in &per_node {
        for ev in events {
            match &ev.event {
                SearchEvent::SpanEnter { trace, .. } | SearchEvent::SpanExit { trace, .. } => {
                    ids.insert(*trace);
                }
                _ => {}
            }
        }
    }
    if ids.len() != 1 || ids.contains(&0) {
        eprintln!(
            "clusterctl: traces disagree on the trace id: {ids:?} \
             (expected one shared non-zero id)"
        );
        return ExitCode::FAILURE;
    }
    let trace_id = ids.into_iter().next().unwrap_or(0);
    // Span ids are per-recorder counters, so two nodes both hand out
    // 1, 2, 3, ... Offset node k's ids past node k-1's maximum so the
    // merged trace keeps every span distinct (parent 0 = root stays 0).
    let mut offset = 0u64;
    for (_, events) in &mut per_node {
        let mut max_span = 0u64;
        for ev in events.iter_mut() {
            match &mut ev.event {
                SearchEvent::SpanEnter { span, parent, .. } => {
                    max_span = max_span.max(*span);
                    *span += offset;
                    if *parent != 0 {
                        *parent += offset;
                    }
                }
                SearchEvent::SpanExit { span, .. } => {
                    max_span = max_span.max(*span);
                    *span += offset;
                }
                _ => {}
            }
        }
        offset += max_span;
    }
    let mut merged: Vec<(u64, usize, TimedEvent)> = Vec::new();
    let contributors = per_node.len();
    for (k, events) in per_node {
        for ev in events {
            merged.push((ev.seq, k, ev));
        }
    }
    merged.sort_by_key(|entry| (entry.0, entry.1));
    let total = merged.len();
    let mut out = String::new();
    for (global, (_, _, mut ev)) in merged.into_iter().enumerate() {
        ev.seq = global as u64;
        out.push_str(&ev.to_json_line());
        out.push('\n');
    }
    println!("trace-merge: {total} events from {contributors} node(s), trace id {trace_id:#x}");
    if !skipped.is_empty() {
        let listed: Vec<String> = skipped
            .iter()
            .map(|k| format!("{k} ({})", peers[*k]))
            .collect();
        println!("trace-merge: skipped node(s): {}", listed.join(", "));
    }
    match get("--out") {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &out) {
                eprintln!("clusterctl: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("trace-merge: wrote {path}");
            ExitCode::SUCCESS
        }
        None => {
            print!("{out}");
            ExitCode::SUCCESS
        }
    }
}

fn print_front(front: &[FrontEntry]) {
    for entry in front {
        let [d, v, t] = entry.objectives.to_vector();
        println!("  distance={d:.2} vehicles={v} tardiness={t:.2}");
    }
}

fn check_front(front: &[FrontEntry]) -> bool {
    if front.is_empty() {
        eprintln!("clusterctl: merged front is empty");
        return false;
    }
    let mutually = pareto::non_dominated_indices(front).len() == front.len();
    println!(
        "merged front: {} entries (mutually non-dominated: {mutually})",
        front.len()
    );
    if !mutually {
        eprintln!("clusterctl: merged front contains dominated entries");
    }
    mutually
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        return usage();
    }
    if args[0] == "trace-merge" {
        return trace_merge(&args[1..]);
    }
    if args[0] == "metrics-merge" {
        return metrics_merge(&args[1..]);
    }
    if matches!(args[0].as_str(), "members" | "join" | "leave") {
        return membership_cmd(&args[0].clone(), &args[1..]);
    }
    let get = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let has = |flag: &str| args.iter().any(|a| a == flag);
    let num = |flag: &str, default: u64| -> Result<u64, ExitCode> {
        match get(flag).map(|v| v.parse()) {
            Some(Ok(n)) => Ok(n),
            None => Ok(default),
            Some(Err(_)) => {
                eprintln!("clusterctl: {flag} expects an integer");
                Err(ExitCode::FAILURE)
            }
        }
    };
    // The instance path is the first argument that is neither a flag nor
    // the value of the preceding value-taking flag.
    let instance_path = {
        let mut found = None;
        let mut skip = false;
        for arg in &args {
            if skip {
                skip = false;
                continue;
            }
            if arg.starts_with("--") {
                skip = !matches!(
                    arg.as_str(),
                    "--require-exchanges" | "--shutdown" | "--require-recovered"
                );
                continue;
            }
            found = Some(arg.clone());
            break;
        }
        match found {
            Some(path) => path,
            None => return usage(),
        }
    };
    let instance_path = &instance_path;
    let instance_text = match std::fs::read_to_string(instance_path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("clusterctl: cannot read {instance_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (searchers, evals, neighborhood, stagnation, seed, fault_seed) = match (
        num("--searchers", 2),
        num("--evals", 20_000),
        num("--neighborhood", 50),
        num("--stagnation", 100),
        num("--seed", 1),
        num("--fault-seed", 7),
    ) {
        (Ok(a), Ok(b), Ok(c), Ok(d), Ok(e), Ok(f)) => (a, b, c, d, e, f),
        _ => return ExitCode::FAILURE,
    };
    let fault_rate: f64 = match get("--fault-rate").map(|v| v.parse()) {
        Some(Ok(r)) => r,
        None => 0.0,
        Some(Err(_)) => {
            eprintln!("clusterctl: --fault-rate expects a number");
            return ExitCode::FAILURE;
        }
    };

    if let Some(nodes) = get("--virtual-net") {
        let Ok(nodes) = nodes.parse::<usize>() else {
            eprintln!("clusterctl: --virtual-net expects a node count");
            return ExitCode::FAILURE;
        };
        let instance = match vrptw::solomon::parse(&instance_text) {
            Ok(inst) => Arc::new(inst),
            Err(e) => {
                eprintln!("clusterctl: bad instance: {e}");
                return ExitCode::FAILURE;
            }
        };
        let vm = VirtualMeshConfig {
            nodes,
            searchers_per_node: searchers as usize,
            cfg: TsmoConfig {
                max_evaluations: evals,
                neighborhood_size: (neighborhood as usize).max(2),
                stagnation_limit: (stagnation as usize).max(1),
                ..TsmoConfig::default()
            }
            .with_seed(seed),
        };
        let hook: Arc<dyn FaultHook> = if fault_rate > 0.0 {
            FaultPlan::shared(FaultConfig::exchange_only(fault_seed, fault_rate))
        } else {
            tsmo_faults::none()
        };
        let churn = match get("--churn").map(|s| tsmo_cluster::parse_churn(&s)) {
            Some(Ok(events)) => events,
            Some(Err(e)) => {
                eprintln!("clusterctl: bad --churn: {e}");
                return ExitCode::FAILURE;
            }
            None => Vec::new(),
        };
        let replication_every = match num("--replication-every", 0) {
            Ok(n) => n,
            Err(code) => return code,
        };
        // Churn or replication turns the run elastic: dynamic membership,
        // ring-replicated checkpoints, and a recorded network log whose
        // replay must still be byte-identical.
        if !churn.is_empty() || replication_every > 0 {
            let em = ElasticMeshConfig {
                replication_every,
                churn,
                ..ElasticMeshConfig::fixed(vm.nodes, vm.searchers_per_node, vm.cfg.clone())
            };
            let events = Arc::new(MemoryRecorder::new());
            let recorded = run_elastic(
                &instance,
                &em,
                Arc::clone(&events) as Arc<dyn Recorder>,
                Arc::clone(&hook),
            );
            println!(
                "elastic virtual mesh: {nodes} nodes x {searchers} searchers, \
                 {} net records, {} evaluations, final epoch {}",
                recorded.log.len(),
                recorded.evaluations,
                recorded.final_epoch
            );
            if !recorded.recovered_nodes.is_empty() {
                println!(
                    "recovered from replicas: node(s) {:?}, {} entr(ies) in the merged front",
                    recorded.recovered_nodes, recorded.recovered_in_front
                );
            }
            let replayed =
                match replay_elastic(&instance, &em, tsmo_obs::noop(), hook, &recorded.log) {
                    Ok(out) => out,
                    Err(e) => {
                        eprintln!("clusterctl: elastic replay diverged: {e}");
                        return ExitCode::FAILURE;
                    }
                };
            if front_fingerprint(&replayed.front) != front_fingerprint(&recorded.front) {
                eprintln!("clusterctl: replayed front differs from the recorded run");
                return ExitCode::FAILURE;
            }
            println!(
                "replay: byte-identical merged front over {} net records",
                replayed.log.len()
            );
            if let Some(path) = get("--events-out") {
                if let Err(e) = std::fs::write(&path, events.events_jsonl()) {
                    eprintln!("clusterctl: cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("events: wrote {path}");
            }
            if has("--require-recovered") && recorded.recovered_nodes.is_empty() {
                eprintln!("clusterctl: --require-recovered but no node front came from a replica");
                return ExitCode::FAILURE;
            }
            if !check_front(&recorded.front) {
                return ExitCode::FAILURE;
            }
            print_front(&recorded.front);
            return ExitCode::SUCCESS;
        }
        let recorded = run_virtual(&instance, &vm, tsmo_obs::noop(), Arc::clone(&hook));
        println!(
            "virtual mesh: {nodes} nodes x {searchers} searchers, {} exchanges delivered, \
             {} evaluations",
            recorded.log.len(),
            recorded.evaluations
        );
        let replayed = match replay_virtual(&instance, &vm, tsmo_obs::noop(), hook, &recorded.log) {
            Ok(out) => out,
            Err(e) => {
                eprintln!("clusterctl: replay diverged: {e}");
                return ExitCode::FAILURE;
            }
        };
        if front_fingerprint(&replayed.front) != front_fingerprint(&recorded.front) {
            eprintln!("clusterctl: replayed front differs from the recorded run");
            return ExitCode::FAILURE;
        }
        println!(
            "replay: byte-identical merged front over {} exchanges",
            replayed.log.len()
        );
        if !check_front(&recorded.front) {
            return ExitCode::FAILURE;
        }
        print_front(&recorded.front);
        return ExitCode::SUCCESS;
    }

    let Some(peers) = get("--peers") else {
        return usage();
    };
    let peers: Vec<String> = peers
        .split(',')
        .map(str::trim)
        .filter(|p| !p.is_empty())
        .map(str::to_string)
        .collect();
    let (timeout_ms, wait_ms) = match (
        num("--connect-timeout-ms", 2_000),
        num("--wait-ms", 300_000),
    ) {
        (Ok(t), Ok(w)) => (t, w),
        _ => return ExitCode::FAILURE,
    };
    let job = MeshJob {
        instance_text,
        node_index: 0,
        peers: peers.clone(),
        searchers_per_node: searchers as usize,
        seed,
        max_evaluations: evals,
        neighborhood_size: neighborhood as usize,
        stagnation_limit: stagnation as usize,
        fault_seed,
        fault_rate,
        // One id for the whole mesh, derived from the seed, so every
        // node's spans land in the same trace and `trace-merge` can
        // verify they agree.
        trace_id: tsmo_obs::trace_id_from_seed(seed),
        ..MeshJob::default()
    };
    let timeout = Duration::from_millis(timeout_ms);
    let outcome = match mesh::run_mesh(&job, timeout, Duration::from_millis(wait_ms)) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("clusterctl: mesh run failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut ok = true;
    for (k, node) in outcome.nodes.iter().enumerate() {
        let client = mesh::MeshClient::new(node.addr.clone(), timeout);
        let received = client
            .metrics()
            .map(|prom| prometheus_counter(&prom, names::EXCHANGES_RECEIVED))
            .unwrap_or(0);
        match &node.report {
            Some(report) => println!(
                "node {k} at {}: front={} evaluations={} iterations={} exchanges_received={received}{}",
                node.addr,
                report.front.len(),
                report.evaluations,
                report.iterations,
                if node.recovered {
                    " (recovered from replica)"
                } else {
                    ""
                }
            ),
            None => println!("node {k} at {}: no report (dead or unreachable)", node.addr),
        }
        if has("--require-exchanges") && received == 0 {
            eprintln!("clusterctl: node {k} received no exchanges");
            ok = false;
        }
    }
    if !check_front(&outcome.front) {
        ok = false;
    }
    print_front(&outcome.front);
    if has("--shutdown") {
        for node in &outcome.nodes {
            let _ = mesh::MeshClient::new(node.addr.clone(), timeout).shutdown();
        }
        println!("mesh: shutdown sent to {} node(s)", outcome.nodes.len());
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
