//! `noded` — one node of a distributed collaborative search mesh.
//!
//! ```text
//! noded [--addr 127.0.0.1:0] [--net-timeout-ms 2000] [--peer-timeout-ms 10000]
//!       [--port-file PATH]
//! ```
//!
//! Binds the node protocol listener and serves until a `shutdown` frame
//! arrives. `--port-file` writes the bound `host:port` (useful with an
//! ephemeral port, e.g. in CI) once the listener is up.

use std::process::ExitCode;
use std::time::Duration;
use tsmo_cluster::{NodeConfig, Noded};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: noded [--addr HOST:PORT] [--net-timeout-ms MS] [--peer-timeout-ms MS] \
             [--port-file PATH]"
        );
        return ExitCode::SUCCESS;
    }
    let get = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let addr = get("--addr").unwrap_or_else(|| "127.0.0.1:0".to_string());
    let net_timeout_ms: u64 = match get("--net-timeout-ms").map(|v| v.parse()) {
        Some(Ok(ms)) => ms,
        None => 2_000,
        Some(Err(_)) => {
            eprintln!("noded: --net-timeout-ms expects an integer");
            return ExitCode::FAILURE;
        }
    };
    // Bounds how long an accepted connection may stay silent before its
    // first frame; a half-open peer handshake cannot park a serve thread.
    let peer_timeout_ms: u64 = match get("--peer-timeout-ms").map(|v| v.parse()) {
        Some(Ok(ms)) => ms,
        None => 10_000,
        Some(Err(_)) => {
            eprintln!("noded: --peer-timeout-ms expects an integer");
            return ExitCode::FAILURE;
        }
    };
    let node = match Noded::start(NodeConfig {
        addr,
        net_timeout: Duration::from_millis(net_timeout_ms),
        peer_timeout: Duration::from_millis(peer_timeout_ms),
    }) {
        Ok(node) => node,
        Err(e) => {
            eprintln!("noded: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let local = node.local_addr();
    if let Some(path) = get("--port-file") {
        if let Err(e) = std::fs::write(&path, local.to_string()) {
            eprintln!("noded: cannot write port file {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    eprintln!("noded: serving on {local}");
    // The acceptor owns the lifecycle; park until a shutdown frame stops
    // it. `wait` returns when the accept loop exits.
    node.wait();
    eprintln!("noded: stopped");
    ExitCode::SUCCESS
}
