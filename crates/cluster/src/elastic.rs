//! The elastic virtual mesh: dynamic membership, searcher rebalancing,
//! and replicated archive checkpoints — deterministic and replayable.
//!
//! [`virtual_net`](crate::virtual_net) pins a *fixed* mesh to one thread;
//! this module adds churn. Nodes can be killed mid-run (their searcher
//! incarnations die with their un-flushed archives), rejoin later, or
//! start dead and join late. Whenever the member set changes, a
//! deterministic rebalancer reassigns contiguous searcher-id slices over
//! the live slots: a searcher id that changes owner is finished gracefully
//! (its archive banked, its consumed budget recorded) and restarted on the
//! new owner with the *remaining* budget, its RNG stream, communication
//! list, and parameter perturbation re-derived from scratch — so at fixed
//! membership every id's trajectory is byte-identical to the static mesh.
//!
//! Durability comes from archive replication: every `replication_every`
//! rounds (and once when a node's searchers finish) each live node cuts a
//! checkpoint — its current merged front plus per-id consumed budgets —
//! and ships it to its ring successor. A killed node's front is recovered
//! from the newest surviving replica: at final merge if it never returns,
//! or on re-admission (the entries are banked for its node front and the
//! budgets prevent re-doing paid-for evaluations). Checkpoint traffic
//! passes the same fault hook as exchanges (site `n_total + node`), so
//! drops and delays are part of the recorded behavior.
//!
//! Everything the network does — exchanges, checkpoints, leaves, joins,
//! rebalances — lands in one ordered [`NetRecord`] log. Replaying a run
//! with the same configuration verifies every record in order, making an
//! 8–16 node churn scenario byte-identical in CI.

use crate::membership::{assign_slices, owner_of, ChurnEvent, ChurnKind, Membership};
use crate::mesh::merge_node_fronts;
use crate::virtual_net::{front_fingerprint, ExchangeRecord};
use crossbeam::channel::{unbounded, Receiver, Sender};
use deme::multisearch::{comm_order, Endpoint, Transport};
use detrand::streams;
use pareto::Archive;
use std::collections::BTreeMap;
use std::ops::Range;
use std::sync::{Arc, Mutex};
use tsmo_core::{searcher_cfg, CancelToken, CollabSearcher, FrontEntry, TsmoConfig};
use tsmo_faults::{FaultHook, MsgFault};
use tsmo_obs::{metrics::names, Recorder, SearchEvent};
use vrptw::Instance;

/// The shape of an elastic virtual mesh run.
#[derive(Debug, Clone)]
pub struct ElasticMeshConfig {
    /// Number of node slots (the *slice attribution* grid; live membership
    /// varies underneath it).
    pub nodes: usize,
    /// Searchers per node slot; `nodes * searchers_per_node` global ids.
    pub searchers_per_node: usize,
    /// Base search configuration (seed included).
    pub cfg: TsmoConfig,
    /// Rounds between archive checkpoints to the ring successor
    /// (`0` disables replication entirely).
    pub replication_every: u64,
    /// Capacity of a checkpointed front (`0` = `cfg.archive_capacity`).
    pub elite_count: usize,
    /// Node slots that start dead — late joiners admitted by a
    /// [`ChurnKind::Join`] event. Their searcher slice starts distributed
    /// over the live slots.
    pub deferred: Vec<usize>,
    /// Scheduled membership transitions, applied at the top of their round.
    pub churn: Vec<ChurnEvent>,
}

impl ElasticMeshConfig {
    /// A churn-free, replication-free configuration equivalent to
    /// [`VirtualMeshConfig`](crate::VirtualMeshConfig).
    pub fn fixed(nodes: usize, searchers_per_node: usize, cfg: TsmoConfig) -> Self {
        Self {
            nodes,
            searchers_per_node,
            cfg,
            replication_every: 0,
            elite_count: 0,
            deferred: Vec::new(),
            churn: Vec::new(),
        }
    }

    fn elite(&self) -> usize {
        if self.elite_count == 0 {
            self.cfg.archive_capacity
        } else {
            self.elite_count
        }
    }
}

/// One entry of the elastic run's ordered network log. Replay verifies
/// each record in order; a mismatch pinpoints the first divergence.
#[derive(Debug, Clone, PartialEq)]
pub enum NetRecord {
    /// A delivered searcher-to-searcher exchange.
    Exchange(ExchangeRecord),
    /// A delivered archive checkpoint: `node`'s front of `entries` members
    /// (fingerprint-hashed to `fp`) stored at `holder`.
    Checkpoint {
        /// The checkpointing node slot.
        node: usize,
        /// The ring successor storing the replica.
        holder: usize,
        /// Round the checkpoint was delivered.
        round: u64,
        /// Members in the replicated front.
        entries: usize,
        /// FNV-1a 64 hash of the front's canonical fingerprint.
        fp: u64,
    },
    /// Node `node` left the mesh.
    Left {
        /// The departing slot.
        node: usize,
        /// Membership epoch after the departure.
        epoch: u64,
        /// Round of the transition.
        round: u64,
    },
    /// Node `node` (re)joined the mesh.
    Joined {
        /// The admitted slot.
        node: usize,
        /// Membership epoch after admission.
        epoch: u64,
        /// Round of the transition.
        round: u64,
    },
    /// The searcher-slice assignment after a membership change:
    /// `(node, start, end)` triples, exclusive end, in slot order.
    Rebalanced {
        /// Membership epoch of the assignment.
        epoch: u64,
        /// The contiguous slices, one per live slot.
        assignment: Vec<(usize, usize, usize)>,
    },
}

/// Result of an elastic mesh run.
#[derive(Debug)]
pub struct ElasticOutcome {
    /// The global merged front (two-stage merge, like the TCP mesh).
    pub front: Vec<FrontEntry>,
    /// Per-node-slot fronts: each slot's searcher slice plus anything
    /// recovered from its replicas, in slot order.
    pub node_fronts: Vec<Vec<FrontEntry>>,
    /// Evaluations consumed across all incarnations (killed ones included).
    pub evaluations: u64,
    /// Iterations summed over gracefully finished incarnations.
    pub iterations: u64,
    /// The ordered network log.
    pub log: Vec<NetRecord>,
    /// Rounds the round-robin loop ran.
    pub rounds: u64,
    /// Final membership epoch.
    pub final_epoch: u64,
    /// Slots whose contribution at merge time came (partly) from a
    /// replica: dead at the end, or re-admitted with a recovered front.
    pub recovered_nodes: Vec<usize>,
    /// Entries of the global front that match a replica-recovered entry.
    pub recovered_in_front: usize,
}

enum LogMode {
    Record,
    Verify {
        expected: Vec<NetRecord>,
        cursor: usize,
        divergence: Option<String>,
    },
}

/// Shared network state: the record/verify log plus the per-searcher-id
/// liveness table the transports consult — sending to a dead id fails the
/// delivery inside the call, exactly like a closed TCP connection.
struct NetState {
    mode: LogMode,
    seen: Vec<NetRecord>,
    live: Vec<bool>,
}

impl NetState {
    fn observe(&mut self, rec: NetRecord) {
        if let LogMode::Verify {
            expected,
            cursor,
            divergence,
        } = &mut self.mode
        {
            if divergence.is_none() {
                match expected.get(*cursor) {
                    Some(want) if *want == rec => {}
                    Some(want) => {
                        *divergence = Some(format!(
                            "record {} diverged: recorded {want:?}, replayed {rec:?}",
                            *cursor
                        ));
                    }
                    None => {
                        *divergence = Some(format!("replay produced extra record {rec:?}"));
                    }
                }
                *cursor += 1;
            }
        }
        self.seen.push(rec);
    }
}

/// The elastic channel transport: checks the target id's liveness under
/// the net lock (atomically with the send), logs delivered exchanges.
struct ElasticTransport {
    tx: Sender<FrontEntry>,
    from: usize,
    to: usize,
    net: Arc<Mutex<NetState>>,
}

impl Transport<FrontEntry> for ElasticTransport {
    fn send(&self, msg: FrontEntry) -> Result<(), FrontEntry> {
        let mut net = self
            .net
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if !net.live[self.to] {
            return Err(msg);
        }
        let objectives = msg.objectives.to_vector();
        match self.tx.send(msg) {
            Ok(()) => {
                net.observe(NetRecord::Exchange(ExchangeRecord {
                    from: self.from,
                    to: self.to,
                    objectives,
                }));
                Ok(())
            }
            Err(e) => Err(e.0),
        }
    }
}

/// A stored archive checkpoint.
#[derive(Debug, Clone)]
struct Replica {
    round: u64,
    entries: Vec<FrontEntry>,
    /// `(searcher id, evaluations consumed)` at the checkpoint.
    evals: Vec<(usize, u64)>,
}

/// One searcher id's fixed infrastructure: its inbox channel (kept for the
/// whole run so peer links never dangle) and the budget its finished
/// incarnations have consumed.
struct Slot {
    tx: Sender<FrontEntry>,
    rx: Receiver<FrontEntry>,
    consumed: u64,
}

struct Hosted {
    searcher: CollabSearcher,
    endpoint: Endpoint<FrontEntry>,
}

/// FNV-1a 64 of a front's canonical fingerprint — a compact byte-identity
/// witness for checkpoint records.
fn fp_hash(front: &[FrontEntry]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in front_fingerprint(front).bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Runs the elastic mesh, recording its network log.
pub fn run_elastic(
    inst: &Arc<Instance>,
    em: &ElasticMeshConfig,
    recorder: Arc<dyn Recorder>,
    hook: Arc<dyn FaultHook>,
) -> ElasticOutcome {
    run(inst, em, recorder, hook, LogMode::Record).expect("record mode cannot diverge")
}

/// Re-runs the elastic mesh while verifying every network record against
/// `log`; `Err` carries the first divergence. A clean replay returns an
/// outcome byte-comparable to the recorded run's.
pub fn replay_elastic(
    inst: &Arc<Instance>,
    em: &ElasticMeshConfig,
    recorder: Arc<dyn Recorder>,
    hook: Arc<dyn FaultHook>,
    log: &[NetRecord],
) -> Result<ElasticOutcome, String> {
    run(
        inst,
        em,
        recorder,
        hook,
        LogMode::Verify {
            expected: log.to_vec(),
            cursor: 0,
            divergence: None,
        },
    )
}

struct Run<'a> {
    inst: &'a Arc<Instance>,
    em: &'a ElasticMeshConfig,
    recorder: Arc<dyn Recorder>,
    hook: Arc<dyn FaultHook>,
    n_total: usize,
    net: Arc<Mutex<NetState>>,
    membership: Membership,
    assignment: Vec<(usize, Range<usize>)>,
    slots: Vec<Slot>,
    hosted: Vec<Option<Hosted>>,
    /// Banked archives of finished incarnations, per searcher id.
    slice_results: Vec<Vec<FrontEntry>>,
    /// Replica-recovered entries banked for a re-admitted node's front.
    recovered: Vec<Vec<FrontEntry>>,
    /// Replicas held by each node, keyed by subject slot.
    replicas: Vec<BTreeMap<usize, Replica>>,
    /// Checkpoints delayed by a fault: `(due round, holder, subject, rep)`.
    delayed_ckpts: Vec<(u64, usize, usize, Replica)>,
    /// Per-node checkpoint fault-decision counters.
    ckpt_seq: Vec<u64>,
    /// Whether a node has cut its all-searchers-done checkpoint since the
    /// last rebalance.
    final_ckpt: Vec<bool>,
    recovered_nodes: Vec<usize>,
    evaluations: u64,
    iterations: u64,
}

impl Run<'_> {
    fn hosted_ids(&self, node: usize) -> Range<usize> {
        self.assignment
            .iter()
            .find(|(slot, _)| *slot == node)
            .map(|(_, r)| r.clone())
            .unwrap_or(0..0)
    }

    /// The newest replica of `subject` held by any live node (oldest slot
    /// wins ties, deterministically).
    fn newest_replica(&self, subject: usize) -> Option<&Replica> {
        let mut best: Option<&Replica> = None;
        for holder in self.membership.live_indices() {
            if let Some(rep) = self.replicas[holder].get(&subject) {
                if best.is_none_or(|b| rep.round > b.round) {
                    best = Some(rep);
                }
            }
        }
        best
    }

    /// Budget known (from surviving replicas) to have been consumed by
    /// searcher `id` — caps the work a restarted incarnation re-does.
    fn replicated_evals(&self, id: usize) -> u64 {
        let mut max = 0;
        for holder in self.membership.live_indices() {
            for rep in self.replicas[holder].values() {
                for &(rid, evals) in &rep.evals {
                    if rid == id && evals > max {
                        max = evals;
                    }
                }
            }
        }
        max
    }

    /// The merged front over every surviving replica (newest per subject,
    /// subjects ascending) — what a restarted searcher is warm-started
    /// with.
    fn replica_front(&self) -> Vec<FrontEntry> {
        let mut merged = Archive::new(self.em.cfg.archive_capacity);
        for subject in 0..self.em.nodes {
            if let Some(rep) = self.newest_replica(subject) {
                merged.absorb(rep.entries.iter().cloned());
            }
        }
        merged.into_items()
    }

    /// Builds a fresh incarnation of searcher `id` with `remaining`
    /// evaluations, re-deriving its RNG stream, communication list, and
    /// perturbation from scratch — the same draws the static mesh made, so
    /// determinism survives the restart.
    fn spawn_incarnation(&mut self, id: usize, remaining: u64) {
        let mut rngs = streams(self.em.cfg.seed, self.n_total);
        let rng = &mut rngs[id];
        let order = comm_order(self.n_total, id, rng);
        let mut cfg = searcher_cfg(&self.em.cfg, id, rng);
        cfg.max_evaluations = remaining;
        let links: Vec<(usize, Box<dyn Transport<FrontEntry>>)> = order
            .into_iter()
            .map(|p| {
                (
                    p,
                    Box::new(ElasticTransport {
                        tx: self.slots[p].tx.clone(),
                        from: id,
                        to: p,
                        net: Arc::clone(&self.net),
                    }) as Box<dyn Transport<FrontEntry>>,
                )
            })
            .collect();
        let endpoint = Endpoint::from_links(id, self.slots[id].rx.clone(), links);
        let rng = rngs.swap_remove(id);
        let searcher = CollabSearcher::new(
            Arc::clone(self.inst),
            cfg,
            rng,
            Arc::clone(&self.recorder),
            id,
            CancelToken::never(),
            Arc::clone(&self.hook),
        );
        self.hosted[id] = Some(Hosted { searcher, endpoint });
    }

    /// Recomputes the slice assignment for the current membership and
    /// migrates searchers whose owner changed: the old incarnation is
    /// finished gracefully (archive banked, budget recorded) and a new one
    /// is spawned with the remaining budget, warm-started from the
    /// replicated fronts. Ids whose owner is unchanged are untouched —
    /// their endpoints keep rotation state, so fixed membership stays
    /// byte-identical.
    fn rebalance(&mut self, warm: bool) {
        let new_assignment = assign_slices(self.n_total, &self.membership.live_indices());
        let warm_front = if warm {
            self.replica_front()
        } else {
            Vec::new()
        };
        for id in 0..self.n_total {
            let old = owner_of(&self.assignment, id);
            let new = owner_of(&new_assignment, id);
            if old == new && self.hosted[id].is_some() {
                continue;
            }
            // Gracefully migrate a live incarnation off its old owner.
            if let Some(h) = self.hosted[id].take() {
                let Hosted {
                    searcher,
                    mut endpoint,
                } = h;
                let result = searcher.finish(&mut endpoint);
                self.slots[id].consumed += result.evaluations;
                self.evaluations += result.evaluations;
                self.iterations += result.iterations as u64;
                self.slice_results[id].extend(result.archive);
            }
            if new.is_none() {
                continue;
            }
            // Replicated checkpoints bound the budget a restart re-does.
            let known = self.replicated_evals(id);
            if known > self.slots[id].consumed {
                self.slots[id].consumed = known;
            }
            let remaining = self
                .em
                .cfg
                .max_evaluations
                .saturating_sub(self.slots[id].consumed);
            if remaining == 0 {
                self.set_live(id, false);
                continue;
            }
            self.spawn_incarnation(id, remaining);
            self.set_live(id, true);
            // Drop anything addressed to the dead incarnation, then warm
            // the new one with the mesh's replicated knowledge.
            while self.slots[id].rx.try_recv().is_ok() {}
            for entry in &warm_front {
                let _ = self.slots[id].tx.send(entry.clone());
            }
            // Peers that marked this id dead while it was down are healed
            // by the membership announcement, not left to probe luck.
            for peer in 0..self.n_total {
                if let Some(h) = self.hosted[peer].as_mut() {
                    h.endpoint.revive_peer(id);
                }
            }
        }
        self.assignment = new_assignment;
        self.final_ckpt = vec![false; self.em.nodes];
        let epoch = self.membership.epoch;
        let triples: Vec<(usize, usize, usize)> = self
            .assignment
            .iter()
            .map(|(slot, r)| (*slot, r.start, r.end))
            .collect();
        for (slot, r) in &self.assignment {
            self.recorder.counter_add(names::SLICES_REBALANCED, 1);
            if self.recorder.enabled() {
                self.recorder.event(SearchEvent::SliceRebalanced {
                    epoch,
                    node: *slot as u32,
                    start: r.start as u32,
                    len: r.len() as u32,
                });
            }
        }
        self.observe(NetRecord::Rebalanced {
            epoch,
            assignment: triples,
        });
    }

    fn set_live(&mut self, id: usize, live: bool) {
        self.net
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .live[id] = live;
    }

    fn observe(&self, rec: NetRecord) {
        self.net
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .observe(rec);
    }

    /// Cuts node `h`'s checkpoint — the merged front of its hosted slice
    /// (live snapshots plus banked archives) and per-id budgets — and
    /// ships it to the ring successor through the fault hook (site
    /// `n_total + h`).
    fn checkpoint(&mut self, h: usize, round: u64) {
        let Some(succ) = self.membership.ring_successor(h) else {
            return;
        };
        let ids = self.hosted_ids(h);
        let mut front = Archive::new(self.em.elite());
        let mut evals = Vec::new();
        for id in ids {
            front.absorb(self.slice_results[id].iter().cloned());
            let mut consumed = self.slots[id].consumed;
            if let Some(hosted) = self.hosted[id].as_ref() {
                front.absorb(hosted.searcher.archive_snapshot());
                consumed += hosted.searcher.evaluations_consumed();
            }
            evals.push((id, consumed));
        }
        let rep = Replica {
            round,
            entries: front.into_items(),
            evals,
        };
        let fault = if self.hook.active() {
            let seq = self.ckpt_seq[h];
            self.ckpt_seq[h] += 1;
            self.hook.on_exchange(self.n_total + h, seq)
        } else {
            MsgFault::Deliver
        };
        match fault {
            MsgFault::Deliver => self.deliver_checkpoint(h, succ, round, rep),
            MsgFault::Drop => {}
            MsgFault::Delay { ticks } => {
                self.delayed_ckpts
                    .push((round + ticks.max(1), succ, h, rep));
            }
        }
    }

    fn deliver_checkpoint(&mut self, subject: usize, holder: usize, round: u64, rep: Replica) {
        if !self.membership.members[holder].live {
            return; // The successor died while the checkpoint was in flight.
        }
        let entries = rep.entries.len();
        let fp = fp_hash(&rep.entries);
        self.replicas[holder].insert(subject, rep);
        self.recorder.counter_add(names::ARCHIVES_REPLICATED, 1);
        if self.recorder.enabled() {
            self.recorder.event(SearchEvent::ArchiveReplicated {
                node: subject as u32,
                holder: holder as u32,
                entries: entries as u32,
            });
        }
        self.observe(NetRecord::Checkpoint {
            node: subject,
            holder,
            round,
            entries,
            fp,
        });
    }

    fn kill(&mut self, node: usize, round: u64) {
        if !self.membership.mark_left(node) {
            return;
        }
        let epoch = self.membership.epoch;
        self.recorder.counter_add(names::MEMBERS_LEFT, 1);
        self.recorder
            .gauge_max(names::MEMBERSHIP_EPOCH, epoch as f64);
        if self.recorder.enabled() {
            self.recorder.event(SearchEvent::MemberLeft {
                node: node as u32,
                epoch,
            });
        }
        self.observe(NetRecord::Left { node, epoch, round });
        // The node's incarnations die un-flushed; their archives and
        // partial budgets are lost (that is what replication recovers).
        for id in self.hosted_ids(node) {
            if let Some(h) = self.hosted[id].take() {
                self.evaluations += h.searcher.evaluations_consumed();
            }
            self.set_live(id, false);
            while self.slots[id].rx.try_recv().is_ok() {}
        }
        // Replicas it held, and checkpoints in flight to it, die with it.
        self.replicas[node].clear();
        self.delayed_ckpts
            .retain(|(_, holder, _, _)| *holder != node);
        self.rebalance(true);
    }

    fn join(&mut self, node: usize, round: u64) {
        if !self.membership.revive(node) {
            return;
        }
        let epoch = self.membership.epoch;
        self.recorder.counter_add(names::MEMBERS_JOINED, 1);
        self.recorder
            .gauge_max(names::MEMBERSHIP_EPOCH, epoch as f64);
        if self.recorder.enabled() {
            self.recorder.event(SearchEvent::MemberJoined {
                node: node as u32,
                epoch,
            });
        }
        self.observe(NetRecord::Joined { node, epoch, round });
        // Recover the node's own front from the newest surviving replica;
        // the entries are banked straight into its node front (warm-start
        // inbox deliveries feed `M_nondom`, which never reaches the final
        // merge on its own).
        if let Some(rep) = self.newest_replica(node).cloned() {
            self.recovered[node].extend(rep.entries);
            self.recorder.counter_add(names::ARCHIVES_RECOVERED, 1);
            if !self.recovered_nodes.contains(&node) {
                self.recovered_nodes.push(node);
            }
        }
        self.rebalance(true);
    }
}

fn run(
    inst: &Arc<Instance>,
    em: &ElasticMeshConfig,
    recorder: Arc<dyn Recorder>,
    hook: Arc<dyn FaultHook>,
    mode: LogMode,
) -> Result<ElasticOutcome, String> {
    assert!(em.nodes > 0 && em.searchers_per_node > 0, "empty mesh");
    for e in &em.churn {
        assert!(e.node < em.nodes, "churn node {} out of range", e.node);
    }
    let n_total = em.nodes * em.searchers_per_node;
    let net = Arc::new(Mutex::new(NetState {
        mode,
        seen: Vec::new(),
        live: vec![false; n_total],
    }));
    let mut membership = Membership::new(&vec![String::new(); em.nodes]);
    for &d in &em.deferred {
        assert!(d < em.nodes, "deferred node {d} out of range");
        membership.mark_left(d);
    }
    assert!(membership.live_count() > 0, "every node deferred");
    let slots: Vec<Slot> = (0..n_total)
        .map(|_| {
            let (tx, rx) = unbounded::<FrontEntry>();
            Slot {
                tx,
                rx,
                consumed: 0,
            }
        })
        .collect();
    let mut r = Run {
        inst,
        em,
        recorder,
        hook,
        n_total,
        net,
        membership,
        assignment: Vec::new(),
        slots,
        hosted: (0..n_total).map(|_| None).collect(),
        slice_results: vec![Vec::new(); n_total],
        recovered: vec![Vec::new(); em.nodes],
        replicas: vec![BTreeMap::new(); em.nodes],
        delayed_ckpts: Vec::new(),
        ckpt_seq: vec![0; em.nodes],
        final_ckpt: vec![false; em.nodes],
        recovered_nodes: Vec::new(),
        evaluations: 0,
        iterations: 0,
    };
    // Initial placement: the whole id grid over the initially-live slots.
    // No warm-start — there is nothing replicated yet.
    r.rebalance(false);

    let mut churn = em.churn.clone();
    churn.sort_by_key(|e| e.round);
    let mut churn_cursor = 0;
    let mut round: u64 = 0;
    loop {
        round += 1;
        // Membership transitions scheduled for this round fire first.
        while churn_cursor < churn.len() && churn[churn_cursor].round <= round {
            let e = churn[churn_cursor];
            churn_cursor += 1;
            match e.kind {
                ChurnKind::Kill => r.kill(e.node, round),
                ChurnKind::Join => r.join(e.node, round),
            }
        }
        // Fault-delayed checkpoints whose round has come.
        let due: Vec<_> = {
            let mut keep = Vec::new();
            let mut due = Vec::new();
            for item in std::mem::take(&mut r.delayed_ckpts) {
                if item.0 <= round {
                    due.push(item);
                } else {
                    keep.push(item);
                }
            }
            r.delayed_ckpts = keep;
            due
        };
        for (_, holder, subject, rep) in due {
            r.deliver_checkpoint(subject, holder, round, rep);
        }
        // One synchronous round: every hosted searcher steps once, in
        // global id order — the same schedule as the static virtual mesh.
        let mut any = false;
        for id in 0..n_total {
            if let Some(h) = r.hosted[id].as_mut() {
                any |= h.searcher.step_once(&mut h.endpoint);
            }
        }
        if em.replication_every > 0 {
            if round.is_multiple_of(em.replication_every) {
                for h in r.membership.live_indices() {
                    r.checkpoint(h, round);
                }
            }
            // A node whose hosted searchers all finished cuts one last
            // checkpoint, so its complete front survives a later kill.
            for h in r.membership.live_indices() {
                if r.final_ckpt[h] {
                    continue;
                }
                let ids = r.hosted_ids(h);
                if ids.is_empty() {
                    continue;
                }
                let done = ids
                    .clone()
                    .all(|id| r.hosted[id].as_ref().is_none_or(|x| x.searcher.done()));
                if done {
                    r.checkpoint(h, round);
                    r.final_ckpt[h] = true;
                }
            }
        }
        let pending = churn_cursor < churn.len() || !r.delayed_ckpts.is_empty();
        if !any && !pending {
            break;
        }
    }

    // Gather: finish the surviving incarnations and bank their archives.
    for id in 0..n_total {
        if let Some(h) = r.hosted[id].take() {
            let Hosted {
                searcher,
                mut endpoint,
            } = h;
            let result = searcher.finish(&mut endpoint);
            r.slots[id].consumed += result.evaluations;
            r.evaluations += result.evaluations;
            r.iterations += result.iterations as u64;
            r.slice_results[id].extend(result.archive);
        }
    }
    // Two-stage merge on the slot grid: each slot's front is its searcher
    // slice's banked archives (id order), anything recovered on rejoin,
    // and — for a slot dead at the end — the newest surviving replica.
    let mut recovered_entries: Vec<[f64; 3]> = Vec::new();
    let mut node_fronts = Vec::with_capacity(em.nodes);
    for node in 0..em.nodes {
        let mut archive = Archive::new(em.cfg.archive_capacity);
        for id in node * em.searchers_per_node..(node + 1) * em.searchers_per_node {
            archive.absorb(r.slice_results[id].iter().cloned());
        }
        for entry in &r.recovered[node] {
            recovered_entries.push(entry.objectives.to_vector());
            archive.insert(entry.clone());
        }
        if !r.membership.members[node].live {
            if let Some(rep) = r.newest_replica(node) {
                let entries = rep.entries.clone();
                if !entries.is_empty() && !r.recovered_nodes.contains(&node) {
                    r.recovered_nodes.push(node);
                }
                for entry in entries {
                    recovered_entries.push(entry.objectives.to_vector());
                    archive.insert(entry);
                }
            }
        }
        node_fronts.push(archive.into_items());
    }
    let front = merge_node_fronts(&node_fronts, em.cfg.archive_capacity);
    let recovered_in_front = front
        .iter()
        .filter(|e| recovered_entries.contains(&e.objectives.to_vector()))
        .count();

    let final_epoch = r.membership.epoch;
    let mut recovered_nodes = std::mem::take(&mut r.recovered_nodes);
    recovered_nodes.sort_unstable();
    let evaluations = r.evaluations;
    let iterations = r.iterations;
    let net = Arc::clone(&r.net);
    // Dropping the run state releases every transport's handle on the net
    // (endpoints died during gather), leaving ours the last one.
    drop(r);
    let net = Arc::try_unwrap(net)
        .map_err(|_| "transport handles outlived the run".to_string())?
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if let LogMode::Verify {
        expected,
        cursor,
        divergence,
    } = net.mode
    {
        if let Some(d) = divergence {
            return Err(d);
        }
        if cursor != expected.len() {
            return Err(format!(
                "replay produced {cursor} records, recording has {}",
                expected.len()
            ));
        }
    }
    Ok(ElasticOutcome {
        front,
        node_fronts,
        evaluations,
        iterations,
        log: net.seen,
        rounds: round,
        final_epoch,
        recovered_nodes,
        recovered_in_front,
    })
}
