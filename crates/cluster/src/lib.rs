//! tsmo-cluster — distributed multi-process collaborative multisearch.
//!
//! The paper's collaborative variant (§III.E) runs `P` searchers that
//! exchange archive-improving solutions over rotating communication lists.
//! In-process, those searchers are threads and the links are channels
//! (`CollaborativeTsmo`). This crate stretches the same search across
//! machines: a [`Noded`] daemon hosts one node's share of the
//! searchers, exchanges travel as length-prefixed JSON frames over TCP
//! ([`proto`]), and [`mesh::run_mesh`] bootstraps the mesh, dispatches the
//! job, and merges the per-node fronts into one global non-dominated
//! archive.
//!
//! The rotation semantics do not fork: [`transport::TcpTransport`]
//! implements the same [`deme::multisearch::Transport`] contract as the
//! channel transport (failure detected within the send, message handed
//! back), so dead-peer skip, same-call failover, and probe re-admission
//! carry over to real sockets unchanged — killing a node mid-run leaves
//! the survivors converging on a valid merged front.
//!
//! For reproducibility, [`virtual_net`] runs the whole mesh single-threaded
//! over recorded in-process loopback transports: the same seeds, lists, and
//! perturbations as the TCP build, but with a pinned delivery order, so a
//! run and its replay produce byte-identical merged fronts.

#![warn(missing_docs)]

pub mod elastic;
pub mod membership;
pub mod mesh;
pub mod node;
pub mod proto;
pub mod transport;
pub mod virtual_net;

pub use elastic::{replay_elastic, run_elastic, ElasticMeshConfig, ElasticOutcome, NetRecord};
pub use membership::{
    assign_slices, owner_of, parse_churn, ChurnEvent, ChurnKind, Member, Membership,
};
pub use mesh::{run_mesh, MeshClient, MeshOutcome};
pub use node::{NodeConfig, NodeReport, Noded, DEFAULT_PEER_TIMEOUT};
pub use proto::{ExchangeEntry, MeshJob, NodeMsg};
pub use transport::{PeerConn, RouteTable, TcpTransport, DEFAULT_NET_TIMEOUT};
pub use virtual_net::{
    front_fingerprint, replay_virtual, run_virtual, VirtualMeshConfig, VirtualOutcome,
};
