//! Dynamic mesh membership: who is in the ring, which searcher slice each
//! member owns, and how both change when nodes are killed or (re)join.
//!
//! The membership view is a versioned list of member slots. Slots are
//! stable — node `k` keeps index `k` across leave/rejoin cycles — so
//! searcher-slice assignment, checkpoint replicas, and the recorded
//! virtual-net log can all refer to nodes by slot. Every transition bumps
//! `epoch`; two views with the same epoch are identical, which is what
//! `MemberUpdate` frames rely on to be idempotent.
//!
//! Slice assignment is a pure function of `(n_total, live slots)`:
//! contiguous ranges in slot order, remainders going to the earliest live
//! slots. At fixed membership every id keeps its owner, so RNG streams,
//! communication lists, and parameter perturbations — all derived from the
//! global id — are untouched, preserving the determinism contract.

use std::ops::Range;

/// One membership slot: a node's address and whether it is currently live.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Member {
    /// The node's `host:port` (empty for virtual nodes).
    pub addr: String,
    /// Whether the slot currently participates in the mesh.
    pub live: bool,
}

/// The versioned membership view of a mesh.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Membership {
    /// Transition counter; bumped by every leave/join.
    pub epoch: u64,
    /// Member slots in node order. Slots never shrink: a killed node's
    /// slot stays (marked dead) so its searcher ids and replicas remain
    /// addressable, and a joiner either revives a dead slot or appends.
    pub members: Vec<Member>,
}

impl Membership {
    /// A fresh view with every listed node live, at epoch 0.
    pub fn new(addrs: &[String]) -> Self {
        Self {
            epoch: 0,
            members: addrs
                .iter()
                .map(|a| Member {
                    addr: a.clone(),
                    live: true,
                })
                .collect(),
        }
    }

    /// Number of live members.
    pub fn live_count(&self) -> usize {
        self.members.iter().filter(|m| m.live).count()
    }

    /// Slot indices of the live members, ascending.
    pub fn live_indices(&self) -> Vec<usize> {
        self.members
            .iter()
            .enumerate()
            .filter(|(_, m)| m.live)
            .map(|(i, _)| i)
            .collect()
    }

    /// Marks slot `node` dead. Returns `true` (and bumps the epoch) iff
    /// the slot existed and was live.
    pub fn mark_left(&mut self, node: usize) -> bool {
        match self.members.get_mut(node) {
            Some(m) if m.live => {
                m.live = false;
                self.epoch += 1;
                true
            }
            _ => false,
        }
    }

    /// Marks slot `node` live again — the slot-addressed rejoin the
    /// virtual mesh uses (the TCP path goes through [`Self::admit`], which
    /// matches by address). Returns `true` (and bumps the epoch) iff the
    /// slot existed and was dead.
    pub fn revive(&mut self, node: usize) -> bool {
        match self.members.get_mut(node) {
            Some(m) if !m.live => {
                m.live = true;
                self.epoch += 1;
                true
            }
            _ => false,
        }
    }

    /// Admits `addr` into the view: an existing slot with the same address
    /// is revived in place, else the first dead slot is taken over, else a
    /// new slot is appended. Returns the slot index; the epoch is bumped
    /// unless the address was already live.
    pub fn admit(&mut self, addr: &str) -> usize {
        if let Some(i) = self.members.iter().position(|m| m.addr == addr) {
            if !self.members[i].live {
                self.members[i].live = true;
                self.epoch += 1;
            }
            return i;
        }
        if let Some(i) = self.members.iter().position(|m| !m.live) {
            self.members[i] = Member {
                addr: addr.to_string(),
                live: true,
            };
            self.epoch += 1;
            return i;
        }
        self.members.push(Member {
            addr: addr.to_string(),
            live: true,
        });
        self.epoch += 1;
        self.members.len() - 1
    }

    /// The next live slot after `node` in ring order (wrapping), excluding
    /// `node` itself — where `node` ships its archive checkpoints. `None`
    /// when no *other* live member exists.
    pub fn ring_successor(&self, node: usize) -> Option<usize> {
        let n = self.members.len();
        if n == 0 {
            return None;
        }
        (1..n)
            .map(|d| (node + d) % n)
            .find(|&i| self.members[i].live)
    }
}

/// Contiguous searcher-slice assignment: `n_total` global searcher ids
/// split over the live slots in ascending slot order, remainder ids going
/// to the earliest slots. Pure in its inputs, so every member computes the
/// identical assignment from the same view.
pub fn assign_slices(n_total: usize, live: &[usize]) -> Vec<(usize, Range<usize>)> {
    if live.is_empty() {
        return Vec::new();
    }
    let base = n_total / live.len();
    let rem = n_total % live.len();
    let mut start = 0;
    live.iter()
        .enumerate()
        .map(|(i, &slot)| {
            let len = base + usize::from(i < rem);
            let range = start..start + len;
            start += len;
            (slot, range)
        })
        .collect()
}

/// The slot owning global searcher `id` under `assignment`, if any.
pub fn owner_of(assignment: &[(usize, Range<usize>)], id: usize) -> Option<usize> {
    assignment
        .iter()
        .find(|(_, r)| r.contains(&id))
        .map(|(slot, _)| *slot)
}

/// What happens to a node at a scheduled round of an elastic run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnKind {
    /// The node is killed: its searchers stop, its inboxes drain to the
    /// void, and the replicas it held are lost with it.
    Kill,
    /// The node (re)joins: its slice is handed back, warm-started from the
    /// replicated archives.
    Join,
}

/// One scheduled membership transition of an elastic virtual run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnEvent {
    /// Virtual round (1-based step of the round-robin loop) the event
    /// fires before.
    pub round: u64,
    /// The affected node slot.
    pub node: usize,
    /// Kill or join.
    pub kind: ChurnKind,
}

/// Parses a churn schedule of the form `kill:2@40,join:2@90` — comma
/// separated `kind:node@round` items. Events are sorted by round (stable
/// for ties, preserving written order).
pub fn parse_churn(spec: &str) -> Result<Vec<ChurnEvent>, String> {
    let mut events = Vec::new();
    for item in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        let (kind, rest) = item
            .split_once(':')
            .ok_or_else(|| format!("churn item '{item}' is not kind:node@round"))?;
        let kind = match kind {
            "kill" => ChurnKind::Kill,
            "join" => ChurnKind::Join,
            other => return Err(format!("unknown churn kind '{other}' (kill|join)")),
        };
        let (node, round) = rest
            .split_once('@')
            .ok_or_else(|| format!("churn item '{item}' is not kind:node@round"))?;
        let node: usize = node
            .parse()
            .map_err(|_| format!("bad node index '{node}' in '{item}'"))?;
        let round: u64 = round
            .parse()
            .map_err(|_| format!("bad round '{round}' in '{item}'"))?;
        events.push(ChurnEvent { round, node, kind });
    }
    events.sort_by_key(|e| e.round);
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("127.0.0.1:{}", 4000 + i)).collect()
    }

    #[test]
    fn transitions_bump_epoch_and_keep_slots_stable() {
        let mut m = Membership::new(&addrs(4));
        assert_eq!(m.epoch, 0);
        assert_eq!(m.live_count(), 4);
        assert!(m.mark_left(2));
        assert_eq!(m.epoch, 1);
        assert!(!m.mark_left(2), "double-leave is a no-op");
        assert_eq!(m.epoch, 1);
        assert_eq!(m.live_indices(), vec![0, 1, 3]);
        // Rejoin with the same address revives the same slot.
        assert_eq!(m.admit("127.0.0.1:4002"), 2);
        assert_eq!(m.epoch, 2);
        assert_eq!(m.live_count(), 4);
        // Admitting an already-live address changes nothing.
        assert_eq!(m.admit("127.0.0.1:4002"), 2);
        assert_eq!(m.epoch, 2);
    }

    #[test]
    fn new_address_takes_over_dead_slot_before_appending() {
        let mut m = Membership::new(&addrs(3));
        m.mark_left(1);
        assert_eq!(m.admit("10.0.0.9:5000"), 1, "dead slot reused");
        assert_eq!(m.members[1].addr, "10.0.0.9:5000");
        assert_eq!(m.admit("10.0.0.10:5001"), 3, "no dead slot: append");
        assert_eq!(m.members.len(), 4);
    }

    #[test]
    fn ring_successor_skips_dead_and_wraps() {
        let mut m = Membership::new(&addrs(4));
        assert_eq!(m.ring_successor(0), Some(1));
        assert_eq!(m.ring_successor(3), Some(0));
        m.mark_left(1);
        assert_eq!(m.ring_successor(0), Some(2));
        m.mark_left(2);
        m.mark_left(3);
        assert_eq!(m.ring_successor(0), None, "alone in the ring");
        assert_eq!(
            m.ring_successor(1),
            Some(0),
            "dead nodes still have a successor"
        );
    }

    #[test]
    fn slices_are_contiguous_cover_all_ids_and_favor_early_slots() {
        let a = assign_slices(16, &[0, 1, 2, 3]);
        assert_eq!(a, vec![(0, 0..4), (1, 4..8), (2, 8..12), (3, 12..16)]);
        let a = assign_slices(16, &[0, 1, 3]);
        assert_eq!(a, vec![(0, 0..6), (1, 6..11), (3, 11..16)]);
        // Remainder to the earliest live slots; union always covers 0..n.
        let mut covered = [false; 16];
        for (_, r) in &a {
            for id in r.clone() {
                assert!(!covered[id], "id {id} assigned twice");
                covered[id] = true;
            }
        }
        assert!(covered.iter().all(|&c| c));
        assert_eq!(owner_of(&a, 7), Some(1));
        assert_eq!(owner_of(&a, 11), Some(3));
        assert_eq!(owner_of(&a, 16), None);
        assert!(assign_slices(8, &[]).is_empty());
    }

    #[test]
    fn fixed_membership_assignment_matches_static_mesh() {
        // At full membership the assignment is exactly the static
        // `node k hosts k*s..(k+1)*s` contract.
        let s = 3;
        let a = assign_slices(4 * s, &[0, 1, 2, 3]);
        for (k, (slot, range)) in a.iter().enumerate() {
            assert_eq!(*slot, k);
            assert_eq!(*range, k * s..(k + 1) * s);
        }
    }

    #[test]
    fn churn_spec_parses_and_sorts() {
        let plan = parse_churn("join:2@90, kill:2@40,kill:5@40").expect("parses");
        assert_eq!(
            plan,
            vec![
                ChurnEvent {
                    round: 40,
                    node: 2,
                    kind: ChurnKind::Kill
                },
                ChurnEvent {
                    round: 40,
                    node: 5,
                    kind: ChurnKind::Kill
                },
                ChurnEvent {
                    round: 90,
                    node: 2,
                    kind: ChurnKind::Join
                },
            ]
        );
        assert!(parse_churn("reboot:1@5").is_err());
        assert!(parse_churn("kill:x@5").is_err());
        assert!(parse_churn("kill:1").is_err());
        assert!(parse_churn("").expect("empty ok").is_empty());
    }
}
