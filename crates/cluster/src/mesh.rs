//! Mesh orchestration: bootstrap, dispatch, gather, merge.
//!
//! A mesh is a static peer list — one `host:port` per node. The controller
//! ([`run_mesh`], wrapped by `clusterctl`) greets every node, sends each
//! its [`MeshJob`] (identical except for `node_index`), polls until the
//! nodes report `done`, gathers the per-node fronts, and merges them into
//! one global non-dominated archive. Nodes that die mid-run are simply
//! absent from the gather: the merged front is built from the survivors,
//! mirroring how a searcher's rotation routes around dead peers.

use crate::node::NodeReport;
use crate::proto::{ExchangeEntry, MeshJob, NodeMsg};
use crate::transport::PeerConn;
use pareto::Archive;
use std::io;
use std::time::{Duration, Instant};
use tsmo_core::FrontEntry;

/// A controller's connection to one node.
pub struct MeshClient {
    conn: PeerConn,
}

impl MeshClient {
    /// A lazily-connected client for the node at `addr`.
    pub fn new(addr: impl Into<String>, timeout: Duration) -> Self {
        Self {
            conn: PeerConn::new(addr, timeout),
        }
    }

    /// One request/response round trip.
    pub fn call(&self, req: &NodeMsg) -> io::Result<NodeMsg> {
        self.conn.call(req)
    }

    /// Waits until the node answers a `Hello`, retrying for `timeout`.
    pub fn wait_ready(&self, timeout: Duration) -> io::Result<()> {
        let deadline = Instant::now() + timeout;
        loop {
            match self.call(&NodeMsg::Hello { node: 0 }) {
                Ok(NodeMsg::HelloAck { .. }) => return Ok(()),
                Ok(other) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unexpected hello reply: {}", other.to_json()),
                    ))
                }
                Err(e) if Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(50)),
            }
        }
    }

    /// Dispatches this node's share of the job.
    pub fn start(&self, job: MeshJob) -> io::Result<()> {
        match self.call(&NodeMsg::Start { job })? {
            NodeMsg::Started => Ok(()),
            NodeMsg::Error { message } => Err(io::Error::other(message)),
            other => Err(unexpected(&other)),
        }
    }

    /// The node's lifecycle state (`idle`, `running`, `done`).
    pub fn status(&self) -> io::Result<String> {
        match self.call(&NodeMsg::Status)? {
            NodeMsg::NodeStatus { state } => Ok(state),
            other => Err(unexpected(&other)),
        }
    }

    /// The node's merged front and counters (valid once `done`).
    pub fn front(&self) -> io::Result<NodeReport> {
        match self.call(&NodeMsg::Front)? {
            NodeMsg::FrontReply {
                entries,
                evaluations,
                iterations,
            } => Ok(NodeReport {
                front: entries,
                evaluations,
                iterations,
            }),
            NodeMsg::Error { message } => Err(io::Error::other(message)),
            other => Err(unexpected(&other)),
        }
    }

    /// The node's recorded span/timeline trace for its last finished job
    /// (JSONL; empty when the node has not finished a job yet).
    pub fn trace(&self) -> io::Result<String> {
        match self.call(&NodeMsg::Trace)? {
            NodeMsg::TraceReply { jsonl } => Ok(jsonl),
            NodeMsg::Error { message } => Err(io::Error::other(message)),
            other => Err(unexpected(&other)),
        }
    }

    /// The node's Prometheus exposition.
    pub fn metrics(&self) -> io::Result<String> {
        match self.call(&NodeMsg::Metrics)? {
            NodeMsg::MetricsReply { prometheus } => Ok(prometheus),
            other => Err(unexpected(&other)),
        }
    }

    /// The node's metrics registry in mergeable form. Unlike
    /// [`MeshClient::metrics`] (a render-only exposition), the returned
    /// registry can be re-labeled and folded into a federated view with
    /// [`tsmo_obs::MetricsRegistry::merge`].
    pub fn metrics_registry(&self) -> io::Result<tsmo_obs::MetricsRegistry> {
        match self.call(&NodeMsg::MetricsFetch)? {
            NodeMsg::MetricsFetchReply { registry } => {
                tsmo_obs::MetricsRegistry::from_json(&registry)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
            }
            other => Err(unexpected(&other)),
        }
    }

    /// Requests cooperative cancellation of the node's job.
    pub fn stop(&self) -> io::Result<()> {
        match self.call(&NodeMsg::Stop)? {
            NodeMsg::Stopped => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Stops the node daemon.
    pub fn shutdown(&self) -> io::Result<()> {
        match self.call(&NodeMsg::Shutdown)? {
            NodeMsg::ShutdownOk => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// The node's membership view (epoch and member list).
    pub fn members(&self) -> io::Result<(u64, Vec<crate::membership::Member>)> {
        match self.call(&NodeMsg::Members)? {
            NodeMsg::MembersReply { epoch, members } => Ok((epoch, members)),
            NodeMsg::Error { message } => Err(io::Error::other(message)),
            other => Err(unexpected(&other)),
        }
    }

    /// Asks this node (as coordinator) to admit `addr` into the mesh.
    /// Returns the admission epoch, the assigned slot, the full member
    /// list, and the warm-start front.
    #[allow(clippy::type_complexity)]
    pub fn join(
        &self,
        addr: &str,
    ) -> io::Result<(
        u64,
        usize,
        Vec<crate::membership::Member>,
        Vec<ExchangeEntry>,
    )> {
        let req = NodeMsg::Join {
            addr: addr.to_string(),
        };
        match self.call(&req)? {
            NodeMsg::JoinAck {
                epoch,
                slot,
                members,
                warm,
            } => Ok((epoch, slot as usize, members, warm)),
            NodeMsg::Error { message } => Err(io::Error::other(message)),
            other => Err(unexpected(&other)),
        }
    }

    /// Asks this node (as coordinator) to retire slot `node` from the
    /// mesh. Returns the epoch after the transition.
    pub fn leave(&self, node: usize) -> io::Result<u64> {
        match self.call(&NodeMsg::Leave { node: node as u64 })? {
            NodeMsg::LeaveAck { epoch } => Ok(epoch),
            NodeMsg::Error { message } => Err(io::Error::other(message)),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches the replica this node holds of slot `node`, if any, as
    /// `(evaluations, entries)`.
    pub fn replica(&self, node: usize) -> io::Result<Option<(u64, Vec<ExchangeEntry>)>> {
        match self.call(&NodeMsg::ReplicaFetch { node: node as u64 })? {
            NodeMsg::ReplicaReply {
                found: true,
                evaluations,
                entries,
                ..
            } => Ok(Some((evaluations, entries))),
            NodeMsg::ReplicaReply { .. } => Ok(None),
            other => Err(unexpected(&other)),
        }
    }
}

fn unexpected(msg: &NodeMsg) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("unexpected node reply: {}", msg.to_json()),
    )
}

/// What one node contributed to a finished mesh run (`report` is `None`
/// for a node that died or never finished).
#[derive(Debug)]
pub struct NodeOutcome {
    /// The node's address.
    pub addr: String,
    /// The node's report, if it was gathered.
    pub report: Option<NodeReport>,
    /// `true` when the node itself was unreachable and its report was
    /// reconstructed from an archive replica held by a surviving peer.
    pub recovered: bool,
}

/// A finished distributed run.
#[derive(Debug)]
pub struct MeshOutcome {
    /// Global non-dominated merge of the surviving nodes' fronts.
    pub front: Vec<FrontEntry>,
    /// Evaluations summed over reporting nodes.
    pub evaluations: u64,
    /// Iterations summed over reporting nodes.
    pub iterations: u64,
    /// Per-node results, in peer-list order.
    pub nodes: Vec<NodeOutcome>,
    /// Slots whose fronts were recovered from replicas instead of gathered
    /// from the node itself.
    pub recovered_nodes: Vec<usize>,
}

/// Merges per-node fronts (already non-dominated within each node) into
/// the global archive, in node order — the same two-stage merge the
/// virtual network applies, so gather order is never a source of
/// divergence.
pub fn merge_node_fronts(node_fronts: &[Vec<FrontEntry>], capacity: usize) -> Vec<FrontEntry> {
    let mut merged = Archive::new(capacity);
    for front in node_fronts {
        for entry in front {
            merged.insert(entry.clone());
        }
    }
    merged.into_items()
}

/// Runs `job` across the mesh described by `job.peers`: greet, dispatch,
/// poll to completion (bounded by `wait`), gather, merge. `job.node_index`
/// is overwritten per node. Fails only when *no* node can be dispatched or
/// none reports a front; individual node deaths degrade the merge instead
/// of failing it.
pub fn run_mesh(job: &MeshJob, timeout: Duration, wait: Duration) -> io::Result<MeshOutcome> {
    if job.peers.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "mesh needs at least one peer",
        ));
    }
    let clients: Vec<MeshClient> = job
        .peers
        .iter()
        .map(|p| MeshClient::new(p.clone(), timeout))
        .collect();
    for client in &clients {
        client.wait_ready(timeout)?;
    }
    let mut started = vec![false; clients.len()];
    for (k, client) in clients.iter().enumerate() {
        let mut node_job = job.clone();
        node_job.node_index = k;
        match client.start(node_job) {
            Ok(()) => started[k] = true,
            Err(e) => eprintln!("mesh: node {k} ({}) rejected start: {e}", job.peers[k]),
        }
    }
    if !started.iter().any(|&s| s) {
        return Err(io::Error::other("no node accepted the job"));
    }

    // Poll until every dispatched, reachable node is done; nodes that die
    // mid-run stop answering and drop out of the wait.
    let deadline = Instant::now() + wait;
    loop {
        let mut pending = 0;
        for (k, client) in clients.iter().enumerate() {
            if started[k] && matches!(client.status().as_deref(), Ok("running")) {
                pending += 1;
            }
        }
        if pending == 0 {
            break;
        }
        if Instant::now() >= deadline {
            for client in &clients {
                let _ = client.stop();
            }
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                format!("{pending} node(s) still running after {wait:?}"),
            ));
        }
        std::thread::sleep(Duration::from_millis(50));
    }

    let mut nodes = Vec::with_capacity(clients.len());
    let mut node_fronts = Vec::new();
    let mut evaluations = 0;
    let mut iterations = 0;
    let mut recovered_nodes = Vec::new();
    for (k, client) in clients.iter().enumerate() {
        let mut report = client.front().ok();
        let mut recovered = false;
        // A dead node's front is not gone: its ring successor holds a
        // replicated checkpoint (when the job enabled replication). Ask
        // the survivors and keep the most advanced replica.
        if report.is_none() {
            if let Some((evals, entries)) = best_replica(&clients, k) {
                report = Some(NodeReport {
                    front: entries,
                    evaluations: evals,
                    iterations: 0, // iteration counts are not replicated
                });
                recovered = true;
                recovered_nodes.push(k);
            }
        }
        if let Some(report) = &report {
            evaluations += report.evaluations;
            iterations += report.iterations;
            node_fronts.push(report.front.iter().map(|e| e.to_front()).collect());
        }
        nodes.push(NodeOutcome {
            addr: job.peers[k].clone(),
            report,
            recovered,
        });
    }
    if node_fronts.is_empty() {
        return Err(io::Error::other("no node reported a front"));
    }
    // The node jobs all derive the archive capacity from the default
    // configuration, as does the merge.
    let capacity = tsmo_core::TsmoConfig::default().archive_capacity;
    let front = merge_node_fronts(&node_fronts, capacity);
    Ok(MeshOutcome {
        front,
        evaluations,
        iterations,
        nodes,
        recovered_nodes,
    })
}

/// The most advanced replica of slot `subject` held by any *other*
/// reachable node — highest replicated evaluation count wins, ties to the
/// earliest holder so the choice is deterministic.
fn best_replica(clients: &[MeshClient], subject: usize) -> Option<(u64, Vec<ExchangeEntry>)> {
    let mut best: Option<(u64, Vec<ExchangeEntry>)> = None;
    for (j, client) in clients.iter().enumerate() {
        if j == subject {
            continue;
        }
        if let Ok(Some((evals, entries))) = client.replica(subject) {
            if best.as_ref().is_none_or(|(b, _)| evals > *b) {
                best = Some((evals, entries));
            }
        }
    }
    best
}

/// Reads an unlabeled counter out of a Prometheus exposition (`name value`
/// lines; labeled series are skipped). `0` when absent.
pub fn prometheus_counter(prometheus: &str, name: &str) -> u64 {
    prometheus
        .lines()
        .filter_map(|line| {
            let rest = line.strip_prefix(name)?;
            let rest = rest.strip_prefix(' ')?;
            rest.trim().parse::<f64>().ok()
        })
        .next()
        .unwrap_or(0.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use vrptw::{Objectives, Solution};

    fn entry(d: f64, v: usize) -> FrontEntry {
        FrontEntry::new(
            Solution::from_routes(vec![vec![1]]),
            Objectives {
                distance: d,
                vehicles: v,
                tardiness: 0.0,
            },
        )
    }

    #[test]
    fn merge_keeps_only_mutually_non_dominated_entries() {
        let fronts = vec![
            vec![entry(100.0, 2), entry(90.0, 3)],
            vec![entry(100.0, 3)], // dominated by (100, 2) and (90, 3)
            vec![entry(80.0, 4)],
        ];
        let merged = merge_node_fronts(&fronts, 20);
        let mut dists: Vec<f64> = merged.iter().map(|e| e.objectives.distance).collect();
        dists.sort_by(f64::total_cmp);
        assert_eq!(dists, vec![80.0, 90.0, 100.0]);
        assert_eq!(
            pareto::non_dominated_indices(&merged).len(),
            merged.len(),
            "merge result must be mutually non-dominated"
        );
    }

    #[test]
    fn prometheus_counter_skips_labeled_series() {
        let text = "tsmo_exchanges_received_total{peer=\"3\"} 9\ntsmo_exchanges_received_total 4\n";
        assert_eq!(prometheus_counter(text, "tsmo_exchanges_received_total"), 4);
        assert_eq!(prometheus_counter(text, "tsmo_absent_total"), 0);
    }

    #[test]
    fn empty_mesh_is_rejected() {
        let err = run_mesh(
            &MeshJob::default(),
            Duration::from_millis(10),
            Duration::from_millis(10),
        )
        .expect_err("no peers");
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }
}
