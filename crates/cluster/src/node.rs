//! The node daemon: hosts one node's share of a distributed collaborative
//! search and serves the node protocol.
//!
//! A node accepts [`NodeMsg::Start`] with a [`MeshJob`], spawns one
//! [`CollabSearcher`] thread per local searcher, and routes incoming
//! [`NodeMsg::Exchange`] frames into the addressed searcher's inbox. The
//! searchers' outgoing links mix transports: a local peer gets the plain
//! in-process channel, a remote peer a [`TcpTransport`] over the node's
//! shared per-peer connection — the rotation cannot tell the difference.
//!
//! # Determinism contract
//!
//! Node `k` of an `n`-node mesh with `s` searchers per node hosts the
//! global searcher ids `k*s .. (k+1)*s`. It derives the *full* stream set
//! `streams(seed, n*s)` and, for each local id, draws the communication
//! list first and the parameter perturbation second from that id's own
//! stream — the same order `CollaborativeTsmo` and the virtual mesh use,
//! so all three builds agree on every list and every parameter.

use crate::proto::{ExchangeEntry, MeshJob, NodeMsg};
use crate::transport::{PeerConn, TcpTransport, DEFAULT_NET_TIMEOUT};
use crossbeam::channel::{unbounded, Sender};
use deme::multisearch::{comm_order, ChannelTransport, Endpoint, Transport};
use detrand::{streams, Xoshiro256StarStar};
use pareto::Archive;
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;
use tsmo_core::{searcher_cfg, CancelToken, CollabSearcher, FrontEntry, TsmoConfig};
use tsmo_faults::{FaultConfig, FaultHook, FaultPlan};
use tsmo_obs::{metrics::names, MemoryRecorder, Recorder};

/// Node daemon configuration.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Connect / read / write timeout for links to peer nodes.
    pub net_timeout: Duration,
}

impl Default for NodeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            net_timeout: DEFAULT_NET_TIMEOUT,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Idle,
    Running,
    Done,
}

/// What a finished node job reports.
#[derive(Debug, Clone)]
pub struct NodeReport {
    /// Non-dominated merge of the node's searcher archives.
    pub front: Vec<ExchangeEntry>,
    /// Evaluations consumed across the node's searchers.
    pub evaluations: u64,
    /// Iterations performed across the node's searchers.
    pub iterations: u64,
}

struct NodeState {
    phase: Phase,
    node_index: Option<usize>,
    /// Inboxes of the locally hosted searchers, by global searcher id.
    inboxes: HashMap<usize, Sender<FrontEntry>>,
    cancel: Option<CancelToken>,
    runner: Option<JoinHandle<()>>,
    report: Option<NodeReport>,
    /// JSONL span/timeline trace of the last finished job, served to
    /// `NodeMsg::Trace` so a controller can merge the mesh-wide trace.
    last_trace: Option<String>,
}

struct NodeShared {
    addr: SocketAddr,
    net_timeout: Duration,
    recorder: Arc<MemoryRecorder>,
    state: Mutex<NodeState>,
    stopping: AtomicBool,
    /// Clones of the accepted sockets, so a stop can unblock the
    /// connection threads parked in `read_frame`.
    conns: Mutex<Vec<TcpStream>>,
}

impl NodeShared {
    fn state(&self) -> MutexGuard<'_, NodeState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// A running node daemon. [`halt`](Noded::halt) stops it; dropping the
/// handle does not.
pub struct Noded {
    shared: Arc<NodeShared>,
    acceptor: Option<JoinHandle<()>>,
}

impl Noded {
    /// Binds the listener and starts serving the node protocol.
    pub fn start(config: NodeConfig) -> io::Result<Noded> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(NodeShared {
            addr,
            net_timeout: config.net_timeout,
            recorder: Arc::new(MemoryRecorder::metrics_only()),
            state: Mutex::new(NodeState {
                phase: Phase::Idle,
                node_index: None,
                inboxes: HashMap::new(),
                cancel: None,
                runner: None,
                report: None,
                last_trace: None,
            }),
            stopping: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
        });
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };
        Ok(Noded {
            shared,
            acceptor: Some(acceptor),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Prometheus exposition of the node's telemetry.
    pub fn prometheus(&self) -> String {
        self.shared.recorder.prometheus()
    }

    /// Blocks until the daemon stops — a wire `Shutdown` frame ends the
    /// accept loop — then joins the worker threads.
    pub fn wait(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        let runner = self.shared.state().runner.take();
        if let Some(runner) = runner {
            let _ = runner.join();
        }
    }

    /// Stops the daemon: cancels a running job, closes the listener, and
    /// joins the acceptor. Searcher threads of a cancelled job finish
    /// their current iteration and are joined by the runner thread.
    pub fn halt(mut self) {
        request_stop(&self.shared);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        let runner = self.shared.state().runner.take();
        if let Some(runner) = runner {
            let _ = runner.join();
        }
    }
}

/// Flags the daemon down, cancels any running job, and pokes the listener
/// so its blocking `accept` returns.
fn request_stop(shared: &Arc<NodeShared>) {
    shared.stopping.store(true, Ordering::Release);
    if let Some(cancel) = shared.state().cancel.clone() {
        cancel.cancel();
    }
    // Unblock connection threads parked in `read_frame`, then poke the
    // listener so its blocking `accept` returns and sees the flag.
    let conns = std::mem::take(
        &mut *shared
            .conns
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner),
    );
    for conn in conns {
        let _ = conn.shutdown(std::net::Shutdown::Both);
    }
    let _ = TcpStream::connect_timeout(&shared.addr, Duration::from_millis(500));
}

fn accept_loop(listener: &TcpListener, shared: &Arc<NodeShared>) {
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if shared.stopping.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(shared);
        conns.push(std::thread::spawn(move || serve_conn(stream, &shared)));
    }
    for conn in conns {
        let _ = conn.join();
    }
}

fn serve_conn(mut stream: TcpStream, shared: &Arc<NodeShared>) {
    let _ = stream.set_nodelay(true);
    if let Ok(clone) = stream.try_clone() {
        shared
            .conns
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(clone);
    }
    loop {
        let text = match tsmo_obs::frame::read_frame(&mut stream) {
            Ok(Some(text)) => text,
            Ok(None) | Err(_) => return, // client hung up
        };
        let reply = match NodeMsg::parse(&text) {
            Ok(msg) => handle(msg, shared),
            Err(e) => NodeMsg::Error { message: e },
        };
        let shutting_down = reply == NodeMsg::ShutdownOk;
        if tsmo_obs::frame::write_frame(&mut stream, &reply.to_json()).is_err() {
            return;
        }
        if shutting_down {
            request_stop(shared);
            return;
        }
    }
}

fn handle(msg: NodeMsg, shared: &Arc<NodeShared>) -> NodeMsg {
    match msg {
        NodeMsg::Hello { .. } => {
            let index = shared.state().node_index;
            NodeMsg::HelloAck {
                node: index.map_or(u64::MAX, |i| i as u64),
            }
        }
        NodeMsg::Exchange { from, to, entry } => {
            let state = shared.state();
            match state.inboxes.get(&(to as usize)) {
                Some(tx) if tx.send(entry.to_front()).is_ok() => {
                    drop(state);
                    // Per-peer attribution happens here, where the sender
                    // id is known; the receiving searcher's drain counts
                    // the unlabeled totals — splitting the two keeps every
                    // exchange counted exactly once per metric.
                    shared
                        .recorder
                        .counter_add(&names::exchanges_received_from_peer(from as usize), 1);
                    NodeMsg::ExchangeAck
                }
                _ => NodeMsg::Error {
                    message: format!("searcher {to} is not accepting exchanges here"),
                },
            }
        }
        NodeMsg::Start { job } => start_job(job, shared),
        NodeMsg::Status => {
            let phase = shared.state().phase;
            NodeMsg::NodeStatus {
                state: match phase {
                    Phase::Idle => "idle",
                    Phase::Running => "running",
                    Phase::Done => "done",
                }
                .to_string(),
            }
        }
        NodeMsg::Front => {
            let state = shared.state();
            match (&state.phase, &state.report) {
                (Phase::Done, Some(report)) => NodeMsg::FrontReply {
                    entries: report.front.clone(),
                    evaluations: report.evaluations,
                    iterations: report.iterations,
                },
                _ => NodeMsg::Error {
                    message: "node has no finished job".to_string(),
                },
            }
        }
        NodeMsg::Metrics => NodeMsg::MetricsReply {
            prometheus: shared.recorder.prometheus(),
        },
        NodeMsg::Trace => NodeMsg::TraceReply {
            jsonl: shared.state().last_trace.clone().unwrap_or_default(),
        },
        NodeMsg::Stop => {
            if let Some(cancel) = shared.state().cancel.clone() {
                cancel.cancel();
            }
            NodeMsg::Stopped
        }
        NodeMsg::Shutdown => NodeMsg::ShutdownOk,
        // Reply-shaped messages are not requests.
        other => NodeMsg::Error {
            message: format!("unexpected message: {}", other.to_json()),
        },
    }
}

fn start_job(job: MeshJob, shared: &Arc<NodeShared>) -> NodeMsg {
    if job.searchers_per_node == 0 || job.node_index >= job.peers.len() {
        return NodeMsg::Error {
            message: "bad job: need searchers_per_node > 0 and node_index < peers.len()"
                .to_string(),
        };
    }
    let instance = match vrptw::solomon::parse(&job.instance_text) {
        Ok(inst) => Arc::new(inst),
        Err(e) => {
            return NodeMsg::Error {
                message: format!("bad instance: {e}"),
            }
        }
    };
    let mut state = shared.state();
    if state.phase == Phase::Running {
        return NodeMsg::Error {
            message: "a job is already running".to_string(),
        };
    }
    if let Some(old) = state.runner.take() {
        drop(state);
        let _ = old.join();
        state = shared.state();
    }
    let s = job.searchers_per_node;
    let local_ids: Vec<usize> = (job.node_index * s..(job.node_index + 1) * s).collect();
    let mut receivers = HashMap::new();
    state.inboxes.clear();
    for &id in &local_ids {
        let (tx, rx) = unbounded::<FrontEntry>();
        state.inboxes.insert(id, tx);
        receivers.insert(id, rx);
    }
    let cancel = CancelToken::never();
    state.cancel = Some(cancel.clone());
    state.phase = Phase::Running;
    state.node_index = Some(job.node_index);
    state.report = None;
    let runner = {
        let shared = Arc::clone(shared);
        std::thread::spawn(move || {
            let (report, trace) = run_node_job(&job, &instance, receivers, cancel, &shared);
            let mut state = shared.state();
            state.inboxes.clear();
            state.report = Some(report);
            state.last_trace = Some(trace);
            state.phase = Phase::Done;
        })
    };
    state.runner = Some(runner);
    NodeMsg::Started
}

/// Runs this node's searchers to completion and merges their archives.
/// Returns the report plus the JSONL span/timeline trace of the run.
fn run_node_job(
    job: &MeshJob,
    instance: &Arc<vrptw::Instance>,
    mut receivers: HashMap<usize, crossbeam::channel::Receiver<FrontEntry>>,
    cancel: CancelToken,
    shared: &Arc<NodeShared>,
) -> (NodeReport, String) {
    let nodes = job.peers.len();
    let s = job.searchers_per_node;
    let n_total = nodes * s;
    // Every node stamps its spans with the job's one trace id; a zero id
    // falls back to deriving it from the seed, which all nodes share, so
    // the whole mesh still agrees on the id.
    let trace_id = if job.trace_id != 0 {
        job.trace_id
    } else {
        tsmo_obs::trace_id_from_seed(job.seed)
    };
    let base_cfg = TsmoConfig {
        max_evaluations: job.max_evaluations,
        neighborhood_size: job.neighborhood_size.max(2),
        stagnation_limit: job.stagnation_limit.max(1),
        trace_id: Some(trace_id),
        timeline_every: Some(job.neighborhood_size.max(2) as u64 * 10),
        ..TsmoConfig::default()
    }
    .with_seed(job.seed);
    let hook: Arc<dyn FaultHook> = if job.fault_rate > 0.0 {
        FaultPlan::shared(FaultConfig::exchange_only(job.fault_seed, job.fault_rate))
    } else {
        tsmo_faults::none()
    };
    // The searchers record onto a per-job event recorder (spans and
    // timeline samples included); its metrics fold into the daemon's
    // long-lived registry after the run, so `Metrics` keeps the lifetime
    // totals while `Trace` serves just this job's stream.
    let events = Arc::new(MemoryRecorder::new().with_span_events());
    let recorder: Arc<dyn Recorder> = Arc::clone(&events) as Arc<dyn Recorder>;
    // One shared connection per remote node; all local searchers multiplex
    // their links to that node's searchers over it.
    let conns: HashMap<usize, Arc<PeerConn>> = (0..nodes)
        .filter(|&k| k != job.node_index)
        .map(|k| {
            (
                k,
                Arc::new(PeerConn::new(job.peers[k].clone(), shared.net_timeout)),
            )
        })
        .collect();
    let local_txs: HashMap<usize, Sender<FrontEntry>> = shared.state().inboxes.clone();

    let mut rngs = streams(job.seed, n_total);
    let results: Vec<_> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(s);
        let local = &mut rngs[job.node_index * s..(job.node_index + 1) * s];
        for (offset, slot) in local.iter_mut().enumerate() {
            let id = job.node_index * s + offset;
            // Draw order contract: communication list first, perturbation
            // second, both from this id's own stream.
            let order = comm_order(n_total, id, slot);
            let cfg = searcher_cfg(&base_cfg, id, slot);
            let rng = std::mem::replace(slot, Xoshiro256StarStar::seed_from_u64(0));
            let links: Vec<(usize, Box<dyn Transport<FrontEntry>>)> = order
                .into_iter()
                .map(|p| {
                    let tx: Box<dyn Transport<FrontEntry>> = match local_txs.get(&p) {
                        Some(tx) => Box::new(ChannelTransport::new(tx.clone())),
                        None => Box::new(TcpTransport::new(
                            Arc::clone(&conns[&(p / s)]),
                            id,
                            p,
                            Arc::clone(&recorder),
                        )),
                    };
                    (p, tx)
                })
                .collect();
            let inbox = receivers.remove(&id).expect("inbox created at start");
            let mut endpoint = Endpoint::from_links(id, inbox, links);
            let instance = Arc::clone(instance);
            let recorder = Arc::clone(&recorder);
            let hook = Arc::clone(&hook);
            let cancel = cancel.clone();
            handles.push(scope.spawn(move || {
                let mut searcher =
                    CollabSearcher::new(instance, cfg, rng, recorder, id, cancel, hook);
                while searcher.step_once(&mut endpoint) {}
                searcher.finish(&mut endpoint)
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("searcher panicked"))
            .collect()
    });

    let mut merged = Archive::new(base_cfg.archive_capacity);
    let mut evaluations = 0;
    let mut iterations = 0u64;
    for result in results {
        evaluations += result.evaluations;
        iterations += result.iterations as u64;
        for entry in result.archive {
            merged.insert(entry);
        }
    }
    shared.recorder.merge_metrics_from(&events);
    let report = NodeReport {
        front: merged
            .into_items()
            .iter()
            .map(ExchangeEntry::from_front)
            .collect(),
        evaluations,
        iterations,
    };
    (report, events.events_jsonl())
}
