//! The node daemon: hosts one node's share of a distributed collaborative
//! search and serves the node protocol.
//!
//! A node accepts [`NodeMsg::Start`] with a [`MeshJob`], spawns one
//! [`CollabSearcher`] thread per local searcher, and routes incoming
//! [`NodeMsg::Exchange`] frames into the addressed searcher's inbox. The
//! searchers' outgoing links mix transports: a local peer gets the plain
//! in-process channel, a remote peer a [`TcpTransport`] over the node's
//! shared per-peer connection — the rotation cannot tell the difference.
//!
//! # Determinism contract
//!
//! Node `k` of an `n`-node mesh with `s` searchers per node hosts the
//! global searcher ids `k*s .. (k+1)*s`. It derives the *full* stream set
//! `streams(seed, n*s)` and, for each local id, draws the communication
//! list first and the parameter perturbation second from that id's own
//! stream — the same order `CollaborativeTsmo` and the virtual mesh use,
//! so all three builds agree on every list and every parameter.

use crate::membership::{Member, Membership};
use crate::proto::{ExchangeEntry, MeshJob, NodeMsg};
use crate::transport::{PeerConn, RouteTable, TcpTransport, DEFAULT_NET_TIMEOUT};
use crossbeam::channel::{unbounded, Sender};
use deme::multisearch::{comm_order, ChannelTransport, Endpoint, Transport};
use detrand::{streams, Xoshiro256StarStar};
use pareto::Archive;
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;
use tsmo_core::{searcher_cfg, CancelToken, CollabSearcher, FrontEntry, TsmoConfig};
use tsmo_faults::{FaultConfig, FaultHook, FaultPlan};
use tsmo_obs::{metrics::names, MemoryRecorder, Recorder};

/// Default bound on how long an accepted connection may stay silent before
/// its first frame; see [`NodeConfig::peer_timeout`].
pub const DEFAULT_PEER_TIMEOUT: Duration = Duration::from_secs(10);

/// Node daemon configuration.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Connect / read / write timeout for links to peer nodes.
    pub net_timeout: Duration,
    /// Read timeout applied to an accepted connection until its first
    /// frame arrives: a peer that connects and never speaks is dropped
    /// after this long instead of parking a serve thread forever. Once the
    /// first frame lands the peer is known good and reads block freely.
    pub peer_timeout: Duration,
}

impl Default for NodeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            net_timeout: DEFAULT_NET_TIMEOUT,
            peer_timeout: DEFAULT_PEER_TIMEOUT,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Idle,
    Running,
    Done,
}

/// What a finished node job reports.
#[derive(Debug, Clone)]
pub struct NodeReport {
    /// Non-dominated merge of the node's searcher archives.
    pub front: Vec<ExchangeEntry>,
    /// Evaluations consumed across the node's searchers.
    pub evaluations: u64,
    /// Iterations performed across the node's searchers.
    pub iterations: u64,
}

struct NodeState {
    phase: Phase,
    node_index: Option<usize>,
    /// Inboxes of the locally hosted searchers, by global searcher id.
    inboxes: HashMap<usize, Sender<FrontEntry>>,
    cancel: Option<CancelToken>,
    runner: Option<JoinHandle<()>>,
    report: Option<NodeReport>,
    /// JSONL span/timeline trace of the last finished job, served to
    /// `NodeMsg::Trace` so a controller can merge the mesh-wide trace.
    last_trace: Option<String>,
}

/// One archive checkpoint held on behalf of another node (its ring
/// predecessor ships them here). Served to `ReplicaFetch` so a controller
/// can recover a dead node's front.
struct ReplicaHeld {
    epoch: u64,
    evaluations: u64,
    entries: Vec<ExchangeEntry>,
}

struct NodeShared {
    addr: SocketAddr,
    net_timeout: Duration,
    peer_timeout: Duration,
    recorder: Arc<MemoryRecorder>,
    state: Mutex<NodeState>,
    stopping: AtomicBool,
    /// Clones of the accepted sockets, so a stop can unblock the
    /// connection threads parked in `read_frame`.
    conns: Mutex<Vec<TcpStream>>,
    /// The mesh membership view of the current job (`None` while idle).
    /// Updated by `Join`/`Leave` (coordinator) and `MemberUpdate`
    /// (broadcast); mirrored into `routes` so exchange links follow it.
    membership: Mutex<Option<Membership>>,
    /// Slot-addressed routes of the running job's exchange links.
    routes: Mutex<Option<Arc<RouteTable>>>,
    /// Checkpoints held for other nodes, by their slot.
    replicas: Mutex<HashMap<usize, ReplicaHeld>>,
    /// The running job's continuously updated merged front, published by
    /// the searcher threads and read by the checkpoint replicator.
    live: Mutex<Archive<FrontEntry>>,
    /// Evaluations consumed so far by the running job's searchers.
    live_evals: AtomicU64,
}

impl NodeShared {
    fn state(&self) -> MutexGuard<'_, NodeState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn membership(&self) -> MutexGuard<'_, Option<Membership>> {
        self.membership
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn routes(&self) -> Option<Arc<RouteTable>> {
        self.routes
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    fn replicas(&self) -> MutexGuard<'_, HashMap<usize, ReplicaHeld>> {
        self.replicas
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn live(&self) -> MutexGuard<'_, Archive<FrontEntry>> {
        self.live
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Publishes a searcher's current archive into the live front and
    /// accounts `delta` newly consumed evaluations.
    fn publish_live(&self, snapshot: Vec<FrontEntry>, delta: u64) {
        self.live().absorb(snapshot);
        self.live_evals.fetch_add(delta, Ordering::Relaxed);
    }
}

/// A running node daemon. [`halt`](Noded::halt) stops it; dropping the
/// handle does not.
pub struct Noded {
    shared: Arc<NodeShared>,
    acceptor: Option<JoinHandle<()>>,
}

impl Noded {
    /// Binds the listener and starts serving the node protocol.
    pub fn start(config: NodeConfig) -> io::Result<Noded> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(NodeShared {
            addr,
            net_timeout: config.net_timeout,
            peer_timeout: config.peer_timeout,
            recorder: Arc::new(MemoryRecorder::metrics_only()),
            state: Mutex::new(NodeState {
                phase: Phase::Idle,
                node_index: None,
                inboxes: HashMap::new(),
                cancel: None,
                runner: None,
                report: None,
                last_trace: None,
            }),
            stopping: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
            membership: Mutex::new(None),
            routes: Mutex::new(None),
            replicas: Mutex::new(HashMap::new()),
            live: Mutex::new(Archive::new(TsmoConfig::default().archive_capacity)),
            live_evals: AtomicU64::new(0),
        });
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };
        Ok(Noded {
            shared,
            acceptor: Some(acceptor),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Prometheus exposition of the node's telemetry.
    pub fn prometheus(&self) -> String {
        self.shared.recorder.prometheus()
    }

    /// Blocks until the daemon stops — a wire `Shutdown` frame ends the
    /// accept loop — then joins the worker threads.
    pub fn wait(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        let runner = self.shared.state().runner.take();
        if let Some(runner) = runner {
            let _ = runner.join();
        }
    }

    /// Stops the daemon: cancels a running job, closes the listener, and
    /// joins the acceptor. Searcher threads of a cancelled job finish
    /// their current iteration and are joined by the runner thread.
    pub fn halt(mut self) {
        request_stop(&self.shared);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        let runner = self.shared.state().runner.take();
        if let Some(runner) = runner {
            let _ = runner.join();
        }
    }
}

/// Flags the daemon down, cancels any running job, and pokes the listener
/// so its blocking `accept` returns.
fn request_stop(shared: &Arc<NodeShared>) {
    shared.stopping.store(true, Ordering::Release);
    if let Some(cancel) = shared.state().cancel.clone() {
        cancel.cancel();
    }
    // Unblock connection threads parked in `read_frame`, then poke the
    // listener so its blocking `accept` returns and sees the flag.
    let conns = std::mem::take(
        &mut *shared
            .conns
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner),
    );
    for conn in conns {
        let _ = conn.shutdown(std::net::Shutdown::Both);
    }
    let _ = TcpStream::connect_timeout(&shared.addr, Duration::from_millis(500));
}

fn accept_loop(listener: &TcpListener, shared: &Arc<NodeShared>) {
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if shared.stopping.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(shared);
        conns.push(std::thread::spawn(move || serve_conn(stream, &shared)));
    }
    for conn in conns {
        let _ = conn.join();
    }
}

fn serve_conn(stream: TcpStream, shared: &Arc<NodeShared>) {
    let _ = stream.set_nodelay(true);
    if let Ok(clone) = stream.try_clone() {
        shared
            .conns
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(clone);
    }
    serve_frames(&stream, shared);
    // A clone of this socket lives in `conns` for halt(); dropping our
    // handle alone would leave the connection half-open, so shut it down
    // explicitly — the client sees EOF the moment we stop serving it.
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

fn serve_frames(mut stream: &TcpStream, shared: &Arc<NodeShared>) {
    // Until the first frame arrives the peer has proven nothing; bound the
    // read so a half-open handshake cannot park this thread forever.
    let _ = stream.set_read_timeout(Some(shared.peer_timeout));
    let mut awaiting_first_frame = true;
    loop {
        let text = match tsmo_obs::frame::read_frame(&mut stream) {
            Ok(Some(text)) => text,
            Ok(None) | Err(_) => return, // client hung up (or never spoke)
        };
        if awaiting_first_frame {
            awaiting_first_frame = false;
            let _ = stream.set_read_timeout(None);
        }
        let reply = match NodeMsg::parse(&text) {
            Ok(msg) => handle(msg, shared),
            Err(e) => NodeMsg::Error { message: e },
        };
        let shutting_down = reply == NodeMsg::ShutdownOk;
        if tsmo_obs::frame::write_frame(&mut stream, &reply.to_json()).is_err() {
            return;
        }
        if shutting_down {
            request_stop(shared);
            return;
        }
    }
}

fn handle(msg: NodeMsg, shared: &Arc<NodeShared>) -> NodeMsg {
    match msg {
        NodeMsg::Hello { .. } => {
            let index = shared.state().node_index;
            NodeMsg::HelloAck {
                node: index.map_or(u64::MAX, |i| i as u64),
            }
        }
        NodeMsg::Exchange { from, to, entry } => {
            let state = shared.state();
            match state.inboxes.get(&(to as usize)) {
                Some(tx) if tx.send(entry.to_front()).is_ok() => {
                    drop(state);
                    // Per-peer attribution happens here, where the sender
                    // id is known; the receiving searcher's drain counts
                    // the unlabeled totals — splitting the two keeps every
                    // exchange counted exactly once per metric.
                    shared
                        .recorder
                        .counter_add(&names::exchanges_received_from_peer(from as usize), 1);
                    NodeMsg::ExchangeAck
                }
                _ => NodeMsg::Error {
                    message: format!("searcher {to} is not accepting exchanges here"),
                },
            }
        }
        NodeMsg::Start { job } => start_job(job, shared),
        NodeMsg::Status => {
            let phase = shared.state().phase;
            NodeMsg::NodeStatus {
                state: match phase {
                    Phase::Idle => "idle",
                    Phase::Running => "running",
                    Phase::Done => "done",
                }
                .to_string(),
            }
        }
        NodeMsg::Front => {
            let state = shared.state();
            match (&state.phase, &state.report) {
                (Phase::Done, Some(report)) => NodeMsg::FrontReply {
                    entries: report.front.clone(),
                    evaluations: report.evaluations,
                    iterations: report.iterations,
                },
                _ => NodeMsg::Error {
                    message: "node has no finished job".to_string(),
                },
            }
        }
        NodeMsg::Metrics => NodeMsg::MetricsReply {
            prometheus: shared.recorder.prometheus(),
        },
        NodeMsg::MetricsFetch => NodeMsg::MetricsFetchReply {
            registry: shared.recorder.metrics().to_json(),
        },
        NodeMsg::Trace => NodeMsg::TraceReply {
            jsonl: shared.state().last_trace.clone().unwrap_or_default(),
        },
        NodeMsg::Join { addr } => admit_member(&addr, shared),
        NodeMsg::Leave { node } => retire_member(node as usize, shared),
        NodeMsg::MemberUpdate { epoch, members } => {
            let mut guard = shared.membership();
            match guard.as_mut() {
                Some(view) => {
                    // Idempotent by epoch: stale or duplicate broadcasts
                    // leave the view untouched.
                    if epoch > view.epoch {
                        view.epoch = epoch;
                        view.members = members;
                        shared
                            .recorder
                            .gauge_max(names::MEMBERSHIP_EPOCH, epoch as f64);
                        let members = view.members.clone();
                        drop(guard);
                        sync_routes(shared, &members);
                        return NodeMsg::MemberUpdateAck { epoch };
                    }
                    NodeMsg::MemberUpdateAck { epoch: view.epoch }
                }
                None => NodeMsg::Error {
                    message: "no membership view: no job was started here".to_string(),
                },
            }
        }
        NodeMsg::Members => match shared.membership().as_ref() {
            Some(view) => NodeMsg::MembersReply {
                epoch: view.epoch,
                members: view.members.clone(),
            },
            None => NodeMsg::Error {
                message: "no membership view: no job was started here".to_string(),
            },
        },
        NodeMsg::Checkpoint {
            from,
            epoch,
            evaluations,
            entries,
        } => {
            // Checkpoints from one predecessor arrive in order over its
            // serialized connection, so the newest write wins.
            shared.replicas().insert(
                from as usize,
                ReplicaHeld {
                    epoch,
                    evaluations,
                    entries,
                },
            );
            shared.recorder.counter_add(names::ARCHIVES_REPLICATED, 1);
            NodeMsg::CheckpointAck
        }
        NodeMsg::ReplicaFetch { node } => {
            let replicas = shared.replicas();
            match replicas.get(&(node as usize)) {
                Some(r) => NodeMsg::ReplicaReply {
                    node,
                    epoch: r.epoch,
                    evaluations: r.evaluations,
                    entries: r.entries.clone(),
                    found: true,
                },
                None => NodeMsg::ReplicaReply {
                    node,
                    epoch: 0,
                    evaluations: 0,
                    entries: Vec::new(),
                    found: false,
                },
            }
        }
        NodeMsg::Stop => {
            if let Some(cancel) = shared.state().cancel.clone() {
                cancel.cancel();
            }
            NodeMsg::Stopped
        }
        NodeMsg::Shutdown => NodeMsg::ShutdownOk,
        // Reply-shaped messages are not requests.
        other => NodeMsg::Error {
            message: format!("unexpected message: {}", other.to_json()),
        },
    }
}

/// Admits `addr` into the membership view (coordinator side of a join):
/// revive-or-append the slot, broadcast the new view to the other live
/// members, and answer with the slot, the view, and this node's current
/// merged front so the joiner warm-starts instead of from scratch.
fn admit_member(addr: &str, shared: &Arc<NodeShared>) -> NodeMsg {
    let (epoch, slot, members) = {
        let mut guard = shared.membership();
        let Some(view) = guard.as_mut() else {
            return NodeMsg::Error {
                message: "cannot admit: no membership view (no job started)".to_string(),
            };
        };
        let slot = view.admit(addr);
        (view.epoch, slot, view.members.clone())
    };
    shared.recorder.counter_add(names::MEMBERS_JOINED, 1);
    shared
        .recorder
        .gauge_max(names::MEMBERSHIP_EPOCH, epoch as f64);
    sync_routes(shared, &members);
    broadcast_view(shared, epoch, &members, slot);
    let warm: Vec<ExchangeEntry> = shared
        .live()
        .items()
        .iter()
        .map(ExchangeEntry::from_front)
        .collect();
    NodeMsg::JoinAck {
        epoch,
        slot: slot as u64,
        members,
        warm,
    }
}

/// Marks slot `node` as departed (coordinator side of a leave) and
/// broadcasts the new view. Idempotent: retiring a dead slot changes
/// nothing and re-reports the current epoch.
fn retire_member(node: usize, shared: &Arc<NodeShared>) -> NodeMsg {
    let (changed, epoch, members) = {
        let mut guard = shared.membership();
        let Some(view) = guard.as_mut() else {
            return NodeMsg::Error {
                message: "cannot retire: no membership view (no job started)".to_string(),
            };
        };
        let changed = view.mark_left(node);
        (changed, view.epoch, view.members.clone())
    };
    if changed {
        shared.recorder.counter_add(names::MEMBERS_LEFT, 1);
        shared
            .recorder
            .gauge_max(names::MEMBERSHIP_EPOCH, epoch as f64);
        sync_routes(shared, &members);
        broadcast_view(shared, epoch, &members, node);
    }
    NodeMsg::LeaveAck { epoch }
}

/// Mirrors a membership view into the running job's route table: live
/// slots route to their address, dead slots to nothing — so exchange
/// sends to a departed member fail immediately instead of timing out.
fn sync_routes(shared: &Arc<NodeShared>, members: &[Member]) {
    if let Some(routes) = shared.routes() {
        routes.update(
            members
                .iter()
                .map(|m| {
                    if m.live {
                        m.addr.clone()
                    } else {
                        String::new()
                    }
                })
                .collect(),
        );
    }
}

/// Best-effort broadcast of a new view to every live member except this
/// node and `except` (the subject of the transition, who learns it from
/// the ack instead). A member that cannot be reached stays on its stale
/// view until the next broadcast; its sends fail over in the meantime.
fn broadcast_view(shared: &Arc<NodeShared>, epoch: u64, members: &[Member], except: usize) {
    let own_slot = shared.state().node_index;
    for (slot, member) in members.iter().enumerate() {
        if !member.live || slot == except || Some(slot) == own_slot {
            continue;
        }
        let update = NodeMsg::MemberUpdate {
            epoch,
            members: members.to_vec(),
        };
        let _ = PeerConn::new(member.addr.clone(), shared.net_timeout).call(&update);
    }
}

fn start_job(job: MeshJob, shared: &Arc<NodeShared>) -> NodeMsg {
    if job.searchers_per_node == 0 || job.node_index >= job.peers.len() {
        return NodeMsg::Error {
            message: "bad job: need searchers_per_node > 0 and node_index < peers.len()"
                .to_string(),
        };
    }
    let instance = match vrptw::solomon::parse(&job.instance_text) {
        Ok(inst) => Arc::new(inst),
        Err(e) => {
            return NodeMsg::Error {
                message: format!("bad instance: {e}"),
            }
        }
    };
    let mut state = shared.state();
    if state.phase == Phase::Running {
        return NodeMsg::Error {
            message: "a job is already running".to_string(),
        };
    }
    if let Some(old) = state.runner.take() {
        drop(state);
        let _ = old.join();
        state = shared.state();
    }
    let s = job.searchers_per_node;
    let local_ids: Vec<usize> = (job.node_index * s..(job.node_index + 1) * s).collect();
    let mut receivers = HashMap::new();
    state.inboxes.clear();
    for &id in &local_ids {
        let (tx, rx) = unbounded::<FrontEntry>();
        state.inboxes.insert(id, tx);
        receivers.insert(id, rx);
    }
    // Warm-start: entries handed over at admission seed every local
    // searcher's inbox exactly like received exchanges, and the live front
    // immediately, so the first checkpoint this node cuts (and any front
    // it hands a later joiner) already carries them.
    for &id in &local_ids {
        if let Some(tx) = state.inboxes.get(&id) {
            for entry in &job.warm {
                let _ = tx.send(entry.to_front());
            }
        }
    }
    // Adopt the job's view of the mesh. The Start frame carries only the
    // peer list, so every slot starts presumed live at the job's epoch; a
    // coordinator broadcast with a newer epoch corrects the dead slots,
    // and until then sends to them simply fail over (lazy convergence —
    // the strict transition order is the virtual mesh's contract, not the
    // TCP path's).
    {
        let mut membership = shared.membership();
        *membership = Some(Membership {
            epoch: job.epoch,
            members: job
                .peers
                .iter()
                .map(|a| Member {
                    addr: a.clone(),
                    live: true,
                })
                .collect(),
        });
    }
    shared
        .recorder
        .gauge_max(names::MEMBERSHIP_EPOCH, job.epoch as f64);
    *shared
        .routes
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(Arc::new(RouteTable::new(
        job.peers.clone(),
        shared.net_timeout,
    )));
    shared.replicas().clear();
    {
        let mut live = shared.live();
        *live = Archive::new(TsmoConfig::default().archive_capacity);
        live.absorb(job.warm.iter().map(ExchangeEntry::to_front));
    }
    shared.live_evals.store(0, Ordering::Relaxed);
    let cancel = CancelToken::never();
    state.cancel = Some(cancel.clone());
    state.phase = Phase::Running;
    state.node_index = Some(job.node_index);
    state.report = None;
    let runner = {
        let shared = Arc::clone(shared);
        std::thread::spawn(move || {
            let (report, trace) = run_node_job(&job, &instance, receivers, cancel, &shared);
            let mut state = shared.state();
            state.inboxes.clear();
            state.report = Some(report);
            state.last_trace = Some(trace);
            state.phase = Phase::Done;
        })
    };
    state.runner = Some(runner);
    NodeMsg::Started
}

/// Runs this node's searchers to completion and merges their archives.
/// Returns the report plus the JSONL span/timeline trace of the run.
fn run_node_job(
    job: &MeshJob,
    instance: &Arc<vrptw::Instance>,
    mut receivers: HashMap<usize, crossbeam::channel::Receiver<FrontEntry>>,
    cancel: CancelToken,
    shared: &Arc<NodeShared>,
) -> (NodeReport, String) {
    let nodes = job.peers.len();
    let s = job.searchers_per_node;
    let n_total = nodes * s;
    // Every node stamps its spans with the job's one trace id; a zero id
    // falls back to deriving it from the seed, which all nodes share, so
    // the whole mesh still agrees on the id.
    let trace_id = if job.trace_id != 0 {
        job.trace_id
    } else {
        tsmo_obs::trace_id_from_seed(job.seed)
    };
    let base_cfg = TsmoConfig {
        max_evaluations: job.max_evaluations,
        neighborhood_size: job.neighborhood_size.max(2),
        stagnation_limit: job.stagnation_limit.max(1),
        trace_id: Some(trace_id),
        timeline_every: Some(job.neighborhood_size.max(2) as u64 * 10),
        ..TsmoConfig::default()
    }
    .with_seed(job.seed);
    let hook: Arc<dyn FaultHook> = if job.fault_rate > 0.0 {
        FaultPlan::shared(FaultConfig::exchange_only(job.fault_seed, job.fault_rate))
    } else {
        tsmo_faults::none()
    };
    // The searchers record onto a per-job event recorder (spans and
    // timeline samples included); its metrics fold into the daemon's
    // long-lived registry after the run, so `Metrics` keeps the lifetime
    // totals while `Trace` serves just this job's stream.
    let events = Arc::new(MemoryRecorder::new().with_span_events());
    let recorder: Arc<dyn Recorder> = Arc::clone(&events) as Arc<dyn Recorder>;
    // Slot-addressed routes: all local searchers resolve a remote peer's
    // node through the shared table at send time, so membership changes
    // reroute live links without rebuilding them.
    let routes = shared.routes().expect("route table installed at start");
    let local_txs: HashMap<usize, Sender<FrontEntry>> = shared.state().inboxes.clone();

    let done = AtomicBool::new(false);
    let mut rngs = streams(job.seed, n_total);
    let results: Vec<_> = std::thread::scope(|scope| {
        // The replicator ships the live front to the ring successor every
        // `replication_ms`, plus one final cut after the searchers finish,
        // so a node killed even after its budget is spent loses nothing.
        let replicator = (job.replication_ms > 0).then(|| {
            let shared = Arc::clone(shared);
            let every = Duration::from_millis(job.replication_ms);
            let node_index = job.node_index;
            let done = &done;
            scope.spawn(move || replicate_loop(&shared, node_index, every, done))
        });
        let mut handles = Vec::with_capacity(s);
        let local = &mut rngs[job.node_index * s..(job.node_index + 1) * s];
        for (offset, slot) in local.iter_mut().enumerate() {
            let id = job.node_index * s + offset;
            // Draw order contract: communication list first, perturbation
            // second, both from this id's own stream.
            let order = comm_order(n_total, id, slot);
            let cfg = searcher_cfg(&base_cfg, id, slot);
            let rng = std::mem::replace(slot, Xoshiro256StarStar::seed_from_u64(0));
            let links: Vec<(usize, Box<dyn Transport<FrontEntry>>)> = order
                .into_iter()
                .map(|p| {
                    let tx: Box<dyn Transport<FrontEntry>> = match local_txs.get(&p) {
                        Some(tx) => Box::new(ChannelTransport::new(tx.clone())),
                        None => Box::new(TcpTransport::routed(
                            Arc::clone(&routes),
                            p / s,
                            id,
                            p,
                            Arc::clone(&recorder),
                        )),
                    };
                    (p, tx)
                })
                .collect();
            let inbox = receivers.remove(&id).expect("inbox created at start");
            let mut endpoint = Endpoint::from_links(id, inbox, links);
            let instance = Arc::clone(instance);
            let recorder = Arc::clone(&recorder);
            let hook = Arc::clone(&hook);
            let cancel = cancel.clone();
            let shared = Arc::clone(shared);
            handles.push(scope.spawn(move || {
                let mut searcher =
                    CollabSearcher::new(instance, cfg, rng, recorder, id, cancel, hook);
                let mut steps = 0u64;
                let mut published = 0u64;
                while searcher.step_once(&mut endpoint) {
                    steps += 1;
                    if steps.is_multiple_of(32) {
                        let consumed = searcher.evaluations_consumed();
                        shared.publish_live(searcher.archive_snapshot(), consumed - published);
                        published = consumed;
                    }
                }
                // The final snapshot equals the finish archive (`finish`
                // only flushes sends), so the last checkpoint the
                // replicator cuts carries this searcher's complete front.
                let consumed = searcher.evaluations_consumed();
                shared.publish_live(searcher.archive_snapshot(), consumed - published);
                searcher.finish(&mut endpoint)
            }));
        }
        let results: Vec<_> = handles
            .into_iter()
            .map(|h| h.join().expect("searcher panicked"))
            .collect();
        done.store(true, Ordering::Release);
        if let Some(handle) = replicator {
            let _ = handle.join();
        }
        results
    });

    let mut merged = Archive::new(base_cfg.archive_capacity);
    let mut evaluations = 0;
    let mut iterations = 0u64;
    for result in results {
        evaluations += result.evaluations;
        iterations += result.iterations as u64;
        for entry in result.archive {
            merged.insert(entry);
        }
    }
    // Warm-start entries survive the handover even when every searcher
    // replaced them: the node front a joiner reports must never lose
    // elites the mesh had already found.
    merged.absorb(job.warm.iter().map(ExchangeEntry::to_front));
    // Publish the merged front too (it may contain warm entries no single
    // searcher holds) before the runner flips the phase; the replicator
    // has already cut its final checkpoint from the per-searcher final
    // snapshots, which carry the same elites.
    shared.publish_live(merged.items().to_vec(), 0);
    shared.recorder.merge_metrics_from(&events);
    let report = NodeReport {
        front: merged
            .into_items()
            .iter()
            .map(ExchangeEntry::from_front)
            .collect(),
        evaluations,
        iterations,
    };
    (report, events.events_jsonl())
}

/// Ships the live front to the ring successor every `every`, plus one
/// final cut once the searchers are done — a node killed *after* its
/// budget is spent still leaves its complete front on the successor.
fn replicate_loop(shared: &NodeShared, node_index: usize, every: Duration, done: &AtomicBool) {
    loop {
        let mut waited = Duration::ZERO;
        while waited < every && !done.load(Ordering::Acquire) {
            let step = Duration::from_millis(10).min(every - waited);
            std::thread::sleep(step);
            waited += step;
        }
        let last = done.load(Ordering::Acquire);
        ship_checkpoint(shared, node_index);
        if last {
            return;
        }
    }
}

/// Cuts one checkpoint of the live front and ships it to the ring
/// successor. Silent on any failure: a missed checkpoint costs staleness,
/// not correctness, and the next interval retries.
fn ship_checkpoint(shared: &NodeShared, node_index: usize) {
    let (epoch, successor) = {
        let guard = shared.membership();
        let Some(view) = guard.as_ref() else { return };
        let Some(successor) = view.ring_successor(node_index) else {
            return; // alone in the ring: nowhere to replicate
        };
        (view.epoch, successor)
    };
    let Some(conn) = shared.routes().and_then(|r| r.conn(successor)) else {
        return;
    };
    let entries: Vec<ExchangeEntry> = shared
        .live()
        .items()
        .iter()
        .map(ExchangeEntry::from_front)
        .collect();
    if entries.is_empty() {
        return; // nothing learned yet
    }
    let msg = NodeMsg::Checkpoint {
        from: node_index as u64,
        epoch,
        evaluations: shared.live_evals.load(Ordering::Relaxed),
        entries,
    };
    let _ = conn.call(&msg);
}
