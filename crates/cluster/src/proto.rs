//! The node-to-node wire vocabulary.
//!
//! Same envelope as the solver service (`tsmo_serve::wire`): length-prefixed
//! UTF-8 JSON frames ([`tsmo_obs::frame`]), one request frame answered by
//! exactly one response frame, fixed field order so equal messages encode
//! byte-identically. The vocabulary covers the whole node lifecycle — mesh
//! bootstrap (`Hello`), job dispatch (`Start`), the exchange hot path
//! (`Exchange`/`ExchangeAck`), and result gathering (`Front`, `Metrics`).

use crate::membership::Member;
use std::fmt::Write as _;
use tsmo_core::FrontEntry;
use tsmo_obs::json::{self, Json};
use vrptw::{Objectives, Solution};

/// One archive entry in transit: the objective vector plus the routes
/// realizing it. This is all a receiver needs — objectives feed dominance
/// checks directly and the routes rebuild the [`Solution`] for `M_nondom`.
#[derive(Debug, Clone, PartialEq)]
pub struct ExchangeEntry {
    /// Minimization vector `[distance, vehicles, tardiness]`.
    pub objectives: [f64; 3],
    /// The deployed routes (customer ids, depot omitted).
    pub routes: Vec<Vec<u16>>,
}

impl ExchangeEntry {
    /// Flattens a front entry for the wire.
    pub fn from_front(entry: &FrontEntry) -> Self {
        Self {
            objectives: entry.objectives.to_vector(),
            routes: entry
                .solution
                .routes()
                .iter()
                .filter(|r| !r.is_empty())
                .map(|r| r.to_vec())
                .collect(),
        }
    }

    /// Rebuilds the front entry. The objectives are trusted as sent —
    /// sender and receiver run the same evaluator on the same instance.
    pub fn to_front(&self) -> FrontEntry {
        let objectives = Objectives {
            distance: self.objectives[0],
            vehicles: self.objectives[1].round() as usize,
            tardiness: self.objectives[2],
        };
        FrontEntry::new(Solution::from_routes(self.routes.clone()), objectives)
    }

    fn write_json(&self, out: &mut String) {
        out.push_str("{\"objectives\":[");
        for (i, x) in self.objectives.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_f64(out, *x);
        }
        out.push_str("],\"routes\":[");
        for (i, route) in self.routes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('[');
            for (j, site) in route.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{site}");
            }
            out.push(']');
        }
        out.push_str("]}");
    }

    fn from_json(doc: &Json) -> Result<Self, String> {
        Ok(Self {
            objectives: objective_vector(doc.get("objectives").ok_or("missing 'objectives'")?)?,
            routes: routes_from(doc.get("routes").ok_or("missing 'routes'")?)?,
        })
    }
}

/// What one node needs to run its share of a distributed collaborative
/// search. Every node of the mesh receives the same job, differing only in
/// `node_index`; together with the shared `seed` that pins the node's
/// global searcher ids, RNG streams, communication lists, and parameter
/// perturbations — the exact values the in-process run would use.
#[derive(Debug, Clone, PartialEq)]
pub struct MeshJob {
    /// The instance, as Solomon-format text.
    pub instance_text: String,
    /// This node's index into `peers`.
    pub node_index: usize,
    /// One `host:port` per node, in global node order.
    pub peers: Vec<String>,
    /// Searchers hosted by every node; node `k` runs the global searcher
    /// ids `k*s .. (k+1)*s`.
    pub searchers_per_node: usize,
    /// Master seed shared by the whole mesh.
    pub seed: u64,
    /// Evaluation budget per searcher.
    pub max_evaluations: u64,
    /// Neighborhood size per iteration.
    pub neighborhood_size: usize,
    /// Iterations without archive improvement before restart (also ends
    /// the initial no-exchange phase).
    pub stagnation_limit: usize,
    /// Deterministic exchange fault injection
    /// (`tsmo_faults::FaultConfig::exchange_only(seed, rate)`); a zero
    /// rate runs the unfaulted path.
    pub fault_seed: u64,
    /// Exchange fault rate in `[0, 1]`.
    pub fault_rate: f64,
    /// Trace id every node stamps on its profiling spans (48-bit so it
    /// survives the f64-backed JSON layer exactly). `0` means "derive
    /// from `seed`" — which yields the same shared id on every node.
    pub trace_id: u64,
    /// Migration interval: offer only every k-th post-initial-phase
    /// archive improvement to the rotation (1 = every improvement).
    pub exchange_interval: usize,
    /// Milliseconds between archive checkpoints shipped to the node's
    /// ring successor (`0` disables replication).
    pub replication_ms: u64,
    /// Membership epoch this job was dispatched under (0 for the initial
    /// full mesh; a joiner admitted mid-run gets the current epoch).
    pub epoch: u64,
    /// Warm-start entries injected into every local searcher inbox before
    /// the first iteration — a joiner receives the mesh's current merged
    /// front here. Empty for a cold start.
    pub warm: Vec<ExchangeEntry>,
}

impl Default for MeshJob {
    fn default() -> Self {
        Self {
            instance_text: String::new(),
            node_index: 0,
            peers: Vec::new(),
            searchers_per_node: 2,
            seed: 0,
            max_evaluations: 10_000,
            neighborhood_size: 50,
            stagnation_limit: 100,
            fault_seed: 0,
            fault_rate: 0.0,
            trace_id: 0,
            exchange_interval: 1,
            replication_ms: 0,
            epoch: 0,
            warm: Vec::new(),
        }
    }
}

impl MeshJob {
    /// Total searchers across the mesh.
    pub fn total_searchers(&self) -> usize {
        self.peers.len() * self.searchers_per_node
    }

    fn write_json(&self, out: &mut String) {
        out.push_str("{\"instance\":");
        json::write_str(out, &self.instance_text);
        let _ = write!(out, ",\"node_index\":{},\"peers\":[", self.node_index);
        for (i, p) in self.peers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_str(out, p);
        }
        let _ = write!(
            out,
            "],\"searchers_per_node\":{},\"seed\":{},\"max_evaluations\":{},\"neighborhood_size\":{},\"stagnation_limit\":{},\"fault_seed\":{},\"fault_rate\":",
            self.searchers_per_node,
            self.seed,
            self.max_evaluations,
            self.neighborhood_size,
            self.stagnation_limit,
            self.fault_seed
        );
        json::write_f64(out, self.fault_rate);
        let _ = write!(
            out,
            ",\"trace_id\":{},\"exchange_interval\":{},\"replication_ms\":{},\"epoch\":{},\"warm\":[",
            self.trace_id, self.exchange_interval, self.replication_ms, self.epoch
        );
        for (i, e) in self.warm.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            e.write_json(out);
        }
        out.push_str("]}");
    }

    fn from_json(doc: &Json) -> Result<Self, String> {
        let peers = match doc.get("peers") {
            Some(Json::Array(items)) => items
                .iter()
                .map(|p| {
                    p.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| "bad peer address".to_string())
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("missing 'peers' array".to_string()),
        };
        Ok(Self {
            instance_text: req_str(doc, "instance")?.to_string(),
            node_index: req_u64(doc, "node_index")? as usize,
            peers,
            searchers_per_node: req_u64(doc, "searchers_per_node")? as usize,
            seed: req_u64(doc, "seed")?,
            max_evaluations: req_u64(doc, "max_evaluations")?,
            neighborhood_size: req_u64(doc, "neighborhood_size")? as usize,
            stagnation_limit: req_u64(doc, "stagnation_limit")? as usize,
            fault_seed: req_u64(doc, "fault_seed")?,
            fault_rate: req_f64(doc, "fault_rate")?,
            // Lenient for compatibility with pre-trace controllers.
            trace_id: doc.get("trace_id").and_then(Json::as_u64).unwrap_or(0),
            // Lenient for controllers predating the elastic mesh.
            exchange_interval: doc
                .get("exchange_interval")
                .and_then(Json::as_u64)
                .unwrap_or(1) as usize,
            replication_ms: doc
                .get("replication_ms")
                .and_then(Json::as_u64)
                .unwrap_or(0),
            epoch: doc.get("epoch").and_then(Json::as_u64).unwrap_or(0),
            warm: match doc.get("warm") {
                Some(Json::Array(items)) => items
                    .iter()
                    .map(ExchangeEntry::from_json)
                    .collect::<Result<Vec<_>, _>>()?,
                _ => Vec::new(),
            },
        })
    }
}

/// A node-protocol message. Requests and responses share one enum: the
/// exchange hot path and the control plane use the same framed connection,
/// so a single parser handles everything a node can read.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeMsg {
    /// Liveness probe / bootstrap handshake; `node` is the sender's node
    /// index (or `0` from a controller).
    Hello {
        /// Sender's node index.
        node: u64,
    },
    /// Answer to `Hello`; `node` is the responder's node index
    /// (`u64::MAX` while idle, before any job assigned an index).
    HelloAck {
        /// Responder's node index.
        node: u64,
    },
    /// An archive improvement from global searcher `from` addressed to
    /// global searcher `to` (hosted by the receiving node).
    Exchange {
        /// Sending searcher's global id.
        from: u64,
        /// Receiving searcher's global id.
        to: u64,
        /// The solution in transit.
        entry: ExchangeEntry,
    },
    /// The exchange was delivered to the target searcher's inbox.
    ExchangeAck,
    /// Run this node's share of a distributed search.
    Start {
        /// The node's job.
        job: MeshJob,
    },
    /// The job was admitted and its searchers are running.
    Started,
    /// Query the node's lifecycle state.
    Status,
    /// Answer to `Status`: `idle`, `running`, or `done`.
    NodeStatus {
        /// Current lifecycle state.
        state: String,
    },
    /// Fetch the node's merged front (answered once `done`).
    Front,
    /// The node's merged front plus its summed counters.
    FrontReply {
        /// Non-dominated merge of the node's searcher archives.
        entries: Vec<ExchangeEntry>,
        /// Evaluations consumed across the node's searchers.
        evaluations: u64,
        /// Iterations performed across the node's searchers.
        iterations: u64,
    },
    /// Prometheus exposition of the node's telemetry.
    Metrics,
    /// Answer to `Metrics`.
    MetricsReply {
        /// The exposition body.
        prometheus: String,
    },
    /// Fetch the node's telemetry in mergeable JSON form (see
    /// `MetricsRegistry::to_json`). Unlike `Metrics`, whose prometheus
    /// exposition is render-only, this reply can be re-parsed and folded
    /// into a federated registry by a controller.
    MetricsFetch,
    /// Answer to `MetricsFetch`.
    MetricsFetchReply {
        /// The node's `MetricsRegistry` serialized as JSON.
        registry: String,
    },
    /// Fetch the last job's recorded trace (span/timeline JSONL).
    Trace,
    /// Answer to `Trace`: the node's event stream for its last job.
    TraceReply {
        /// JSONL event lines (empty when no job recorded a trace).
        jsonl: String,
    },
    /// A node at `addr` asks the coordinator (member 0 of the original
    /// mesh) to be admitted into the membership view.
    Join {
        /// The joiner's listen address.
        addr: String,
    },
    /// Admission granted: the joiner's slot, the epoch it joined at, the
    /// full member list, and the coordinator's current merged front for
    /// warm-starting.
    JoinAck {
        /// Membership epoch after admission.
        epoch: u64,
        /// The slot the joiner occupies (its `node_index`).
        slot: u64,
        /// The complete membership view.
        members: Vec<Member>,
        /// The coordinator's current merged front (may be empty).
        warm: Vec<ExchangeEntry>,
    },
    /// Announce that slot `node` left the mesh (controller- or
    /// peer-initiated).
    Leave {
        /// The departing slot.
        node: u64,
    },
    /// The leave was recorded.
    LeaveAck {
        /// Membership epoch after the departure.
        epoch: u64,
    },
    /// Broadcast of a new membership view to a live member.
    MemberUpdate {
        /// Epoch of the view; receivers ignore stale (≤ current) epochs.
        epoch: u64,
        /// The complete member list in slot order.
        members: Vec<Member>,
    },
    /// The view was applied (or ignored as stale).
    MemberUpdateAck {
        /// The receiver's epoch after processing.
        epoch: u64,
    },
    /// An archive checkpoint shipped to the sender's ring successor.
    Checkpoint {
        /// The checkpointing node's slot.
        from: u64,
        /// Membership epoch the checkpoint was cut under.
        epoch: u64,
        /// Evaluations the node had consumed at the checkpoint.
        evaluations: u64,
        /// The node's merged front at the checkpoint.
        entries: Vec<ExchangeEntry>,
    },
    /// The checkpoint replica was stored.
    CheckpointAck,
    /// Ask a node for the newest replica it holds of slot `node`.
    ReplicaFetch {
        /// The subject slot.
        node: u64,
    },
    /// Answer to `ReplicaFetch`; `found == false` means no replica of that
    /// slot is held and the other fields are zero/empty.
    ReplicaReply {
        /// The subject slot.
        node: u64,
        /// Epoch of the stored checkpoint.
        epoch: u64,
        /// Evaluations recorded in the checkpoint.
        evaluations: u64,
        /// The replicated front.
        entries: Vec<ExchangeEntry>,
        /// Whether a replica was held.
        found: bool,
    },
    /// Query a node's membership view.
    Members,
    /// Answer to `Members`.
    MembersReply {
        /// The responder's membership epoch.
        epoch: u64,
        /// The responder's member list.
        members: Vec<Member>,
    },
    /// Cooperatively cancel the running job.
    Stop,
    /// Cancellation was requested.
    Stopped,
    /// Stop the daemon after this response.
    Shutdown,
    /// The daemon stops now.
    ShutdownOk,
    /// The request could not be served.
    Error {
        /// Human-readable reason.
        message: String,
    },
}

impl NodeMsg {
    /// Encodes the message as one JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(64);
        match self {
            NodeMsg::Hello { node } => {
                let _ = write!(s, "{{\"type\":\"hello\",\"node\":{node}}}");
            }
            NodeMsg::HelloAck { node } => {
                let _ = write!(s, "{{\"type\":\"hello_ack\",\"node\":{node}}}");
            }
            NodeMsg::Exchange { from, to, entry } => {
                let _ = write!(
                    s,
                    "{{\"type\":\"exchange\",\"from\":{from},\"to\":{to},\"entry\":"
                );
                entry.write_json(&mut s);
                s.push('}');
            }
            NodeMsg::ExchangeAck => s.push_str("{\"type\":\"exchange_ack\"}"),
            NodeMsg::Start { job } => {
                s.push_str("{\"type\":\"start\",\"job\":");
                job.write_json(&mut s);
                s.push('}');
            }
            NodeMsg::Started => s.push_str("{\"type\":\"started\"}"),
            NodeMsg::Status => s.push_str("{\"type\":\"status\"}"),
            NodeMsg::NodeStatus { state } => {
                s.push_str("{\"type\":\"node_status\",\"state\":");
                json::write_str(&mut s, state);
                s.push('}');
            }
            NodeMsg::Front => s.push_str("{\"type\":\"front\"}"),
            NodeMsg::FrontReply {
                entries,
                evaluations,
                iterations,
            } => {
                s.push_str("{\"type\":\"front_reply\",\"entries\":[");
                for (i, e) in entries.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    e.write_json(&mut s);
                }
                let _ = write!(
                    s,
                    "],\"evaluations\":{evaluations},\"iterations\":{iterations}}}"
                );
            }
            NodeMsg::Metrics => s.push_str("{\"type\":\"metrics\"}"),
            NodeMsg::MetricsReply { prometheus } => {
                s.push_str("{\"type\":\"metrics_reply\",\"prometheus\":");
                json::write_str(&mut s, prometheus);
                s.push('}');
            }
            NodeMsg::MetricsFetch => s.push_str("{\"type\":\"metrics_fetch\"}"),
            NodeMsg::MetricsFetchReply { registry } => {
                s.push_str("{\"type\":\"metrics_fetch_reply\",\"registry\":");
                json::write_str(&mut s, registry);
                s.push('}');
            }
            NodeMsg::Trace => s.push_str("{\"type\":\"trace\"}"),
            NodeMsg::TraceReply { jsonl } => {
                s.push_str("{\"type\":\"trace_reply\",\"jsonl\":");
                json::write_str(&mut s, jsonl);
                s.push('}');
            }
            NodeMsg::Join { addr } => {
                s.push_str("{\"type\":\"join\",\"addr\":");
                json::write_str(&mut s, addr);
                s.push('}');
            }
            NodeMsg::JoinAck {
                epoch,
                slot,
                members,
                warm,
            } => {
                let _ = write!(
                    s,
                    "{{\"type\":\"join_ack\",\"epoch\":{epoch},\"slot\":{slot},\"members\":"
                );
                write_members(&mut s, members);
                s.push_str(",\"warm\":[");
                for (i, e) in warm.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    e.write_json(&mut s);
                }
                s.push_str("]}");
            }
            NodeMsg::Leave { node } => {
                let _ = write!(s, "{{\"type\":\"leave\",\"node\":{node}}}");
            }
            NodeMsg::LeaveAck { epoch } => {
                let _ = write!(s, "{{\"type\":\"leave_ack\",\"epoch\":{epoch}}}");
            }
            NodeMsg::MemberUpdate { epoch, members } => {
                let _ = write!(
                    s,
                    "{{\"type\":\"member_update\",\"epoch\":{epoch},\"members\":"
                );
                write_members(&mut s, members);
                s.push('}');
            }
            NodeMsg::MemberUpdateAck { epoch } => {
                let _ = write!(s, "{{\"type\":\"member_update_ack\",\"epoch\":{epoch}}}");
            }
            NodeMsg::Checkpoint {
                from,
                epoch,
                evaluations,
                entries,
            } => {
                let _ = write!(
                    s,
                    "{{\"type\":\"checkpoint\",\"from\":{from},\"epoch\":{epoch},\"evaluations\":{evaluations},\"entries\":["
                );
                for (i, e) in entries.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    e.write_json(&mut s);
                }
                s.push_str("]}");
            }
            NodeMsg::CheckpointAck => s.push_str("{\"type\":\"checkpoint_ack\"}"),
            NodeMsg::ReplicaFetch { node } => {
                let _ = write!(s, "{{\"type\":\"replica_fetch\",\"node\":{node}}}");
            }
            NodeMsg::ReplicaReply {
                node,
                epoch,
                evaluations,
                entries,
                found,
            } => {
                let _ = write!(
                    s,
                    "{{\"type\":\"replica_reply\",\"node\":{node},\"epoch\":{epoch},\"evaluations\":{evaluations},\"entries\":["
                );
                for (i, e) in entries.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    e.write_json(&mut s);
                }
                let _ = write!(s, "],\"found\":{found}}}");
            }
            NodeMsg::Members => s.push_str("{\"type\":\"members\"}"),
            NodeMsg::MembersReply { epoch, members } => {
                let _ = write!(
                    s,
                    "{{\"type\":\"members_reply\",\"epoch\":{epoch},\"members\":"
                );
                write_members(&mut s, members);
                s.push('}');
            }
            NodeMsg::Stop => s.push_str("{\"type\":\"stop\"}"),
            NodeMsg::Stopped => s.push_str("{\"type\":\"stopped\"}"),
            NodeMsg::Shutdown => s.push_str("{\"type\":\"shutdown\"}"),
            NodeMsg::ShutdownOk => s.push_str("{\"type\":\"shutdown_ok\"}"),
            NodeMsg::Error { message } => {
                s.push_str("{\"type\":\"error\",\"message\":");
                json::write_str(&mut s, message);
                s.push('}');
            }
        }
        s
    }

    /// Parses a message document.
    pub fn parse(text: &str) -> Result<Self, String> {
        let doc = json::parse(text).map_err(|e| e.to_string())?;
        match req_str(&doc, "type")? {
            "hello" => Ok(NodeMsg::Hello {
                node: req_u64(&doc, "node")?,
            }),
            "hello_ack" => Ok(NodeMsg::HelloAck {
                node: req_u64(&doc, "node")?,
            }),
            "exchange" => Ok(NodeMsg::Exchange {
                from: req_u64(&doc, "from")?,
                to: req_u64(&doc, "to")?,
                entry: ExchangeEntry::from_json(doc.get("entry").ok_or("missing 'entry'")?)?,
            }),
            "exchange_ack" => Ok(NodeMsg::ExchangeAck),
            "start" => Ok(NodeMsg::Start {
                job: MeshJob::from_json(doc.get("job").ok_or("missing 'job'")?)?,
            }),
            "started" => Ok(NodeMsg::Started),
            "status" => Ok(NodeMsg::Status),
            "node_status" => Ok(NodeMsg::NodeStatus {
                state: req_str(&doc, "state")?.to_string(),
            }),
            "front" => Ok(NodeMsg::Front),
            "front_reply" => {
                let entries = match doc.get("entries") {
                    Some(Json::Array(items)) => items
                        .iter()
                        .map(ExchangeEntry::from_json)
                        .collect::<Result<Vec<_>, _>>()?,
                    _ => return Err("missing 'entries' array".to_string()),
                };
                Ok(NodeMsg::FrontReply {
                    entries,
                    evaluations: req_u64(&doc, "evaluations")?,
                    iterations: req_u64(&doc, "iterations")?,
                })
            }
            "metrics" => Ok(NodeMsg::Metrics),
            "metrics_reply" => Ok(NodeMsg::MetricsReply {
                prometheus: req_str(&doc, "prometheus")?.to_string(),
            }),
            "metrics_fetch" => Ok(NodeMsg::MetricsFetch),
            "metrics_fetch_reply" => Ok(NodeMsg::MetricsFetchReply {
                registry: req_str(&doc, "registry")?.to_string(),
            }),
            "trace" => Ok(NodeMsg::Trace),
            "trace_reply" => Ok(NodeMsg::TraceReply {
                jsonl: req_str(&doc, "jsonl")?.to_string(),
            }),
            "join" => Ok(NodeMsg::Join {
                addr: req_str(&doc, "addr")?.to_string(),
            }),
            "join_ack" => Ok(NodeMsg::JoinAck {
                epoch: req_u64(&doc, "epoch")?,
                slot: req_u64(&doc, "slot")?,
                members: members_from(doc.get("members").ok_or("missing 'members'")?)?,
                warm: entries_from(doc.get("warm").ok_or("missing 'warm'")?)?,
            }),
            "leave" => Ok(NodeMsg::Leave {
                node: req_u64(&doc, "node")?,
            }),
            "leave_ack" => Ok(NodeMsg::LeaveAck {
                epoch: req_u64(&doc, "epoch")?,
            }),
            "member_update" => Ok(NodeMsg::MemberUpdate {
                epoch: req_u64(&doc, "epoch")?,
                members: members_from(doc.get("members").ok_or("missing 'members'")?)?,
            }),
            "member_update_ack" => Ok(NodeMsg::MemberUpdateAck {
                epoch: req_u64(&doc, "epoch")?,
            }),
            "checkpoint" => Ok(NodeMsg::Checkpoint {
                from: req_u64(&doc, "from")?,
                epoch: req_u64(&doc, "epoch")?,
                evaluations: req_u64(&doc, "evaluations")?,
                entries: entries_from(doc.get("entries").ok_or("missing 'entries'")?)?,
            }),
            "checkpoint_ack" => Ok(NodeMsg::CheckpointAck),
            "replica_fetch" => Ok(NodeMsg::ReplicaFetch {
                node: req_u64(&doc, "node")?,
            }),
            "replica_reply" => Ok(NodeMsg::ReplicaReply {
                node: req_u64(&doc, "node")?,
                epoch: req_u64(&doc, "epoch")?,
                evaluations: req_u64(&doc, "evaluations")?,
                entries: entries_from(doc.get("entries").ok_or("missing 'entries'")?)?,
                found: doc
                    .get("found")
                    .and_then(Json::as_bool)
                    .ok_or("bad 'found' field")?,
            }),
            "members" => Ok(NodeMsg::Members),
            "members_reply" => Ok(NodeMsg::MembersReply {
                epoch: req_u64(&doc, "epoch")?,
                members: members_from(doc.get("members").ok_or("missing 'members'")?)?,
            }),
            "stop" => Ok(NodeMsg::Stop),
            "stopped" => Ok(NodeMsg::Stopped),
            "shutdown" => Ok(NodeMsg::Shutdown),
            "shutdown_ok" => Ok(NodeMsg::ShutdownOk),
            "error" => Ok(NodeMsg::Error {
                message: req_str(&doc, "message")?.to_string(),
            }),
            other => Err(format!("unknown node message type '{other}'")),
        }
    }
}

fn req_str<'a>(doc: &'a Json, key: &str) -> Result<&'a str, String> {
    doc.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("bad '{key}' field"))
}

fn req_u64(doc: &Json, key: &str) -> Result<u64, String> {
    doc.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("bad '{key}' field"))
}

fn req_f64(doc: &Json, key: &str) -> Result<f64, String> {
    doc.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("bad '{key}' field"))
}

fn write_members(out: &mut String, members: &[Member]) {
    out.push('[');
    for (i, m) in members.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"addr\":");
        json::write_str(out, &m.addr);
        let _ = write!(out, ",\"live\":{}}}", m.live);
    }
    out.push(']');
}

fn members_from(v: &Json) -> Result<Vec<Member>, String> {
    match v {
        Json::Array(items) => items
            .iter()
            .map(|m| {
                Ok(Member {
                    addr: req_str(m, "addr")?.to_string(),
                    live: m
                        .get("live")
                        .and_then(Json::as_bool)
                        .ok_or("bad 'live' field")?,
                })
            })
            .collect(),
        _ => Err("members must be an array".to_string()),
    }
}

fn entries_from(v: &Json) -> Result<Vec<ExchangeEntry>, String> {
    match v {
        Json::Array(items) => items.iter().map(ExchangeEntry::from_json).collect(),
        _ => Err("entries must be an array".to_string()),
    }
}

fn objective_vector(v: &Json) -> Result<[f64; 3], String> {
    match v {
        Json::Array(items) if items.len() == 3 => {
            let mut out = [0.0; 3];
            for (i, item) in items.iter().enumerate() {
                out[i] = item.as_f64().ok_or("non-numeric objective")?;
            }
            Ok(out)
        }
        _ => Err("objective vector must be a 3-element array".to_string()),
    }
}

fn routes_from(v: &Json) -> Result<Vec<Vec<u16>>, String> {
    match v {
        Json::Array(routes) => routes
            .iter()
            .map(|route| match route {
                Json::Array(sites) => sites
                    .iter()
                    .map(|s| {
                        s.as_u64()
                            .and_then(|x| u16::try_from(x).ok())
                            .ok_or_else(|| "bad site id".to_string())
                    })
                    .collect(),
                _ => Err("route must be an array".to_string()),
            })
            .collect(),
        _ => Err("routes must be an array of routes".to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_entry() -> ExchangeEntry {
        ExchangeEntry {
            objectives: [512.25, 4.0, 0.0],
            routes: vec![vec![1, 3, 2], vec![4], vec![5, 6]],
        }
    }

    fn sample_members() -> Vec<Member> {
        vec![
            Member {
                addr: "127.0.0.1:4001".to_string(),
                live: true,
            },
            Member {
                addr: "127.0.0.1:4002".to_string(),
                live: false,
            },
        ]
    }

    #[test]
    fn pre_elastic_jobs_parse_with_defaults() {
        // A controller predating the elastic mesh omits the new fields.
        let legacy = "{\"type\":\"start\",\"job\":{\"instance\":\"R101\",\"node_index\":0,\
\"peers\":[\"a\"],\"searchers_per_node\":2,\"seed\":1,\"max_evaluations\":100,\
\"neighborhood_size\":10,\"stagnation_limit\":5,\"fault_seed\":0,\"fault_rate\":0}}";
        match NodeMsg::parse(legacy).expect("lenient parse") {
            NodeMsg::Start { job } => {
                assert_eq!(job.exchange_interval, 1);
                assert_eq!(job.replication_ms, 0);
                assert_eq!(job.epoch, 0);
                assert!(job.warm.is_empty());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn messages_round_trip() {
        let samples = vec![
            NodeMsg::Hello { node: 2 },
            NodeMsg::HelloAck { node: u64::MAX },
            NodeMsg::Exchange {
                from: 5,
                to: 1,
                entry: sample_entry(),
            },
            NodeMsg::ExchangeAck,
            NodeMsg::Start {
                job: MeshJob {
                    instance_text: "R101\nline two\t\"quoted\"".to_string(),
                    node_index: 1,
                    peers: vec!["127.0.0.1:4001".to_string(), "127.0.0.1:4002".to_string()],
                    searchers_per_node: 3,
                    seed: 42,
                    max_evaluations: 20_000,
                    neighborhood_size: 80,
                    stagnation_limit: 25,
                    fault_seed: 7,
                    fault_rate: 0.125,
                    trace_id: 0xFFFF_FFFF_FFFF,
                    exchange_interval: 4,
                    replication_ms: 250,
                    epoch: 3,
                    warm: vec![sample_entry()],
                },
            },
            NodeMsg::Start {
                job: MeshJob::default(),
            },
            NodeMsg::Started,
            NodeMsg::Status,
            NodeMsg::NodeStatus {
                state: "running".to_string(),
            },
            NodeMsg::Front,
            NodeMsg::FrontReply {
                entries: vec![sample_entry()],
                evaluations: 40_000,
                iterations: 800,
            },
            NodeMsg::Metrics,
            NodeMsg::MetricsReply {
                prometheus: "tsmo_exchanges_received_total 3\n".to_string(),
            },
            NodeMsg::MetricsFetch,
            NodeMsg::MetricsFetchReply {
                registry:
                    "{\"counters\":{\"tsmo_evaluations_total\":10},\"gauges\":{},\"histograms\":{}}"
                        .to_string(),
            },
            NodeMsg::Trace,
            NodeMsg::TraceReply {
                jsonl: "{\"seq\":0,\"type\":\"span_enter\",\"name\":\"search\"}\n".to_string(),
            },
            NodeMsg::Join {
                addr: "127.0.0.1:4009".to_string(),
            },
            NodeMsg::JoinAck {
                epoch: 5,
                slot: 2,
                members: sample_members(),
                warm: vec![sample_entry()],
            },
            NodeMsg::Leave { node: 3 },
            NodeMsg::LeaveAck { epoch: 6 },
            NodeMsg::MemberUpdate {
                epoch: 6,
                members: sample_members(),
            },
            NodeMsg::MemberUpdateAck { epoch: 6 },
            NodeMsg::Checkpoint {
                from: 1,
                epoch: 6,
                evaluations: 12_345,
                entries: vec![sample_entry()],
            },
            NodeMsg::CheckpointAck,
            NodeMsg::ReplicaFetch { node: 1 },
            NodeMsg::ReplicaReply {
                node: 1,
                epoch: 6,
                evaluations: 12_345,
                entries: vec![sample_entry()],
                found: true,
            },
            NodeMsg::ReplicaReply {
                node: 4,
                epoch: 0,
                evaluations: 0,
                entries: Vec::new(),
                found: false,
            },
            NodeMsg::Members,
            NodeMsg::MembersReply {
                epoch: 6,
                members: sample_members(),
            },
            NodeMsg::Stop,
            NodeMsg::Stopped,
            NodeMsg::Shutdown,
            NodeMsg::ShutdownOk,
            NodeMsg::Error {
                message: "no \"job\" running".to_string(),
            },
        ];
        for msg in samples {
            let text = msg.to_json();
            let parsed = NodeMsg::parse(&text).expect("parse back");
            assert_eq!(parsed, msg, "mismatch for {text}");
            assert_eq!(parsed.to_json(), text, "re-encode must be stable");
        }
    }

    #[test]
    fn exchange_entry_converts_to_and_from_front_entries() {
        let entry = sample_entry();
        let front = entry.to_front();
        assert_eq!(front.objectives.to_vector(), entry.objectives);
        assert_eq!(ExchangeEntry::from_front(&front), entry);
    }

    #[test]
    fn total_searchers_multiplies_nodes_by_share() {
        let job = MeshJob {
            peers: vec!["a".into(), "b".into(), "c".into()],
            searchers_per_node: 4,
            ..MeshJob::default()
        };
        assert_eq!(job.total_searchers(), 12);
    }
}
