//! TCP delivery for the multisearch rotation.
//!
//! [`PeerConn`] is one lazily-connected, mutex-serialized framed channel to
//! a peer node: callers write one request frame and read one response frame
//! under the lock, so concurrent searchers on the same node share a single
//! socket per peer without interleaving frames. A call that fails on a
//! cached stream retries once on a fresh connection (the peer may simply
//! have restarted); a call that cannot connect fails fast with
//! [`std::net::TcpStream::connect_timeout`].
//!
//! [`TcpTransport`] plugs that channel into
//! [`deme::multisearch::Transport`]: an exchange is delivered only when the
//! peer answers [`NodeMsg::ExchangeAck`] within the call, so the endpoint's
//! dead-peer skip, same-call failover, and probe re-admission work over
//! real sockets exactly as they do over in-process channels. Each ack'd
//! delivery feeds the `tsmo_peer_rtt_ms` histogram.

use crate::proto::{ExchangeEntry, NodeMsg};
use deme::multisearch::Transport;
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};
use tsmo_core::FrontEntry;
use tsmo_obs::{metrics::names, Recorder};

/// Default connect / read / write timeout for node links.
pub const DEFAULT_NET_TIMEOUT: Duration = Duration::from_millis(2_000);

/// A shared, reconnecting request/response channel to one peer node.
pub struct PeerConn {
    addr: String,
    timeout: Duration,
    stream: Mutex<Option<TcpStream>>,
}

impl PeerConn {
    /// A lazily-connected channel to `addr` (`host:port`); every connect,
    /// read, and write is bounded by `timeout`.
    pub fn new(addr: impl Into<String>, timeout: Duration) -> Self {
        Self {
            addr: addr.into(),
            timeout,
            stream: Mutex::new(None),
        }
    }

    /// The peer's address as given.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    fn lock(&self) -> MutexGuard<'_, Option<TcpStream>> {
        self.stream
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn connect(&self) -> io::Result<TcpStream> {
        let sa: SocketAddr =
            self.addr.to_socket_addrs()?.next().ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidInput, "unresolvable address")
            })?;
        let stream = TcpStream::connect_timeout(&sa, self.timeout)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        stream.set_nodelay(true)?;
        Ok(stream)
    }

    fn roundtrip(stream: &mut TcpStream, req: &NodeMsg) -> io::Result<NodeMsg> {
        tsmo_obs::frame::write_frame(stream, &req.to_json())?;
        match tsmo_obs::frame::read_frame(stream)? {
            Some(text) => {
                NodeMsg::parse(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
            }
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "peer closed the connection mid-request",
            )),
        }
    }

    /// Sends one request and reads its response, holding the connection
    /// lock for the whole round trip. A failure on a cached stream gets
    /// one retry over a fresh connection; the stream is dropped on any
    /// error so the next call starts clean.
    pub fn call(&self, req: &NodeMsg) -> io::Result<NodeMsg> {
        let mut guard = self.lock();
        let had_cached = guard.is_some();
        if guard.is_none() {
            *guard = Some(self.connect()?);
        }
        let result = Self::roundtrip(guard.as_mut().expect("just connected"), req);
        match result {
            Ok(resp) => Ok(resp),
            Err(first) => {
                *guard = None;
                if !had_cached {
                    return Err(first); // a fresh connection failed; the peer is down
                }
                let mut fresh = self.connect()?;
                let resp = Self::roundtrip(&mut fresh, req)?;
                *guard = Some(fresh);
                Ok(resp)
            }
        }
    }
}

/// Slot-addressed routing for a mesh whose membership can change mid-run.
///
/// Each member slot maps to its current address (empty while the slot is
/// dead or vacant); connections are cached per *address*, so when a
/// `MemberUpdate` moves a slot to a new address the next send simply
/// resolves a fresh [`PeerConn`] — the searchers' links never rebuild, and
/// the endpoint's probe re-admission heals the route as soon as the new
/// occupant acks.
pub struct RouteTable {
    timeout: Duration,
    inner: Mutex<RouteInner>,
}

struct RouteInner {
    /// Slot index → current address; `""` marks a dead or vacant slot.
    addrs: Vec<String>,
    conns: HashMap<String, Arc<PeerConn>>,
}

impl RouteTable {
    /// A table with every slot at its initial address.
    pub fn new(addrs: Vec<String>, timeout: Duration) -> Self {
        Self {
            timeout,
            inner: Mutex::new(RouteInner {
                addrs,
                conns: HashMap::new(),
            }),
        }
    }

    fn lock(&self) -> MutexGuard<'_, RouteInner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Replaces the slot → address map (empty string = dead slot) and
    /// drops cached connections to addresses no longer routed to.
    pub fn update(&self, addrs: Vec<String>) {
        let mut inner = self.lock();
        inner.addrs = addrs;
        let keep: Vec<String> = inner.addrs.clone();
        inner.conns.retain(|addr, _| keep.iter().any(|a| a == addr));
    }

    /// The slot's current address, if it has one.
    pub fn addr(&self, slot: usize) -> Option<String> {
        let inner = self.lock();
        inner.addrs.get(slot).filter(|a| !a.is_empty()).cloned()
    }

    /// The shared connection to the slot's current occupant; `None` while
    /// the slot is dead. Connections are created lazily and cached.
    pub fn conn(&self, slot: usize) -> Option<Arc<PeerConn>> {
        let mut inner = self.lock();
        let addr = inner.addrs.get(slot).filter(|a| !a.is_empty())?.clone();
        let timeout = self.timeout;
        Some(Arc::clone(
            inner
                .conns
                .entry(addr.clone())
                .or_insert_with(|| Arc::new(PeerConn::new(addr, timeout))),
        ))
    }
}

/// Delivers one exchange over `conn` and waits for the ack; `Some(rtt)` is
/// the round-trip time, `None` means the peer did not take delivery.
/// Shared by [`TcpTransport`] and the transport conformance tests so both
/// exercise the identical delivery path.
pub fn deliver_exchange(
    conn: &PeerConn,
    from: usize,
    to: usize,
    entry: &FrontEntry,
) -> Option<Duration> {
    let req = NodeMsg::Exchange {
        from: from as u64,
        to: to as u64,
        entry: ExchangeEntry::from_front(entry),
    };
    let started = Instant::now();
    match conn.call(&req) {
        Ok(NodeMsg::ExchangeAck) => Some(started.elapsed()),
        // An `Error` reply (no job running, unknown searcher) and a socket
        // failure both mean "not delivered": the rotation fails over.
        Ok(_) | Err(_) => None,
    }
}

/// A [`Transport`] that carries [`FrontEntry`] exchanges to one remote
/// searcher, either over a fixed shared [`PeerConn`] or via a
/// [`RouteTable`] that resolves the peer's *current* address at send time.
pub struct TcpTransport {
    route: Route,
    from: usize,
    to: usize,
    recorder: Arc<dyn Recorder>,
}

enum Route {
    Fixed(Arc<PeerConn>),
    Slot { table: Arc<RouteTable>, slot: usize },
}

impl TcpTransport {
    /// A link from local searcher `from` to remote searcher `to` over a
    /// fixed connection (static-membership meshes).
    pub fn new(conn: Arc<PeerConn>, from: usize, to: usize, recorder: Arc<dyn Recorder>) -> Self {
        Self {
            route: Route::Fixed(conn),
            from,
            to,
            recorder,
        }
    }

    /// A link whose destination node is resolved through `table` on every
    /// send, so membership changes reroute it without rebuilding links. A
    /// send while the slot is dead fails like an unreachable peer.
    pub fn routed(
        table: Arc<RouteTable>,
        slot: usize,
        from: usize,
        to: usize,
        recorder: Arc<dyn Recorder>,
    ) -> Self {
        Self {
            route: Route::Slot { table, slot },
            from,
            to,
            recorder,
        }
    }
}

impl Transport<FrontEntry> for TcpTransport {
    fn send(&self, msg: FrontEntry) -> Result<(), FrontEntry> {
        let conn = match &self.route {
            Route::Fixed(conn) => Arc::clone(conn),
            Route::Slot { table, slot } => match table.conn(*slot) {
                Some(conn) => conn,
                None => return Err(msg), // dead slot: fail like a dead peer
            },
        };
        match deliver_exchange(&conn, self.from, self.to, &msg) {
            Some(rtt) => {
                self.recorder
                    .observe(names::PEER_RTT_MS, rtt.as_secs_f64() * 1_000.0);
                Ok(())
            }
            None => Err(msg),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read as _;
    use std::net::TcpListener;

    fn one_shot_server(reply: NodeMsg) -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        std::thread::spawn(move || {
            if let Ok((mut stream, _)) = listener.accept() {
                let _ = tsmo_obs::frame::read_frame(&mut stream);
                let _ = tsmo_obs::frame::write_frame(&mut stream, &reply.to_json());
                // Drain until the client hangs up so the test stays quiet.
                let mut sink = [0u8; 64];
                while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
            }
        });
        addr
    }

    #[test]
    fn call_round_trips_one_frame() {
        let addr = one_shot_server(NodeMsg::HelloAck { node: 3 });
        let conn = PeerConn::new(addr.to_string(), DEFAULT_NET_TIMEOUT);
        let resp = conn.call(&NodeMsg::Hello { node: 0 }).expect("call");
        assert_eq!(resp, NodeMsg::HelloAck { node: 3 });
    }

    #[test]
    fn call_fails_fast_when_nothing_listens() {
        // Bind-then-drop yields a port with no listener.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").expect("bind");
            l.local_addr().expect("addr")
        };
        let conn = PeerConn::new(addr.to_string(), Duration::from_millis(200));
        let started = Instant::now();
        assert!(conn.call(&NodeMsg::Status).is_err());
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "refused connection must not hang"
        );
    }

    #[test]
    fn route_table_reroutes_a_slot_and_voids_dead_routes() {
        let table = RouteTable::new(
            vec!["127.0.0.1:1".into(), "127.0.0.1:2".into()],
            DEFAULT_NET_TIMEOUT,
        );
        assert_eq!(table.addr(1).as_deref(), Some("127.0.0.1:2"));
        let before = table.conn(1).expect("routed");
        table.update(vec!["127.0.0.1:1".into(), "127.0.0.1:9".into()]);
        let after = table.conn(1).expect("rerouted");
        assert_ne!(before.addr(), after.addr(), "slot follows the new address");
        table.update(vec!["127.0.0.1:1".into(), String::new()]);
        assert!(table.conn(1).is_none(), "dead slot has no route");
        assert!(table.addr(9).is_none(), "out-of-range slot has no route");
    }

    #[test]
    fn undelivered_exchange_hands_the_entry_back() {
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").expect("bind");
            l.local_addr().expect("addr")
        };
        let conn = Arc::new(PeerConn::new(addr.to_string(), Duration::from_millis(200)));
        let transport = TcpTransport::new(conn, 0, 1, tsmo_obs::noop());
        let entry = ExchangeEntry {
            objectives: [100.0, 2.0, 0.0],
            routes: vec![vec![1, 2]],
        }
        .to_front();
        let returned = transport.send(entry.clone()).expect_err("peer is down");
        assert_eq!(
            returned.objectives.to_vector(),
            entry.objectives.to_vector()
        );
    }
}
