//! The `--virtual-net` loopback: a whole mesh in one process, one thread.
//!
//! Real distributed runs interleave exchanges by wall clock, so two runs of
//! the same seed differ. The virtual network removes that freedom: all
//! `nodes × searchers_per_node` searchers step round-robin on one thread,
//! every transport is an in-process channel wrapped in a recorder, and the
//! result is a byte-reproducible distributed run — same streams, same
//! communication lists, same perturbations, same two-stage front merge as
//! the TCP mesh (per-node archives first, then the global archive).
//!
//! Recording captures every delivered exchange as `(from, to, objectives)`
//! in delivery order; replaying the log alongside a fresh run verifies each
//! delivery against the recorded one and reports the first divergence.
//! Matching logs plus matching merged fronts is the reproducibility proof
//! `clusterctl --virtual-net` and the acceptance tests rely on.

use crate::mesh::merge_node_fronts;
use crossbeam::channel::{unbounded, Sender};
use deme::multisearch::{comm_order, Endpoint, Transport};
use detrand::{streams, Xoshiro256StarStar};
use pareto::Archive;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};
use tsmo_core::{searcher_cfg, CancelToken, CollabSearcher, FrontEntry, TsmoConfig};
use tsmo_faults::FaultHook;
use tsmo_obs::Recorder;
use vrptw::Instance;

/// The shape of a virtual mesh run.
#[derive(Debug, Clone)]
pub struct VirtualMeshConfig {
    /// Number of virtual nodes.
    pub nodes: usize,
    /// Searchers hosted per virtual node.
    pub searchers_per_node: usize,
    /// Base search configuration (seed included).
    pub cfg: TsmoConfig,
}

/// One delivered exchange, as recorded by the virtual network.
#[derive(Debug, Clone, PartialEq)]
pub struct ExchangeRecord {
    /// Sending searcher's global id.
    pub from: usize,
    /// Receiving searcher's global id.
    pub to: usize,
    /// The delivered solution's objective vector.
    pub objectives: [f64; 3],
}

/// Result of a virtual mesh run.
#[derive(Debug)]
pub struct VirtualOutcome {
    /// The global merged front (two-stage merge, as the TCP mesh gathers).
    pub front: Vec<FrontEntry>,
    /// Per-node merged fronts, in node order.
    pub node_fronts: Vec<Vec<FrontEntry>>,
    /// Evaluations summed over all searchers.
    pub evaluations: u64,
    /// Iterations summed over all searchers.
    pub iterations: u64,
    /// Every delivered exchange, in delivery order.
    pub log: Vec<ExchangeRecord>,
}

enum LogMode {
    Record,
    Verify {
        expected: Vec<ExchangeRecord>,
        cursor: usize,
        divergence: Option<String>,
    },
}

struct LogState {
    mode: LogMode,
    seen: Vec<ExchangeRecord>,
}

impl LogState {
    fn observe(&mut self, rec: ExchangeRecord) {
        if let LogMode::Verify {
            expected,
            cursor,
            divergence,
        } = &mut self.mode
        {
            if divergence.is_none() {
                match expected.get(*cursor) {
                    Some(want) if *want == rec => {}
                    Some(want) => {
                        *divergence = Some(format!(
                            "delivery {} diverged: recorded {want:?}, replayed {rec:?}",
                            *cursor
                        ));
                    }
                    None => {
                        *divergence = Some(format!("replay delivered extra exchange {rec:?}"));
                    }
                }
                *cursor += 1;
            }
        }
        self.seen.push(rec);
    }
}

/// A channel transport that logs (or verifies) each delivered exchange.
struct RecordingTransport {
    tx: Sender<FrontEntry>,
    from: usize,
    to: usize,
    log: Arc<Mutex<LogState>>,
}

impl Transport<FrontEntry> for RecordingTransport {
    fn send(&self, msg: FrontEntry) -> Result<(), FrontEntry> {
        let objectives = msg.objectives.to_vector();
        match self.tx.send(msg) {
            Ok(()) => {
                self.log
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .observe(ExchangeRecord {
                        from: self.from,
                        to: self.to,
                        objectives,
                    });
                Ok(())
            }
            Err(e) => Err(e.0),
        }
    }
}

/// Runs the virtual mesh and records its exchange log.
pub fn run_virtual(
    inst: &Arc<Instance>,
    vm: &VirtualMeshConfig,
    recorder: Arc<dyn Recorder>,
    hook: Arc<dyn FaultHook>,
) -> VirtualOutcome {
    run(inst, vm, recorder, hook, LogMode::Record).expect("record mode cannot diverge")
}

/// Re-runs the virtual mesh while verifying every delivery against `log`;
/// `Err` carries the first divergence. A clean replay returns an outcome
/// whose front and log are byte-comparable to the recorded run's.
pub fn replay_virtual(
    inst: &Arc<Instance>,
    vm: &VirtualMeshConfig,
    recorder: Arc<dyn Recorder>,
    hook: Arc<dyn FaultHook>,
    log: &[ExchangeRecord],
) -> Result<VirtualOutcome, String> {
    run(
        inst,
        vm,
        recorder,
        hook,
        LogMode::Verify {
            expected: log.to_vec(),
            cursor: 0,
            divergence: None,
        },
    )
}

fn run(
    inst: &Arc<Instance>,
    vm: &VirtualMeshConfig,
    recorder: Arc<dyn Recorder>,
    hook: Arc<dyn FaultHook>,
    mode: LogMode,
) -> Result<VirtualOutcome, String> {
    assert!(vm.nodes > 0 && vm.searchers_per_node > 0, "empty mesh");
    let n_total = vm.nodes * vm.searchers_per_node;
    let log = Arc::new(Mutex::new(LogState {
        mode,
        seen: Vec::new(),
    }));
    let channels: Vec<_> = (0..n_total).map(|_| unbounded::<FrontEntry>()).collect();
    let mut rngs = streams(vm.cfg.seed, n_total);
    let mut searchers = Vec::with_capacity(n_total);
    let mut endpoints = Vec::with_capacity(n_total);
    for id in 0..n_total {
        // Same draw order as the thread and TCP builds: list, then params.
        let order = comm_order(n_total, id, &mut rngs[id]);
        let cfg = searcher_cfg(&vm.cfg, id, &mut rngs[id]);
        let rng = std::mem::replace(&mut rngs[id], Xoshiro256StarStar::seed_from_u64(0));
        let links: Vec<(usize, Box<dyn Transport<FrontEntry>>)> = order
            .into_iter()
            .map(|p| {
                (
                    p,
                    Box::new(RecordingTransport {
                        tx: channels[p].0.clone(),
                        from: id,
                        to: p,
                        log: Arc::clone(&log),
                    }) as Box<dyn Transport<FrontEntry>>,
                )
            })
            .collect();
        endpoints.push(Endpoint::from_links(id, channels[id].1.clone(), links));
        searchers.push(Some(CollabSearcher::new(
            Arc::clone(inst),
            cfg,
            rng,
            Arc::clone(&recorder),
            id,
            CancelToken::never(),
            Arc::clone(&hook),
        )));
    }

    // Round-robin stepping: searcher i runs its iteration k before anyone
    // runs iteration k+1, which pins the delivery order of every exchange.
    loop {
        let mut any = false;
        for id in 0..n_total {
            if let Some(searcher) = searchers[id].as_mut() {
                any |= searcher.step_once(&mut endpoints[id]);
            }
        }
        if !any {
            break;
        }
    }

    let mut node_fronts = Vec::with_capacity(vm.nodes);
    let mut evaluations = 0;
    let mut iterations = 0u64;
    for node in 0..vm.nodes {
        let mut node_archive = Archive::new(vm.cfg.archive_capacity);
        for local in 0..vm.searchers_per_node {
            let id = node * vm.searchers_per_node + local;
            let searcher = searchers[id].take().expect("finished once");
            let result = searcher.finish(&mut endpoints[id]);
            evaluations += result.evaluations;
            iterations += result.iterations as u64;
            for entry in result.archive {
                node_archive.insert(entry);
            }
        }
        node_fronts.push(node_archive.into_items());
    }
    let front = merge_node_fronts(&node_fronts, vm.cfg.archive_capacity);

    // The endpoints own the recording transports; release their log
    // handles so the state can be unwrapped.
    drop(endpoints);
    drop(channels);
    let log = Arc::try_unwrap(log)
        .map_err(|_| "transport handles outlived the run".to_string())?
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if let LogMode::Verify {
        expected,
        cursor,
        divergence,
    } = log.mode
    {
        if let Some(d) = divergence {
            return Err(d);
        }
        if cursor != expected.len() {
            return Err(format!(
                "replay delivered {cursor} exchanges, recording has {}",
                expected.len()
            ));
        }
    }
    Ok(VirtualOutcome {
        front,
        node_fronts,
        evaluations,
        iterations,
        log: log.seen,
    })
}

/// Canonical byte serialization of a front, for identity comparisons: one
/// line per entry, objectives then routes, in archive order.
pub fn front_fingerprint(front: &[FrontEntry]) -> String {
    let mut out = String::new();
    for entry in front {
        let [d, v, t] = entry.objectives.to_vector();
        let _ = write!(out, "[{d},{v},{t}]");
        for route in entry.solution.routes() {
            out.push('|');
            for (i, site) in route.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{site}");
            }
        }
        out.push('\n');
    }
    out
}
