//! Acceptance tests for the elastic virtual mesh: fixed-membership
//! equivalence with the static mesh, zero elite loss through kill/recover,
//! byte-identical churn replay, and late-joiner admission.

use std::sync::Arc;
use tsmo_cluster::{
    front_fingerprint, replay_elastic, run_elastic, run_virtual, ChurnEvent, ChurnKind,
    ElasticMeshConfig, NetRecord, VirtualMeshConfig,
};
use tsmo_core::TsmoConfig;
use tsmo_obs::{MemoryRecorder, Recorder};
use vrptw::generator::{GeneratorConfig, InstanceClass};
use vrptw::Instance;

fn instance() -> Arc<Instance> {
    Arc::new(GeneratorConfig::new(InstanceClass::R2, 30, 7).build())
}

fn cfg(seed: u64) -> TsmoConfig {
    TsmoConfig {
        max_evaluations: 3_000,
        neighborhood_size: 50,
        stagnation_limit: 8,
        seed,
        ..TsmoConfig::default()
    }
}

fn recorder() -> Arc<dyn Recorder> {
    Arc::new(MemoryRecorder::metrics_only())
}

fn hook() -> Arc<dyn tsmo_faults::FaultHook> {
    tsmo_faults::none()
}

fn exchanges(log: &[NetRecord]) -> Vec<&tsmo_cluster::virtual_net::ExchangeRecord> {
    log.iter()
        .filter_map(|r| match r {
            NetRecord::Exchange(e) => Some(e),
            _ => None,
        })
        .collect()
}

#[test]
fn fixed_membership_elastic_run_matches_static_virtual_mesh() {
    let inst = instance();
    let vm = VirtualMeshConfig {
        nodes: 4,
        searchers_per_node: 2,
        cfg: cfg(7),
    };
    let stat = run_virtual(&inst, &vm, recorder(), hook());
    let em = ElasticMeshConfig::fixed(4, 2, cfg(7));
    let elastic = run_elastic(&inst, &em, recorder(), hook());
    assert_eq!(
        front_fingerprint(&elastic.front),
        front_fingerprint(&stat.front),
        "fixed membership must reproduce the static mesh front"
    );
    for (node, (a, b)) in elastic
        .node_fronts
        .iter()
        .zip(stat.node_fronts.iter())
        .enumerate()
    {
        assert_eq!(
            front_fingerprint(a),
            front_fingerprint(b),
            "node {node} front diverged"
        );
    }
    assert_eq!(elastic.evaluations, stat.evaluations);
    let recorded: Vec<_> = stat.log.iter().collect();
    assert_eq!(
        exchanges(&elastic.log),
        recorded,
        "exchange sequence diverged"
    );
    // Replication changes nothing about the search itself: checkpoints
    // only read archives.
    let replicated = ElasticMeshConfig {
        replication_every: 10,
        ..em
    };
    let rep = run_elastic(&inst, &replicated, recorder(), hook());
    assert_eq!(
        front_fingerprint(&rep.front),
        front_fingerprint(&stat.front)
    );
    assert!(
        rep.log
            .iter()
            .any(|r| matches!(r, NetRecord::Checkpoint { .. })),
        "replication must record checkpoints"
    );
}

#[test]
fn killed_node_costs_no_elites_with_replication() {
    let inst = instance();
    let base = ElasticMeshConfig {
        replication_every: 10,
        ..ElasticMeshConfig::fixed(4, 2, cfg(3))
    };
    let clean = run_elastic(&inst, &base, recorder(), hook());
    // Kill node 2 after it has contributed everything it ever will: one
    // round past the clean run's natural end. Without replication its
    // whole front would vanish; the replica on its ring successor must
    // restore it exactly.
    let killed = ElasticMeshConfig {
        churn: vec![ChurnEvent {
            round: clean.rounds + 1,
            node: 2,
            kind: ChurnKind::Kill,
        }],
        ..base.clone()
    };
    let out = run_elastic(&inst, &killed, recorder(), hook());
    assert_eq!(
        front_fingerprint(&out.front),
        front_fingerprint(&clean.front),
        "kill-and-recover must equal the no-kill front byte for byte"
    );
    assert_eq!(
        front_fingerprint(&out.node_fronts[2]),
        front_fingerprint(&clean.node_fronts[2]),
        "the dead node's front must be restored from its replica"
    );
    assert!(out.recovered_nodes.contains(&2));
    // Every entry the dead node contributed to the global front came
    // through the replica.
    let from_node2 = clean
        .front
        .iter()
        .filter(|e| {
            clean.node_fronts[2]
                .iter()
                .any(|n| n.objectives.to_vector() == e.objectives.to_vector())
        })
        .count();
    assert_eq!(out.recovered_in_front, from_node2);
    assert!(
        from_node2 > 0,
        "node 2 contributed nothing; test is vacuous"
    );
    // Recovery from the replica is free: the replicated budgets prove the
    // work was done, so nothing is re-executed.
    assert_eq!(out.evaluations, clean.evaluations);

    // Contrast: without replication nothing proves the dead node's work
    // happened. The rebalancer re-runs its whole slice on the survivors —
    // the full budget is paid again — and without the mid-run exchanges
    // the originals received, the recomputed front is a different one.
    let unreplicated = ElasticMeshConfig {
        replication_every: 0,
        churn: killed.churn.clone(),
        ..base
    };
    let lost = run_elastic(&inst, &unreplicated, recorder(), hook());
    assert_eq!(
        lost.evaluations,
        clean.evaluations + 2 * 3_000,
        "the killed slice is fully re-executed"
    );
    assert!(lost.recovered_nodes.is_empty());
    assert_ne!(
        front_fingerprint(&lost.node_fronts[2]),
        front_fingerprint(&clean.node_fronts[2]),
        "recomputation is not recovery: the original front is lost"
    );
}

#[test]
fn eight_node_churn_scenario_replays_byte_identically() {
    let inst = instance();
    let em = ElasticMeshConfig {
        replication_every: 10,
        churn: vec![
            ChurnEvent {
                round: 20,
                node: 2,
                kind: ChurnKind::Kill,
            },
            ChurnEvent {
                round: 30,
                node: 5,
                kind: ChurnKind::Kill,
            },
            ChurnEvent {
                round: 42,
                node: 2,
                kind: ChurnKind::Join,
            },
        ],
        ..ElasticMeshConfig::fixed(8, 2, cfg(5))
    };
    let first = run_elastic(&inst, &em, recorder(), hook());
    assert_eq!(first.final_epoch, 3, "kill, kill, join");
    assert!(first
        .log
        .iter()
        .any(|r| matches!(r, NetRecord::Left { node: 2, .. })));
    assert!(first
        .log
        .iter()
        .any(|r| matches!(r, NetRecord::Left { node: 5, .. })));
    assert!(first
        .log
        .iter()
        .any(|r| matches!(r, NetRecord::Joined { node: 2, .. })));
    assert!(
        first
            .log
            .iter()
            .filter(|r| matches!(r, NetRecord::Rebalanced { .. }))
            .count()
            >= 4,
        "initial placement plus one per transition"
    );
    // The merged front is a valid mutually non-dominated set.
    assert!(!first.front.is_empty());
    let vectors: Vec<Vec<f64>> = first
        .front
        .iter()
        .map(|e| e.objectives.to_vector().to_vec())
        .collect();
    assert_eq!(
        pareto::non_dominated_indices(&vectors).len(),
        vectors.len(),
        "merged front must be mutually non-dominated"
    );
    for e in &first.front {
        assert!(e.solution.check(&inst).is_empty(), "infeasible solution");
    }
    // Node 5 stayed dead: its front must come from a surviving replica.
    assert!(first.recovered_nodes.contains(&5));
    assert!(!first.node_fronts[5].is_empty());

    // Byte-identical replay: every network record verified in order, and
    // the outcome fingerprints match.
    let replayed =
        replay_elastic(&inst, &em, recorder(), hook(), &first.log).expect("replay verifies");
    assert_eq!(
        front_fingerprint(&replayed.front),
        front_fingerprint(&first.front)
    );
    assert_eq!(replayed.log, first.log);
    assert_eq!(replayed.rounds, first.rounds);

    // A divergent log is rejected with a pinpointed record.
    let mut tampered = first.log.clone();
    if let Some(NetRecord::Exchange(e)) = tampered
        .iter_mut()
        .find(|r| matches!(r, NetRecord::Exchange(_)))
    {
        e.objectives[0] += 1.0;
    }
    let err = replay_elastic(&inst, &em, recorder(), hook(), &tampered)
        .expect_err("tampered log must diverge");
    assert!(err.contains("diverged"), "unexpected error: {err}");
}

#[test]
fn deferred_node_joins_late_and_takes_over_its_slice() {
    let inst = instance();
    let em = ElasticMeshConfig {
        replication_every: 5,
        deferred: vec![2],
        churn: vec![ChurnEvent {
            round: 15,
            node: 2,
            kind: ChurnKind::Join,
        }],
        ..ElasticMeshConfig::fixed(3, 2, cfg(11))
    };
    let out = run_elastic(&inst, &em, recorder(), hook());
    assert!(out
        .log
        .iter()
        .any(|r| matches!(r, NetRecord::Joined { node: 2, .. })));
    // Graceful migrations conserve the budget exactly: every searcher id
    // still consumes its full allocation, no more, no less.
    assert_eq!(out.evaluations, 6 * 3_000);
    assert!(
        !out.node_fronts[2].is_empty(),
        "the late joiner's slice still produces a front"
    );
    let replayed =
        replay_elastic(&inst, &em, recorder(), hook(), &out.log).expect("replay verifies");
    assert_eq!(
        front_fingerprint(&replayed.front),
        front_fingerprint(&out.front)
    );
}
