//! Acceptance for the elastic TCP path: bounded peer handshakes, archive
//! checkpoints replicated to the ring successor, replica-based front
//! recovery in the mesh gather, and a replacement node joining mid-run to
//! take over a retired slot with a warm-started archive.

use std::io::Read as _;
use std::net::TcpStream;
use std::time::{Duration, Instant};
use tsmo_cluster::mesh::{merge_node_fronts, prometheus_counter, MeshClient};
use tsmo_cluster::{run_mesh, MeshJob, NodeConfig, Noded};
use tsmo_core::FrontEntry;
use tsmo_obs::metrics::names;
use vrptw::generator::{GeneratorConfig, InstanceClass};

const NET_TIMEOUT: Duration = Duration::from_secs(2);

fn start_node() -> Noded {
    Noded::start(NodeConfig::default()).expect("bind node")
}

fn instance_text() -> String {
    vrptw::solomon::write(&GeneratorConfig::new(InstanceClass::R2, 30, 7).build())
}

fn job(peers: Vec<String>, evals: u64, replication_ms: u64) -> MeshJob {
    MeshJob {
        instance_text: instance_text(),
        node_index: 0,
        peers,
        searchers_per_node: 2,
        seed: 3,
        max_evaluations: evals,
        neighborhood_size: 50,
        stagnation_limit: 5,
        replication_ms,
        ..MeshJob::default()
    }
}

/// Order-insensitive front comparison: the live archive and a gathered
/// merge can hold the same set in different insertion orders.
fn sorted_front(front: &[FrontEntry]) -> Vec<String> {
    let mut keys: Vec<String> = front
        .iter()
        .map(|e| format!("{:?}", e.objectives.to_vector()))
        .collect();
    keys.sort();
    keys
}

fn wait_done(client: &MeshClient, deadline: Instant) {
    loop {
        match client.status().expect("node answers").as_str() {
            "done" => return,
            _ => {
                assert!(Instant::now() < deadline, "node did not finish in time");
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

#[test]
fn silent_connection_is_dropped_after_peer_timeout() {
    let node = Noded::start(NodeConfig {
        peer_timeout: Duration::from_millis(150),
        ..NodeConfig::default()
    })
    .expect("bind node");
    let addr = node.local_addr();

    // Connect and say nothing: the serve thread must hang up on us.
    let mut silent = TcpStream::connect(addr).expect("connect");
    silent
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    let started = Instant::now();
    let mut sink = [0u8; 16];
    let n = silent.read(&mut sink).unwrap_or(0);
    assert_eq!(n, 0, "server should close a silent connection, not reply");
    assert!(
        started.elapsed() < Duration::from_secs(3),
        "silent connection outlived the peer timeout"
    );

    // A peer that does speak is served normally, with no timeout once the
    // first frame has landed.
    let client = MeshClient::new(addr.to_string(), NET_TIMEOUT);
    client.wait_ready(NET_TIMEOUT).expect("node still serves");
    node.halt();
}

#[test]
fn final_checkpoint_leaves_the_complete_front_on_the_ring_successor() {
    let nodes: Vec<Noded> = (0..2).map(|_| start_node()).collect();
    let peers: Vec<String> = nodes.iter().map(|n| n.local_addr().to_string()).collect();
    let clients: Vec<MeshClient> = peers
        .iter()
        .map(|p| MeshClient::new(p.clone(), NET_TIMEOUT))
        .collect();
    let job = job(peers, 3_000, 20);
    for (k, client) in clients.iter().enumerate() {
        client.wait_ready(NET_TIMEOUT).expect("ready");
        let mut node_job = job.clone();
        node_job.node_index = k;
        client.start(node_job).expect("dispatch");
    }
    let deadline = Instant::now() + Duration::from_secs(120);
    for client in &clients {
        wait_done(client, deadline);
    }
    // Node 1 is node 0's ring successor: it must hold node 0's replica,
    // and the *final* checkpoint must carry node 0's complete front — a
    // node killed even after its budget is spent loses nothing.
    let report = clients[0].front().expect("node 0 front");
    let (evals, entries) = clients[1]
        .replica(0)
        .expect("fetch")
        .expect("node 1 holds node 0's replica");
    assert_eq!(evals, report.evaluations, "replica evaluations match");
    let replica_front: Vec<FrontEntry> = entries.iter().map(|e| e.to_front()).collect();
    let report_front: Vec<FrontEntry> = report.front.iter().map(|e| e.to_front()).collect();
    assert_eq!(
        sorted_front(&replica_front),
        sorted_front(&report_front),
        "final checkpoint equals the node's final front"
    );
    // And symmetrically, node 0 holds node 1's.
    assert!(clients[0].replica(1).expect("fetch").is_some());
    // The replica counter moved on the holder.
    let prom = clients[1].metrics().expect("metrics");
    assert!(prometheus_counter(&prom, names::ARCHIVES_REPLICATED) > 0);
    for node in nodes {
        node.halt();
    }
}

#[test]
fn mesh_gather_recovers_a_dead_nodes_front_from_its_replica() {
    let nodes: Vec<Noded> = (0..3).map(|_| start_node()).collect();
    let peers: Vec<String> = nodes.iter().map(|n| n.local_addr().to_string()).collect();
    let job = job(peers.clone(), 120_000, 20);

    // Kill node 2 once the mesh is provably collaborating; run_mesh in
    // the main thread dispatches, polls, and gathers around the death.
    let killer = {
        let peers = peers.clone();
        let mut nodes = nodes;
        std::thread::spawn(move || {
            let c0 = MeshClient::new(peers[0].clone(), NET_TIMEOUT);
            let c2 = MeshClient::new(peers[2].clone(), NET_TIMEOUT);
            let deadline = Instant::now() + Duration::from_secs(60);
            loop {
                let running = matches!(c2.status().as_deref(), Ok("running"));
                let exchanged = c0
                    .metrics()
                    .map(|p| prometheus_counter(&p, names::EXCHANGES_RECEIVED) > 0)
                    .unwrap_or(false);
                if running && exchanged {
                    break;
                }
                assert!(
                    Instant::now() < deadline,
                    "mesh never started collaborating"
                );
                std::thread::sleep(Duration::from_millis(20));
            }
            let victim = nodes.remove(2);
            victim.halt();
            nodes
        })
    };

    let outcome = run_mesh(&job, NET_TIMEOUT, Duration::from_secs(120)).expect("mesh run");
    let survivors = killer.join().expect("killer thread");

    assert_eq!(
        outcome.recovered_nodes,
        vec![2],
        "the dead node's front must be recovered from a replica"
    );
    assert!(outcome.nodes[2].recovered);
    let recovered = outcome.nodes[2]
        .report
        .as_ref()
        .expect("recovered report present");
    assert!(!recovered.front.is_empty(), "recovered front is empty");
    assert!(recovered.evaluations > 0, "replica proves work was done");
    assert!(!outcome.front.is_empty());
    assert_eq!(
        pareto::non_dominated_indices(&outcome.front).len(),
        outcome.front.len(),
        "merged front must be mutually non-dominated"
    );
    for node in survivors {
        node.halt();
    }
}

#[test]
fn replacement_node_joins_mid_run_and_takes_over_the_retired_slot() {
    let nodes: Vec<Noded> = (0..3).map(|_| start_node()).collect();
    let peers: Vec<String> = nodes.iter().map(|n| n.local_addr().to_string()).collect();
    let clients: Vec<MeshClient> = peers
        .iter()
        .map(|p| MeshClient::new(p.clone(), NET_TIMEOUT))
        .collect();
    let job = job(peers.clone(), 20_000, 20);
    for (k, client) in clients.iter().enumerate() {
        client.wait_ready(NET_TIMEOUT).expect("ready");
        let mut node_job = job.clone();
        node_job.node_index = k;
        client.start(node_job).expect("dispatch");
    }

    // Let the mesh collaborate, then lose node 1.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let prom = clients[0].metrics().expect("metrics");
        if prometheus_counter(&prom, names::EXCHANGES_RECEIVED) > 0 {
            break;
        }
        assert!(Instant::now() < deadline, "mesh never collaborated");
        std::thread::sleep(Duration::from_millis(20));
    }
    let mut nodes = nodes;
    let victim = nodes.remove(1);
    victim.halt();

    // Coordinator-mediated churn: retire the dead slot, admit a fresh
    // node, and hand it the slot's job warm-started from the
    // coordinator's current front.
    let epoch = clients[0].leave(1).expect("leave");
    assert_eq!(epoch, 1, "first transition");
    let replacement = start_node();
    let new_addr = replacement.local_addr().to_string();
    let (epoch, slot, members, warm) = clients[0].join(&new_addr).expect("join");
    assert_eq!(epoch, 2, "leave then join");
    assert_eq!(slot, 1, "the dead slot is taken over");
    assert_eq!(members[1].addr, new_addr);
    assert!(members[1].live);
    assert!(
        !warm.is_empty(),
        "the coordinator had a live front to warm-start from"
    );
    // The broadcast reached the other survivor synchronously.
    let (peer_epoch, peer_members) = clients[2].members().expect("members");
    assert_eq!(peer_epoch, 2);
    assert_eq!(peer_members[1].addr, new_addr);

    // Dispatch slot 1's share of the job to the replacement.
    let mut node_job = job.clone();
    node_job.node_index = slot;
    node_job.peers = members.iter().map(|m| m.addr.clone()).collect();
    node_job.epoch = epoch;
    node_job.warm = warm.clone();
    let new_client = MeshClient::new(new_addr, NET_TIMEOUT);
    new_client
        .wait_ready(NET_TIMEOUT)
        .expect("replacement ready");
    new_client.start(node_job).expect("dispatch replacement");

    let deadline = Instant::now() + Duration::from_secs(120);
    wait_done(&clients[0], deadline);
    wait_done(&clients[2], deadline);
    wait_done(&new_client, deadline);

    // The replacement produced the retired slot's front, and the warm
    // handover lost no elites: every warm entry is in its front or
    // dominated by something better it found.
    let report = new_client.front().expect("replacement front");
    assert!(!report.front.is_empty());
    let front: Vec<FrontEntry> = report.front.iter().map(|e| e.to_front()).collect();
    for entry in &warm {
        let w = entry.to_front();
        let held = front.iter().any(|f| {
            f.objectives.to_vector() == w.objectives.to_vector()
                || pareto::dominates(&f.objectives.to_vector(), &w.objectives.to_vector())
        });
        assert!(held, "warm elite lost in the handover");
    }
    // Global gather across the post-churn mesh is a valid front.
    let mut node_fronts = vec![front];
    for client in [&clients[0], &clients[2]] {
        let report = client.front().expect("survivor front");
        node_fronts.push(report.front.iter().map(|e| e.to_front()).collect());
    }
    let merged = merge_node_fronts(&node_fronts, 20);
    assert!(!merged.is_empty());
    assert_eq!(
        pareto::non_dominated_indices(&merged).len(),
        merged.len(),
        "post-churn merged front must be mutually non-dominated"
    );

    replacement.halt();
    for node in nodes {
        node.halt();
    }
}
