//! Acceptance: killing one real node mid-run still yields a valid,
//! mutually non-dominated merged front gathered from the survivors.
//!
//! Three in-process `Noded` daemons exchange over real localhost TCP. Once
//! node 0 has provably received remote solutions, node 2 is halted hard
//! (listener and live connections torn down, job cancelled). The two
//! survivors must route around the dead peers, finish their budgets, and
//! report fronts whose merge is non-empty, mutually non-dominated, and
//! made of solutions that check clean against the instance.

use std::sync::Arc;
use std::time::{Duration, Instant};
use tsmo_cluster::mesh::{merge_node_fronts, prometheus_counter, MeshClient};
use tsmo_cluster::{MeshJob, NodeConfig, Noded};
use tsmo_obs::metrics::names;
use vrptw::generator::{GeneratorConfig, InstanceClass};

const NET_TIMEOUT: Duration = Duration::from_secs(2);

fn start_node() -> Noded {
    Noded::start(NodeConfig::default()).expect("bind node")
}

#[test]
fn killing_one_node_mid_run_leaves_a_valid_merged_front_from_survivors() {
    let inst = GeneratorConfig::new(InstanceClass::R2, 30, 7).build();
    let instance_text = vrptw::solomon::write(&inst);

    let nodes: Vec<Noded> = (0..3).map(|_| start_node()).collect();
    let peers: Vec<String> = nodes.iter().map(|n| n.local_addr().to_string()).collect();
    let clients: Vec<MeshClient> = peers
        .iter()
        .map(|p| MeshClient::new(p.clone(), NET_TIMEOUT))
        .collect();

    // A generous budget with a short stagnation limit: the searchers leave
    // the initial phase quickly and keep exchanging long enough for the
    // kill to land mid-run.
    let job = MeshJob {
        instance_text,
        node_index: 0,
        peers: peers.clone(),
        searchers_per_node: 2,
        seed: 3,
        max_evaluations: 120_000,
        neighborhood_size: 50,
        stagnation_limit: 5,
        fault_seed: 0,
        fault_rate: 0.0,
        trace_id: 0,
        ..MeshJob::default()
    };
    for (k, client) in clients.iter().enumerate() {
        client.wait_ready(NET_TIMEOUT).expect("node ready");
        let mut node_job = job.clone();
        node_job.node_index = k;
        client.start(node_job).expect("dispatch");
    }

    // Wait until node 0 has received at least one remote exchange, so the
    // mesh is provably collaborating before the kill.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let prom = clients[0].metrics().expect("metrics");
        if prometheus_counter(&prom, names::EXCHANGES_RECEIVED) > 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "node 0 never received an exchange; cannot test the kill"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    let mut nodes = nodes;
    let victim = nodes.remove(2);
    victim.halt();

    // Survivors must finish despite their links to node 2's searchers now
    // failing: the rotation marks them dead and routes around them.
    let deadline = Instant::now() + Duration::from_secs(120);
    for client in &clients[..2] {
        loop {
            match client.status().expect("survivor answers").as_str() {
                "done" => break,
                _ => {
                    assert!(Instant::now() < deadline, "survivor did not finish");
                    std::thread::sleep(Duration::from_millis(50));
                }
            }
        }
    }

    let inst = Arc::new(inst);
    let mut node_fronts = Vec::new();
    for (k, client) in clients[..2].iter().enumerate() {
        let report = client.front().expect("survivor front");
        assert!(!report.front.is_empty(), "node {k} reported an empty front");
        assert!(report.evaluations > 0);
        node_fronts.push(
            report
                .front
                .iter()
                .map(|e| e.to_front())
                .collect::<Vec<_>>(),
        );
    }
    // The dead node contributes nothing; merge only the survivors, exactly
    // as run_mesh would after its gather finds node 2 unreachable.
    let merged = merge_node_fronts(&node_fronts, 20);
    assert!(!merged.is_empty(), "merged survivor front is empty");
    assert_eq!(
        pareto::non_dominated_indices(&merged).len(),
        merged.len(),
        "merged survivor front must be mutually non-dominated"
    );
    for entry in &merged {
        assert!(
            entry.solution.check(&inst).is_empty(),
            "survivor front contains an invalid solution"
        );
    }

    // The dead node's address must now refuse the controller too.
    assert!(
        MeshClient::new(peers[2].clone(), Duration::from_millis(200))
            .status()
            .is_err()
    );

    for node in nodes {
        node.halt();
    }
}
