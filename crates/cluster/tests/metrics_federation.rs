//! Acceptance: cluster-wide metric federation. A 3-node mesh answers
//! `MetricsFetch` with mergeable registries; folding them with a
//! `node="k"` label per peer (exactly what `clusterctl metrics-merge`
//! does) yields one exposition whose per-node evaluation counters sum to
//! the same total a single-process collaborative run with the same seed
//! and searcher count consumes — the federated view loses nothing.

use std::sync::Arc;
use std::time::Duration;
use tsmo_cluster::mesh::{self, MeshClient};
use tsmo_cluster::{MeshJob, NodeConfig, Noded};
use tsmo_core::{CollaborativeTsmo, TsmoConfig};
use tsmo_obs::metrics::names;
use tsmo_obs::{MemoryRecorder, MetricsRegistry, Recorder};
use vrptw::generator::{GeneratorConfig, InstanceClass};

const NET_TIMEOUT: Duration = Duration::from_secs(2);
const OPERATORS: [&str; 5] = ["relocate", "exchange", "two_opt", "two_opt_star", "or_opt"];

#[test]
fn federated_mesh_metrics_match_single_process_totals() {
    let inst = GeneratorConfig::new(InstanceClass::R1, 25, 3).build();
    let instance_text = vrptw::solomon::write(&inst);
    let nodes: Vec<Noded> = (0..3)
        .map(|_| Noded::start(NodeConfig::default()).expect("bind node"))
        .collect();
    let peers: Vec<String> = nodes.iter().map(|n| n.local_addr().to_string()).collect();

    let job = MeshJob {
        instance_text,
        node_index: 0,
        peers: peers.clone(),
        searchers_per_node: 2,
        seed: 5,
        max_evaluations: 2_000,
        neighborhood_size: 30,
        stagnation_limit: 8,
        ..MeshJob::default()
    };
    let outcome =
        mesh::run_mesh(&job, NET_TIMEOUT, Duration::from_secs(120)).expect("mesh run finishes");
    assert!(!outcome.front.is_empty());

    // Federate exactly like `clusterctl metrics-merge`.
    let mut federated = MetricsRegistry::new();
    let mut node_evaluations = 0u64;
    for (k, peer) in peers.iter().enumerate() {
        let registry = MeshClient::new(peer.clone(), NET_TIMEOUT)
            .metrics_registry()
            .expect("metrics fetch");
        let evals = registry.counter(names::EVALUATIONS);
        assert!(evals > 0, "node {k} recorded no evaluations");
        node_evaluations += evals;
        // Operator attribution made it through the node's searchers.
        let proposed: u64 = OPERATORS
            .iter()
            .map(|op| registry.counter(&names::operator_counter(names::OPERATOR_PROPOSED, op)))
            .sum();
        assert!(proposed > 0, "node {k} has no per-operator attribution");
        let node = k.to_string();
        federated.merge(&registry.with_label("node", &node));
        federated.gauge_set(&names::node_up(&node), 1.0);
    }

    // The same seed and searcher count in one process consumes the same
    // evaluation total — the per-searcher budget is deterministic.
    let single = Arc::new(MemoryRecorder::metrics_only());
    let cfg = TsmoConfig {
        max_evaluations: job.max_evaluations,
        neighborhood_size: job.neighborhood_size,
        stagnation_limit: job.stagnation_limit,
        ..TsmoConfig::default()
    }
    .with_seed(job.seed);
    CollaborativeTsmo::new(cfg, job.total_searchers())
        .run_with(&Arc::new(inst), Arc::clone(&single) as Arc<dyn Recorder>);
    assert_eq!(
        node_evaluations,
        single.metrics().counter(names::EVALUATIONS),
        "federated per-node evaluation counters must sum to the \
         single-process total for the same seed"
    );

    // The exposition carries every node's labeled series plus liveness.
    let exposition = federated.to_prometheus();
    for k in 0..peers.len() {
        assert!(
            exposition.contains(&format!("{}{{node=\"{k}\"}}", names::EVALUATIONS)),
            "missing node {k} evaluations in:\n{exposition}"
        );
        assert!(
            exposition.contains(&format!("tsmo_node_up{{node=\"{k}\"}} 1")),
            "missing node {k} liveness in:\n{exposition}"
        );
    }
    assert!(
        exposition.contains("tsmo_operator_proposed_total{node=\"0\",operator="),
        "federated exposition lost operator attribution:\n{exposition}"
    );

    for node in nodes {
        node.halt();
    }
}
