//! Satellite 3: the TCP transport passes the same endpoint conformance
//! suite as the in-process channel transport (`deme::testkit`), proving
//! that rotation delivery, same-call failover, dead-peer skip, and probe
//! re-admission survive real sockets.
//!
//! The harness stands in for remote nodes with a minimal frame server per
//! peer: it decodes the `u32` payload smuggled through an
//! [`ExchangeEntry`]'s distance objective, feeds the peer's inbox channel,
//! and acks. `kill` silences the peer without closing its sockets
//! server-side first, so `revive` can rebind the same port (no TIME_WAIT
//! on the listener) and the suite's re-admission case runs for real.

use crossbeam::channel::{unbounded, Receiver, Sender};
use deme::multisearch::{comm_order, Endpoint, Transport};
use deme::testkit::{run_transport_suite, MeshHarness};
use detrand::streams;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;
use tsmo_cluster::{NodeMsg, PeerConn, TcpTransport};
use tsmo_core::FrontEntry;
use tsmo_obs::frame::{read_frame, write_frame};
use vrptw::{Objectives, Solution};

/// Short timeout so a silenced peer fails the send quickly.
const NET_TIMEOUT: Duration = Duration::from_millis(250);

fn encode(value: u32) -> FrontEntry {
    FrontEntry::new(
        Solution::from_routes(vec![vec![1]]),
        Objectives {
            distance: f64::from(value),
            vehicles: 0,
            tardiness: 0.0,
        },
    )
}

/// `Transport<u32>` in terms of the real `TcpTransport`, round-tripping
/// the value through the exchange wire format.
struct U32OverTcp {
    inner: TcpTransport,
}

impl Transport<u32> for U32OverTcp {
    fn send(&self, value: u32) -> Result<(), u32> {
        self.inner.send(encode(value)).map_err(|_| value)
    }
}

/// One simulated peer node: a listener thread accepting connections and a
/// serve thread per connection. When `alive` is false the server reads the
/// frame but never acks, so the sender's call times out — failure without
/// a server-side close, keeping the port rebindable.
struct PeerSim {
    addr: SocketAddr,
    alive: Arc<AtomicBool>,
    inbox_tx: Sender<u32>,
    accept_handle: Option<JoinHandle<()>>,
}

fn spawn_accept(
    listener: TcpListener,
    alive: Arc<AtomicBool>,
    inbox_tx: Sender<u32>,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            if !alive.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let alive = Arc::clone(&alive);
            let tx = inbox_tx.clone();
            std::thread::spawn(move || serve(stream, alive, tx));
        }
    })
}

fn serve(mut stream: TcpStream, alive: Arc<AtomicBool>, tx: Sender<u32>) {
    loop {
        let Ok(Some(text)) = read_frame(&mut stream) else {
            return;
        };
        if !alive.load(Ordering::SeqCst) {
            return; // go silent: the sender's read will time out
        }
        match NodeMsg::parse(&text) {
            Ok(NodeMsg::Exchange { entry, .. }) => {
                let value = entry.objectives[0].round() as u32;
                let _ = tx.send(value);
                if write_frame(&mut stream, &NodeMsg::ExchangeAck.to_json()).is_err() {
                    return;
                }
            }
            _ => return,
        }
    }
}

impl PeerSim {
    fn start(inbox_tx: Sender<u32>) -> Self {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind sim");
        let addr = listener.local_addr().expect("local addr");
        let alive = Arc::new(AtomicBool::new(true));
        let accept_handle = Some(spawn_accept(listener, Arc::clone(&alive), inbox_tx.clone()));
        Self {
            addr,
            alive,
            inbox_tx,
            accept_handle,
        }
    }

    fn kill(&mut self) {
        self.alive.store(false, Ordering::SeqCst);
        // Poke the listener so the accept loop notices and exits, dropping
        // the listening socket; client-initiated, so no server TIME_WAIT.
        let _ = TcpStream::connect_timeout(&self.addr, NET_TIMEOUT);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
    }

    fn revive(&mut self) -> bool {
        let Ok(listener) = TcpListener::bind(self.addr) else {
            return false;
        };
        self.alive = Arc::new(AtomicBool::new(true));
        self.accept_handle = Some(spawn_accept(
            listener,
            Arc::clone(&self.alive),
            self.inbox_tx.clone(),
        ));
        true
    }
}

impl Drop for PeerSim {
    fn drop(&mut self) {
        if self.accept_handle.is_some() {
            self.kill();
        }
    }
}

struct TcpMesh {
    endpoints: Vec<Endpoint<u32>>,
    sims: Vec<PeerSim>,
    inboxes: Vec<Receiver<u32>>,
}

impl TcpMesh {
    fn new(n: usize) -> Self {
        let channels: Vec<(Sender<u32>, Receiver<u32>)> = (0..n).map(|_| unbounded()).collect();
        let sims: Vec<PeerSim> = channels
            .iter()
            .map(|(tx, _)| PeerSim::start(tx.clone()))
            .collect();
        // Same fixed seed and draw order as deme's ChannelMesh, so both
        // harnesses exercise identical rotations.
        let mut rngs = streams(99, n);
        let endpoints = rngs
            .iter_mut()
            .enumerate()
            .take(n)
            .map(|(id, rng)| {
                let links = comm_order(n, id, rng)
                    .into_iter()
                    .map(|p| {
                        let conn = Arc::new(PeerConn::new(sims[p].addr.to_string(), NET_TIMEOUT));
                        let inner = TcpTransport::new(conn, id, p, tsmo_obs::noop());
                        (p, Box::new(U32OverTcp { inner }) as Box<dyn Transport<u32>>)
                    })
                    .collect();
                Endpoint::from_links(id, channels[id].1.clone(), links)
            })
            .collect();
        Self {
            endpoints,
            sims,
            inboxes: channels.into_iter().map(|(_, rx)| rx).collect(),
        }
    }
}

impl MeshHarness for TcpMesh {
    fn endpoint(&mut self, i: usize) -> &mut Endpoint<u32> {
        &mut self.endpoints[i]
    }

    fn recv_all(&mut self, i: usize) -> Vec<u32> {
        // Acks are synchronous, so everything sent is already in the
        // channel by the time a send_next call returns.
        let mut out = Vec::new();
        while let Ok(v) = self.inboxes[i].try_recv() {
            out.push(v);
        }
        out
    }

    fn kill(&mut self, i: usize) {
        self.sims[i].kill();
    }

    fn revive(&mut self, i: usize) -> bool {
        self.sims[i].revive()
    }
}

#[test]
fn tcp_transport_passes_the_shared_conformance_suite() {
    run_transport_suite(TcpMesh::new);
}
