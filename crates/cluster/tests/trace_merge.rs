//! Acceptance: a 3-node mesh run records one shared trace — every node
//! stamps the same non-zero trace id on its spans — and each node's
//! stream is totally ordered by its logical clock, so the controller's
//! `trace-merge` can assemble one causally ordered mesh-wide trace.

use std::collections::BTreeSet;
use std::time::Duration;
use tsmo_cluster::mesh::{self, MeshClient};
use tsmo_cluster::{MeshJob, NodeConfig, Noded};
use tsmo_obs::{parse_events_jsonl, trace_id_from_seed, SearchEvent};
use vrptw::generator::{GeneratorConfig, InstanceClass};

const NET_TIMEOUT: Duration = Duration::from_secs(2);

#[test]
fn three_node_mesh_records_one_shared_trace() {
    let inst = GeneratorConfig::new(InstanceClass::R1, 25, 3).build();
    let instance_text = vrptw::solomon::write(&inst);
    let nodes: Vec<Noded> = (0..3)
        .map(|_| Noded::start(NodeConfig::default()).expect("bind node"))
        .collect();
    let peers: Vec<String> = nodes.iter().map(|n| n.local_addr().to_string()).collect();

    let trace_id = trace_id_from_seed(5);
    let job = MeshJob {
        instance_text,
        node_index: 0,
        peers: peers.clone(),
        searchers_per_node: 2,
        seed: 5,
        max_evaluations: 3_000,
        neighborhood_size: 30,
        stagnation_limit: 8,
        fault_seed: 0,
        fault_rate: 0.0,
        trace_id,
        ..MeshJob::default()
    };
    let outcome =
        mesh::run_mesh(&job, NET_TIMEOUT, Duration::from_secs(120)).expect("mesh run finishes");
    assert!(!outcome.front.is_empty());

    let mut ids = BTreeSet::new();
    for (k, peer) in peers.iter().enumerate() {
        let jsonl = MeshClient::new(peer.clone(), NET_TIMEOUT)
            .trace()
            .expect("trace fetch");
        let events = parse_events_jsonl(&jsonl).expect("trace parses");
        assert!(!events.is_empty(), "node {k} recorded no trace");
        // The node's logical clock totally orders its stream.
        assert!(
            events.windows(2).all(|w| w[0].seq < w[1].seq),
            "node {k} stream is not ordered by its logical clock"
        );
        let mut saw_span = false;
        let mut saw_sample = false;
        for ev in &events {
            match &ev.event {
                SearchEvent::SpanEnter { trace, .. } | SearchEvent::SpanExit { trace, .. } => {
                    saw_span = true;
                    ids.insert(*trace);
                }
                SearchEvent::FrontSample { .. } => saw_sample = true,
                _ => {}
            }
        }
        assert!(saw_span, "node {k} recorded no spans");
        assert!(saw_sample, "node {k} recorded no timeline samples");
    }
    assert_eq!(
        ids.into_iter().collect::<Vec<_>>(),
        vec![trace_id],
        "every node must stamp the one shared non-zero trace id"
    );

    for node in nodes {
        node.halt();
    }
}
