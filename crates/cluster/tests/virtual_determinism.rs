//! Acceptance: a 3-node `--virtual-net` run produces a merged front
//! byte-identical to the verifying replay of its own exchange recording.

use std::sync::Arc;
use tsmo_cluster::{front_fingerprint, replay_virtual, run_virtual, VirtualMeshConfig};
use tsmo_core::TsmoConfig;
use tsmo_faults::{FaultConfig, FaultPlan};
use vrptw::generator::{GeneratorConfig, InstanceClass};
use vrptw::Instance;

fn instance() -> Arc<Instance> {
    Arc::new(GeneratorConfig::new(InstanceClass::R2, 30, 7).build())
}

fn mesh_cfg(seed: u64) -> VirtualMeshConfig {
    VirtualMeshConfig {
        nodes: 3,
        searchers_per_node: 2,
        cfg: TsmoConfig {
            max_evaluations: 4_000,
            neighborhood_size: 40,
            stagnation_limit: 8,
            ..TsmoConfig::default()
        }
        .with_seed(seed),
    }
}

#[test]
fn replay_of_a_three_node_run_is_byte_identical() {
    let inst = instance();
    let vm = mesh_cfg(11);
    let recorded = run_virtual(&inst, &vm, tsmo_obs::noop(), tsmo_faults::none());
    assert!(
        !recorded.log.is_empty(),
        "the mesh must actually exchange solutions for this test to mean anything"
    );
    assert!(!recorded.front.is_empty());
    assert_eq!(recorded.node_fronts.len(), 3);

    let replayed = replay_virtual(
        &inst,
        &vm,
        tsmo_obs::noop(),
        tsmo_faults::none(),
        &recorded.log,
    )
    .expect("replay must follow the recording exactly");
    assert_eq!(
        front_fingerprint(&replayed.front),
        front_fingerprint(&recorded.front),
        "merged front must be byte-identical under replay"
    );
    assert_eq!(replayed.log, recorded.log);
    assert_eq!(replayed.evaluations, recorded.evaluations);
    assert_eq!(replayed.iterations, recorded.iterations);
    for (a, b) in recorded.node_fronts.iter().zip(&replayed.node_fronts) {
        assert_eq!(front_fingerprint(a), front_fingerprint(b));
    }
}

#[test]
fn replay_against_a_foreign_recording_reports_the_divergence() {
    let inst = instance();
    let recorded = run_virtual(&inst, &mesh_cfg(11), tsmo_obs::noop(), tsmo_faults::none());
    let err = replay_virtual(
        &inst,
        &mesh_cfg(12), // different seed ⇒ different exchange schedule
        tsmo_obs::noop(),
        tsmo_faults::none(),
        &recorded.log,
    )
    .expect_err("a different seed cannot reproduce the recording");
    assert!(
        err.contains("diverged") || err.contains("exchange"),
        "{err}"
    );
}

#[test]
fn faulted_virtual_runs_replay_identically_too() {
    // Exchange drop/delay decisions are pure functions of (seed, sender,
    // seq), so a faulted mesh is as reproducible as a clean one.
    let inst = instance();
    let vm = mesh_cfg(21);
    let hook = || FaultPlan::shared(FaultConfig::exchange_only(5, 0.4));
    let recorded = run_virtual(&inst, &vm, tsmo_obs::noop(), hook());
    let replayed = replay_virtual(&inst, &vm, tsmo_obs::noop(), hook(), &recorded.log)
        .expect("faulted replay must match");
    assert_eq!(
        front_fingerprint(&replayed.front),
        front_fingerprint(&recorded.front)
    );
}

/// tsmo-trace under `--virtual-net`: the verifying replay reproduces the
/// recording's span and timeline stream byte-for-byte — trace ids and
/// span ids included.
#[test]
fn virtual_replay_preserves_trace_and_span_ids_exactly() {
    use tsmo_obs::{MemoryRecorder, Recorder, SearchEvent};

    let inst = instance();
    let mut vm = mesh_cfg(11);
    let trace_id = tsmo_obs::trace_id_from_seed(11);
    vm.cfg.trace_id = Some(trace_id);
    vm.cfg.timeline_every = Some(500);
    let r1 = Arc::new(MemoryRecorder::new().with_span_events());
    let recorded = run_virtual(
        &inst,
        &vm,
        Arc::clone(&r1) as Arc<dyn Recorder>,
        tsmo_faults::none(),
    );
    let r2 = Arc::new(MemoryRecorder::new().with_span_events());
    let replayed = replay_virtual(
        &inst,
        &vm,
        Arc::clone(&r2) as Arc<dyn Recorder>,
        tsmo_faults::none(),
        &recorded.log,
    )
    .expect("replay must follow the recording exactly");
    assert_eq!(
        front_fingerprint(&replayed.front),
        front_fingerprint(&recorded.front)
    );
    let (jsonl1, jsonl2) = (r1.events_jsonl(), r2.events_jsonl());
    assert!(!jsonl1.is_empty());
    assert_eq!(
        jsonl1, jsonl2,
        "replay must preserve trace and span ids exactly"
    );
    let mut saw_span = false;
    for ev in &r1.events() {
        if let SearchEvent::SpanEnter { trace, .. } | SearchEvent::SpanExit { trace, .. } =
            &ev.event
        {
            saw_span = true;
            assert_eq!(*trace, trace_id);
        }
    }
    assert!(saw_span, "the virtual run recorded no spans");
}

#[test]
fn virtual_front_is_mutually_non_dominated_and_solutions_check() {
    let inst = instance();
    let out = run_virtual(&inst, &mesh_cfg(31), tsmo_obs::noop(), tsmo_faults::none());
    assert_eq!(
        pareto::non_dominated_indices(&out.front).len(),
        out.front.len()
    );
    for entry in &out.front {
        assert!(entry.solution.check(&inst).is_empty(), "invalid solution");
    }
    // 6 searchers, each with its own 4,000-evaluation budget.
    assert_eq!(out.evaluations, 24_000);
}
