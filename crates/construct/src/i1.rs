//! Solomon's I1 sequential insertion heuristic (Operations Research 1987),
//! with the paper's randomized parameterization.

use detrand::Rng;
use vrptw::{evaluate_route, Instance, RouteTiming, SiteId, Solution, DEPOT};

/// Parameters of the I1 heuristic.
///
/// The insertion cost of customer `u` between consecutive stops `i, j` is
///
/// ```text
/// c1(i,u,j) = α1 · (d(i,u) + d(u,j) − μ·d(i,j)) + α2 · (b_j' − b_j)
/// ```
///
/// with `α2 = 1 − α1` and `b_j'` the pushed-back service start at `j`.
/// Among customers with a feasible position the one maximizing
/// `c2(u) = λ·d(0,u) − c1(u)` is inserted (it is the hardest to serve
/// later). The paper draws these parameters at random per construction —
/// see [`I1Config::random`].
#[derive(Debug, Clone, Copy)]
pub struct I1Config {
    /// Weight of the distance term (`0..=1`); the time term gets `1 − α1`.
    pub alpha1: f64,
    /// Savings factor on the replaced arc.
    pub mu: f64,
    /// Weight of the depot distance in the customer-selection criterion.
    pub lambda: f64,
    /// Seed rule: `true` = farthest unrouted customer, `false` = earliest
    /// due date (the two rules §III.B mentions).
    pub seed_farthest: bool,
}

impl Default for I1Config {
    fn default() -> Self {
        Self {
            alpha1: 0.5,
            mu: 1.0,
            lambda: 1.0,
            seed_farthest: true,
        }
    }
}

impl I1Config {
    /// Draws a random parameterization, as the paper does for every restart:
    /// `α1 ~ U(0,1)`, `μ ~ U(0,2)`, `λ ~ U(0,2)`, seed rule by fair coin.
    pub fn random<R: Rng>(rng: &mut R) -> Self {
        Self {
            alpha1: rng.next_f64(),
            mu: rng.range_f64(0.0, 2.0),
            lambda: rng.range_f64(0.0, 2.0),
            seed_farthest: rng.bernoulli(0.5),
        }
    }
}

/// Runs I1 with a freshly randomized configuration.
pub fn randomized_i1<R: Rng>(inst: &Instance, rng: &mut R) -> Solution {
    i1(inst, &I1Config::random(rng))
}

/// The best feasible insertion of `u` into `route`: `(position, c1)`.
/// The timing arrays come from [`vrptw::RouteTiming`] and make each
/// feasibility check O(1).
fn best_insertion(
    inst: &Instance,
    cfg: &I1Config,
    route: &[SiteId],
    t: &RouteTiming,
    u: SiteId,
) -> Option<(usize, f64)> {
    let su = inst.site(u);
    if t.load + su.demand > inst.capacity() {
        return None;
    }
    let alpha2 = 1.0 - cfg.alpha1;
    let mut best: Option<(usize, f64)> = None;
    for pos in 0..=route.len() {
        let (i, depart_i) = if pos == 0 {
            (DEPOT, inst.depot().ready)
        } else {
            let i = route[pos - 1];
            (i, t.start[pos - 1] + inst.site(i).service)
        };
        let j = if pos < route.len() { route[pos] } else { DEPOT };
        let arr_u = depart_i + inst.dist(i, u);
        if arr_u > su.due {
            continue;
        }
        let start_u = arr_u.max(su.ready);
        let arr_j = start_u + su.service + inst.dist(u, j);
        // `latest[pos]` bounds the arrival at the stop now shifted to
        // position pos+1 — i.e. the old stop at `pos` (or the depot return).
        if arr_j > t.latest[pos] {
            continue;
        }
        let old_start_j = if pos < route.len() {
            t.start[pos]
        } else {
            // Depot return "service start" is just the arrival.
            depart_i + inst.dist(i, DEPOT)
        };
        let sj = if j == DEPOT {
            inst.depot().ready
        } else {
            inst.site(j).ready
        };
        let new_start_j = arr_j.max(sj);
        let push_back = (new_start_j - old_start_j).max(0.0);
        let detour = inst.dist(i, u) + inst.dist(u, j) - cfg.mu * inst.dist(i, j);
        let c1 = cfg.alpha1 * detour + alpha2 * push_back;
        if best.is_none_or(|(_, b)| c1 < b) {
            best = Some((pos, c1));
        }
    }
    best
}

/// Runs Solomon's I1 heuristic with the given configuration.
///
/// Routes are built one at a time: a seed customer opens the route, then
/// the feasibility-respecting insertion with the best `c2` score is applied
/// until no unrouted customer fits, at which point the next route is opened.
/// If the fleet limit is reached with customers still unrouted (possible on
/// the tight type-1 instances), the leftovers are placed by least added
/// tardiness — the solution stays complete and capacity-feasible, matching
/// the soft-time-window search space the tabu search explores.
pub fn i1(inst: &Instance, cfg: &I1Config) -> Solution {
    let mut unrouted: Vec<SiteId> = inst.customers().collect();
    let mut routes: Vec<Vec<SiteId>> = Vec::new();

    while !unrouted.is_empty() && routes.len() < inst.max_vehicles() {
        // Pick the seed for a fresh route.
        let seed_idx = if cfg.seed_farthest {
            argmax_by(&unrouted, |&c| inst.dist(DEPOT, c))
        } else {
            argmax_by(&unrouted, |&c| -inst.site(c).due)
        };
        let seed = unrouted.swap_remove(seed_idx);
        let mut route = vec![seed];
        let mut t = RouteTiming::of(inst, &route);

        loop {
            let mut best: Option<(usize, usize, f64)> = None; // (unrouted idx, pos, c2)
            for (ui, &u) in unrouted.iter().enumerate() {
                if let Some((pos, c1)) = best_insertion(inst, cfg, &route, &t, u) {
                    let c2 = cfg.lambda * inst.dist(DEPOT, u) - c1;
                    if best.is_none_or(|(_, _, b)| c2 > b) {
                        best = Some((ui, pos, c2));
                    }
                }
            }
            match best {
                Some((ui, pos, _)) => {
                    let u = unrouted.swap_remove(ui);
                    route.insert(pos, u);
                    t = RouteTiming::of(inst, &route);
                }
                None => break,
            }
        }
        routes.push(route);
    }

    if !unrouted.is_empty() {
        force_insert(inst, &mut routes, &mut unrouted);
    }
    Solution::from_routes(routes)
}

/// Places leftover customers (fleet exhausted) at the capacity-feasible
/// position with the least added tardiness + distance.
fn force_insert(inst: &Instance, routes: &mut [Vec<SiteId>], unrouted: &mut Vec<SiteId>) {
    // Serve the most urgent leftovers first.
    unrouted.sort_by(|&a, &b| {
        inst.site(a)
            .due
            .partial_cmp(&inst.site(b).due)
            .expect("due dates are not NaN")
    });
    for &u in unrouted.iter() {
        let demand = inst.site(u).demand;
        let mut best: Option<(usize, usize, f64)> = None;
        for (ri, route) in routes.iter().enumerate() {
            let eval = evaluate_route(inst, route);
            if eval.load + demand > inst.capacity() {
                continue;
            }
            for pos in 0..=route.len() {
                let mut candidate = route.clone();
                candidate.insert(pos, u);
                let e = evaluate_route(inst, &candidate);
                let cost = (e.tardiness - eval.tardiness) * 1e3 + (e.distance - eval.distance);
                if best.is_none_or(|(_, _, b)| cost < b) {
                    best = Some((ri, pos, cost));
                }
            }
        }
        let (ri, pos, _) = best.unwrap_or_else(|| {
            // Total demand never exceeds fleet capacity (instance invariant),
            // but per-route packing can still fail; dump into the
            // least-loaded route to keep the solution complete.
            let ri = argmax_by(&(0..routes.len()).collect::<Vec<_>>(), |&r| {
                -evaluate_route(inst, &routes[r]).load
            });
            (ri, routes[ri].len(), 0.0)
        });
        routes[ri].insert(pos, u);
    }
    unrouted.clear();
}

/// Index of the item maximizing `key` (first on ties).
fn argmax_by<T>(items: &[T], key: impl Fn(&T) -> f64) -> usize {
    let mut best = 0;
    let mut best_key = f64::NEG_INFINITY;
    for (i, item) in items.iter().enumerate() {
        let k = key(item);
        if k > best_key {
            best_key = k;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use detrand::Xoshiro256StarStar;
    use vrptw::generator::{GeneratorConfig, InstanceClass};
    use vrptw::Customer;

    #[test]
    fn timing_arrays_are_consistent() {
        let inst = Instance::tiny();
        let t = RouteTiming::of(&inst, &[1, 2]);
        assert_eq!(t.start[0], 10.0);
        assert!((t.start[1] - (11.0 + 200f64.sqrt())).abs() < 1e-9);
        assert_eq!(t.load, 8.0);
        // latest[2] = depot due = 1000; latest[1] = min(100, 1000-1-10).
        assert_eq!(t.latest[2], 1000.0);
        assert_eq!(t.latest[1], 100.0);
    }

    #[test]
    fn solves_tiny_instance_completely() {
        let inst = Instance::tiny();
        let sol = i1(&inst, &I1Config::default());
        assert!(sol.check(&inst).is_empty());
        // Capacity 10, demands 4 => at most 2 per route, so >= 2 routes.
        assert!(sol.n_deployed() >= 2 && sol.n_deployed() <= 3);
        // The tiny instance is easy: everything should be on time.
        assert_eq!(sol.evaluate(&inst).tardiness, 0.0);
    }

    #[test]
    fn hard_feasible_on_relaxed_instances() {
        // Large windows: I1 should produce tardiness-free solutions.
        let inst = GeneratorConfig::new(InstanceClass::C2, 50, 21).build();
        let sol = i1(&inst, &I1Config::default());
        assert!(sol.check(&inst).is_empty());
        assert_eq!(
            sol.evaluate(&inst).tardiness,
            0.0,
            "large-window I1 must be feasible"
        );
    }

    #[test]
    fn respects_fleet_limit() {
        for class in InstanceClass::ALL {
            let inst = GeneratorConfig::new(class, 100, 33).build();
            let sol = i1(&inst, &I1Config::default());
            assert!(sol.n_deployed() <= inst.max_vehicles(), "{class:?}");
            assert!(sol.check(&inst).is_empty(), "{class:?}");
        }
    }

    #[test]
    fn capacity_is_hard_whenever_packable() {
        let inst = GeneratorConfig::new(InstanceClass::R1, 120, 9).build();
        let sol = i1(&inst, &I1Config::default());
        for route in sol.routes() {
            let e = evaluate_route(&inst, route);
            assert!(e.load <= inst.capacity(), "route exceeds capacity");
        }
    }

    #[test]
    fn seed_rules_differ() {
        let inst = GeneratorConfig::new(InstanceClass::R1, 60, 2).build();
        let far = i1(
            &inst,
            &I1Config {
                seed_farthest: true,
                ..Default::default()
            },
        );
        let due = i1(
            &inst,
            &I1Config {
                seed_farthest: false,
                ..Default::default()
            },
        );
        assert_ne!(far, due, "the two seed rules should explore differently");
    }

    #[test]
    fn random_config_in_expected_ranges() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(3);
        for _ in 0..100 {
            let c = I1Config::random(&mut rng);
            assert!((0.0..1.0).contains(&c.alpha1));
            assert!((0.0..2.0).contains(&c.mu));
            assert!((0.0..2.0).contains(&c.lambda));
        }
    }

    #[test]
    fn randomized_runs_are_diverse_but_always_valid() {
        let inst = GeneratorConfig::new(InstanceClass::RC1, 50, 8).build();
        let mut rng = Xoshiro256StarStar::seed_from_u64(123);
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..10 {
            let sol = randomized_i1(&inst, &mut rng);
            assert!(sol.check(&inst).is_empty());
            distinct.insert(format!("{:?}", sol.routes()));
        }
        assert!(distinct.len() > 1, "randomized I1 should vary");
    }

    #[test]
    fn single_customer_instance() {
        let depot = Customer {
            x: 0.0,
            y: 0.0,
            demand: 0.0,
            ready: 0.0,
            due: 100.0,
            service: 0.0,
        };
        let c = Customer {
            x: 3.0,
            y: 4.0,
            demand: 1.0,
            ready: 0.0,
            due: 50.0,
            service: 2.0,
        };
        let inst = Instance::new("one", vec![depot, c], 10.0, 1);
        let sol = i1(&inst, &I1Config::default());
        assert_eq!(sol.routes(), &[vec![1]]);
        assert_eq!(sol.evaluate(&inst).distance, 10.0);
    }

    #[test]
    fn leftovers_are_forced_in_when_fleet_is_tiny() {
        // 12 customers but only 2 vehicles of capacity 200: packable by
        // demand, but tight windows may force tardiness — completeness wins.
        let inst = GeneratorConfig::new(InstanceClass::R1, 12, 4)
            .with_max_vehicles(2)
            .build();
        let sol = i1(&inst, &I1Config::default());
        assert!(sol.check(&inst).is_empty());
        assert!(sol.n_deployed() <= 2);
    }
}
