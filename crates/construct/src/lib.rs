//! Construction heuristics for the CVRPTW.
//!
//! The paper seeds every tabu search with Solomon's **I1** route
//! construction heuristic "with randomly chosen parameters" (§III.B): the
//! seed customer of each route is either the one with the earliest deadline
//! or the one farthest from the depot (chosen at random), and customers are
//! inserted at the position with the best weighted savings value that
//! accounts for both the added distance and the time-window push-back.
//!
//! Three simpler constructors are provided as baselines and test fixtures:
//! a time-aware [`nearest_neighbor`], Clarke–Wright [`savings`], and the
//! Gillett–Miller [`sweep`].
//!
//! All constructors return *complete* solutions (every customer routed).
//! They respect capacity as a hard constraint and prefer hard time-window
//! feasibility, but — because the problem has soft windows and a limited
//! fleet — they fall back to the least-tardiness insertion when a customer
//! fits nowhere, instead of failing.

mod i1;
mod simple;

pub use i1::{i1, randomized_i1, I1Config};
pub use simple::{nearest_neighbor, savings, sweep, sweep_from};

#[cfg(test)]
mod tests {
    use super::*;
    use detrand::Xoshiro256StarStar;
    use vrptw::generator::{GeneratorConfig, InstanceClass};

    #[test]
    fn all_constructors_produce_valid_solutions_on_all_classes() {
        for class in InstanceClass::ALL {
            let inst = GeneratorConfig::new(class, 60, 11).build();
            let mut rng = Xoshiro256StarStar::seed_from_u64(5);
            for (name, sol) in [
                ("i1", randomized_i1(&inst, &mut rng)),
                ("nn", nearest_neighbor(&inst)),
                ("savings", savings(&inst)),
                ("sweep", sweep(&inst)),
            ] {
                let problems = sol.check(&inst);
                assert!(problems.is_empty(), "{name} on {class:?}: {problems:?}");
            }
        }
    }

    #[test]
    fn i1_beats_one_customer_per_route_when_fleet_is_tight() {
        let inst = GeneratorConfig::new(InstanceClass::C2, 80, 3).build();
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        let sol = randomized_i1(&inst, &mut rng);
        // The fleet limit is N/4, so I1 must pack customers into routes.
        assert!(sol.n_deployed() <= inst.max_vehicles());
        assert!(sol.n_deployed() < inst.n_customers());
    }
}
