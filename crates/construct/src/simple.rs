//! Simple constructive baselines: time-aware nearest neighbor and
//! Clarke–Wright savings.

use vrptw::{evaluate_route, Instance, SiteId, Solution, DEPOT};

/// Time-aware nearest-neighbor construction.
///
/// Builds routes one at a time, repeatedly driving to the unrouted customer
/// that is closest in *time-oriented* terms (travel time plus unavoidable
/// waiting), provided it fits the capacity and is hard-TW-reachable. When no
/// customer qualifies the route is closed; when the fleet is exhausted the
/// remaining customers are appended to the route with the most spare
/// capacity (soft windows absorb the lateness).
pub fn nearest_neighbor(inst: &Instance) -> Solution {
    let mut unrouted: Vec<SiteId> = inst.customers().collect();
    let mut routes: Vec<Vec<SiteId>> = Vec::new();

    while !unrouted.is_empty() && routes.len() < inst.max_vehicles() {
        let mut route: Vec<SiteId> = Vec::new();
        let mut here = DEPOT;
        let mut time = inst.depot().ready;
        let mut load = 0.0;
        loop {
            let mut best: Option<(usize, f64)> = None;
            for (i, &c) in unrouted.iter().enumerate() {
                let s = inst.site(c);
                if load + s.demand > inst.capacity() {
                    continue;
                }
                let arrival = time + inst.dist(here, c);
                if arrival > s.due {
                    continue; // unreachable on time from here
                }
                let start = arrival.max(s.ready);
                // Must still make it home.
                if start + s.service + inst.dist(c, DEPOT) > inst.depot().due {
                    continue;
                }
                let cost = (arrival - time) + (start - arrival); // travel + wait
                if best.is_none_or(|(_, b)| cost < b) {
                    best = Some((i, cost));
                }
            }
            match best {
                Some((i, _)) => {
                    let c = unrouted.swap_remove(i);
                    let s = inst.site(c);
                    let arrival = time + inst.dist(here, c);
                    time = arrival.max(s.ready) + s.service;
                    load += s.demand;
                    here = c;
                    route.push(c);
                }
                None => break,
            }
        }
        if route.is_empty() {
            // Nothing is reachable on time from the depot: give up on hard
            // feasibility and let the overflow path below handle the rest.
            break;
        }
        routes.push(route);
    }

    // Fleet exhausted (or nothing hard-reachable): pack the rest by
    // capacity, ignoring windows — the search space has soft windows.
    'overflow: for &c in unrouted.iter() {
        let demand = inst.site(c).demand;
        let mut slack_order: Vec<usize> = (0..routes.len()).collect();
        slack_order.sort_by(|&a, &b| {
            let la = evaluate_route(inst, &routes[a]).load;
            let lb = evaluate_route(inst, &routes[b]).load;
            la.partial_cmp(&lb).expect("loads are not NaN")
        });
        for ri in slack_order {
            if evaluate_route(inst, &routes[ri]).load + demand <= inst.capacity() {
                routes[ri].push(c);
                continue 'overflow;
            }
        }
        if routes.len() < inst.max_vehicles() {
            routes.push(vec![c]);
        } else {
            // Last resort (cannot happen on validated instances, where
            // total demand fits the fleet): overload the emptiest route.
            let ri = routes
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    let la = evaluate_route(inst, a).load;
                    let lb = evaluate_route(inst, b).load;
                    la.partial_cmp(&lb).expect("loads are not NaN")
                })
                .map(|(i, _)| i)
                .expect("at least one route exists");
            routes[ri].push(c);
        }
    }
    Solution::from_routes(routes)
}

/// Clarke–Wright parallel savings (capacity-constrained; time windows are
/// left to the improvement phase, as in the classical algorithm).
///
/// Starts from one round trip per customer and repeatedly merges the route
/// pair with the largest savings `s(i,j) = d(i,0) + d(0,j) − d(i,j)`, where
/// `i` is the tail of one route and `j` the head of another, while the
/// merged load fits the capacity. Merging stops when the fleet limit is
/// satisfied and no positive saving remains.
pub fn savings(inst: &Instance) -> Solution {
    // routes as deques: (customers, load); customer -> route index maps.
    let mut routes: Vec<Option<Vec<SiteId>>> = inst.customers().map(|c| Some(vec![c])).collect();
    let mut loads: Vec<f64> = inst.customers().map(|c| inst.site(c).demand).collect();
    let mut route_of: Vec<usize> = vec![usize::MAX; inst.n_sites()];
    for (ri, c) in inst.customers().enumerate() {
        route_of[c as usize] = ri;
    }

    // All pairwise savings, largest first.
    let mut pairs: Vec<(f64, SiteId, SiteId)> = Vec::new();
    for i in inst.customers() {
        for j in inst.customers() {
            if i != j {
                let s = inst.dist(i, DEPOT) + inst.dist(DEPOT, j) - inst.dist(i, j);
                if s > 0.0 {
                    pairs.push((s, i, j));
                }
            }
        }
    }
    pairs.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("savings are not NaN"));

    let mut n_routes = routes.iter().flatten().count();
    for (_, i, j) in pairs {
        let ri = route_of[i as usize];
        let rj = route_of[j as usize];
        if ri == rj {
            continue;
        }
        let (a, b) = (
            routes[ri].as_ref().expect("live route"),
            routes[rj].as_ref().expect("live route"),
        );
        // i must be the tail of its route and j the head of its route.
        if *a.last().expect("non-empty") != i || b[0] != j {
            continue;
        }
        if loads[ri] + loads[rj] > inst.capacity() {
            continue;
        }
        let b_taken = routes[rj].take().expect("live route");
        routes[ri].as_mut().expect("live route").extend(b_taken);
        loads[ri] += loads[rj];
        for &c in routes[ri].as_ref().expect("live route") {
            route_of[c as usize] = ri;
        }
        n_routes -= 1;
    }

    // If still over the fleet limit, greedily merge smallest routes
    // tail-to-head regardless of savings (capacity permitting).
    let mut flat: Vec<Vec<SiteId>> = routes.into_iter().flatten().collect();
    while flat.len() > inst.max_vehicles() {
        flat.sort_by_key(|a| a.len());
        let mut merged = false;
        let first_load: f64 = flat[0].iter().map(|&c| inst.site(c).demand).sum();
        for k in 1..flat.len() {
            let load_k: f64 = flat[k].iter().map(|&c| inst.site(c).demand).sum();
            if first_load + load_k <= inst.capacity() {
                let head = flat.swap_remove(0);
                // After swap_remove the element previously at k may have
                // moved; recompute the target by matching load.
                let target = flat
                    .iter()
                    .position(|r| {
                        let l: f64 = r.iter().map(|&c| inst.site(c).demand).sum();
                        (l - load_k).abs() < 1e-12
                    })
                    .expect("merge target still present");
                flat[target].splice(0..0, head);
                merged = true;
                break;
            }
        }
        assert!(
            merged,
            "fleet limit unreachable even though total demand fits"
        );
    }
    let _ = n_routes;
    Solution::from_routes(flat)
}

/// Sweep construction (Gillett & Miller 1974): customers are sorted by
/// polar angle around the depot and dealt into routes whenever the
/// capacity would overflow, then each route keeps its angular order (a
/// reasonable TSP-ish tour for radial clusters). Time windows are ignored
/// during clustering — like Clarke–Wright, the sweep targets the
/// geographic structure and leaves temporal repair to the improvement
/// phase.
///
/// The angular start position is a parameter because the first cut is
/// arbitrary; [`sweep`] uses angle 0, [`sweep_from`] lets callers (or a
/// randomized restart) choose.
pub fn sweep(inst: &Instance) -> Solution {
    sweep_from(inst, 0.0)
}

/// [`sweep`] with an explicit starting angle in radians.
pub fn sweep_from(inst: &Instance, start_angle: f64) -> Solution {
    let depot = inst.depot();
    let mut order: Vec<(f64, SiteId)> = inst
        .customers()
        .map(|c| {
            let s = inst.site(c);
            let mut angle = (s.y - depot.y).atan2(s.x - depot.x) - start_angle;
            let tau = std::f64::consts::TAU;
            angle = angle.rem_euclid(tau);
            (angle, c)
        })
        .collect();
    order.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("angles are not NaN"));

    let mut routes: Vec<Vec<SiteId>> = Vec::new();
    let mut current: Vec<SiteId> = Vec::new();
    let mut load = 0.0;
    for (_, c) in order {
        let demand = inst.site(c).demand;
        let must_close = load + demand > inst.capacity();
        // Keep the fleet limit: once only one vehicle remains, overload is
        // not an option — but validated instances always pack.
        if must_close && !current.is_empty() && routes.len() + 1 < inst.max_vehicles() {
            routes.push(std::mem::take(&mut current));
            load = 0.0;
        }
        current.push(c);
        load += demand;
    }
    if !current.is_empty() {
        routes.push(current);
    }
    Solution::from_routes(routes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vrptw::generator::{GeneratorConfig, InstanceClass};

    #[test]
    fn nearest_neighbor_tiny() {
        let inst = Instance::tiny();
        let sol = nearest_neighbor(&inst);
        assert!(sol.check(&inst).is_empty());
        assert_eq!(sol.evaluate(&inst).tardiness, 0.0);
    }

    #[test]
    fn savings_tiny_merges_routes() {
        let inst = Instance::tiny();
        let sol = savings(&inst);
        assert!(sol.check(&inst).is_empty());
        // Capacity allows two customers per route: savings should use 2
        // routes instead of the trivial 4 (fleet limit is 3 anyway).
        assert!(sol.n_deployed() <= 3);
    }

    #[test]
    fn savings_respects_capacity() {
        let inst = GeneratorConfig::new(InstanceClass::R1, 80, 6).build();
        let sol = savings(&inst);
        assert!(sol.check(&inst).is_empty());
        for route in sol.routes() {
            assert!(evaluate_route(&inst, route).load <= inst.capacity());
        }
    }

    #[test]
    fn savings_shortens_total_distance_vs_trivial() {
        let inst = GeneratorConfig::new(InstanceClass::C2, 60, 10).build();
        let trivial_dist: f64 = inst.customers().map(|c| 2.0 * inst.dist(DEPOT, c)).sum();
        let sol = savings(&inst);
        assert!(sol.evaluate(&inst).distance < trivial_dist);
    }

    #[test]
    fn nearest_neighbor_handles_fleet_pressure() {
        let inst = GeneratorConfig::new(InstanceClass::R1, 60, 14).build();
        let sol = nearest_neighbor(&inst);
        assert!(sol.check(&inst).is_empty());
        assert!(sol.n_deployed() <= inst.max_vehicles());
    }

    #[test]
    fn sweep_produces_valid_capacity_respecting_solutions() {
        let inst = GeneratorConfig::new(InstanceClass::C1, 80, 4).build();
        let sol = sweep(&inst);
        assert!(sol.check(&inst).is_empty());
        // All routes except possibly the last (fleet-limit overflow, which
        // cannot trigger on validated instances) respect capacity.
        for route in sol.routes() {
            assert!(evaluate_route(&inst, route).load <= inst.capacity());
        }
        assert!(sol.n_deployed() <= inst.max_vehicles());
    }

    #[test]
    fn sweep_routes_are_angularly_contiguous() {
        let inst = GeneratorConfig::new(InstanceClass::R2, 40, 8).build();
        let sol = sweep(&inst);
        let depot = inst.depot();
        let angle = |c: SiteId| {
            let s = inst.site(c);
            (s.y - depot.y)
                .atan2(s.x - depot.x)
                .rem_euclid(std::f64::consts::TAU)
        };
        for route in sol.routes() {
            let angles: Vec<f64> = route.iter().map(|&c| angle(c)).collect();
            let sorted = angles.windows(2).all(|w| w[0] <= w[1] + 1e-12);
            assert!(sorted, "route not in angular order: {angles:?}");
        }
    }

    #[test]
    fn sweep_start_angle_changes_partitioning() {
        let inst = GeneratorConfig::new(InstanceClass::R1, 60, 12).build();
        let a = sweep_from(&inst, 0.0);
        let b = sweep_from(&inst, 1.5);
        assert!(a.check(&inst).is_empty());
        assert!(b.check(&inst).is_empty());
        assert_ne!(a, b, "rotating the sweep start should change the cut");
    }

    #[test]
    fn both_baselines_complete_on_every_class() {
        for class in InstanceClass::ALL {
            for (name, sol) in [
                (
                    "nn",
                    nearest_neighbor(&GeneratorConfig::new(class, 40, 3).build()),
                ),
                ("cw", savings(&GeneratorConfig::new(class, 40, 3).build())),
            ] {
                let inst = GeneratorConfig::new(class, 40, 3).build();
                assert!(sol.check(&inst).is_empty(), "{name} {class:?}");
            }
        }
    }
}
