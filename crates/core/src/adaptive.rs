//! Adaptive-memory parallel tabu search — the *domain decomposition* level
//! of parallel TS the paper's introduction describes.
//!
//! §I: "Domain decomposition was introduced to Tabu Search in a concept
//! known as 'Adaptive Memory'. Adaptive memory is represented as a pool of
//! solution parts from which new solutions are created. During the search
//! good parts are identified and added to the memory" (Taillard et al.
//! 1997 for the CVRPsTW; parallelized by Badeau et al. 1997). The paper
//! itself implements the *functional decomposition* and *multisearch*
//! levels only; this module completes the taxonomy so all three levels can
//! be compared on the same substrate.
//!
//! Design (following [8]/[9] in simplified form):
//!
//! * the **memory** is a bounded pool of routes, each tagged with the
//!   scalarized quality of the solution it came from;
//! * a work unit draws a rank-weighted, customer-disjoint subset of routes
//!   from the pool, repairs it into a complete solution (cheapest
//!   insertion of uncovered customers), and improves it with a short
//!   weighted-sum tabu search;
//! * improved solutions are returned to the master, which updates the pool
//!   with their routes and maintains a Pareto archive of everything seen;
//! * `P − 1` workers improve concurrently; the master assembles, updates,
//!   and dispatches (Badeau et al.'s master/worker organization).

use crate::config::TsmoConfig;
use crate::neighborhood::generate_chunk;
use crate::outcome::{FrontEntry, TsmoOutcome};
use crate::tabu::TabuList;
use deme::{EvaluationBudget, MasterWorker, PoolError, RunClock};
use detrand::{RandomSource, Rng, Xoshiro256StarStar};
use pareto::Archive;
use std::sync::Arc;
use vrptw::solution::EvaluatedSolution;
use vrptw::{evaluate_route, Instance, Objectives, SiteId, Solution};
use vrptw_construct::randomized_i1;
use vrptw_operators::SampleParams;

/// The pool of solution parts (routes) with quality tags.
#[derive(Debug, Clone)]
pub struct AdaptiveMemory {
    /// `(route, scalarized value of the source solution)` — lower is better.
    routes: Vec<(Vec<SiteId>, f64)>,
    capacity: usize,
}

impl AdaptiveMemory {
    /// An empty memory holding at most `capacity` routes.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "memory capacity must be positive");
        Self {
            routes: Vec::with_capacity(capacity + 32),
            capacity,
        }
    }

    /// Number of stored routes.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }

    /// Adds every route of `solution` with quality tag `value`, then
    /// truncates the pool to capacity keeping the best-tagged routes.
    pub fn absorb(&mut self, solution: &Solution, value: f64) {
        for route in solution.routes() {
            self.routes.push((route.clone(), value));
        }
        self.routes
            .sort_by(|a, b| a.1.partial_cmp(&b.1).expect("values are not NaN"));
        self.routes.truncate(self.capacity);
    }

    /// Draws a customer-disjoint set of routes, rank-weighted toward good
    /// tags ("during the search good parts are identified"), and repairs it
    /// into a complete solution for the instance.
    pub fn sample_solution<R: Rng>(&self, inst: &Instance, rng: &mut R) -> Solution {
        let n = self.routes.len();
        debug_assert!(n > 0, "sample from an empty memory");
        // Rank weights: best route gets weight n, worst gets 1.
        let weights: Vec<f64> = (0..n).map(|i| (n - i) as f64).collect();
        let mut available: Vec<usize> = (0..n).collect();
        let mut covered = vec![false; inst.n_sites()];
        let mut routes: Vec<Vec<SiteId>> = Vec::new();
        while !available.is_empty() && routes.len() < inst.max_vehicles() {
            let w: Vec<f64> = available.iter().map(|&i| weights[i]).collect();
            let pick = rng.choose_weighted(&w).expect("weights are positive");
            let idx = available.swap_remove(pick);
            let route = &self.routes[idx].0;
            if route.iter().all(|&c| !covered[c as usize]) {
                for &c in route {
                    covered[c as usize] = true;
                }
                routes.push(route.clone());
            }
        }
        // Repair: cheapest capacity-feasible insertion of the uncovered.
        for c in inst.customers() {
            if !covered[c as usize] {
                insert_cheapest(inst, &mut routes, c);
            }
        }
        Solution::from_routes(routes)
    }
}

/// Inserts `customer` at the cheapest capacity-feasible position (heavily
/// penalizing added tardiness), opening a new route when the fleet allows.
///
/// Exported because it is also the repair primitive of the dynamic
/// re-optimization path (`tsmo-scenario`): elites of the previous epoch
/// are patched against a mutated instance by removing affected customers
/// and re-inserting them here.
pub fn insert_cheapest(inst: &Instance, routes: &mut Vec<Vec<SiteId>>, customer: SiteId) {
    let demand = inst.site(customer).demand;
    let mut best: Option<(usize, usize, f64)> = None;
    for (ri, route) in routes.iter().enumerate() {
        let base = evaluate_route(inst, route);
        if base.load + demand > inst.capacity() {
            continue;
        }
        for pos in 0..=route.len() {
            let mut cand = route.clone();
            cand.insert(pos, customer);
            let e = evaluate_route(inst, &cand);
            let cost = (e.distance - base.distance) + 1e3 * (e.tardiness - base.tardiness);
            if best.is_none_or(|(_, _, b)| cost < b) {
                best = Some((ri, pos, cost));
            }
        }
    }
    if routes.len() < inst.max_vehicles() {
        let solo = evaluate_route(inst, &[customer]);
        let cost = solo.distance + 1e3 * solo.tardiness;
        if best.is_none_or(|(_, _, b)| cost < b) {
            routes.push(vec![customer]);
            return;
        }
    }
    match best {
        Some((ri, pos, _)) => routes[ri].insert(pos, customer),
        None => {
            let ri = routes
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    let la = evaluate_route(inst, a).load;
                    let lb = evaluate_route(inst, b).load;
                    la.partial_cmp(&lb).expect("loads are not NaN")
                })
                .map(|(i, _)| i)
                .expect("at least one route");
            routes[ri].push(customer);
        }
    }
}

/// Scalarization used for route quality tags and the inner tabu search
/// (also the elite-ranking key of the dynamic warm-start pool).
pub fn scalarize(o: Objectives) -> f64 {
    o.distance + 100.0 * o.vehicles as f64 + 10.0 * o.tardiness
}

/// A short weighted-sum tabu-search improvement of `start`, spending up to
/// `evals` evaluations from its own seed. This is the "tabu searchers that
/// solve subproblems" role of Badeau et al.'s architecture.
fn improve(
    inst: &Instance,
    start: Solution,
    seed: u64,
    evals: usize,
    cfg: &TsmoConfig,
) -> (Solution, Objectives) {
    let params = SampleParams {
        feasibility: cfg.feasibility_criterion,
    };
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    let mut current = EvaluatedSolution::new(start, inst);
    let mut best = current.solution().clone();
    let mut best_obj = current.objectives();
    let mut best_value = scalarize(best_obj);
    let mut tabu = TabuList::new(cfg.tabu_tenure);
    let mut spent = 0usize;
    let nbhd = cfg.neighborhood_size.min(evals.max(1));
    while spent < evals {
        let count = nbhd.min(evals - spent);
        let seed = rng.next_u64();
        let pool = generate_chunk(inst, &current, seed, count, params, 0);
        spent += count;
        let mut chosen: Option<usize> = None;
        let mut chosen_value = f64::INFINITY;
        for (i, nb) in pool.iter().enumerate() {
            let value = scalarize(nb.objectives);
            let admissible = !tabu.is_tabu(&nb.arcs_created) || value < best_value;
            if admissible && value < chosen_value {
                chosen = Some(i);
                chosen_value = value;
            }
        }
        if let Some(i) = chosen {
            let nb = &pool[i];
            tabu.push(nb.arcs_removed.clone());
            current = EvaluatedSolution::new(nb.solution.clone(), inst);
            if chosen_value < best_value {
                best_value = chosen_value;
                best = nb.solution.clone();
                best_obj = nb.objectives;
            }
        }
    }
    (best, best_obj)
}

/// The adaptive-memory parallel tabu search.
pub struct AdaptiveMemoryTs {
    cfg: TsmoConfig,
    processors: usize,
    /// Route-pool capacity.
    pub pool_capacity: usize,
    /// Evaluations per improvement task.
    pub task_evaluations: usize,
}

struct Task {
    start: Solution,
    seed: u64,
    evals: usize,
}

impl AdaptiveMemoryTs {
    /// Creates the runner with `processors` CPUs (one master + workers).
    ///
    /// # Panics
    /// Panics if `processors == 0`.
    pub fn new(cfg: TsmoConfig, processors: usize) -> Self {
        assert!(processors > 0, "need at least the master processor");
        Self {
            cfg,
            processors,
            pool_capacity: 200,
            task_evaluations: 2_000,
        }
    }

    /// Runs to budget exhaustion; returns the Pareto archive of every
    /// improved solution seen by the master.
    ///
    /// # Errors
    /// Propagates the worker pool's failure — a panicked improvement task
    /// ([`PoolError::WorkerPanicked`]) or a fully retired pool
    /// ([`PoolError::Disconnected`]) — instead of aborting the process,
    /// matching the error style of [`deme::MasterWorker`].
    pub fn run(&self, inst: &Arc<Instance>) -> Result<TsmoOutcome, PoolError> {
        let clock = RunClock::start();
        let cfg = &self.cfg;
        let budget = EvaluationBudget::new(cfg.max_evaluations);
        let mut rng = Xoshiro256StarStar::seed_from_u64(cfg.seed ^ 0xADA7);
        let mut memory = AdaptiveMemory::new(self.pool_capacity);
        let mut archive = Archive::new(cfg.archive_capacity);
        let mut iterations = 0usize;

        // Seed the memory with randomized I1 constructions (one evaluation
        // each, like every other variant's initialization).
        let seeds = self.processors.clamp(2, 8);
        for _ in 0..seeds {
            if budget.try_consume(1) == 0 {
                break;
            }
            let s = randomized_i1(inst, &mut rng);
            let o = s.evaluate(inst);
            archive.insert(FrontEntry::new(s.clone(), o));
            memory.absorb(&s, scalarize(o));
        }

        let worker_cfg = cfg.clone();
        let pool = (self.processors > 1).then(|| {
            let inst = Arc::clone(inst);
            MasterWorker::<Task, (Solution, Objectives)>::spawn(self.processors - 1, move |_, t| {
                improve(&inst, t.start, t.seed, t.evals, &worker_cfg)
            })
        });
        let n_workers = pool.as_ref().map_or(0, |p| p.n_workers());
        let mut outstanding = 0usize;

        let absorb = |memory: &mut AdaptiveMemory,
                      archive: &mut Archive<FrontEntry>,
                      s: Solution,
                      o: Objectives| {
            archive.insert(FrontEntry::new(s.clone(), o));
            memory.absorb(&s, scalarize(o));
        };

        loop {
            // Collect finished improvements.
            if let Some(p) = &pool {
                loop {
                    match p.try_recv() {
                        Ok(Some((_, (s, o)))) => {
                            outstanding -= 1;
                            iterations += 1;
                            absorb(&mut memory, &mut archive, s, o);
                        }
                        Ok(None) => break,
                        Err(e) => return Err(e),
                    }
                }
            }
            if budget.exhausted() {
                break;
            }
            // Keep all workers fed.
            if let Some(p) = &pool {
                while outstanding < n_workers {
                    let granted = budget.try_consume(self.task_evaluations as u64) as usize;
                    if granted == 0 {
                        break;
                    }
                    let start = memory.sample_solution(inst, &mut rng);
                    p.send(
                        outstanding % n_workers,
                        Task {
                            start,
                            seed: rng.next_u64(),
                            evals: granted,
                        },
                    );
                    outstanding += 1;
                }
            }
            // The master improves one assembly itself.
            let granted = budget.try_consume(self.task_evaluations as u64) as usize;
            if granted > 0 {
                let start = memory.sample_solution(inst, &mut rng);
                let (s, o) = improve(inst, start, rng.next_u64(), granted, cfg);
                iterations += 1;
                absorb(&mut memory, &mut archive, s, o);
            } else if outstanding == 0 {
                break;
            }
        }
        // Drain stragglers so their work is not wasted.
        if let Some(p) = &pool {
            while outstanding > 0 {
                let (_, (s, o)) = p.recv()?;
                outstanding -= 1;
                iterations += 1;
                absorb(&mut memory, &mut archive, s, o);
            }
        }
        if let Some(p) = pool {
            p.shutdown();
        }
        Ok(TsmoOutcome {
            archive: archive.into_items(),
            evaluations: budget.consumed(),
            iterations,
            runtime_seconds: clock.seconds(),
            trace: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pareto::non_dominated_indices;
    use vrptw::generator::{GeneratorConfig, InstanceClass};

    fn cfg(evals: u64) -> TsmoConfig {
        TsmoConfig {
            max_evaluations: evals,
            neighborhood_size: 50,
            ..TsmoConfig::default()
        }
    }

    #[test]
    fn memory_absorbs_and_truncates_by_quality() {
        let inst = GeneratorConfig::new(InstanceClass::R2, 20, 1).build();
        let mut rng = Xoshiro256StarStar::seed_from_u64(3);
        let mut mem = AdaptiveMemory::new(5);
        let good = randomized_i1(&inst, &mut rng);
        let bad = Solution::one_customer_per_route(&inst);
        mem.absorb(&bad, 1_000.0);
        mem.absorb(&good, 1.0);
        assert_eq!(mem.len(), 5);
        // The best-tagged (good) routes displaced the bad ones.
        // All retained tags should be 1.0 if `good` has >= 5 routes;
        // otherwise a mix — assert the best tag survives at the front.
        assert_eq!(mem.routes[0].1, 1.0);
    }

    #[test]
    fn sampled_solutions_are_always_complete_and_valid() {
        let inst = GeneratorConfig::new(InstanceClass::RC1, 40, 5).build();
        let mut rng = Xoshiro256StarStar::seed_from_u64(9);
        let mut mem = AdaptiveMemory::new(60);
        for _ in 0..4 {
            let s = randomized_i1(&inst, &mut rng);
            let v = scalarize(s.evaluate(&inst));
            mem.absorb(&s, v);
        }
        for _ in 0..20 {
            let s = mem.sample_solution(&inst, &mut rng);
            assert!(s.check(&inst).is_empty());
        }
    }

    #[test]
    fn runs_to_budget_with_valid_archive() {
        let inst = Arc::new(GeneratorConfig::new(InstanceClass::R2, 40, 7).build());
        let mut ts = AdaptiveMemoryTs::new(cfg(6_000), 3);
        ts.task_evaluations = 500;
        let out = ts.run(&inst).expect("worker pool");
        assert_eq!(out.evaluations, 6_000);
        assert!(out.iterations > 0);
        assert!(!out.archive.is_empty());
        assert_eq!(non_dominated_indices(&out.archive).len(), out.archive.len());
        for e in &out.archive {
            assert!(e.solution.check(&inst).is_empty());
        }
    }

    #[test]
    fn single_processor_works() {
        let inst = Arc::new(GeneratorConfig::new(InstanceClass::C2, 25, 2).build());
        let mut ts = AdaptiveMemoryTs::new(cfg(2_000), 1);
        ts.task_evaluations = 400;
        let out = ts.run(&inst).expect("worker pool");
        assert_eq!(out.evaluations, 2_000);
        assert!(!out.archive.is_empty());
    }

    #[test]
    fn improves_over_its_seeds() {
        let inst = Arc::new(GeneratorConfig::new(InstanceClass::R2, 50, 11).build());
        // Reference: quality of a single I1 construction.
        let mut rng = Xoshiro256StarStar::seed_from_u64(cfg(0).seed ^ 0xADA7);
        let seed_quality = scalarize(randomized_i1(&inst, &mut rng).evaluate(&inst));
        let mut ts = AdaptiveMemoryTs::new(cfg(10_000), 3);
        ts.task_evaluations = 1_000;
        let out = ts.run(&inst).expect("worker pool");
        let best = out
            .archive
            .iter()
            .map(|e| scalarize(e.objectives))
            .fold(f64::INFINITY, f64::min);
        assert!(
            best < seed_quality,
            "adaptive memory best {best} should beat a raw I1 seed {seed_quality}"
        );
    }
}
