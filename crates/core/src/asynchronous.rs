//! The asynchronous master–worker variant (§III.D).

use crate::config::TsmoConfig;
use crate::core_search::SearchCore;
use crate::neighborhood::{generate_chunk, Neighbor};
use crate::outcome::TsmoOutcome;
use deme::{EvaluationBudget, MasterWorker, RunClock};
use detrand::Xoshiro256StarStar;
use std::sync::Arc;
use std::time::{Duration, Instant};
use tsmo_obs::{metrics::names, Recorder, SearchEvent};
use vrptw::solution::EvaluatedSolution;
use vrptw::Instance;
use vrptw_operators::SampleParams;

struct Task {
    snapshot: EvaluatedSolution,
    seed: u64,
    count: usize,
    iteration: usize,
}

/// Asynchronous master–worker TSMO.
///
/// Like the synchronous variant the master distributes neighborhood chunks
/// "among himself and the workers, but when it is finished with its part,
/// the master will use a decision function to decide if workers should be
/// given more time or if it should continue by selecting the next current
/// individual from the N that has been collected so far" (Algorithm 2).
/// Results that arrive after the master moved on are *folded into the next
/// iteration's pool* — the search "can select solutions that were neighbors
/// of a previous solution", which is why [`Neighbor`] is self-contained.
///
/// The decision function's four conditions:
/// * `c1` — some worker is idle (has delivered and waits for work);
/// * `c2` — a collected neighbor dominates the current solution;
/// * `c3` — the master has waited longer than `cfg.async_max_wait_ms`;
/// * `c4` — the evaluation budget is exhausted.
pub struct AsyncTsmo {
    cfg: TsmoConfig,
    processors: usize,
}

impl AsyncTsmo {
    /// Creates the runner with `processors` total CPUs (master included).
    ///
    /// # Panics
    /// Panics if `processors == 0`.
    pub fn new(cfg: TsmoConfig, processors: usize) -> Self {
        assert!(processors > 0, "need at least the master processor");
        Self { cfg, processors }
    }

    /// Runs the search to budget exhaustion.
    pub fn run(&self, inst: &Arc<Instance>) -> TsmoOutcome {
        self.run_with(inst, tsmo_obs::noop())
    }

    /// Runs the search with a telemetry sink attached. Queue depths, worker
    /// busy fractions, and staleness aggregates land in the metrics
    /// registry; the event stream's interleaving follows real thread timing
    /// — use [`SimAsyncTsmo`](crate::SimAsyncTsmo) for byte-reproducible
    /// event streams.
    pub fn run_with(&self, inst: &Arc<Instance>, recorder: Arc<dyn Recorder>) -> TsmoOutcome {
        let clock = RunClock::start();
        let mut cfg = self.cfg.clone();
        cfg.chunks = self.processors;
        let budget = EvaluationBudget::new(cfg.max_evaluations);
        let params = SampleParams {
            feasibility: cfg.feasibility_criterion,
        };
        let chunk = (cfg.neighborhood_size / self.processors).max(1);
        let max_wait = Duration::from_millis(cfg.async_max_wait_ms);

        let worker_pool = (self.processors > 1).then(|| {
            let inst = Arc::clone(inst);
            MasterWorker::<Task, Vec<Neighbor>>::spawn(self.processors - 1, move |_, t| {
                generate_chunk(&inst, &t.snapshot, t.seed, t.count, params, t.iteration)
            })
        });
        let n_workers = worker_pool.as_ref().map_or(0, |p| p.n_workers());

        let mut core = SearchCore::with_recorder(
            Arc::clone(inst),
            cfg.clone(),
            Xoshiro256StarStar::seed_from_u64(cfg.seed),
            Arc::clone(&recorder),
            0,
        );
        let mut busy = vec![false; n_workers];
        let mut pool: Vec<Neighbor> = Vec::new();

        // Drains every already-delivered worker result into the pool;
        // `iter` is the master's iteration at drain time (for events).
        let fold_arrived = |wp: &MasterWorker<Task, Vec<Neighbor>>,
                            busy: &mut [bool],
                            pool: &mut Vec<Neighbor>,
                            iter: u64| {
            loop {
                match wp.try_recv() {
                    Ok(Some((w, chunk_result))) => {
                        busy[w] = false;
                        if recorder.enabled() {
                            recorder.event(SearchEvent::WorkerResult {
                                worker: (w + 1) as u32,
                                iteration: iter,
                                neighbors: chunk_result.len() as u32,
                            });
                        }
                        pool.extend(chunk_result);
                    }
                    Ok(None) => break,
                    Err(e) => panic!("asynchronous worker pool failed: {e}"),
                }
            }
        };

        'search: loop {
            // Fold everything that arrived since the last selection.
            if let Some(wp) = &worker_pool {
                recorder.observe(names::RESULT_QUEUE_DEPTH, wp.result_queue_len() as f64);
                fold_arrived(wp, &mut busy, &mut pool, core.iteration() as u64);
            }
            if budget.exhausted() {
                break 'search;
            }
            // Give every idle worker a chunk of the *current* neighborhood.
            if let Some(wp) = &worker_pool {
                #[allow(clippy::needless_range_loop)] // w is also the worker id
                for w in 0..n_workers {
                    if !busy[w] {
                        let granted = budget.try_consume(chunk as u64) as usize;
                        if granted == 0 {
                            break;
                        }
                        recorder.counter_add(names::EVALUATIONS, granted as u64);
                        if recorder.enabled() {
                            recorder.event(SearchEvent::WorkerTask {
                                worker: (w + 1) as u32,
                                iteration: core.iteration() as u64,
                                count: granted as u32,
                            });
                        }
                        wp.send(
                            w,
                            Task {
                                snapshot: core.current().clone(),
                                seed: core.next_seed(),
                                count: granted,
                                iteration: core.iteration(),
                            },
                        );
                        busy[w] = true;
                    }
                }
            }
            // The master computes its own part.
            let granted = budget.try_consume(chunk as u64) as usize;
            if granted > 0 {
                recorder.counter_add(names::EVALUATIONS, granted as u64);
                let seed = core.next_seed();
                pool.extend(generate_chunk(
                    inst,
                    core.current(),
                    seed,
                    granted,
                    params,
                    core.iteration(),
                ));
            }
            // Decision function (Algorithm 2).
            let wait_start = Instant::now();
            loop {
                if let Some(wp) = &worker_pool {
                    fold_arrived(wp, &mut busy, &mut pool, core.iteration() as u64);
                }
                let current_vec = core.current().objectives().to_vector();
                let c1 = busy.iter().any(|b| !b);
                let c2 = pool
                    .iter()
                    .any(|nb| pareto::dominates(&nb.objectives.to_vector(), &current_vec));
                let c3 = wait_start.elapsed() >= max_wait;
                let c4 = budget.exhausted();
                if c1 || c2 || c3 || c4 {
                    break;
                }
                if let Some(wp) = &worker_pool {
                    match wp.recv_timeout(Duration::from_micros(500)) {
                        Ok(Some((w, chunk_result))) => {
                            busy[w] = false;
                            if recorder.enabled() {
                                recorder.event(SearchEvent::WorkerResult {
                                    worker: (w + 1) as u32,
                                    iteration: core.iteration() as u64,
                                    neighbors: chunk_result.len() as u32,
                                });
                            }
                            pool.extend(chunk_result);
                        }
                        Ok(None) => {} // timeout: re-evaluate the conditions
                        Err(e) => panic!("asynchronous worker pool failed: {e}"),
                    }
                } else {
                    break; // no workers: nothing to wait for
                }
            }
            if pool.is_empty() {
                if budget.exhausted() && busy.iter().all(|b| !b) {
                    break 'search;
                }
                // Nothing collected yet (slow workers): wait another round
                // rather than burning a restart on timing noise.
                continue 'search;
            }
            core.step(std::mem::take(&mut pool));
        }
        // Final partial pool: give the leftovers one last consideration.
        if !pool.is_empty() {
            core.step(std::mem::take(&mut pool));
        }
        let runtime_seconds = clock.seconds();
        if let Some(wp) = worker_pool {
            crate::sync::record_pool_stats(&*recorder, &wp, runtime_seconds);
            drop(wp); // workers see disconnect and exit; no join needed
        }
        recorder.gauge_set(names::RUNTIME_SECONDS, runtime_seconds);
        recorder.gauge_set(&names::worker_busy_fraction(0), 1.0);
        let (archive, trace, iterations) = core.finish();
        TsmoOutcome {
            archive,
            evaluations: budget.consumed(),
            iterations,
            runtime_seconds,
            trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pareto::non_dominated_indices;
    use vrptw::generator::{GeneratorConfig, InstanceClass};

    fn cfg() -> TsmoConfig {
        TsmoConfig {
            max_evaluations: 2_400,
            neighborhood_size: 60,
            ..TsmoConfig::default()
        }
    }

    #[test]
    fn consumes_exact_budget() {
        let inst = Arc::new(GeneratorConfig::new(InstanceClass::R2, 40, 4).build());
        let out = AsyncTsmo::new(cfg(), 3).run(&inst);
        assert_eq!(out.evaluations, 2_400);
        assert!(!out.archive.is_empty());
        assert!(out.iterations > 0);
    }

    #[test]
    fn archive_valid_and_non_dominated() {
        let inst = Arc::new(GeneratorConfig::new(InstanceClass::C1, 40, 9).build());
        let out = AsyncTsmo::new(cfg(), 4).run(&inst);
        assert_eq!(non_dominated_indices(&out.archive).len(), out.archive.len());
        for e in &out.archive {
            assert!(e.solution.check(&inst).is_empty());
        }
    }

    #[test]
    fn trace_shows_stale_neighbors_are_possible() {
        // With several workers and a generous pool the async variant should
        // consider at least some neighbors created in an earlier iteration.
        let inst = Arc::new(GeneratorConfig::new(InstanceClass::R2, 60, 3).build());
        let mut c = cfg();
        c.trace = true;
        c.max_evaluations = 6_000;
        let out = AsyncTsmo::new(c, 4).run(&inst);
        let trace = out.trace.expect("tracing enabled");
        assert!(!trace.is_empty());
        // Staleness is timing-dependent; assert the mechanism rather than a
        // specific value: all points have iter_considered >= iter_created.
        for p in trace.iter() {
            assert!(p.iter_considered >= p.iter_created);
        }
    }

    #[test]
    fn single_processor_still_works() {
        let inst = Arc::new(GeneratorConfig::new(InstanceClass::C2, 25, 2).build());
        let out = AsyncTsmo::new(cfg(), 1).run(&inst);
        assert_eq!(out.evaluations, 2_400);
        assert!(!out.archive.is_empty());
    }

    #[test]
    fn quality_comparable_to_sequential() {
        // §IV: the async variant "obtains results that are comparable" to
        // the sequential TS on the same evaluation budget. Allow slack —
        // this is a statistical statement — but the fronts should be in the
        // same ballpark.
        let inst = Arc::new(GeneratorConfig::new(InstanceClass::R2, 50, 11).build());
        let c = TsmoConfig {
            max_evaluations: 6_000,
            neighborhood_size: 60,
            ..TsmoConfig::default()
        };
        let seq = crate::SequentialTsmo::new(c.clone().with_seed(3)).run(&inst);
        let asy = AsyncTsmo::new(c.with_seed(3), 3).run(&inst);
        let (s, a) = (
            seq.best_distance().expect("seq feasible"),
            asy.best_distance().expect("async feasible"),
        );
        assert!(
            a < s * 1.35,
            "async best {a} too far above sequential best {s}"
        );
    }
}
