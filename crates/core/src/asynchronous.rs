//! The asynchronous master–worker variant (§III.D).

use crate::cancel::CancelToken;
use crate::config::TsmoConfig;
use crate::core_search::SearchCore;
use crate::fault_obs::{publish_recovery, record_fault};
use crate::neighborhood::{generate_chunk_tallied, Chunk, Neighbor};
use crate::outcome::TsmoOutcome;
use deme::{EvaluationBudget, MasterWorker, RunClock, Supervisor, SupervisorConfig};
use detrand::Xoshiro256StarStar;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tsmo_faults::{FaultHook, TaskFault};
use tsmo_obs::{metrics::names, FaultKind, Recorder, SearchEvent, Span};
use vrptw::solution::EvaluatedSolution;
use vrptw::Instance;
use vrptw_operators::SampleParams;

#[derive(Clone)]
struct Task {
    snapshot: EvaluatedSolution,
    seed: u64,
    count: usize,
    iteration: usize,
}

type Pool = Supervisor<Task, Chunk>;

/// Asynchronous master–worker TSMO.
///
/// Like the synchronous variant the master distributes neighborhood chunks
/// "among himself and the workers, but when it is finished with its part,
/// the master will use a decision function to decide if workers should be
/// given more time or if it should continue by selecting the next current
/// individual from the N that has been collected so far" (Algorithm 2).
/// Results that arrive after the master moved on are *folded into the next
/// iteration's pool* — the search "can select solutions that were neighbors
/// of a previous solution", which is why [`Neighbor`] is self-contained.
///
/// The decision function's four conditions:
/// * `c1` — some worker is idle (has delivered and waits for work);
/// * `c2` — a collected neighbor dominates the current solution;
/// * `c3` — the master has waited longer than `cfg.async_max_wait_ms`;
/// * `c4` — the evaluation budget is exhausted.
///
/// # Robustness
///
/// The worker pool runs under a [`Supervisor`]: a panicked chunk task is
/// resent (bounded retries with backoff) to the next live worker,
/// repeatedly failing workers are quarantined and respawned once, and if
/// the live pool falls below quorum the master degrades to evaluating
/// chunks alone instead of aborting. A resent task keeps its original
/// `iteration`, so its neighbors count as *stale* in the sense of
/// Algorithm 2 — the recovery path needs no special treatment in the
/// search itself. Injected faults (see [`AsyncTsmo::with_fault_hook`])
/// exercise exactly these paths.
pub struct AsyncTsmo {
    cfg: TsmoConfig,
    processors: usize,
    faults: Arc<dyn FaultHook>,
    cancel: CancelToken,
}

impl AsyncTsmo {
    /// Creates the runner with `processors` total CPUs (master included).
    ///
    /// # Panics
    /// Panics if `processors == 0`.
    pub fn new(cfg: TsmoConfig, processors: usize) -> Self {
        assert!(processors > 0, "need at least the master processor");
        Self {
            cfg,
            processors,
            faults: tsmo_faults::none(),
            cancel: CancelToken::never(),
        }
    }

    /// Attaches a cooperative stop signal, checked by the master at the
    /// top of each dispatch round. A stopped run skips the final
    /// leftover-pool step so its iteration count is an exact prefix.
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = token;
        self
    }

    /// Attaches a fault-injection hook (see the `tsmo-faults` crate).
    /// Worker tasks consult the hook before computing: they may be made to
    /// panic (exercising the supervisor's resend/quarantine machinery
    /// through the pool's real `catch_unwind` path), stall, or return
    /// late. An inactive hook ([`FaultHook::active`] `== false`) leaves
    /// the run byte-identical to one without a hook.
    pub fn with_fault_hook(mut self, hook: Arc<dyn FaultHook>) -> Self {
        self.faults = hook;
        self
    }

    /// Runs the search to budget exhaustion.
    pub fn run(&self, inst: &Arc<Instance>) -> TsmoOutcome {
        self.run_with(inst, tsmo_obs::noop())
    }

    /// Runs the search with a telemetry sink attached. Queue depths, worker
    /// busy fractions, and staleness aggregates land in the metrics
    /// registry; the event stream's interleaving follows real thread timing
    /// — use [`SimAsyncTsmo`](crate::SimAsyncTsmo) for byte-reproducible
    /// event streams.
    pub fn run_with(&self, inst: &Arc<Instance>, recorder: Arc<dyn Recorder>) -> TsmoOutcome {
        let clock = RunClock::start();
        let mut cfg = self.cfg.clone();
        cfg.chunks = self.processors;
        let budget = EvaluationBudget::new(cfg.max_evaluations);
        let params = SampleParams {
            feasibility: cfg.feasibility_criterion,
        };
        let chunk = (cfg.neighborhood_size / self.processors).max(1);
        let max_wait = Duration::from_millis(cfg.async_max_wait_ms);

        let mut supervisor = (self.processors > 1).then(|| {
            let inst = Arc::clone(inst);
            let hook = Arc::clone(&self.faults);
            let rec = Arc::clone(&recorder);
            let n_workers = self.processors - 1;
            // Per-worker execution counters drive the fault decisions:
            // deterministic in (worker, execution index), independent of
            // cross-thread interleaving.
            let fault_seqs: Arc<Vec<AtomicU64>> =
                Arc::new((0..n_workers).map(|_| AtomicU64::new(0)).collect());
            let pool = MasterWorker::<Task, Chunk>::spawn(n_workers, move |w, t| {
                let mut late_millis = None;
                if hook.active() {
                    let seq = fault_seqs[w].fetch_add(1, Ordering::Relaxed);
                    match hook.on_task(w + 1, seq) {
                        TaskFault::None => {}
                        TaskFault::Panic => {
                            record_fault(&*rec, (w + 1) as u32, seq, FaultKind::TaskPanic);
                            panic!("injected fault: task panic (worker {w}, seq {seq})");
                        }
                        TaskFault::Stall { millis } => {
                            record_fault(&*rec, (w + 1) as u32, seq, FaultKind::TaskStall);
                            std::thread::sleep(Duration::from_millis(millis));
                        }
                        TaskFault::Late { millis } => {
                            record_fault(&*rec, (w + 1) as u32, seq, FaultKind::TaskLate);
                            late_millis = Some(millis);
                        }
                    }
                }
                let out = generate_chunk_tallied(
                    &inst,
                    &t.snapshot,
                    t.seed,
                    t.count,
                    params,
                    t.iteration,
                );
                if let Some(millis) = late_millis {
                    std::thread::sleep(Duration::from_millis(millis));
                }
                out
            });
            Supervisor::new(pool, SupervisorConfig::default())
        });
        let n_workers = supervisor.as_ref().map_or(0, |s| s.n_workers());
        if supervisor.is_some() {
            recorder.gauge_set(names::DEGRADED_MODE, 0.0);
        }

        let mut core = SearchCore::with_recorder(
            Arc::clone(inst),
            cfg.clone(),
            Xoshiro256StarStar::seed_from_u64(cfg.seed),
            Arc::clone(&recorder),
            0,
        );
        let mut pool: Vec<Neighbor> = Vec::new();
        let mut tally = vrptw_operators::SampleTally::default();

        // Drains every already-delivered worker result into the pool and
        // publishes any recovery actions the supervisor took; `iter` is
        // the master's iteration at drain time (for events).
        fn fold_arrived(
            sup: &mut Pool,
            recorder: &Arc<dyn Recorder>,
            pool: &mut Vec<Neighbor>,
            tally: &mut vrptw_operators::SampleTally,
            iter: u64,
        ) {
            while let Some((w, chunk_result)) = sup.try_recv() {
                if recorder.enabled() {
                    recorder.event(SearchEvent::WorkerResult {
                        worker: (w + 1) as u32,
                        iteration: iter,
                        neighbors: chunk_result.neighbors.len() as u32,
                    });
                }
                tally.merge(&chunk_result.tally);
                pool.extend(chunk_result.neighbors);
            }
            publish_recovery(&**recorder, sup.take_events(), iter);
        }

        'search: loop {
            // Fold everything that arrived since the last selection.
            if let Some(sup) = supervisor.as_mut() {
                recorder.observe(
                    names::RESULT_QUEUE_DEPTH,
                    sup.pool().result_queue_len() as f64,
                );
                fold_arrived(
                    sup,
                    &recorder,
                    &mut pool,
                    &mut tally,
                    core.iteration() as u64,
                );
            }
            if budget.exhausted() || self.cancel.should_stop(core.iteration()) {
                break 'search;
            }
            // Give every idle live worker a chunk of the *current*
            // neighborhood. A degraded supervisor has no live workers, so
            // the master continues alone (master-local evaluation).
            if let Some(sup) = supervisor.as_mut() {
                let _span = Span::enter(&recorder, "dispatch", core.trace_id(), core.span_parent());
                for w in sup.idle_live_workers() {
                    let granted = budget.try_consume(chunk as u64) as usize;
                    if granted == 0 {
                        break;
                    }
                    recorder.counter_add(names::EVALUATIONS, granted as u64);
                    if recorder.enabled() {
                        recorder.event(SearchEvent::WorkerTask {
                            worker: (w + 1) as u32,
                            iteration: core.iteration() as u64,
                            count: granted as u32,
                        });
                    }
                    sup.send(
                        w,
                        Task {
                            snapshot: core.current().clone(),
                            seed: core.next_seed(),
                            count: granted,
                            iteration: core.iteration(),
                        },
                    );
                }
            }
            // The master computes its own part. The "evaluate" span also
            // covers the decision-function wait: from the master's
            // perspective that time is spent collecting evaluations.
            let eval_span = Span::enter(&recorder, "evaluate", core.trace_id(), core.span_parent());
            let granted = budget.try_consume(chunk as u64) as usize;
            if granted > 0 {
                recorder.counter_add(names::EVALUATIONS, granted as u64);
                let seed = core.next_seed();
                let master_chunk = generate_chunk_tallied(
                    inst,
                    core.current(),
                    seed,
                    granted,
                    params,
                    core.iteration(),
                );
                tally.merge(&master_chunk.tally);
                pool.extend(master_chunk.neighbors);
            }
            // Decision function (Algorithm 2).
            let wait_start = Instant::now();
            loop {
                if let Some(sup) = supervisor.as_mut() {
                    fold_arrived(
                        sup,
                        &recorder,
                        &mut pool,
                        &mut tally,
                        core.iteration() as u64,
                    );
                }
                let current_vec = core.current().objectives().to_vector();
                let degraded = supervisor.as_ref().is_some_and(|s| s.degraded());
                let c1 = supervisor
                    .as_ref()
                    .is_some_and(|s| !s.idle_live_workers().is_empty());
                let c2 = pool
                    .iter()
                    .any(|nb| pareto::dominates(&nb.objectives.to_vector(), &current_vec));
                let c3 = wait_start.elapsed() >= max_wait;
                let c4 = budget.exhausted();
                if c1 || c2 || c3 || c4 || degraded {
                    break;
                }
                match supervisor.as_mut() {
                    Some(sup) => {
                        if let Some((w, chunk_result)) =
                            sup.recv_timeout(Duration::from_micros(500))
                        {
                            if recorder.enabled() {
                                recorder.event(SearchEvent::WorkerResult {
                                    worker: (w + 1) as u32,
                                    iteration: core.iteration() as u64,
                                    neighbors: chunk_result.neighbors.len() as u32,
                                });
                            }
                            tally.merge(&chunk_result.tally);
                            pool.extend(chunk_result.neighbors);
                        }
                        publish_recovery(&*recorder, sup.take_events(), core.iteration() as u64);
                    }
                    None => break, // no workers: nothing to wait for
                }
            }
            drop(eval_span);
            if pool.is_empty() {
                let all_idle = supervisor
                    .as_ref()
                    .is_none_or(|s| (0..n_workers).all(|w| s.in_flight(w) == 0));
                if budget.exhausted() && all_idle {
                    break 'search;
                }
                // Nothing collected yet (slow workers): wait another round
                // rather than burning a restart on timing noise.
                continue 'search;
            }
            core.step(std::mem::take(&mut pool));
        }
        // Final partial pool: give the leftovers one last consideration —
        // unless the run was stopped early, where an extra step would break
        // the prefix property.
        if !pool.is_empty() && !self.cancel.is_stopped() {
            core.step(std::mem::take(&mut pool));
        }
        let runtime_seconds = clock.seconds();
        if let Some(mut sup) = supervisor {
            publish_recovery(&*recorder, sup.take_events(), core.iteration() as u64);
            crate::sync::record_pool_stats(&*recorder, sup.pool(), runtime_seconds);
            drop(sup); // workers see disconnect and exit; no join needed
        }
        recorder.gauge_set(names::RUNTIME_SECONDS, runtime_seconds);
        recorder.gauge_set(&names::worker_busy_fraction(0), 1.0);
        core.note_tally(&tally);
        let (archive, trace, iterations) = core.finish();
        TsmoOutcome {
            archive,
            evaluations: budget.consumed(),
            iterations,
            runtime_seconds,
            trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pareto::non_dominated_indices;
    use vrptw::generator::{GeneratorConfig, InstanceClass};

    fn cfg() -> TsmoConfig {
        TsmoConfig {
            max_evaluations: 2_400,
            neighborhood_size: 60,
            ..TsmoConfig::default()
        }
    }

    #[test]
    fn consumes_exact_budget() {
        let inst = Arc::new(GeneratorConfig::new(InstanceClass::R2, 40, 4).build());
        let out = AsyncTsmo::new(cfg(), 3).run(&inst);
        assert_eq!(out.evaluations, 2_400);
        assert!(!out.archive.is_empty());
        assert!(out.iterations > 0);
    }

    #[test]
    fn archive_valid_and_non_dominated() {
        let inst = Arc::new(GeneratorConfig::new(InstanceClass::C1, 40, 9).build());
        let out = AsyncTsmo::new(cfg(), 4).run(&inst);
        assert_eq!(non_dominated_indices(&out.archive).len(), out.archive.len());
        for e in &out.archive {
            assert!(e.solution.check(&inst).is_empty());
        }
    }

    #[test]
    fn trace_shows_stale_neighbors_are_possible() {
        // With several workers and a generous pool the async variant should
        // consider at least some neighbors created in an earlier iteration.
        let inst = Arc::new(GeneratorConfig::new(InstanceClass::R2, 60, 3).build());
        let mut c = cfg();
        c.trace = true;
        c.max_evaluations = 6_000;
        let out = AsyncTsmo::new(c, 4).run(&inst);
        let trace = out.trace.expect("tracing enabled");
        assert!(!trace.is_empty());
        // Staleness is timing-dependent; assert the mechanism rather than a
        // specific value: all points have iter_considered >= iter_created.
        for p in trace.iter() {
            assert!(p.iter_considered >= p.iter_created);
        }
    }

    #[test]
    fn single_processor_still_works() {
        let inst = Arc::new(GeneratorConfig::new(InstanceClass::C2, 25, 2).build());
        let out = AsyncTsmo::new(cfg(), 1).run(&inst);
        assert_eq!(out.evaluations, 2_400);
        assert!(!out.archive.is_empty());
    }

    #[test]
    fn quality_comparable_to_sequential() {
        // §IV: the async variant "obtains results that are comparable" to
        // the sequential TS on the same evaluation budget. Allow slack —
        // this is a statistical statement — but the fronts should be in the
        // same ballpark.
        let inst = Arc::new(GeneratorConfig::new(InstanceClass::R2, 50, 11).build());
        let c = TsmoConfig {
            max_evaluations: 6_000,
            neighborhood_size: 60,
            ..TsmoConfig::default()
        };
        let seq = crate::SequentialTsmo::new(c.clone().with_seed(3)).run(&inst);
        let asy = AsyncTsmo::new(c.with_seed(3), 3).run(&inst);
        let (s, a) = (
            seq.best_distance().expect("seq feasible"),
            asy.best_distance().expect("async feasible"),
        );
        assert!(
            a < s * 1.35,
            "async best {a} too far above sequential best {s}"
        );
    }
}
