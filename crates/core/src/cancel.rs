//! Cooperative cancellation and time budgets for search runs.
//!
//! Every run loop in the suite checks one [`CancelToken`] at the top of
//! each iteration — *before* drawing any randomness for that iteration —
//! so a stopped run is always a clean **prefix** of the unstopped run:
//! same trajectory, same telemetry events, same archive state, just
//! truncated. The token combines three stop conditions:
//!
//! * **explicit cancellation** — [`CancelToken::cancel`], callable from
//!   any thread (the solver service's Cancel endpoint);
//! * **a wall-clock deadline** — [`CancelToken::with_deadline`], checked
//!   against `Instant::now()` once per iteration;
//! * **an iteration limit** — [`CancelToken::with_iteration_limit`],
//!   fully deterministic: a run limited to `k` iterations is
//!   byte-identical to the first `k` iterations of an unlimited run
//!   (proven in `crates/core/tests/cancellation.rs`).
//!
//! The deterministic checks run first, so an iteration-limited run never
//! depends on wall-clock noise. A truncated run still returns its
//! best-so-far front as a valid [`TsmoOutcome`](crate::TsmoOutcome); the
//! caller reads [`CancelToken::cause`] to learn why (and whether) the run
//! stopped early.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a run stopped before exhausting its evaluation budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopCause {
    /// [`CancelToken::cancel`] was called.
    Cancelled,
    /// The wall-clock deadline passed.
    DeadlineExceeded,
    /// The configured iteration limit was reached.
    IterationLimit,
}

impl StopCause {
    /// Stable lower-case name (wire format and CLI output).
    pub fn as_str(self) -> &'static str {
        match self {
            StopCause::Cancelled => "cancelled",
            StopCause::DeadlineExceeded => "deadline_exceeded",
            StopCause::IterationLimit => "iteration_limit",
        }
    }

    /// Inverse of [`as_str`](Self::as_str).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "cancelled" => Some(StopCause::Cancelled),
            "deadline_exceeded" => Some(StopCause::DeadlineExceeded),
            "iteration_limit" => Some(StopCause::IterationLimit),
            _ => None,
        }
    }
}

const LIVE: u8 = 0;
const CANCELLED: u8 = 1;
const DEADLINE: u8 = 2;
const ITER_LIMIT: u8 = 3;

struct Inner {
    /// `LIVE` until the first stop condition fires; the first cause wins.
    state: AtomicU8,
    deadline: Option<Instant>,
    iteration_limit: Option<u64>,
}

/// Shared, cloneable stop signal for one search run (see the module docs).
///
/// Clones share state: cancelling any clone stops every holder. The
/// default token never fires on its own but can still be cancelled.
#[derive(Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::never()
    }
}

impl std::fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CancelToken")
            .field("cause", &self.cause())
            .field("deadline", &self.inner.deadline.is_some())
            .field("iteration_limit", &self.inner.iteration_limit)
            .finish()
    }
}

impl CancelToken {
    /// A token with no deadline and no iteration limit. It only stops a
    /// run if [`cancel`](Self::cancel) is called.
    pub fn never() -> Self {
        Self::with_limits(None, None)
    }

    /// A token that fires `deadline` after construction (wall clock).
    pub fn with_deadline(deadline: Duration) -> Self {
        Self::with_limits(Some(deadline), None)
    }

    /// A token that fires once a run reaches iteration `limit` —
    /// deterministically, before the iteration's randomness is drawn.
    pub fn with_iteration_limit(limit: u64) -> Self {
        Self::with_limits(None, Some(limit))
    }

    /// A token with any combination of limits (`None` = unlimited). The
    /// deadline is anchored at construction time.
    pub fn with_limits(deadline: Option<Duration>, iteration_limit: Option<u64>) -> Self {
        Self {
            inner: Arc::new(Inner {
                state: AtomicU8::new(LIVE),
                deadline: deadline.map(|d| Instant::now() + d),
                iteration_limit,
            }),
        }
    }

    /// Requests cancellation. Idempotent; the first recorded cause wins.
    pub fn cancel(&self) {
        self.set_cause(CANCELLED);
    }

    /// Whether the run holding this token should stop before starting the
    /// iteration numbered `iteration`. Deterministic conditions (iteration
    /// limit, already-latched causes) are checked before the wall clock.
    pub fn should_stop(&self, iteration: usize) -> bool {
        if let Some(limit) = self.inner.iteration_limit {
            if iteration as u64 >= limit {
                self.set_cause(ITER_LIMIT);
                return true;
            }
        }
        if self.inner.state.load(Ordering::Acquire) != LIVE {
            return true;
        }
        if let Some(deadline) = self.inner.deadline {
            if Instant::now() >= deadline {
                self.set_cause(DEADLINE);
                return true;
            }
        }
        false
    }

    /// Whether any stop condition has latched.
    pub fn is_stopped(&self) -> bool {
        self.inner.state.load(Ordering::Acquire) != LIVE
    }

    /// The first stop cause that fired (`None` while the token is live).
    pub fn cause(&self) -> Option<StopCause> {
        match self.inner.state.load(Ordering::Acquire) {
            CANCELLED => Some(StopCause::Cancelled),
            DEADLINE => Some(StopCause::DeadlineExceeded),
            ITER_LIMIT => Some(StopCause::IterationLimit),
            _ => None,
        }
    }

    fn set_cause(&self, cause: u8) {
        let _ = self
            .inner
            .state
            .compare_exchange(LIVE, cause, Ordering::AcqRel, Ordering::Acquire);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_token_never_fires_on_its_own() {
        let t = CancelToken::never();
        for i in 0..1000 {
            assert!(!t.should_stop(i));
        }
        assert_eq!(t.cause(), None);
        assert!(!t.is_stopped());
    }

    #[test]
    fn cancel_latches_and_is_shared_across_clones() {
        let t = CancelToken::never();
        let clone = t.clone();
        clone.cancel();
        assert!(t.should_stop(0));
        assert!(t.is_stopped());
        assert_eq!(t.cause(), Some(StopCause::Cancelled));
        // The first cause wins even if another condition fires later.
        t.cancel();
        assert_eq!(t.cause(), Some(StopCause::Cancelled));
    }

    #[test]
    fn iteration_limit_is_deterministic_and_exact() {
        let t = CancelToken::with_iteration_limit(5);
        for i in 0..5 {
            assert!(!t.should_stop(i), "iteration {i} is within the limit");
        }
        assert!(t.should_stop(5));
        assert_eq!(t.cause(), Some(StopCause::IterationLimit));
    }

    #[test]
    fn past_deadline_fires_immediately() {
        let t = CancelToken::with_deadline(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(2));
        assert!(t.should_stop(0));
        assert_eq!(t.cause(), Some(StopCause::DeadlineExceeded));
    }

    #[test]
    fn generous_deadline_does_not_fire() {
        let t = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!t.should_stop(0));
        assert_eq!(t.cause(), None);
    }

    #[test]
    fn explicit_cancel_beats_iteration_limit() {
        let t = CancelToken::with_iteration_limit(100);
        t.cancel();
        assert!(t.should_stop(0));
        assert_eq!(t.cause(), Some(StopCause::Cancelled));
    }

    #[test]
    fn cause_names_round_trip() {
        for cause in [
            StopCause::Cancelled,
            StopCause::DeadlineExceeded,
            StopCause::IterationLimit,
        ] {
            assert_eq!(StopCause::parse(cause.as_str()), Some(cause));
        }
        assert_eq!(StopCause::parse("nope"), None);
    }
}
