//! The collaborative multisearch variant (§III.E).

use crate::cancel::CancelToken;
use crate::config::TsmoConfig;
use crate::outcome::{FrontEntry, TsmoOutcome};
use crate::searcher::{searcher_cfg, CollabSearcher, SearcherResult};
use deme::{multisearch, RunClock};
use detrand::{streams, Xoshiro256StarStar};
use pareto::Archive;
use std::sync::Arc;
use tsmo_faults::FaultHook;
use tsmo_obs::{metrics::names, Recorder};
use vrptw::Instance;

/// Collaborative multisearch TSMO.
///
/// `P` searchers run the sequential algorithm concurrently, each with its
/// own evaluation budget and — except for the first — parameters disturbed
/// by `N(0, param/4)`. After an *initial phase* (which ends once a
/// searcher's archive has stagnated for its stagnation limit), every
/// solution that enters a searcher's archive is sent to exactly one peer:
/// the head of its randomly initialized communication list, which then
/// rotates. Receivers offer incoming solutions to their `M_nondom`, from
/// which the restart mechanism can pick them up.
///
/// The returned archive is the non-dominated merge of the searchers'
/// archives, truncated to the configured capacity with the same crowding
/// rule; evaluations and iterations are summed over searchers.
///
/// # Robustness
///
/// Exchange traffic is fault-injectable (see
/// [`CollaborativeTsmo::with_fault_hook`]): messages can be dropped in
/// transit or delayed by a number of sender iterations. Each endpoint
/// tracks peer liveness — a peer whose mailbox is gone is skipped by the
/// rotation (the message fails over to the next live peer) and probed
/// periodically for re-admission. Undeliverable entries are counted in
/// `tsmo_exchange_undeliverable_total` and simply dropped: collaboration
/// is an optimization, never a correctness dependency.
pub struct CollaborativeTsmo {
    cfg: TsmoConfig,
    searchers: usize,
    faults: Arc<dyn FaultHook>,
    cancel: CancelToken,
}

impl CollaborativeTsmo {
    /// Creates the runner with `searchers` parallel searchers.
    ///
    /// # Panics
    /// Panics if `searchers == 0`.
    pub fn new(cfg: TsmoConfig, searchers: usize) -> Self {
        assert!(searchers > 0, "need at least one searcher");
        Self {
            cfg,
            searchers,
            faults: tsmo_faults::none(),
            cancel: CancelToken::never(),
        }
    }

    /// Attaches a cooperative stop signal, shared by all searchers: each
    /// checks it at the top of its own iteration loop (an iteration limit
    /// therefore applies per searcher).
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = token;
        self
    }

    /// Attaches a fault-injection hook (see the `tsmo-faults` crate).
    /// Each searcher consults the hook before sending an archive
    /// improvement: the message may be dropped (never delivered) or
    /// delayed by a number of the sender's iterations. An inactive hook
    /// leaves the run identical to one without a hook.
    pub fn with_fault_hook(mut self, hook: Arc<dyn FaultHook>) -> Self {
        self.faults = hook;
        self
    }

    /// Runs all searchers to budget exhaustion and merges their fronts.
    pub fn run(&self, inst: &Arc<Instance>) -> TsmoOutcome {
        self.run_with(inst, tsmo_obs::noop())
    }

    /// Runs all searchers with a shared telemetry sink. Events are tagged
    /// with the emitting searcher's index; exchange traffic lands in the
    /// `tsmo_exchange_*` counters. Because searchers run on real threads,
    /// the *interleaving* of events across searchers follows thread timing
    /// — use [`SimCollaborativeTsmo`](crate::SimCollaborativeTsmo) for
    /// byte-reproducible streams.
    pub fn run_with(&self, inst: &Arc<Instance>, recorder: Arc<dyn Recorder>) -> TsmoOutcome {
        let clock = RunClock::start();
        let n = self.searchers;
        let mut rngs: Vec<Xoshiro256StarStar> = streams(self.cfg.seed, n);
        let endpoints = multisearch::network::<FrontEntry, _>(n, &mut rngs);

        let results: Vec<SearcherResult> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n);
            for (id, (mut endpoint, mut rng)) in endpoints.into_iter().zip(rngs).enumerate() {
                let inst = Arc::clone(inst);
                let base_cfg = self.cfg.clone();
                let recorder = Arc::clone(&recorder);
                let hook = Arc::clone(&self.faults);
                let cancel = self.cancel.clone();
                handles.push(scope.spawn(move || {
                    let cfg = searcher_cfg(&base_cfg, id, &mut rng);
                    let mut searcher =
                        CollabSearcher::new(inst, cfg, rng, recorder, id, cancel, hook);
                    while searcher.step_once(&mut endpoint) {}
                    searcher.finish(&mut endpoint)
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("searcher panicked"))
                .collect()
        });

        let mut merged = Archive::new(self.cfg.archive_capacity);
        let mut evaluations = 0;
        let mut iterations = 0;
        let runtime_seconds = clock.seconds();
        for (id, result) in results.into_iter().enumerate() {
            evaluations += result.evaluations;
            iterations += result.iterations;
            // Searchers are peers: "busy" is the fraction of the run they
            // were still searching (they stop when their budget is spent).
            let frac = if runtime_seconds > 0.0 {
                (result.active_seconds / runtime_seconds).min(1.0)
            } else {
                0.0
            };
            recorder.gauge_set(&names::worker_busy_fraction(id), frac);
            for entry in result.archive {
                merged.insert(entry);
            }
        }
        recorder.gauge_set(names::RUNTIME_SECONDS, runtime_seconds);
        TsmoOutcome {
            archive: merged.into_items(),
            evaluations,
            iterations,
            runtime_seconds,
            trace: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pareto::non_dominated_indices;
    use vrptw::generator::{GeneratorConfig, InstanceClass};

    fn cfg() -> TsmoConfig {
        TsmoConfig {
            max_evaluations: 1_500,
            neighborhood_size: 50,
            stagnation_limit: 10,
            ..TsmoConfig::default()
        }
    }

    #[test]
    fn per_searcher_budgets_are_summed() {
        let inst = Arc::new(GeneratorConfig::new(InstanceClass::R2, 30, 5).build());
        let out = CollaborativeTsmo::new(cfg(), 3).run(&inst);
        // Each of the 3 searchers spends its own 1,500 evaluations.
        assert_eq!(out.evaluations, 4_500);
        assert!(!out.archive.is_empty());
    }

    #[test]
    fn merged_archive_is_non_dominated_and_bounded() {
        let inst = Arc::new(GeneratorConfig::new(InstanceClass::C1, 30, 2).build());
        let out = CollaborativeTsmo::new(cfg(), 4).run(&inst);
        assert!(out.archive.len() <= cfg().archive_capacity);
        assert_eq!(non_dominated_indices(&out.archive).len(), out.archive.len());
        for e in &out.archive {
            assert!(e.solution.check(&inst).is_empty());
        }
    }

    #[test]
    fn single_searcher_matches_sequential_quality_shape() {
        let inst = Arc::new(GeneratorConfig::new(InstanceClass::R2, 30, 8).build());
        let out = CollaborativeTsmo::new(cfg(), 1).run(&inst);
        assert_eq!(out.evaluations, 1_500);
        assert!(!out.archive.is_empty());
    }

    #[test]
    fn more_searchers_do_not_hurt_the_front() {
        // With per-searcher budgets, P searchers explore P× as much; the
        // merged front should (statistically) dominate more than a single
        // searcher's. Use the coverage metric with a fixed seed.
        let inst = Arc::new(GeneratorConfig::new(InstanceClass::R2, 40, 13).build());
        let one = CollaborativeTsmo::new(cfg().with_seed(21), 1).run(&inst);
        let four = CollaborativeTsmo::new(cfg().with_seed(21), 4).run(&inst);
        let c_four_over_one = pareto::coverage(&four.archive, &one.archive);
        let c_one_over_four = pareto::coverage(&one.archive, &four.archive);
        assert!(
            c_four_over_one >= c_one_over_four,
            "4 searchers ({c_four_over_one:.2}) should cover at least as well as 1 ({c_one_over_four:.2})"
        );
    }
}
