//! Search parameters, with the paper's experimental defaults.

use detrand::Rng;

/// How the new current solution is picked from the non-dominated, non-tabu
/// neighbors. The paper only says "a Selection of one of the non-dominated
/// solutions found" (§III.B), so the rule is configurable:
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SelectionRule {
    /// Uniformly random among the non-dominated neighbors — the most
    /// literal reading of the paper, and the default.
    #[default]
    RandomNonDominated,
    /// Prefer neighbors that *dominate the current solution* (random among
    /// them); fall back to a random non-dominated neighbor. Closer to the
    /// "best-improvement local search" framing of §I and markedly more
    /// intensifying (see `ablation -- selection`).
    PreferDominating,
}

/// Configuration of one TSMO search.
///
/// Defaults are the settings used for every table in the paper:
/// 100,000 evaluations, neighborhood size 200, tabu tenure 20, archive
/// size 20, restart after 100 iterations without archive improvement.
#[derive(Debug, Clone)]
pub struct TsmoConfig {
    /// Total evaluation budget (paper: 100,000).
    pub max_evaluations: u64,
    /// Moves drawn per neighborhood (paper: 200).
    pub neighborhood_size: usize,
    /// Length of the tabu list in accepted moves (paper: 20).
    pub tabu_tenure: usize,
    /// Capacity of the Pareto archive `M_archive` (paper: 20).
    pub archive_capacity: usize,
    /// Capacity of the medium-term memory `M_nondom` (bounded with the same
    /// crowding rule; the paper leaves its size unspecified).
    pub nondom_capacity: usize,
    /// Iterations without archive improvement before restarting from a
    /// remembered solution (paper: 100).
    pub stagnation_limit: usize,
    /// Collaborative migration interval: offer only every k-th
    /// post-initial-phase archive improvement to the communication list
    /// (1 = every improvement, the paper's policy; larger values trade
    /// exchange traffic against convergence — the knob the elastic-mesh
    /// migration sweep varies). Values below 1 behave like 1.
    pub exchange_interval: usize,
    /// Number of RNG chunks the neighborhood is split into. The sequential
    /// algorithm generates its neighborhood in this many seed-derived
    /// chunks so that the synchronous variant (one chunk per processor)
    /// reproduces it exactly; set it to the processor count you want to
    /// compare against (default 1).
    pub chunks: usize,
    /// Apply the local feasibility criterion when sampling moves
    /// (paper: on; the ablation harness switches it off).
    pub feasibility_criterion: bool,
    /// Aspiration: admit tabu neighbors that would enter the archive
    /// (extension, off by default — the paper has no aspiration rule).
    pub aspiration: bool,
    /// How the next current solution is selected (see [`SelectionRule`]).
    pub selection: SelectionRule,
    /// Master seed; all randomness derives from it.
    pub seed: u64,
    /// Record a search trace for trajectory plots (Fig. 1).
    pub trace: bool,
    /// Overrides the per-run trace id stamped on profiling spans. `None`
    /// (the default) derives it from `seed` via
    /// [`tsmo_obs::trace_id_from_seed`]; a distributed mesh sets it
    /// explicitly so every node's spans share one id.
    pub trace_id: Option<u64>,
    /// Emit a `FrontSample` convergence event (archive size, 2-D
    /// hypervolume, coverage of `M_nondom`) roughly every this many
    /// evaluated neighbors (`None` = no timeline). Sampling is driven by
    /// the searcher-local evaluated-neighbor count, so timelines are as
    /// deterministic as the rest of the event stream.
    pub timeline_every: Option<u64>,
    /// Upper bound on retained trace points (`None` = unbounded). The trace
    /// grows by `neighborhood_size` points per iteration, so long runs
    /// should cap it; the most recent points win and the drop count is
    /// reported by [`Trace::dropped`](crate::Trace::dropped).
    pub trace_capacity: Option<usize>,
    /// Asynchronous variant: upper bound, in milliseconds, on how long the
    /// master waits for workers after finishing its own chunk — condition
    /// `c3` ("AreWeWaitingTooLong") of Algorithm 2.
    pub async_max_wait_ms: u64,
    /// Per-message latency, in seconds, of the *simulated* cluster used by
    /// the `Sim*` variants (see `deme::virtual_time`): the cost of one
    /// master–worker or searcher–searcher message on the modeled machine.
    pub sim_comm_latency: f64,
    /// Virtual cost per evaluation, in seconds, for the `Sim*` variants.
    /// `None` (the default) measures each work item's real serial cost, so
    /// virtual makespans track the host; fixing a cost makes the simulated
    /// schedule — and therefore the `SimAsyncTsmo`/`SimCollaborativeTsmo`
    /// trajectories and telemetry event streams — fully deterministic.
    pub sim_eval_cost: Option<f64>,
    /// Warm-start pool: solutions a run starts from instead of a fresh I1
    /// construction. Every entry must be a *complete, valid* solution of
    /// the instance being solved (the dynamic re-optimization path repairs
    /// elites against the mutated instance before putting them here). The
    /// searcher picks `warm_start[searcher_id % len]` as its current
    /// solution — deterministic, and collaborative searchers spread over
    /// the pool — and seeds `M_archive` / `M_nondom` with every entry.
    /// Empty (the default) leaves the cold-start path byte-identical.
    pub warm_start: Vec<vrptw::Solution>,
}

impl Default for TsmoConfig {
    fn default() -> Self {
        Self {
            max_evaluations: 100_000,
            neighborhood_size: 200,
            tabu_tenure: 20,
            archive_capacity: 20,
            nondom_capacity: 50,
            stagnation_limit: 100,
            exchange_interval: 1,
            chunks: 1,
            feasibility_criterion: true,
            aspiration: false,
            selection: SelectionRule::RandomNonDominated,
            seed: 0,
            trace: false,
            trace_id: None,
            timeline_every: None,
            trace_capacity: None,
            async_max_wait_ms: 20,
            sim_comm_latency: 0.001,
            sim_eval_cost: None,
            warm_start: Vec::new(),
        }
    }
}

impl TsmoConfig {
    /// Returns a copy with `seed` replaced.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The trace id a run with this configuration stamps on its spans:
    /// the explicit override, or the id derived from `seed`.
    pub fn effective_trace_id(&self) -> u64 {
        self.trace_id
            .unwrap_or_else(|| tsmo_obs::trace_id_from_seed(self.seed))
    }

    /// The collaborative variant's parameter disturbance (§III.E): every
    /// integer parameter is shifted by `N(0, param/4)` (the first searcher
    /// keeps the undisturbed configuration). Values are clamped to sane
    /// minima so a large negative draw cannot disable the search.
    pub fn perturbed<R: Rng>(&self, rng: &mut R) -> Self {
        let disturb = |rng: &mut R, value: usize, min: usize| -> usize {
            let v = value as f64 + rng.normal(0.0, value as f64 / 4.0);
            (v.round().max(min as f64)) as usize
        };
        Self {
            neighborhood_size: disturb(rng, self.neighborhood_size, 2),
            tabu_tenure: disturb(rng, self.tabu_tenure, 1),
            archive_capacity: disturb(rng, self.archive_capacity, 2),
            nondom_capacity: disturb(rng, self.nondom_capacity, 2),
            stagnation_limit: disturb(rng, self.stagnation_limit, 5),
            ..self.clone()
        }
    }

    /// Sizes of the neighborhood chunks: `neighborhood_size` split as
    /// evenly as possible over `chunks` (first chunks take the remainder).
    pub fn chunk_sizes(&self) -> Vec<usize> {
        let chunks = self.chunks.max(1);
        let base = self.neighborhood_size / chunks;
        let rem = self.neighborhood_size % chunks;
        (0..chunks).map(|i| base + usize::from(i < rem)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use detrand::Xoshiro256StarStar;

    #[test]
    fn defaults_match_paper() {
        let c = TsmoConfig::default();
        assert_eq!(c.max_evaluations, 100_000);
        assert_eq!(c.neighborhood_size, 200);
        assert_eq!(c.tabu_tenure, 20);
        assert_eq!(c.archive_capacity, 20);
        assert_eq!(c.stagnation_limit, 100);
        assert!(c.feasibility_criterion);
        assert!(!c.aspiration);
    }

    #[test]
    fn chunk_sizes_partition_neighborhood() {
        for (size, chunks) in [(200, 1), (200, 3), (200, 6), (200, 12), (7, 3), (5, 8)] {
            let cfg = TsmoConfig {
                neighborhood_size: size,
                chunks,
                ..Default::default()
            };
            let sizes = cfg.chunk_sizes();
            assert_eq!(sizes.len(), chunks);
            assert_eq!(sizes.iter().sum::<usize>(), size);
            // Even split up to 1.
            let max = sizes.iter().max().unwrap();
            let min = sizes.iter().min().unwrap();
            assert!(max - min <= 1);
        }
    }

    #[test]
    fn perturbation_changes_parameters_but_respects_minima() {
        let base = TsmoConfig::default();
        let mut rng = Xoshiro256StarStar::seed_from_u64(4);
        let mut any_changed = false;
        for _ in 0..20 {
            let p = base.perturbed(&mut rng);
            assert!(p.neighborhood_size >= 2);
            assert!(p.tabu_tenure >= 1);
            assert!(p.archive_capacity >= 2);
            assert!(p.stagnation_limit >= 5);
            // Unperturbed knobs survive.
            assert_eq!(p.max_evaluations, base.max_evaluations);
            assert_eq!(p.seed, base.seed);
            if p.neighborhood_size != base.neighborhood_size || p.tabu_tenure != base.tabu_tenure {
                any_changed = true;
            }
        }
        assert!(any_changed, "perturbation never changed anything");
    }

    #[test]
    fn perturbation_spread_is_about_a_quarter() {
        let base = TsmoConfig::default();
        let mut rng = Xoshiro256StarStar::seed_from_u64(11);
        let samples: Vec<f64> = (0..4000)
            .map(|_| base.perturbed(&mut rng).neighborhood_size as f64)
            .collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let sd =
            (samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / samples.len() as f64).sqrt();
        assert!((mean - 200.0).abs() < 3.0, "mean {mean}");
        assert!((sd - 50.0).abs() < 3.0, "sd {sd} should be ~param/4 = 50");
    }
}
