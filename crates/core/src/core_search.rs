//! The algorithm core shared by all variants: current solution, memories,
//! selection, and restart logic (lines 8–17 of Algorithm 1).

use crate::config::TsmoConfig;
use crate::neighborhood::Neighbor;
use crate::outcome::FrontEntry;
use crate::tabu::TabuList;
use crate::trace::{Trace, TracePoint};
use detrand::{RandomSource, Rng, Xoshiro256StarStar};
use pareto::{non_dominated_indices, Archive};
use std::sync::Arc;
use tsmo_obs::{metrics::names, Recorder, RestartReason, SearchEvent, Span};
use vrptw::solution::EvaluatedSolution;
use vrptw::{Instance, Objectives};
use vrptw_construct::randomized_i1;
use vrptw_operators::{OperatorKind, SampleParams, SampleTally};

/// Per-operator outcome counters accumulated by the step loop. One cell
/// per operator in [`OperatorKind::ALL`] order; plain array increments,
/// so the instrumented hot path costs a handful of integer adds per
/// step regardless of the attached recorder.
#[derive(Debug, Clone, Copy, Default)]
struct OperatorOutcomes {
    accepted: [u64; OperatorKind::ALL.len()],
    improving: [u64; OperatorKind::ALL.len()],
    tabu_rejected: [u64; OperatorKind::ALL.len()],
    aspiration: [u64; OperatorKind::ALL.len()],
}

/// What one selection step did, for the caller's bookkeeping.
#[derive(Debug, Clone)]
pub struct StepReport {
    /// Objectives of the new current solution (`None` if the pool was empty
    /// and the step degenerated to a restart).
    pub selected: Option<Objectives>,
    /// Whether the chosen solution entered `M_archive` — the paper's
    /// "improving solution", which the collaborative variant broadcasts.
    pub improved_archive: Option<FrontEntry>,
    /// Whether the step restarted from memory instead of moving to a
    /// neighbor.
    pub restarted: bool,
}

/// Shared state and step logic of the TSMO search.
///
/// Variants differ only in *how neighborhoods are produced* (inline, via a
/// synchronous barrier, or asynchronously collected); everything from
/// selection onward is this struct.
pub struct SearchCore {
    inst: Arc<Instance>,
    cfg: TsmoConfig,
    rng: Xoshiro256StarStar,
    tabu: TabuList,
    nondom: Archive<FrontEntry>,
    archive: Archive<FrontEntry>,
    current: EvaluatedSolution,
    iteration: usize,
    stagnation: usize,
    trace: Option<Trace>,
    recorder: Arc<dyn Recorder>,
    searcher_id: u32,
    trace_id: u64,
    root_span: Option<Span>,
    /// Neighbors evaluated so far (the searcher-local evaluation count
    /// driving the convergence timeline).
    evals_seen: u64,
    next_sample: u64,
    /// Hypervolume reference point in (distance, vehicles), fixed
    /// deterministically from the I1 start so samples are comparable
    /// within a run.
    timeline_ref: [f64; 2],
    /// Per-operator sampling tally handed in by the runner
    /// ([`note_tally`](Self::note_tally)); flushed to metrics at finish.
    tally: SampleTally,
    /// Per-operator step outcomes (accepted / improving / tabu-rejected
    /// / aspiration-fired); flushed to metrics at finish.
    outcomes: OperatorOutcomes,
    /// Archive entries displaced by dominating insertions.
    archive_prunes: u64,
    /// Longest stagnation streak observed over the run.
    stagnation_streak_max: usize,
    /// Archive hypervolume right after construction, for the
    /// end-of-run delta gauge.
    initial_hypervolume: f64,
}

impl SearchCore {
    /// Initializes memories and the I1 starting solution (Algorithm 1,
    /// lines 2–4). `rng` must be the searcher's dedicated stream.
    pub fn new(inst: Arc<Instance>, cfg: TsmoConfig, rng: Xoshiro256StarStar) -> Self {
        Self::with_recorder(inst, cfg, rng, tsmo_obs::noop(), 0)
    }

    /// Like [`new`](Self::new) with a telemetry sink attached. `searcher_id`
    /// tags every emitted event (0 for single-searcher variants, the
    /// searcher index in collaborative runs). The recorder observes the
    /// search but never influences it — no RNG draws, no control flow.
    pub fn with_recorder(
        inst: Arc<Instance>,
        cfg: TsmoConfig,
        mut rng: Xoshiro256StarStar,
        recorder: Arc<dyn Recorder>,
        searcher_id: u32,
    ) -> Self {
        let trace_id = cfg.effective_trace_id();
        let root_span = Span::enter(&recorder, "search", trace_id, 0);
        let current = {
            let _span = Span::enter(
                &recorder,
                "construct",
                trace_id,
                root_span.as_ref().map_or(0, Span::id),
            );
            // Warm start: take the searcher's slice of the pool instead of
            // constructing from scratch (no RNG draw — the cold path below
            // stays byte-identical when the pool is empty).
            let start = if cfg.warm_start.is_empty() {
                randomized_i1(&inst, &mut rng)
            } else {
                let pick = cfg.warm_start[searcher_id as usize % cfg.warm_start.len()].clone();
                debug_assert!(
                    pick.check(&inst).is_empty(),
                    "warm-start solution invalid for instance: {:?}",
                    pick.check(&inst)
                );
                pick
            };
            EvaluatedSolution::new(start, &inst)
        };
        let mut archive = Archive::new(cfg.archive_capacity);
        let mut nondom = Archive::new(cfg.nondom_capacity);
        archive.insert(FrontEntry::new(
            current.solution().clone(),
            current.objectives(),
        ));
        // Every pool member seeds both memories: the archive so prior-epoch
        // elites survive even if the trajectory never revisits them, and
        // `M_nondom` so restarts can jump back into the pool.
        for s in &cfg.warm_start {
            let o = s.evaluate(&inst);
            archive.insert(FrontEntry::new(s.clone(), o));
            nondom.insert(FrontEntry::new(s.clone(), o));
        }
        let trace = cfg.trace.then(|| Trace::bounded(cfg.trace_capacity));
        let timeline_ref = [
            current.objectives().distance * 1.1 + 1.0,
            (current.objectives().vehicles + 2) as f64,
        ];
        let initial_hypervolume = projected_hypervolume(archive.items(), timeline_ref);
        Self {
            inst,
            tabu: TabuList::new(cfg.tabu_tenure),
            nondom,
            archive,
            current,
            iteration: 0,
            stagnation: 0,
            trace,
            next_sample: cfg.timeline_every.unwrap_or(u64::MAX).max(1),
            cfg,
            rng,
            recorder,
            searcher_id,
            trace_id,
            root_span,
            evals_seen: 0,
            timeline_ref,
            tally: SampleTally::default(),
            outcomes: OperatorOutcomes::default(),
            archive_prunes: 0,
            stagnation_streak_max: 0,
            initial_hypervolume,
        }
    }

    /// Folds a chunk's per-operator sampling tally into the run-level
    /// attribution. Runners call this for every chunk that reaches the
    /// core (or once with a pre-merged run total); the counts surface as
    /// `tsmo_operator_proposed_total` / `tsmo_operator_feasible_total`
    /// at finish.
    pub fn note_tally(&mut self, tally: &SampleTally) {
        self.tally.merge(tally);
    }

    /// The instance being solved.
    pub fn instance(&self) -> &Arc<Instance> {
        &self.inst
    }

    /// The configuration in effect.
    pub fn config(&self) -> &TsmoConfig {
        &self.cfg
    }

    /// The current solution snapshot neighborhoods are generated from.
    pub fn current(&self) -> &EvaluatedSolution {
        &self.current
    }

    /// Completed iterations.
    pub fn iteration(&self) -> usize {
        self.iteration
    }

    /// The run's trace id (shared across a distributed run).
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    /// The root span id, for parenting spans opened by the runners
    /// (0 when profiling is off).
    pub fn span_parent(&self) -> u64 {
        tsmo_obs::span_parent(&self.root_span)
    }

    /// Current archive contents.
    pub fn archive_entries(&self) -> &[FrontEntry] {
        self.archive.items()
    }

    /// Sampling parameters derived from the configuration.
    pub fn sample_params(&self) -> SampleParams {
        SampleParams {
            feasibility: self.cfg.feasibility_criterion,
        }
    }

    /// Draws the seeds for this iteration's neighborhood chunks.
    pub fn chunk_seeds(&mut self) -> Vec<u64> {
        (0..self.cfg.chunks.max(1))
            .map(|_| self.rng.next_u64())
            .collect()
    }

    /// Draws one seed (asynchronous dispatching draws per task).
    pub fn next_seed(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Offers an externally received solution to `M_nondom` (collaborative
    /// variant: "the process receiving the individual tries to store the
    /// solution in its memory of non-dominated solutions"). Returns whether
    /// it was accepted.
    pub fn offer_to_nondom(&mut self, entry: FrontEntry) -> bool {
        self.nondom.insert(entry)
    }

    /// Runs selection and memory update on the evaluated neighbors (lines
    /// 8–17 of Algorithm 1).
    pub fn step(&mut self, pool: Vec<Neighbor>) -> StepReport {
        // The trace records this step under the iteration number the
        // neighbors were generated for (`iteration()` at generation time),
        // so freshly generated neighbors have staleness 0 and the
        // asynchronous variant's leftovers show up as genuinely stale.
        let iter = self.iteration;
        self.iteration += 1;
        self.evals_seen += pool.len() as u64;
        self.recorder.counter_add(names::ITERATIONS, 1);
        self.recorder.observe(names::POOL_SIZE, pool.len() as f64);
        let span_parent = self.span_parent();

        // Staleness: the asynchronous variants fold in neighbors generated
        // from an older current solution (`created_iteration < iter`).
        let mut stale = 0u64;
        let mut max_staleness = 0usize;
        for nb in &pool {
            let age = iter.saturating_sub(nb.created_iteration);
            if age > 0 {
                stale += 1;
                max_staleness = max_staleness.max(age);
            }
            self.recorder.observe(names::NEIGHBOR_STALENESS, age as f64);
        }
        if stale > 0 {
            self.recorder.counter_add(names::STALE_NEIGHBORS, stale);
            self.recorder
                .gauge_max(names::STALENESS_MAX, max_staleness as f64);
            if self.recorder.enabled() {
                self.recorder.event(SearchEvent::Staleness {
                    searcher: self.searcher_id,
                    iteration: iter as u64,
                    max_staleness: max_staleness as u64,
                    stale: stale as u32,
                });
            }
        }

        // Selection: non-tabu neighbors (aspiration optionally rescues tabu
        // neighbors that would enter the archive).
        let tabu_span = Span::enter(&self.recorder, "tabu", self.trace_id, span_parent);
        let mut admissible: Vec<usize> = Vec::with_capacity(pool.len());
        for (i, nb) in pool.iter().enumerate() {
            let tabu = self.tabu.is_tabu(&nb.arcs_created);
            let aspired = tabu
                && self.cfg.aspiration
                && self.archive.would_accept(&nb.objectives.to_vector());
            if tabu {
                self.recorder.counter_add(names::TABU_HITS, 1);
                if aspired {
                    self.recorder.counter_add(names::ASPIRATIONS, 1);
                    self.outcomes.aspiration[nb.operator.index()] += 1;
                } else {
                    self.outcomes.tabu_rejected[nb.operator.index()] += 1;
                }
                if self.recorder.enabled() {
                    self.recorder.event(SearchEvent::TabuHit {
                        searcher: self.searcher_id,
                        iteration: iter as u64,
                        aspired,
                    });
                }
            }
            if !tabu || aspired {
                admissible.push(i);
            }
        }
        drop(tabu_span);
        let select_span = Span::enter(&self.recorder, "select", self.trace_id, span_parent);
        let vectors: Vec<[f64; 3]> = admissible
            .iter()
            .map(|&i| pool[i].objectives.to_vector())
            .collect();
        let chosen_idx = if vectors.is_empty() {
            None
        } else {
            let nd = non_dominated_indices(&vectors);
            let pick = match self.cfg.selection {
                crate::config::SelectionRule::RandomNonDominated => nd[self.rng.index(nd.len())],
                crate::config::SelectionRule::PreferDominating => {
                    let current = self.current.objectives().to_vector();
                    let improving: Vec<usize> = nd
                        .iter()
                        .copied()
                        .filter(|&k| pareto::dominates(&vectors[k], &current))
                        .collect();
                    if improving.is_empty() {
                        nd[self.rng.index(nd.len())]
                    } else {
                        improving[self.rng.index(improving.len())]
                    }
                }
            };
            Some(admissible[pick])
        };
        drop(select_span);

        if let Some(t) = self.trace.as_mut() {
            for (i, nb) in pool.iter().enumerate() {
                t.record(TracePoint {
                    iter_created: nb.created_iteration,
                    iter_considered: iter,
                    objectives: nb.objectives,
                    chosen: Some(i) == chosen_idx,
                });
            }
        }

        if self.recorder.enabled() {
            self.recorder.event(SearchEvent::Iteration {
                searcher: self.searcher_id,
                iteration: iter as u64,
                pool: pool.len() as u32,
                admissible: admissible.len() as u32,
                chosen: chosen_idx.map(|i| pool[i].objectives.to_vector()),
            });
        }

        // Memory update: every neighbor is offered to M_nondom ("additional
        // non-dominated solutions that were found in the neighborhood N").
        let archive_span = Span::enter(&self.recorder, "archive", self.trace_id, span_parent);
        for nb in &pool {
            if self
                .nondom
                .insert(FrontEntry::new(nb.solution.clone(), nb.objectives))
            {
                self.recorder.counter_add(names::NONDOM_INSERTS, 1);
            }
        }

        let mut report = StepReport {
            selected: None,
            improved_archive: None,
            restarted: false,
        };
        match chosen_idx {
            Some(i) => {
                let nb = &pool[i];
                self.tabu.push(nb.arcs_removed.clone());
                self.current = EvaluatedSolution::new(nb.solution.clone(), &self.inst);
                report.selected = Some(nb.objectives);
                self.outcomes.accepted[nb.operator.index()] += 1;
                let entry = FrontEntry::new(nb.solution.clone(), nb.objectives);
                let size_before = self.archive.len();
                if self.archive.insert(entry.clone()) {
                    // An accepted insert that shrank (or held) the archive
                    // displaced dominated entries.
                    self.archive_prunes += (size_before + 1 - self.archive.len()) as u64;
                    self.outcomes.improving[nb.operator.index()] += 1;
                    self.recorder.counter_add(names::ARCHIVE_INSERTS, 1);
                    if self.recorder.enabled() {
                        self.recorder.event(SearchEvent::ArchiveInsert {
                            searcher: self.searcher_id,
                            iteration: iter as u64,
                            objectives: nb.objectives.to_vector(),
                        });
                    }
                    self.stagnation = 0;
                    report.improved_archive = Some(entry);
                } else {
                    self.stagnation += 1;
                    self.stagnation_streak_max = self.stagnation_streak_max.max(self.stagnation);
                }
            }
            None => {
                // `s ∉ N`: nothing selectable — restart from memory.
                self.record_restart(iter, RestartReason::EmptyPool);
                self.restart_from_memory();
                report.restarted = true;
                self.stagnation = 0;
                drop(archive_span);
                self.maybe_sample_front(iter);
                return report;
            }
        }
        drop(archive_span);

        // Line 14: isUnchanged(M_archive) for too long => restart next.
        if self.stagnation >= self.cfg.stagnation_limit {
            self.recorder.counter_add(names::SEARCH_STAGNATED, 1);
            if self.recorder.enabled() {
                self.recorder.event(SearchEvent::SearchStagnated {
                    searcher: self.searcher_id,
                    iteration: iter as u64,
                    streak: self.stagnation as u64,
                });
            }
            self.record_restart(iter, RestartReason::Stagnation);
            self.restart_from_memory();
            report.restarted = true;
            self.stagnation = 0;
        }
        self.maybe_sample_front(iter);
        report
    }

    /// Convergence timeline: once the evaluated-neighbor count crosses the
    /// next sampling threshold, emits one `FrontSample` with the archive's
    /// 2-D hypervolume (distance × vehicles, tardiness dropped — it is zero
    /// for feasible fronts) and its coverage of `M_nondom`. Driven by
    /// `evals_seen`, never by wall time, so timelines replay byte-identically.
    fn maybe_sample_front(&mut self, iter: usize) {
        let Some(every) = self.cfg.timeline_every else {
            return;
        };
        if !self.recorder.enabled() || self.evals_seen < self.next_sample {
            return;
        }
        let every = every.max(1);
        while self.next_sample <= self.evals_seen {
            self.next_sample += every;
        }
        let hypervolume = projected_hypervolume(self.archive.items(), self.timeline_ref);
        let coverage = pareto::coverage(self.archive.items(), self.nondom.items());
        self.recorder.event(SearchEvent::FrontSample {
            searcher: self.searcher_id,
            iteration: iter as u64,
            evaluations: self.evals_seen,
            size: self.archive.len() as u32,
            hypervolume,
            coverage,
        });
    }

    /// Counts and (when enabled) emits one restart event.
    fn record_restart(&self, iter: usize, reason: RestartReason) {
        self.recorder.counter_add(names::RESTARTS, 1);
        let by_reason = match reason {
            RestartReason::EmptyPool => names::RESTARTS_EMPTY_POOL,
            RestartReason::Stagnation => names::RESTARTS_STAGNATION,
        };
        self.recorder.counter_add(by_reason, 1);
        if self.recorder.enabled() {
            self.recorder.event(SearchEvent::Restart {
                searcher: self.searcher_id,
                iteration: iter as u64,
                reason,
            });
        }
    }

    /// Line 10: `s ← SelectFrom(M_nondom ∪ M_archive)`.
    fn restart_from_memory(&mut self) {
        let n_nondom = self.nondom.len();
        let total = n_nondom + self.archive.len();
        debug_assert!(total > 0, "archive always holds the initial solution");
        let k = self.rng.index(total);
        let entry = if k < n_nondom {
            &self.nondom.items()[k]
        } else {
            &self.archive.items()[k - n_nondom]
        };
        self.current = EvaluatedSolution::new(entry.solution.clone(), &self.inst);
    }

    /// Finalizes the search, handing the archive and trace to the caller.
    /// Flushes the per-operator attribution and archive-dynamics metrics
    /// accumulated over the run — one batch of recorder calls here keeps
    /// the per-step hot path at plain array increments.
    pub fn finish(self) -> (Vec<FrontEntry>, Option<Trace>, usize) {
        self.recorder
            .gauge_max(names::ARCHIVE_SIZE, self.archive.len() as f64);
        if let Some(t) = &self.trace {
            self.recorder
                .counter_add(names::TRACE_DROPPED, t.dropped() as u64);
        }
        for op in OperatorKind::ALL {
            let i = op.index();
            let label = op.label();
            for (family, value) in [
                (names::OPERATOR_PROPOSED, self.tally.proposed[i]),
                (names::OPERATOR_FEASIBLE, self.tally.feasible[i]),
                (names::OPERATOR_ACCEPTED, self.outcomes.accepted[i]),
                (names::OPERATOR_IMPROVING, self.outcomes.improving[i]),
                (
                    names::OPERATOR_TABU_REJECTED,
                    self.outcomes.tabu_rejected[i],
                ),
                (names::OPERATOR_ASPIRATION, self.outcomes.aspiration[i]),
            ] {
                self.recorder
                    .counter_add(&names::operator_counter(family, label), value);
            }
        }
        self.recorder
            .counter_add(names::ARCHIVE_PRUNES, self.archive_prunes);
        let hypervolume = projected_hypervolume(self.archive.items(), self.timeline_ref);
        self.recorder
            .gauge_max(names::ARCHIVE_HYPERVOLUME, hypervolume);
        self.recorder.gauge_max(
            names::ARCHIVE_HYPERVOLUME_DELTA,
            hypervolume - self.initial_hypervolume,
        );
        self.recorder.gauge_max(
            names::STAGNATION_STREAK_MAX,
            self.stagnation_streak_max as f64,
        );
        (self.archive.into_items(), self.trace, self.iteration)
    }
}

/// 2-D hypervolume of a front projected to (distance, vehicles) against
/// a fixed reference point (tardiness is dropped — it is zero for
/// feasible fronts).
fn projected_hypervolume(items: &[FrontEntry], reference: [f64; 2]) -> f64 {
    let projected: Vec<Vec<f64>> = items
        .iter()
        .map(|e| vec![e.objectives.distance, e.objectives.vehicles as f64])
        .collect();
    pareto::hypervolume_2d(&projected, reference)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::neighborhood::generate_chunk;
    use vrptw::generator::{GeneratorConfig, InstanceClass};

    fn core(seed: u64) -> SearchCore {
        let inst = Arc::new(GeneratorConfig::new(InstanceClass::R2, 30, 7).build());
        let cfg = TsmoConfig {
            neighborhood_size: 30,
            stagnation_limit: 10,
            trace: true,
            ..TsmoConfig::default()
        };
        SearchCore::new(
            Arc::clone(&inst),
            cfg,
            Xoshiro256StarStar::seed_from_u64(seed),
        )
    }

    fn one_pool(c: &mut SearchCore) -> Vec<Neighbor> {
        let seed = c.next_seed();
        generate_chunk(
            c.instance().clone().as_ref(),
            c.current(),
            seed,
            30,
            c.sample_params(),
            c.iteration(),
        )
    }

    #[test]
    fn steps_advance_and_archive_fills() {
        let mut c = core(1);
        for _ in 0..30 {
            let pool = one_pool(&mut c);
            c.step(pool);
        }
        assert_eq!(c.iteration(), 30);
        assert!(!c.archive_entries().is_empty());
        // All archive members are valid, mutually non-dominated solutions.
        let inst = Arc::clone(c.instance());
        for e in c.archive_entries() {
            assert!(e.solution.check(&inst).is_empty());
        }
        let nd = non_dominated_indices(c.archive_entries());
        assert_eq!(nd.len(), c.archive_entries().len());
    }

    #[test]
    fn empty_pool_restarts_from_memory() {
        let mut c = core(2);
        let before = c.current().solution().clone();
        let report = c.step(Vec::new());
        assert!(report.restarted);
        assert!(report.selected.is_none());
        // Restart re-materializes a memorized solution (may equal the
        // initial one — the archive holds it — but must be valid).
        let inst = Arc::clone(c.instance());
        assert!(c.current().solution().check(&inst).is_empty());
        let _ = before;
    }

    #[test]
    fn search_improves_distance_over_time() {
        let mut c = core(3);
        let initial = c.current().objectives().distance;
        for _ in 0..80 {
            let pool = one_pool(&mut c);
            c.step(pool);
        }
        let best = c
            .archive_entries()
            .iter()
            .map(|e| e.objectives.distance)
            .fold(f64::INFINITY, f64::min);
        assert!(
            best < initial,
            "80 iterations should beat the I1 start ({best} !< {initial})"
        );
    }

    #[test]
    fn trace_records_every_considered_neighbor() {
        let mut c = core(4);
        let pool = one_pool(&mut c);
        let n = pool.len();
        c.step(pool);
        let (_, trace, _) = c.finish();
        let trace = trace.expect("tracing enabled");
        assert_eq!(trace.len(), n);
        assert_eq!(trace.trajectory().len(), 1);
    }

    #[test]
    fn selected_neighbor_becomes_current() {
        let mut c = core(5);
        let pool = one_pool(&mut c);
        let report = c.step(pool);
        if let Some(obj) = report.selected {
            assert_eq!(c.current().objectives().vehicles, obj.vehicles);
            assert!((c.current().objectives().distance - obj.distance).abs() < 1e-6);
        }
    }

    #[test]
    fn stagnation_triggers_restart() {
        let inst = Arc::new(GeneratorConfig::new(InstanceClass::R2, 20, 9).build());
        let cfg = TsmoConfig {
            neighborhood_size: 5,
            stagnation_limit: 3,
            archive_capacity: 2,
            ..TsmoConfig::default()
        };
        let mut c = SearchCore::new(inst, cfg, Xoshiro256StarStar::seed_from_u64(8));
        let mut restarts = 0;
        for _ in 0..60 {
            let pool = one_pool(&mut c);
            if c.step(pool).restarted {
                restarts += 1;
            }
        }
        assert!(
            restarts > 0,
            "a tiny archive must stagnate within 60 iterations"
        );
    }

    #[test]
    fn attribution_counters_flush_at_finish() {
        use crate::neighborhood::generate_chunk_tallied;
        use tsmo_obs::MemoryRecorder;
        use vrptw_operators::SampleTally;

        let inst = Arc::new(GeneratorConfig::new(InstanceClass::R2, 30, 7).build());
        let cfg = TsmoConfig {
            neighborhood_size: 30,
            stagnation_limit: 10,
            ..TsmoConfig::default()
        };
        let recorder = MemoryRecorder::shared();
        let mut c = SearchCore::with_recorder(
            Arc::clone(&inst),
            cfg,
            Xoshiro256StarStar::seed_from_u64(11),
            recorder.clone(),
            0,
        );
        let mut tally = SampleTally::default();
        let mut accepted_steps = 0u64;
        for _ in 0..40 {
            let seed = c.next_seed();
            let chunk = generate_chunk_tallied(
                c.instance().clone().as_ref(),
                c.current(),
                seed,
                30,
                c.sample_params(),
                c.iteration(),
            );
            tally.merge(&chunk.tally);
            accepted_steps += u64::from(c.step(chunk.neighbors).selected.is_some());
        }
        c.note_tally(&tally);
        c.finish();

        let m = recorder.metrics();
        let sum_over_ops = |family: &str| -> u64 {
            vrptw_operators::OperatorKind::ALL
                .iter()
                .map(|op| m.counter(&names::operator_counter(family, op.label())))
                .sum()
        };
        // Every operator's proposed counter exists and the totals line up
        // with the untallied counters the step loop already kept.
        assert_eq!(
            sum_over_ops(names::OPERATOR_PROPOSED),
            tally.total_proposed()
        );
        assert!(sum_over_ops(names::OPERATOR_FEASIBLE) <= sum_over_ops(names::OPERATOR_PROPOSED));
        assert_eq!(sum_over_ops(names::OPERATOR_ACCEPTED), accepted_steps);
        assert_eq!(
            sum_over_ops(names::OPERATOR_IMPROVING),
            m.counter(names::ARCHIVE_INSERTS)
        );
        assert_eq!(
            sum_over_ops(names::OPERATOR_TABU_REJECTED) + sum_over_ops(names::OPERATOR_ASPIRATION),
            m.counter(names::TABU_HITS)
        );
        assert!(m.gauge(names::ARCHIVE_HYPERVOLUME).unwrap_or(0.0) > 0.0);
        assert!(m.gauge(names::ARCHIVE_HYPERVOLUME_DELTA).unwrap_or(-1.0) >= 0.0);
        assert!(m.gauge(names::STAGNATION_STREAK_MAX).is_some());
    }

    #[test]
    fn stagnation_limit_emits_search_stagnated_event() {
        use tsmo_obs::MemoryRecorder;

        let inst = Arc::new(GeneratorConfig::new(InstanceClass::R2, 20, 9).build());
        let cfg = TsmoConfig {
            neighborhood_size: 5,
            stagnation_limit: 3,
            archive_capacity: 2,
            ..TsmoConfig::default()
        };
        let recorder = MemoryRecorder::shared();
        let mut c = SearchCore::with_recorder(
            inst,
            cfg,
            Xoshiro256StarStar::seed_from_u64(8),
            recorder.clone(),
            0,
        );
        for _ in 0..60 {
            let pool = one_pool(&mut c);
            c.step(pool);
        }
        c.finish();
        let stagnations = recorder
            .events()
            .iter()
            .filter(
                |e| matches!(e.event, SearchEvent::SearchStagnated { streak, .. } if streak >= 3),
            )
            .count();
        assert!(
            stagnations > 0,
            "tiny archive must hit the stagnation limit"
        );
        assert_eq!(
            recorder.metrics().counter(names::SEARCH_STAGNATED) as usize,
            stagnations
        );
    }

    #[test]
    fn external_offers_enter_nondom() {
        let mut c = core(6);
        // A wildly good fake entry must be accepted.
        let entry = FrontEntry::new(
            c.current().solution().clone(),
            Objectives {
                distance: 0.1,
                vehicles: 1,
                tardiness: 0.0,
            },
        );
        assert!(c.offer_to_nondom(entry.clone()));
        // Offering the identical point again is a duplicate.
        assert!(!c.offer_to_nondom(entry));
    }
}
