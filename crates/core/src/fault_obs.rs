//! Bridges between the fault/recovery layers and the telemetry layer:
//! injected faults and supervisor recovery actions become `tsmo-obs`
//! counters and structured events. Kept in one place so the thread-based
//! and simulated variants publish identical shapes.

use deme::RecoveryEvent;
use tsmo_obs::{metrics::names, FaultKind, Recorder, SearchEvent};

/// Publishes one injected fault: bumps `tsmo_faults_injected_total` and
/// (when events are on) appends a `fault_injected` event.
pub(crate) fn record_fault(recorder: &dyn Recorder, site: u32, seq: u64, kind: FaultKind) {
    recorder.counter_add(names::FAULTS_INJECTED, 1);
    if recorder.enabled() {
        recorder.event(SearchEvent::FaultInjected { site, seq, kind });
    }
}

/// Publishes a batch of supervisor recovery actions. `iteration` is the
/// master's iteration at drain time; workers are shifted by one so the
/// master keeps id 0 in the event stream (matching worker task/result
/// events).
pub(crate) fn publish_recovery(
    recorder: &dyn Recorder,
    events: Vec<RecoveryEvent>,
    iteration: u64,
) {
    for ev in events {
        match ev {
            RecoveryEvent::TaskResent { worker, attempt } => {
                recorder.counter_add(names::TASKS_RESENT, 1);
                if recorder.enabled() {
                    recorder.event(SearchEvent::TaskResent {
                        worker: (worker + 1) as u32,
                        iteration,
                        attempt,
                    });
                }
            }
            RecoveryEvent::TaskLost { .. } => {
                recorder.counter_add(names::TASKS_LOST, 1);
            }
            RecoveryEvent::WorkerQuarantined { worker } => {
                recorder.counter_add(names::WORKERS_QUARANTINED, 1);
                if recorder.enabled() {
                    recorder.event(SearchEvent::WorkerQuarantined {
                        worker: (worker + 1) as u32,
                        iteration,
                    });
                }
            }
            RecoveryEvent::WorkerRespawned { worker } => {
                recorder.counter_add(names::WORKERS_RESPAWNED, 1);
                if recorder.enabled() {
                    recorder.event(SearchEvent::WorkerRespawned {
                        worker: (worker + 1) as u32,
                        iteration,
                    });
                }
            }
            RecoveryEvent::Degraded { live_workers } => {
                recorder.gauge_set(names::DEGRADED_MODE, 1.0);
                if recorder.enabled() {
                    recorder.event(SearchEvent::DegradedMode {
                        iteration,
                        live_workers: live_workers as u32,
                    });
                }
            }
        }
    }
}
