//! The hybrid variant the paper proposes as future work (§V): "combining
//! the multisearch TS with the asynchronous TS to get the best of both
//! worlds and probably an algorithm that delivers both good solutions and
//! runtime performance".
//!
//! `P` collaborative searchers run concurrently, each of them an
//! *asynchronous master–worker* search with its own small worker pool.
//! Searchers exchange archive-improving solutions over the rotating
//! communication list exactly like [`CollaborativeTsmo`](crate::CollaborativeTsmo);
//! within a searcher, neighborhoods are produced by workers and folded in
//! partially according to the Algorithm-2 decision function exactly like
//! [`AsyncTsmo`](crate::AsyncTsmo).

use crate::config::TsmoConfig;
use crate::core_search::SearchCore;
use crate::neighborhood::{generate_chunk, Neighbor};
use crate::outcome::{FrontEntry, TsmoOutcome};
use deme::{multisearch, EvaluationBudget, MasterWorker, RunClock};
use detrand::{streams, Xoshiro256StarStar};
use pareto::Archive;
use std::sync::Arc;
use std::time::{Duration, Instant};
use vrptw::solution::EvaluatedSolution;
use vrptw::Instance;
use vrptw_operators::SampleParams;

struct Task {
    snapshot: EvaluatedSolution,
    seed: u64,
    count: usize,
    iteration: usize,
}

/// Collaborative multisearch of asynchronous master–worker searchers.
pub struct HybridTsmo {
    cfg: TsmoConfig,
    searchers: usize,
    procs_per_searcher: usize,
}

impl HybridTsmo {
    /// `searchers` collaborative searchers, each commanding
    /// `procs_per_searcher` processors (its master plus workers).
    ///
    /// # Panics
    /// Panics if either count is zero.
    pub fn new(cfg: TsmoConfig, searchers: usize, procs_per_searcher: usize) -> Self {
        assert!(searchers > 0, "need at least one searcher");
        assert!(
            procs_per_searcher > 0,
            "each searcher needs its master processor"
        );
        Self {
            cfg,
            searchers,
            procs_per_searcher,
        }
    }

    /// Runs all searchers to their budgets and merges the fronts.
    pub fn run(&self, inst: &Arc<Instance>) -> TsmoOutcome {
        let clock = RunClock::start();
        let n = self.searchers;
        let procs = self.procs_per_searcher;
        let mut rngs: Vec<Xoshiro256StarStar> = streams(self.cfg.seed, n);
        let endpoints = multisearch::network::<FrontEntry, _>(n, &mut rngs);

        let results: Vec<(Vec<FrontEntry>, u64, usize)> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n);
            for (id, (endpoint, mut rng)) in endpoints.into_iter().zip(rngs).enumerate() {
                let inst = Arc::clone(inst);
                let base_cfg = self.cfg.clone();
                handles.push(scope.spawn(move || {
                    let cfg = if id == 0 {
                        base_cfg
                    } else {
                        base_cfg.perturbed(&mut rng)
                    };
                    run_async_searcher(&inst, cfg, rng, procs, endpoint)
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("searcher panicked"))
                .collect()
        });

        let mut merged = Archive::new(self.cfg.archive_capacity);
        let mut evaluations = 0;
        let mut iterations = 0;
        for (archive, evals, iters) in results {
            evaluations += evals;
            iterations += iters;
            for entry in archive {
                merged.insert(entry);
            }
        }
        TsmoOutcome {
            archive: merged.into_items(),
            evaluations,
            iterations,
            runtime_seconds: clock.seconds(),
            trace: None,
        }
    }
}

/// One searcher: the asynchronous master–worker loop of
/// [`AsyncTsmo`](crate::AsyncTsmo), extended with the collaborative
/// exchange protocol (drain inbox into `M_nondom`; after the initial
/// phase, send archive improvements to the next peer).
fn run_async_searcher(
    inst: &Arc<Instance>,
    mut cfg: TsmoConfig,
    rng: Xoshiro256StarStar,
    procs: usize,
    mut endpoint: multisearch::Endpoint<FrontEntry>,
) -> (Vec<FrontEntry>, u64, usize) {
    cfg.chunks = procs;
    let budget = EvaluationBudget::new(cfg.max_evaluations);
    let params = SampleParams {
        feasibility: cfg.feasibility_criterion,
    };
    let chunk = (cfg.neighborhood_size / procs).max(1);
    let max_wait = Duration::from_millis(cfg.async_max_wait_ms);

    let worker_pool = (procs > 1).then(|| {
        let inst = Arc::clone(inst);
        MasterWorker::<Task, Vec<Neighbor>>::spawn(procs - 1, move |_, t| {
            generate_chunk(&inst, &t.snapshot, t.seed, t.count, params, t.iteration)
        })
    });
    let n_workers = worker_pool.as_ref().map_or(0, |p| p.n_workers());

    let mut core = SearchCore::new(Arc::clone(inst), cfg.clone(), rng);
    let mut busy = vec![false; n_workers];
    let mut pool: Vec<Neighbor> = Vec::new();
    let mut initial_phase = true;
    let mut initial_stagnation = 0usize;
    let mut improvements = 0u64;

    'search: loop {
        for entry in endpoint.drain() {
            core.offer_to_nondom(entry);
        }
        if let Some(wp) = &worker_pool {
            loop {
                match wp.try_recv() {
                    Ok(Some((w, chunk_result))) => {
                        busy[w] = false;
                        pool.extend(chunk_result);
                    }
                    Ok(None) => break,
                    Err(e) => panic!("hybrid worker pool failed: {e}"),
                }
            }
        }
        if budget.exhausted() {
            break 'search;
        }
        if let Some(wp) = &worker_pool {
            #[allow(clippy::needless_range_loop)] // w is also the worker id
            for w in 0..n_workers {
                if !busy[w] {
                    let granted = budget.try_consume(chunk as u64) as usize;
                    if granted == 0 {
                        break;
                    }
                    wp.send(
                        w,
                        Task {
                            snapshot: core.current().clone(),
                            seed: core.next_seed(),
                            count: granted,
                            iteration: core.iteration(),
                        },
                    );
                    busy[w] = true;
                }
            }
        }
        let granted = budget.try_consume(chunk as u64) as usize;
        if granted > 0 {
            let seed = core.next_seed();
            pool.extend(generate_chunk(
                inst,
                core.current(),
                seed,
                granted,
                params,
                core.iteration(),
            ));
        }
        let wait_start = Instant::now();
        loop {
            if let Some(wp) = &worker_pool {
                loop {
                    match wp.try_recv() {
                        Ok(Some((w, chunk_result))) => {
                            busy[w] = false;
                            pool.extend(chunk_result);
                        }
                        Ok(None) => break,
                        Err(e) => panic!("hybrid worker pool failed: {e}"),
                    }
                }
            }
            let current_vec = core.current().objectives().to_vector();
            let c1 = busy.iter().any(|b| !b);
            let c2 = pool
                .iter()
                .any(|nb| pareto::dominates(&nb.objectives.to_vector(), &current_vec));
            let c3 = wait_start.elapsed() >= max_wait;
            let c4 = budget.exhausted();
            if c1 || c2 || c3 || c4 {
                break;
            }
            if let Some(wp) = &worker_pool {
                match wp.recv_timeout(Duration::from_micros(500)) {
                    Ok(Some((w, chunk_result))) => {
                        busy[w] = false;
                        pool.extend(chunk_result);
                    }
                    Ok(None) => {} // timeout: re-evaluate the conditions
                    Err(e) => panic!("hybrid worker pool failed: {e}"),
                }
            } else {
                break;
            }
        }
        if pool.is_empty() {
            if budget.exhausted() && busy.iter().all(|b| !b) {
                break 'search;
            }
            continue 'search;
        }
        let report = core.step(std::mem::take(&mut pool));
        // The collaborative protocol, grafted onto the async iteration.
        if initial_phase {
            if report.improved_archive.is_some() {
                initial_stagnation = 0;
            } else {
                initial_stagnation += 1;
                if initial_stagnation >= cfg.stagnation_limit {
                    initial_phase = false;
                }
            }
        } else if let Some(entry) = report.improved_archive {
            improvements += 1;
            // Same migration-interval gate as CollabSearcher::step_once.
            if (improvements - 1).is_multiple_of(cfg.exchange_interval.max(1) as u64) {
                endpoint.send_next(entry);
            }
        }
    }
    if !pool.is_empty() {
        core.step(std::mem::take(&mut pool));
    }
    drop(worker_pool);
    let (archive, _, iterations) = core.finish();
    (archive, budget.consumed(), iterations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pareto::non_dominated_indices;
    use vrptw::generator::{GeneratorConfig, InstanceClass};

    fn cfg() -> TsmoConfig {
        TsmoConfig {
            max_evaluations: 1_500,
            neighborhood_size: 50,
            stagnation_limit: 10,
            ..TsmoConfig::default()
        }
    }

    #[test]
    fn hybrid_runs_and_merges() {
        let inst = Arc::new(GeneratorConfig::new(InstanceClass::R2, 30, 5).build());
        let out = HybridTsmo::new(cfg(), 2, 2).run(&inst);
        assert_eq!(out.evaluations, 2 * 1_500);
        assert!(!out.archive.is_empty());
        assert!(out.archive.len() <= cfg().archive_capacity);
        assert_eq!(non_dominated_indices(&out.archive).len(), out.archive.len());
        for e in &out.archive {
            assert!(e.solution.check(&inst).is_empty());
        }
    }

    #[test]
    fn hybrid_with_single_searcher_behaves_like_async() {
        let inst = Arc::new(GeneratorConfig::new(InstanceClass::C2, 25, 3).build());
        let out = HybridTsmo::new(cfg(), 1, 3).run(&inst);
        assert_eq!(out.evaluations, 1_500);
        assert!(!out.archive.is_empty());
    }

    #[test]
    fn hybrid_with_single_proc_per_searcher_behaves_like_collaborative() {
        let inst = Arc::new(GeneratorConfig::new(InstanceClass::R1, 30, 9).build());
        let out = HybridTsmo::new(cfg(), 3, 1).run(&inst);
        assert_eq!(out.evaluations, 3 * 1_500);
        assert!(!out.archive.is_empty());
    }

    #[test]
    fn hybrid_front_quality_is_at_least_collaboratives_ballpark() {
        let inst = Arc::new(GeneratorConfig::new(InstanceClass::R2, 40, 21).build());
        let coll = crate::CollaborativeTsmo::new(cfg().with_seed(4), 2).run(&inst);
        let hybrid = HybridTsmo::new(cfg().with_seed(4), 2, 2).run(&inst);
        let (c, h) = (
            coll.best_distance().expect("feasible"),
            hybrid.best_distance().expect("feasible"),
        );
        assert!(
            h < c * 1.3,
            "hybrid best {h} should be near collaborative best {c}"
        );
    }
}
