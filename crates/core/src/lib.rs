//! TSMO — multiobjective tabu search for the CVRPTW, and its three
//! parallel variants (Beham, IPPS 2007).
//!
//! The sequential algorithm (§III.B, Algorithm 1) iterates:
//!
//! 1. **Neighborhood generation** — `neighborhood_size` moves drawn from
//!    the five operators with equal probability, each respecting the local
//!    feasibility criterion;
//! 2. **Evaluation** — each neighbor's three objectives (incremental);
//! 3. **Selection** — one of the non-dominated, non-tabu neighbors becomes
//!    the new current solution; its reversal attributes enter the tabu
//!    list;
//! 4. **Memory update** — neighborhood non-dominated solutions are offered
//!    to the medium-term memory `M_nondom`; the chosen solution is offered
//!    to the bounded crowding archive `M_archive`. If the archive has not
//!    improved for `stagnation_limit` iterations (or no neighbor was
//!    selectable), the search restarts from a remembered solution.
//!
//! The parallel variants:
//!
//! * [`SyncTsmo`] (§III.C) — master–worker functional decomposition of
//!   steps 1–2 with a barrier; **bit-identical trajectories** to the
//!   sequential algorithm for the same seed (tested), which is the paper's
//!   "the behavior remains unchanged".
//! * [`AsyncTsmo`] (§III.D) — same decomposition without the barrier; the
//!   master continues with a partial neighborhood according to the decision
//!   function of Algorithm 2 and folds late worker results into later
//!   iterations.
//! * [`CollaborativeTsmo`] (§III.E) — independent searchers with perturbed
//!   parameters that exchange archive-improving solutions over a rotating
//!   communication list after an initial stagnation phase.
//!
//! The parallel runtimes are self-healing: the asynchronous master runs
//! its workers under a supervisor (`deme::Supervisor`) that resends
//! panicked tasks, quarantines and respawns repeat offenders, and degrades
//! to master-local evaluation when no worker is left; the collaborative
//! searchers track peer liveness and route around dead peers. Both can be
//! exercised under deterministic fault injection via
//! [`ParallelVariant::run_with_faults`] and the `tsmo-faults` crate.

//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use tsmo_core::{SequentialTsmo, TsmoConfig};
//! use vrptw::generator::{GeneratorConfig, InstanceClass};
//!
//! let inst = Arc::new(GeneratorConfig::new(InstanceClass::R2, 40, 7).build());
//! let cfg = TsmoConfig { max_evaluations: 2_000, neighborhood_size: 50,
//!                        ..TsmoConfig::default() };
//! let outcome = SequentialTsmo::new(cfg).run(&inst);
//! assert_eq!(outcome.evaluations, 2_000);
//! assert!(!outcome.archive.is_empty());
//! ```

mod adaptive;
mod asynchronous;
mod cancel;
mod collaborative;
mod config;
mod core_search;
mod fault_obs;
mod hybrid;
mod neighborhood;
mod outcome;
mod scalarized;
mod searcher;
mod sequential;
mod simulated;
mod sync;
mod tabu;
mod trace;

pub use adaptive::{insert_cheapest, scalarize, AdaptiveMemory, AdaptiveMemoryTs};
pub use asynchronous::AsyncTsmo;
pub use cancel::{CancelToken, StopCause};
pub use collaborative::CollaborativeTsmo;
pub use config::{SelectionRule, TsmoConfig};
pub use core_search::SearchCore;
pub use hybrid::HybridTsmo;
pub use neighborhood::{generate_chunk, Neighbor};
pub use outcome::{FrontEntry, TsmoOutcome};
pub use scalarized::{weighted_front, WeightedOutcome, WeightedSumTs};
pub use searcher::{searcher_cfg, CollabSearcher, SearcherResult};
pub use sequential::SequentialTsmo;
pub use simulated::{SimAsyncTsmo, SimCollaborativeTsmo, SimSyncTsmo};
pub use sync::SyncTsmo;
pub use tabu::TabuList;
pub use trace::{Trace, TracePoint};

use std::sync::Arc;
use vrptw::Instance;

/// The algorithm variants compared in the paper's tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParallelVariant {
    /// Algorithm 1 on one thread.
    Sequential,
    /// Synchronous master–worker with this many processors (incl. master).
    Synchronous(usize),
    /// Asynchronous master–worker with this many processors (incl. master).
    Asynchronous(usize),
    /// Collaborative multisearch with this many searchers.
    Collaborative(usize),
}

impl ParallelVariant {
    /// Runs the variant on `inst` with `cfg`.
    pub fn run(self, inst: &Arc<Instance>, cfg: &TsmoConfig) -> TsmoOutcome {
        self.run_with(inst, cfg, tsmo_obs::noop())
    }

    /// Runs the variant with a telemetry sink attached (see `tsmo-obs`).
    /// The no-op recorder makes this identical to [`run`](Self::run).
    pub fn run_with(
        self,
        inst: &Arc<Instance>,
        cfg: &TsmoConfig,
        recorder: Arc<dyn tsmo_obs::Recorder>,
    ) -> TsmoOutcome {
        self.run_with_faults(inst, cfg, recorder, tsmo_faults::none())
    }

    /// [`run_with`](Self::run_with) plus a fault-injection hook (see the
    /// `tsmo-faults` crate). The asynchronous variant runs its workers
    /// under the self-healing `deme::Supervisor` (resend, quarantine,
    /// respawn, degraded mode); the collaborative variant drops or delays
    /// exchange messages and routes around dead peers. `Sequential` and
    /// `Synchronous` have no recovery path and ignore the hook. An
    /// inactive hook ([`tsmo_faults::FaultHook::active`] is `false`) takes
    /// exactly the unfaulted code path.
    pub fn run_with_faults(
        self,
        inst: &Arc<Instance>,
        cfg: &TsmoConfig,
        recorder: Arc<dyn tsmo_obs::Recorder>,
        faults: Arc<dyn tsmo_faults::FaultHook>,
    ) -> TsmoOutcome {
        self.run_with_cancel(inst, cfg, recorder, faults, CancelToken::never())
    }

    /// The full-featured entry point: [`run_with_faults`] plus a
    /// cooperative stop signal. The token is checked at the top of each
    /// iteration (per searcher for the collaborative variant), so a
    /// stopped run returns its best-so-far front as a valid, truncated
    /// prefix of the unstopped run — the caller reads
    /// [`CancelToken::cause`] to learn why it stopped. This is what the
    /// solver service (`tsmo-serve`) and the `solve --deadline-ms` /
    /// `--cancel-after-iters` flags use.
    ///
    /// [`run_with_faults`]: Self::run_with_faults
    pub fn run_with_cancel(
        self,
        inst: &Arc<Instance>,
        cfg: &TsmoConfig,
        recorder: Arc<dyn tsmo_obs::Recorder>,
        faults: Arc<dyn tsmo_faults::FaultHook>,
        cancel: CancelToken,
    ) -> TsmoOutcome {
        match self {
            ParallelVariant::Sequential => SequentialTsmo::new(cfg.clone())
                .with_cancel_token(cancel)
                .run_with(inst, recorder),
            ParallelVariant::Synchronous(p) => SyncTsmo::new(cfg.clone(), p)
                .with_cancel_token(cancel)
                .run_with(inst, recorder),
            ParallelVariant::Asynchronous(p) => AsyncTsmo::new(cfg.clone(), p)
                .with_fault_hook(faults)
                .with_cancel_token(cancel)
                .run_with(inst, recorder),
            ParallelVariant::Collaborative(p) => CollaborativeTsmo::new(cfg.clone(), p)
                .with_fault_hook(faults)
                .with_cancel_token(cancel)
                .run_with(inst, recorder),
        }
    }

    /// Runs the variant with **virtual-time** parallelism: the same
    /// algorithm, executed single-threaded with each work item's cost
    /// measured and scheduled on a simulated cluster
    /// (see [`deme::virtual_time`]). `runtime_seconds` in the outcome is
    /// the virtual makespan — use this on hosts with fewer cores than the
    /// experiment's processor count. `Sequential` runs normally (its wall
    /// time is already a faithful serial measurement).
    pub fn run_simulated(self, inst: &Arc<Instance>, cfg: &TsmoConfig) -> TsmoOutcome {
        self.run_simulated_with(inst, cfg, tsmo_obs::noop())
    }

    /// [`run_simulated`](Self::run_simulated) with a telemetry sink. The
    /// single-threaded simulations emit byte-reproducible event streams for
    /// a fixed seed (fix [`TsmoConfig::sim_eval_cost`] to also pin the
    /// simulated schedule of the asynchronous/collaborative variants).
    pub fn run_simulated_with(
        self,
        inst: &Arc<Instance>,
        cfg: &TsmoConfig,
        recorder: Arc<dyn tsmo_obs::Recorder>,
    ) -> TsmoOutcome {
        self.run_simulated_with_faults(inst, cfg, recorder, tsmo_faults::none())
    }

    /// [`run_simulated_with`](Self::run_simulated_with) plus a
    /// fault-injection hook. The simulated asynchronous and collaborative
    /// variants mirror the thread-based recovery policy deterministically
    /// in virtual time, so with a fixed [`TsmoConfig::sim_eval_cost`] the
    /// *faulted* event stream is byte-reproducible too — and an inactive
    /// hook leaves the stream byte-identical to a run without a hook.
    pub fn run_simulated_with_faults(
        self,
        inst: &Arc<Instance>,
        cfg: &TsmoConfig,
        recorder: Arc<dyn tsmo_obs::Recorder>,
        faults: Arc<dyn tsmo_faults::FaultHook>,
    ) -> TsmoOutcome {
        match self {
            ParallelVariant::Sequential => {
                SequentialTsmo::new(cfg.clone()).run_with(inst, recorder)
            }
            ParallelVariant::Synchronous(p) => {
                SimSyncTsmo::new(cfg.clone(), p).run_with(inst, recorder)
            }
            ParallelVariant::Asynchronous(p) => SimAsyncTsmo::new(cfg.clone(), p)
                .with_fault_hook(faults)
                .run_with(inst, recorder),
            ParallelVariant::Collaborative(p) => SimCollaborativeTsmo::new(cfg.clone(), p)
                .with_fault_hook(faults)
                .run_with(inst, recorder),
        }
    }

    /// A short label for result tables (`"TSMO sync."` style).
    pub fn label(self) -> String {
        match self {
            ParallelVariant::Sequential => "Sequential TSMO".to_string(),
            ParallelVariant::Synchronous(p) => format!("TSMO sync. ({p})"),
            ParallelVariant::Asynchronous(p) => format!("TSMO async. ({p})"),
            ParallelVariant::Collaborative(p) => format!("TSMO coll. ({p})"),
        }
    }
}

#[cfg(test)]
mod variant_tests {
    use super::*;
    use vrptw::generator::{GeneratorConfig, InstanceClass};

    #[test]
    fn all_variants_run_and_produce_fronts() {
        let inst = Arc::new(GeneratorConfig::new(InstanceClass::C2, 30, 5).build());
        let cfg = TsmoConfig {
            max_evaluations: 2_000,
            neighborhood_size: 40,
            ..TsmoConfig::default()
        };
        for variant in [
            ParallelVariant::Sequential,
            ParallelVariant::Synchronous(3),
            ParallelVariant::Asynchronous(3),
            ParallelVariant::Collaborative(3),
        ] {
            let out = variant.run(&inst, &cfg);
            assert!(
                !out.archive.is_empty(),
                "{variant:?} produced an empty archive"
            );
            assert!(out.evaluations > 0, "{variant:?} did no evaluations");
            for entry in &out.archive {
                assert!(
                    entry.solution.check(&inst).is_empty(),
                    "{variant:?} invalid solution"
                );
            }
        }
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<String> = [
            ParallelVariant::Sequential,
            ParallelVariant::Synchronous(3),
            ParallelVariant::Asynchronous(3),
            ParallelVariant::Collaborative(3),
            ParallelVariant::Synchronous(6),
        ]
        .iter()
        .map(|v| v.label())
        .collect();
        assert_eq!(labels.len(), 5);
    }
}
