//! Neighborhood generation in deterministic, seed-derived chunks.
//!
//! Each iteration's neighborhood is produced in `cfg.chunks` chunks, every
//! chunk driven by its own seed drawn from the master RNG. The sequential
//! algorithm processes the chunks in order on one thread; the synchronous
//! variant hands one chunk to each processor and reassembles in chunk
//! order. Because a chunk's output depends only on `(seed, snapshot)`, the
//! two variants produce *identical* neighborhoods — the testable form of
//! the paper's claim that synchronous parallelization leaves the behavior
//! unchanged.

use detrand::Xoshiro256StarStar;
use vrptw::solution::EvaluatedSolution;
use vrptw::{Instance, Objectives, Solution};
use vrptw_operators::{sample_move_tallied, Arc, OperatorKind, SampleParams, SampleTally};

/// One evaluated neighbor, self-contained (independent of the snapshot it
/// was generated from) so the asynchronous variant can keep it across
/// iterations.
#[derive(Debug, Clone)]
pub struct Neighbor {
    /// The materialized neighboring solution.
    pub solution: Solution,
    /// Its three objectives.
    pub objectives: Objectives,
    /// Arcs the generating move created (tabu check).
    pub arcs_created: Vec<Arc>,
    /// Arcs the generating move removed (pushed on the tabu list when the
    /// neighbor is selected).
    pub arcs_removed: Vec<Arc>,
    /// Operator family of the generating move (per-operator attribution
    /// in the step loop: accepted / improving / tabu-rejected /
    /// aspiration counters).
    pub operator: OperatorKind,
    /// Iteration whose current solution spawned this neighbor (Fig. 1's
    /// iteration tags; in the asynchronous variant a neighbor can be
    /// considered in a later iteration than it was created in).
    pub created_iteration: usize,
}

/// A generated chunk: the neighbors plus the per-operator sampling tally
/// accumulated while producing them. The tally travels with the chunk
/// (worker → master in the parallel variants) and is folded into the
/// run-level attribution by the search core at finish time.
#[derive(Debug, Clone, Default)]
pub struct Chunk {
    /// The evaluated neighbors, in draw order.
    pub neighbors: Vec<Neighbor>,
    /// Per-operator proposed/feasible counts for every draw of this
    /// chunk (including failed draws, which produce no neighbor).
    pub tally: SampleTally,
}

/// Generates (up to) `count` neighbors of `snapshot` from `seed`.
///
/// Each successful draw costs one evaluation; the caller is responsible
/// for having reserved `count` evaluations from the shared budget. On
/// degenerate snapshots where the operators keep failing, fewer than
/// `count` neighbors are returned (the attempt cap prevents livelock).
pub fn generate_chunk(
    inst: &Instance,
    snapshot: &EvaluatedSolution,
    seed: u64,
    count: usize,
    params: SampleParams,
    created_iteration: usize,
) -> Vec<Neighbor> {
    generate_chunk_tallied(inst, snapshot, seed, count, params, created_iteration).neighbors
}

/// [`generate_chunk`] returning the per-operator [`SampleTally`]
/// alongside the neighbors. The RNG sequence is identical to the
/// untallied form, so chunk contents do not depend on whether
/// attribution is collected.
pub fn generate_chunk_tallied(
    inst: &Instance,
    snapshot: &EvaluatedSolution,
    seed: u64,
    count: usize,
    params: SampleParams,
    created_iteration: usize,
) -> Chunk {
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    let mut out = Vec::with_capacity(count);
    let mut tally = SampleTally::default();
    let max_attempts = count.saturating_mul(60).max(64);
    let mut attempts = 0;
    while out.len() < count && attempts < max_attempts {
        attempts += 1;
        if let Some(c) = sample_move_tallied(&mut rng, inst, snapshot, params, &mut tally) {
            out.push(Neighbor {
                solution: snapshot.solution().patched(&c.patch),
                objectives: c.preview.objectives,
                arcs_created: c.mv.arcs_created(snapshot),
                arcs_removed: c.mv.arcs_removed(snapshot),
                operator: c.mv.kind(),
                created_iteration,
            });
        }
    }
    Chunk {
        neighbors: out,
        tally,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc as StdArc;
    use vrptw::generator::{GeneratorConfig, InstanceClass};
    use vrptw_construct::{i1, I1Config};

    fn setup() -> (StdArc<Instance>, EvaluatedSolution) {
        let inst = StdArc::new(GeneratorConfig::new(InstanceClass::R2, 40, 3).build());
        let sol = i1(&inst, &I1Config::default());
        let ev = EvaluatedSolution::new(sol, &inst);
        (inst, ev)
    }

    #[test]
    fn chunk_is_deterministic_in_seed_and_snapshot() {
        let (inst, ev) = setup();
        let a = generate_chunk(&inst, &ev, 42, 30, SampleParams::default(), 0);
        let b = generate_chunk(&inst, &ev, 42, 30, SampleParams::default(), 0);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.solution, y.solution);
            assert_eq!(x.arcs_created, y.arcs_created);
        }
        let c = generate_chunk(&inst, &ev, 43, 30, SampleParams::default(), 0);
        let all_same =
            a.len() == c.len() && a.iter().zip(&c).all(|(x, y)| x.solution == y.solution);
        assert!(!all_same, "different seeds should differ");
    }

    #[test]
    fn chunk_produces_requested_count_on_healthy_snapshots() {
        let (inst, ev) = setup();
        let n = generate_chunk(&inst, &ev, 1, 50, SampleParams::default(), 0);
        assert_eq!(n.len(), 50);
    }

    #[test]
    fn neighbors_are_valid_and_correctly_evaluated() {
        let (inst, ev) = setup();
        for nb in generate_chunk(&inst, &ev, 7, 40, SampleParams::default(), 3) {
            assert!(nb.solution.check(&inst).is_empty());
            let full = nb.solution.evaluate(&inst);
            assert!((nb.objectives.distance - full.distance).abs() < 1e-6);
            assert_eq!(nb.objectives.vehicles, full.vehicles);
            assert!((nb.objectives.tardiness - full.tardiness).abs() < 1e-6);
            assert_eq!(nb.created_iteration, 3);
        }
    }

    #[test]
    fn tallied_chunk_matches_plain_chunk_and_accounts_draws() {
        let (inst, ev) = setup();
        let plain = generate_chunk(&inst, &ev, 42, 30, SampleParams::default(), 0);
        let chunk = generate_chunk_tallied(&inst, &ev, 42, 30, SampleParams::default(), 0);
        assert_eq!(plain.len(), chunk.neighbors.len());
        for (a, b) in plain.iter().zip(&chunk.neighbors) {
            assert_eq!(a.solution, b.solution);
            assert_eq!(a.operator, b.operator);
        }
        // Every neighbor came from a feasible draw of its operator.
        let mut per_op = [0u64; 5];
        for nb in &chunk.neighbors {
            per_op[nb.operator.index()] += 1;
        }
        assert_eq!(chunk.tally.feasible, per_op);
        assert!(chunk.tally.total_proposed() >= chunk.neighbors.len() as u64);
    }

    #[test]
    fn degenerate_snapshot_does_not_livelock() {
        // Single route, one customer: only 2-opt* & friends, all impossible.
        let depot = vrptw::Customer {
            x: 0.0,
            y: 0.0,
            demand: 0.0,
            ready: 0.0,
            due: 100.0,
            service: 0.0,
        };
        let c = vrptw::Customer {
            x: 1.0,
            y: 0.0,
            demand: 1.0,
            ready: 0.0,
            due: 100.0,
            service: 0.0,
        };
        let inst = Instance::new("deg", vec![depot, c], 10.0, 1);
        let ev = EvaluatedSolution::new(Solution::from_routes(vec![vec![1]]), &inst);
        let n = generate_chunk(&inst, &ev, 1, 20, SampleParams::default(), 0);
        assert!(
            n.is_empty(),
            "no moves exist for a single-customer solution"
        );
    }
}
