//! Run results: the archive front and run statistics.

use crate::trace::Trace;
use vrptw::{Objectives, Solution};

/// One member of a Pareto front: solution plus cached objective vector.
#[derive(Debug, Clone)]
pub struct FrontEntry {
    /// The solution.
    pub solution: Solution,
    /// Its objectives.
    pub objectives: Objectives,
    /// `objectives` as the minimization vector `[f1, f2, f3]`.
    vector: [f64; 3],
}

impl FrontEntry {
    /// Wraps a solution with its objectives.
    pub fn new(solution: Solution, objectives: Objectives) -> Self {
        Self {
            solution,
            objectives,
            vector: objectives.to_vector(),
        }
    }
}

impl pareto::Dominance for FrontEntry {
    fn objectives(&self) -> &[f64] {
        &self.vector
    }
}

/// The result of one TSMO run.
#[derive(Debug, Clone)]
pub struct TsmoOutcome {
    /// Final contents of `M_archive` (mutually non-dominated).
    pub archive: Vec<FrontEntry>,
    /// Evaluations actually consumed.
    pub evaluations: u64,
    /// Master iterations performed (per searcher summed, for the
    /// collaborative variant).
    pub iterations: usize,
    /// Wall-clock runtime in seconds.
    pub runtime_seconds: f64,
    /// Optional search trace (Fig. 1 data).
    pub trace: Option<Trace>,
}

impl TsmoOutcome {
    /// The archive members with no time-window violation — the paper's
    /// tables "only \[consider\] those solutions that did not violate the
    /// time window and capacity constraints" (capacity is structural here:
    /// the operators never create overloads).
    pub fn feasible_front(&self) -> Vec<&FrontEntry> {
        self.archive
            .iter()
            .filter(|e| e.objectives.is_time_feasible(1e-6))
            .collect()
    }

    /// Mean distance over the feasible front (`None` if it is empty).
    pub fn mean_distance(&self) -> Option<f64> {
        let front = self.feasible_front();
        if front.is_empty() {
            return None;
        }
        Some(front.iter().map(|e| e.objectives.distance).sum::<f64>() / front.len() as f64)
    }

    /// Mean deployed vehicles over the feasible front.
    pub fn mean_vehicles(&self) -> Option<f64> {
        let front = self.feasible_front();
        if front.is_empty() {
            return None;
        }
        Some(
            front
                .iter()
                .map(|e| e.objectives.vehicles as f64)
                .sum::<f64>()
                / front.len() as f64,
        )
    }

    /// Smallest total distance on the feasible front.
    pub fn best_distance(&self) -> Option<f64> {
        self.feasible_front()
            .iter()
            .map(|e| e.objectives.distance)
            .min_by(|a, b| a.partial_cmp(b).expect("distances are not NaN"))
    }

    /// Fewest vehicles on the feasible front.
    pub fn best_vehicles(&self) -> Option<usize> {
        self.feasible_front()
            .iter()
            .map(|e| e.objectives.vehicles)
            .min()
    }

    /// The feasible front's objective vectors (for indicator computations).
    pub fn feasible_vectors(&self) -> Vec<[f64; 3]> {
        self.feasible_front()
            .iter()
            .map(|e| e.objectives.to_vector())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vrptw::Objectives;

    fn entry(d: f64, v: usize, t: f64) -> FrontEntry {
        FrontEntry::new(
            Solution::from_routes(vec![vec![1]]),
            Objectives {
                distance: d,
                vehicles: v,
                tardiness: t,
            },
        )
    }

    fn outcome(entries: Vec<FrontEntry>) -> TsmoOutcome {
        TsmoOutcome {
            archive: entries,
            evaluations: 100,
            iterations: 10,
            runtime_seconds: 0.5,
            trace: None,
        }
    }

    #[test]
    fn feasible_front_filters_tardy_solutions() {
        let o = outcome(vec![
            entry(10.0, 2, 0.0),
            entry(8.0, 2, 5.0),
            entry(12.0, 1, 0.0),
        ]);
        let front = o.feasible_front();
        assert_eq!(front.len(), 2);
        assert_eq!(o.best_distance(), Some(10.0));
        assert_eq!(o.best_vehicles(), Some(1));
        assert_eq!(o.mean_distance(), Some(11.0));
        assert_eq!(o.mean_vehicles(), Some(1.5));
    }

    #[test]
    fn empty_feasible_front_yields_none() {
        let o = outcome(vec![entry(10.0, 2, 3.0)]);
        assert!(o.feasible_front().is_empty());
        assert_eq!(o.mean_distance(), None);
        assert_eq!(o.best_vehicles(), None);
    }

    #[test]
    fn dominance_vector_matches_objectives() {
        use pareto::Dominance;
        let e = entry(10.0, 2, 1.5);
        assert_eq!(e.objectives(), &[10.0, 2.0, 1.5]);
    }
}
