//! Weighted-sum (single-criterion) tabu search — the alternative §II.C of
//! the paper weighs the multiobjective approach against.
//!
//! "Solving the problem a number of times with modified weights and a
//! single criteria approach can result in several pareto-optimal solutions
//! as well, however if weights are to be selected randomly the additional
//! effort of MO optimization may shrink considerably against the
//! additional computational effort of the single criteria approach."
//!
//! [`WeightedSumTs`] is a classic tabu search on the scalarized objective
//! `w · (f1, f2, f3)`; [`weighted_front`] runs it for a set of weight
//! vectors and collects the union of the best solutions into a Pareto
//! front, so the ablation harness can compare *k weighted runs sharing the
//! MO run's total budget* against a single TSMO run — the exact trade the
//! paragraph above describes.

use crate::config::TsmoConfig;
use crate::neighborhood::{generate_chunk, Neighbor};
use crate::outcome::FrontEntry;
use crate::tabu::TabuList;
use deme::EvaluationBudget;
use detrand::{RandomSource, Rng, Xoshiro256StarStar};
use pareto::ParetoFront;
use std::sync::Arc;
use vrptw::solution::EvaluatedSolution;
use vrptw::{Instance, Objectives};
use vrptw_construct::randomized_i1;
use vrptw_operators::SampleParams;

/// A single-objective tabu search over the weighted objective sum.
pub struct WeightedSumTs {
    cfg: TsmoConfig,
    weights: [f64; 3],
}

/// Result of one weighted run: the best solution under the scalarization.
#[derive(Debug, Clone)]
pub struct WeightedOutcome {
    /// Best solution found.
    pub best: FrontEntry,
    /// Scalarized value of `best`.
    pub value: f64,
    /// Evaluations consumed.
    pub evaluations: u64,
    /// Iterations performed.
    pub iterations: usize,
}

fn scalar(weights: &[f64; 3], o: Objectives) -> f64 {
    let v = o.to_vector();
    weights[0] * v[0] + weights[1] * v[1] + weights[2] * v[2]
}

impl WeightedSumTs {
    /// Creates the runner; `weights` applies to `(distance, vehicles,
    /// tardiness)`.
    ///
    /// # Panics
    /// Panics if any weight is negative or all are zero.
    pub fn new(cfg: TsmoConfig, weights: [f64; 3]) -> Self {
        assert!(
            weights.iter().all(|&w| w >= 0.0),
            "weights must be non-negative"
        );
        assert!(
            weights.iter().any(|&w| w > 0.0),
            "at least one weight must be positive"
        );
        Self { cfg, weights }
    }

    /// Runs to budget exhaustion, tracking the best scalarized solution.
    pub fn run(&self, inst: &Arc<Instance>) -> WeightedOutcome {
        let cfg = &self.cfg;
        let budget = EvaluationBudget::new(cfg.max_evaluations);
        let mut rng = Xoshiro256StarStar::seed_from_u64(cfg.seed);
        let params = SampleParams {
            feasibility: cfg.feasibility_criterion,
        };
        let start = randomized_i1(inst, &mut rng);
        let mut current = EvaluatedSolution::new(start, inst);
        let mut tabu = TabuList::new(cfg.tabu_tenure);
        let mut best = FrontEntry::new(current.solution().clone(), current.objectives());
        let mut best_value = scalar(&self.weights, current.objectives());
        let mut stagnation = 0usize;
        let mut iterations = 0usize;

        while !budget.exhausted() {
            let granted = budget.try_consume(cfg.neighborhood_size as u64) as usize;
            if granted == 0 {
                break;
            }
            let seed = rng.next_u64();
            let pool: Vec<Neighbor> =
                generate_chunk(inst, &current, seed, granted, params, iterations);
            iterations += 1;
            // Classic best-improvement selection with aspiration: the best
            // non-tabu neighbor, or a tabu one that beats the incumbent.
            let mut chosen: Option<&Neighbor> = None;
            let mut chosen_value = f64::INFINITY;
            for nb in &pool {
                let value = scalar(&self.weights, nb.objectives);
                let tabu_hit = tabu.is_tabu(&nb.arcs_created);
                let admissible = !tabu_hit || value < best_value;
                if admissible && value < chosen_value {
                    chosen = Some(nb);
                    chosen_value = value;
                }
            }
            match chosen {
                Some(nb) => {
                    tabu.push(nb.arcs_removed.clone());
                    current = EvaluatedSolution::new(nb.solution.clone(), inst);
                    if chosen_value < best_value {
                        best_value = chosen_value;
                        best = FrontEntry::new(nb.solution.clone(), nb.objectives);
                        stagnation = 0;
                    } else {
                        stagnation += 1;
                    }
                }
                None => stagnation += 1,
            }
            if stagnation >= cfg.stagnation_limit {
                // Restart from the incumbent.
                current = EvaluatedSolution::new(best.solution.clone(), inst);
                stagnation = 0;
            }
        }
        WeightedOutcome {
            best,
            value: best_value,
            evaluations: budget.consumed(),
            iterations,
        }
    }
}

/// Runs `k` weighted-sum searches with random weight vectors (uniform on
/// the simplex via normalized exponentials of uniforms — here simply
/// normalized uniforms, which suffices for coverage of the weight space)
/// sharing `total_budget` evaluations, and returns the Pareto front of
/// their best solutions. This is §II.C's "solving the problem a number of
/// times with modified weights".
pub fn weighted_front(
    inst: &Arc<Instance>,
    base: &TsmoConfig,
    k: usize,
    total_budget: u64,
) -> ParetoFront<FrontEntry> {
    assert!(k > 0, "at least one weighted run required");
    let mut rng = Xoshiro256StarStar::seed_from_u64(base.seed ^ 0x5CA1A);
    let mut front = ParetoFront::new();
    let per_run = (total_budget / k as u64).max(1);
    for run in 0..k {
        // Random weights; tardiness always weighted (feasibility matters).
        let raw = [rng.next_f64(), rng.next_f64(), rng.next_f64()];
        let sum: f64 = raw.iter().sum::<f64>().max(1e-9);
        let weights = [raw[0] / sum, raw[1] / sum, (raw[2] / sum).max(0.1)];
        let cfg = TsmoConfig {
            max_evaluations: per_run,
            seed: base.seed ^ (run as u64 + 1),
            ..base.clone()
        };
        let out = WeightedSumTs::new(cfg, weights).run(inst);
        front.insert(out.best);
    }
    front
}

#[cfg(test)]
mod tests {
    use super::*;
    use vrptw::generator::{GeneratorConfig, InstanceClass};

    fn cfg(evals: u64) -> TsmoConfig {
        TsmoConfig {
            max_evaluations: evals,
            neighborhood_size: 50,
            ..TsmoConfig::default()
        }
    }

    #[test]
    fn weighted_run_improves_the_scalar_objective() {
        let inst = Arc::new(GeneratorConfig::new(InstanceClass::R2, 30, 5).build());
        let weights = [1.0, 100.0, 10.0];
        let out = WeightedSumTs::new(cfg(4_000).with_seed(1), weights).run(&inst);
        assert_eq!(out.evaluations, 4_000);
        assert!(out.best.solution.check(&inst).is_empty());
        // The incumbent must beat (or match) a fresh I1 construction.
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        let reference = randomized_i1(&inst, &mut rng).evaluate(&inst);
        assert!(out.value <= scalar(&weights, reference) + 1e-9);
    }

    #[test]
    fn heavier_vehicle_weight_yields_fewer_vehicles() {
        let inst = Arc::new(GeneratorConfig::new(InstanceClass::C2, 40, 9).build());
        let light = WeightedSumTs::new(cfg(4_000).with_seed(2), [1.0, 0.0, 10.0]).run(&inst);
        let heavy = WeightedSumTs::new(cfg(4_000).with_seed(2), [0.01, 1000.0, 10.0]).run(&inst);
        assert!(
            heavy.best.objectives.vehicles <= light.best.objectives.vehicles,
            "vehicle-heavy weights should not deploy more vehicles ({} vs {})",
            heavy.best.objectives.vehicles,
            light.best.objectives.vehicles
        );
    }

    #[test]
    fn weighted_front_is_non_dominated_and_budget_split() {
        let inst = Arc::new(GeneratorConfig::new(InstanceClass::R2, 30, 3).build());
        let front = weighted_front(&inst, &cfg(0), 5, 5_000);
        assert!(!front.is_empty());
        assert!(front.len() <= 5);
        let nd = pareto::non_dominated_indices(front.items());
        assert_eq!(nd.len(), front.len());
        for e in front.items() {
            assert!(e.solution.check(&inst).is_empty());
        }
    }

    #[test]
    #[should_panic]
    fn negative_weights_rejected() {
        WeightedSumTs::new(cfg(100), [1.0, -1.0, 0.0]);
    }

    #[test]
    #[should_panic]
    fn all_zero_weights_rejected() {
        WeightedSumTs::new(cfg(100), [0.0, 0.0, 0.0]);
    }
}
