//! One collaborative searcher, step-wise.
//!
//! [`CollaborativeTsmo`](crate::CollaborativeTsmo) runs this loop on a
//! thread per searcher; a cluster node (`tsmo-cluster`) runs it against
//! TCP-backed endpoints; a virtual mesh steps many of them round-robin on
//! one thread for byte-reproducible distributed runs. All three drive the
//! identical state machine — the only degree of freedom is the endpoint's
//! transport and who calls [`CollabSearcher::step_once`] when.

use crate::cancel::CancelToken;
use crate::config::TsmoConfig;
use crate::core_search::SearchCore;
use crate::fault_obs::record_fault;
use crate::neighborhood::generate_chunk_tallied;
use crate::outcome::FrontEntry;
use deme::multisearch::{Endpoint, PeerEvent};
use deme::EvaluationBudget;
use detrand::Xoshiro256StarStar;
use std::sync::Arc;
use tsmo_faults::{FaultHook, MsgFault};
use tsmo_obs::{
    metrics::names, ExchangeDirection, FaultKind, Recorder, SearchEvent, Span, Stopwatch,
};
use vrptw::Instance;

/// Sends `entry` to the head of `endpoint`'s rotation (with liveness
/// failover) and publishes the exchange telemetry.
pub(crate) fn send_entry(
    endpoint: &mut Endpoint<FrontEntry>,
    recorder: &Arc<dyn Recorder>,
    id: usize,
    entry: FrontEntry,
) {
    let vector = entry.objectives.to_vector();
    match endpoint.send_next(entry) {
        Some(peer) => {
            recorder.counter_add(names::EXCHANGE_SENT, 1);
            recorder.counter_add(names::EXCHANGES_SENT, 1);
            recorder.counter_add(&names::exchanges_sent_to_peer(peer), 1);
            if recorder.enabled() {
                recorder.event(SearchEvent::Exchange {
                    searcher: id as u32,
                    peer: peer as u32,
                    direction: ExchangeDirection::Sent,
                    objectives: vector,
                });
            }
        }
        None => {
            // Every peer is dead or disconnected; the entry is dropped.
            recorder.counter_add(names::EXCHANGE_UNDELIVERABLE, 1);
        }
    }
}

/// Drains the endpoint's liveness transitions into telemetry.
fn publish_peer_events(
    endpoint: &mut Endpoint<FrontEntry>,
    recorder: &Arc<dyn Recorder>,
    id: usize,
) {
    for transition in endpoint.take_peer_events() {
        match transition {
            PeerEvent::Died(peer) => {
                recorder.counter_add(names::PEERS_DEAD, 1);
                if recorder.enabled() {
                    recorder.event(SearchEvent::PeerDead {
                        searcher: id as u32,
                        peer: peer as u32,
                    });
                }
            }
            PeerEvent::Readmitted(peer) => {
                recorder.counter_add(names::PEERS_READMITTED, 1);
                if recorder.enabled() {
                    recorder.event(SearchEvent::PeerReadmitted {
                        searcher: id as u32,
                        peer: peer as u32,
                    });
                }
            }
        }
    }
}

/// The parameters searcher `id` runs with: searcher 0 keeps the base
/// configuration, every other searcher gets the paper's `N(0, param/4)`
/// disturbance drawn from its own stream. The draw order (communication
/// list first, then perturbation — see
/// [`comm_order`](deme::multisearch::comm_order)) is part of the
/// determinism contract shared by the thread, cluster, and virtual runs.
pub fn searcher_cfg(base: &TsmoConfig, id: usize, rng: &mut Xoshiro256StarStar) -> TsmoConfig {
    if id == 0 {
        base.clone()
    } else {
        base.perturbed(rng)
    }
}

/// What a finished searcher hands back for merging.
pub struct SearcherResult {
    /// The searcher's final `M_archive`.
    pub archive: Vec<FrontEntry>,
    /// Evaluations this searcher consumed from its own budget.
    pub evaluations: u64,
    /// Iterations performed.
    pub iterations: usize,
    /// Wall-clock seconds the searcher was active.
    pub active_seconds: f64,
}

/// One collaborative searcher as an explicit state machine: construct,
/// call [`step_once`](Self::step_once) until it returns `false`, then
/// [`finish`](Self::finish). The endpoint is passed per call rather than
/// owned, so a driver can hold many searchers and their endpoints in one
/// place (the virtual mesh) or hand each pair to a thread.
pub struct CollabSearcher {
    inst: Arc<Instance>,
    cfg: TsmoConfig,
    core: SearchCore,
    budget: EvaluationBudget,
    cancel: CancelToken,
    hook: Arc<dyn FaultHook>,
    recorder: Arc<dyn Recorder>,
    id: usize,
    initial_phase: bool,
    initial_stagnation: usize,
    /// Post-initial-phase archive improvements seen, driving the
    /// `exchange_interval` migration policy.
    improvements: u64,
    /// Fault bookkeeping: decision counter, local iteration ticks, and
    /// delayed messages waiting for their tick.
    exchange_seq: u64,
    tick: u64,
    delayed: Vec<(u64, FrontEntry)>,
    watch: Stopwatch,
}

impl CollabSearcher {
    /// Builds searcher `id` with its (already perturbed — see
    /// [`searcher_cfg`]) configuration and its own evaluation budget.
    pub fn new(
        inst: Arc<Instance>,
        cfg: TsmoConfig,
        rng: Xoshiro256StarStar,
        recorder: Arc<dyn Recorder>,
        id: usize,
        cancel: CancelToken,
        hook: Arc<dyn FaultHook>,
    ) -> Self {
        let budget = EvaluationBudget::new(cfg.max_evaluations);
        let core = SearchCore::with_recorder(
            Arc::clone(&inst),
            cfg.clone(),
            rng,
            Arc::clone(&recorder),
            id as u32,
        );
        Self {
            inst,
            cfg,
            core,
            budget,
            cancel,
            hook,
            recorder,
            id,
            initial_phase: true,
            initial_stagnation: 0,
            improvements: 0,
            exchange_seq: 0,
            tick: 0,
            delayed: Vec::new(),
            watch: Stopwatch::start(),
        }
    }

    /// This searcher's index in the network.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Whether the next [`step_once`](Self::step_once) would do no work.
    pub fn done(&self) -> bool {
        self.budget.exhausted() || self.cancel.should_stop(self.core.iteration())
    }

    /// A copy of the searcher's current `M_archive` — what an archive
    /// checkpoint ships to the ring successor while the searcher keeps
    /// running. Reading it consumes no randomness, so checkpointing never
    /// perturbs the search trajectory.
    pub fn archive_snapshot(&self) -> Vec<FrontEntry> {
        self.core.archive_entries().to_vec()
    }

    /// Evaluations consumed from this searcher's budget so far. A
    /// checkpoint records it so a restarted incarnation of the same
    /// searcher id resumes with the remaining budget.
    pub fn evaluations_consumed(&self) -> u64 {
        self.budget.consumed()
    }

    /// Runs one iteration: release due delayed messages, drain the inbox
    /// into `M_nondom`, consume budget, step the core, and (after the
    /// initial phase) offer an archive improvement to the rotation.
    /// Returns `false` once the budget or the cancel token stops the
    /// searcher; the call is then a no-op and the caller moves to
    /// [`finish`](Self::finish).
    pub fn step_once(&mut self, endpoint: &mut Endpoint<FrontEntry>) -> bool {
        if self.done() {
            return false;
        }
        self.tick += 1;
        let (trace_id, span_parent) = (self.core.trace_id(), self.core.span_parent());
        let exchange_span = Span::enter(&self.recorder, "exchange", trace_id, span_parent);
        // Release delayed messages whose tick has come.
        if !self.delayed.is_empty() {
            let mut keep = Vec::new();
            let mut due = Vec::new();
            for (at, entry) in self.delayed.drain(..) {
                if at <= self.tick {
                    due.push(entry);
                } else {
                    keep.push((at, entry));
                }
            }
            self.delayed = keep;
            for entry in due {
                send_entry(endpoint, &self.recorder, self.id, entry);
            }
        }
        // Collaborate: incoming solutions feed M_nondom.
        self.recorder
            .observe(names::RESULT_QUEUE_DEPTH, endpoint.inbox_len() as f64);
        for entry in endpoint.drain() {
            self.recorder.counter_add(names::EXCHANGE_RECEIVED, 1);
            self.recorder.counter_add(names::EXCHANGES_RECEIVED, 1);
            if self.recorder.enabled() {
                self.recorder.event(SearchEvent::Exchange {
                    searcher: self.id as u32,
                    // The wire format carries no sender id.
                    peer: self.id as u32,
                    direction: ExchangeDirection::Received,
                    objectives: entry.objectives.to_vector(),
                });
            }
            self.core.offer_to_nondom(entry);
        }
        drop(exchange_span);
        let granted = self.budget.try_consume(self.cfg.neighborhood_size as u64) as usize;
        if granted == 0 {
            return false;
        }
        self.recorder
            .counter_add(names::EVALUATIONS, granted as u64);
        let seed = self.core.next_seed();
        let eval_span = Span::enter(&self.recorder, "evaluate", trace_id, span_parent);
        let chunk = generate_chunk_tallied(
            &self.inst,
            self.core.current(),
            seed,
            granted,
            self.core.sample_params(),
            self.core.iteration(),
        );
        drop(eval_span);
        self.core.note_tally(&chunk.tally);
        let report = self.core.step(chunk.neighbors);
        if self.initial_phase {
            // The initial phase ends when the searcher "could not add any
            // new solutions to the set of pareto optimal solutions found
            // for a number of iterations".
            if report.improved_archive.is_some() {
                self.initial_stagnation = 0;
            } else {
                self.initial_stagnation += 1;
                if self.initial_stagnation >= self.cfg.stagnation_limit {
                    self.initial_phase = false;
                }
            }
        } else if let Some(entry) = report.improved_archive {
            // Migration interval: only every k-th improvement is offered
            // to the rotation (k = 1 sends all, the paper's policy). The
            // decision precedes the fault draw so skipped improvements
            // consume no fault sequence numbers.
            self.improvements += 1;
            if !(self.improvements - 1).is_multiple_of(self.cfg.exchange_interval.max(1) as u64) {
                publish_peer_events(endpoint, &self.recorder, self.id);
                return true;
            }
            let _span = Span::enter(&self.recorder, "exchange", trace_id, span_parent);
            let fault = if self.hook.active() {
                let seq = self.exchange_seq;
                self.exchange_seq += 1;
                (seq, self.hook.on_exchange(self.id, seq))
            } else {
                (0, MsgFault::Deliver)
            };
            match fault {
                (_, MsgFault::Deliver) => {
                    send_entry(endpoint, &self.recorder, self.id, entry);
                }
                (seq, MsgFault::Drop) => {
                    record_fault(
                        &*self.recorder,
                        self.id as u32,
                        seq,
                        FaultKind::ExchangeDrop,
                    );
                }
                (seq, MsgFault::Delay { ticks }) => {
                    record_fault(
                        &*self.recorder,
                        self.id as u32,
                        seq,
                        FaultKind::ExchangeDelay,
                    );
                    self.delayed.push((self.tick + ticks.max(1), entry));
                }
            }
        }
        publish_peer_events(endpoint, &self.recorder, self.id);
        true
    }

    /// Flushes still-delayed messages (best-effort; peers that already
    /// finished simply never receive them) and returns the searcher's
    /// archive and counters.
    pub fn finish(mut self, endpoint: &mut Endpoint<FrontEntry>) -> SearcherResult {
        for (_, entry) in std::mem::take(&mut self.delayed) {
            send_entry(endpoint, &self.recorder, self.id, entry);
        }
        publish_peer_events(endpoint, &self.recorder, self.id);
        let (archive, _, iterations) = self.core.finish();
        SearcherResult {
            archive,
            evaluations: self.budget.consumed(),
            iterations,
            active_seconds: self.watch.seconds(),
        }
    }
}
