//! The sequential TSMO algorithm (Algorithm 1).

use crate::cancel::CancelToken;
use crate::config::TsmoConfig;
use crate::core_search::SearchCore;
use crate::neighborhood::generate_chunk_tallied;
use crate::outcome::TsmoOutcome;
use deme::{EvaluationBudget, RunClock};
use detrand::Xoshiro256StarStar;
use std::sync::Arc;
use tsmo_obs::{metrics::names, Recorder, Span};
use vrptw::Instance;

/// Single-threaded TSMO.
///
/// The neighborhood is generated in `cfg.chunks` seed-derived chunks so
/// that [`SyncTsmo`](crate::SyncTsmo) with the same chunk count reproduces
/// this algorithm exactly (see the crate docs).
pub struct SequentialTsmo {
    cfg: TsmoConfig,
    cancel: CancelToken,
}

impl SequentialTsmo {
    /// Creates the runner.
    pub fn new(cfg: TsmoConfig) -> Self {
        Self {
            cfg,
            cancel: CancelToken::never(),
        }
    }

    /// Attaches a cooperative stop signal. The token is consulted at the
    /// top of each iteration, before that iteration's randomness is drawn,
    /// so a stopped run is a byte-identical prefix of the unstopped run
    /// (see [`CancelToken`]).
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = token;
        self
    }

    /// Runs the search to budget exhaustion.
    pub fn run(&self, inst: &Arc<Instance>) -> TsmoOutcome {
        self.run_with(inst, tsmo_obs::noop())
    }

    /// Runs the search with a telemetry sink attached (see `tsmo-obs`).
    pub fn run_with(&self, inst: &Arc<Instance>, recorder: Arc<dyn Recorder>) -> TsmoOutcome {
        let clock = RunClock::start();
        let budget = EvaluationBudget::new(self.cfg.max_evaluations);
        let mut core = SearchCore::with_recorder(
            Arc::clone(inst),
            self.cfg.clone(),
            Xoshiro256StarStar::seed_from_u64(self.cfg.seed),
            Arc::clone(&recorder),
            0,
        );
        let sizes = self.cfg.chunk_sizes();
        let mut tally = vrptw_operators::SampleTally::default();
        while !budget.exhausted() && !self.cancel.should_stop(core.iteration()) {
            let seeds = core.chunk_seeds();
            let mut pool = Vec::with_capacity(self.cfg.neighborhood_size);
            let eval_span = Span::enter(&recorder, "evaluate", core.trace_id(), core.span_parent());
            for (&seed, &size) in seeds.iter().zip(&sizes) {
                let granted = budget.try_consume(size as u64) as usize;
                if granted == 0 {
                    break;
                }
                recorder.counter_add(names::EVALUATIONS, granted as u64);
                let chunk = generate_chunk_tallied(
                    inst,
                    core.current(),
                    seed,
                    granted,
                    core.sample_params(),
                    core.iteration(),
                );
                tally.merge(&chunk.tally);
                pool.extend(chunk.neighbors);
            }
            drop(eval_span);
            if pool.is_empty() && budget.exhausted() {
                break;
            }
            core.step(pool);
        }
        core.note_tally(&tally);
        let (archive, trace, iterations) = core.finish();
        let runtime_seconds = clock.seconds();
        recorder.gauge_set(names::RUNTIME_SECONDS, runtime_seconds);
        // The lone processor is the master and is always busy.
        recorder.gauge_set(&names::worker_busy_fraction(0), 1.0);
        TsmoOutcome {
            archive,
            evaluations: budget.consumed(),
            iterations,
            runtime_seconds,
            trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pareto::non_dominated_indices;
    use vrptw::generator::{GeneratorConfig, InstanceClass};

    fn small_cfg() -> TsmoConfig {
        TsmoConfig {
            max_evaluations: 3_000,
            neighborhood_size: 50,
            ..TsmoConfig::default()
        }
    }

    #[test]
    fn consumes_exactly_the_budget() {
        let inst = Arc::new(GeneratorConfig::new(InstanceClass::R2, 40, 1).build());
        let out = SequentialTsmo::new(small_cfg()).run(&inst);
        assert_eq!(out.evaluations, 3_000);
        assert!(out.iterations >= 3_000 / 50);
        assert!(out.runtime_seconds > 0.0);
    }

    #[test]
    fn deterministic_for_equal_seeds() {
        let inst = Arc::new(GeneratorConfig::new(InstanceClass::C1, 40, 2).build());
        let a = SequentialTsmo::new(small_cfg().with_seed(9)).run(&inst);
        let b = SequentialTsmo::new(small_cfg().with_seed(9)).run(&inst);
        let mut va = a.feasible_vectors();
        let mut vb = b.feasible_vectors();
        let key = |v: &[f64; 3]| (v[0] * 1e6) as i64;
        va.sort_by_key(key);
        vb.sort_by_key(key);
        assert_eq!(va, vb, "same seed must give the same front");
        assert_eq!(a.iterations, b.iterations);
    }

    #[test]
    fn different_seeds_explore_differently() {
        let inst = Arc::new(GeneratorConfig::new(InstanceClass::C1, 40, 2).build());
        let a = SequentialTsmo::new(small_cfg().with_seed(1)).run(&inst);
        let b = SequentialTsmo::new(small_cfg().with_seed(2)).run(&inst);
        assert_ne!(a.feasible_vectors(), b.feasible_vectors());
    }

    #[test]
    fn archive_is_non_dominated_and_valid() {
        let inst = Arc::new(GeneratorConfig::new(InstanceClass::RC2, 40, 5).build());
        let out = SequentialTsmo::new(small_cfg()).run(&inst);
        let nd = non_dominated_indices(&out.archive);
        assert_eq!(nd.len(), out.archive.len());
        for e in &out.archive {
            assert!(e.solution.check(&inst).is_empty());
        }
    }

    #[test]
    fn improves_over_the_construction_heuristic() {
        let inst = Arc::new(GeneratorConfig::new(InstanceClass::R2, 60, 4).build());
        let cfg = TsmoConfig {
            max_evaluations: 8_000,
            neighborhood_size: 80,
            ..TsmoConfig::default()
        };
        let out = SequentialTsmo::new(cfg).run(&inst);
        // I1 with default parameters as the reference.
        let start =
            vrptw_construct::i1(&inst, &vrptw_construct::I1Config::default()).evaluate(&inst);
        let best = out.best_distance().expect("feasible solutions exist on R2");
        assert!(
            best < start.distance,
            "search best {best} should beat I1 start {}",
            start.distance
        );
    }

    #[test]
    fn chunked_generation_changes_stream_but_stays_deterministic() {
        let inst = Arc::new(GeneratorConfig::new(InstanceClass::C2, 30, 8).build());
        let cfg1 = TsmoConfig {
            chunks: 1,
            ..small_cfg()
        };
        let cfg3 = TsmoConfig {
            chunks: 3,
            ..small_cfg()
        };
        let a = SequentialTsmo::new(cfg3.clone()).run(&inst);
        let b = SequentialTsmo::new(cfg3).run(&inst);
        assert_eq!(a.feasible_vectors(), b.feasible_vectors());
        let c = SequentialTsmo::new(cfg1).run(&inst);
        // chunks=1 and chunks=3 are different (but individually valid) runs.
        let _ = c;
    }
}
