//! Virtual-time (discrete-event) versions of the three parallel variants.
//!
//! The paper's runtime and speedup columns were measured on a 128-processor
//! SGI Origin 3800. On hosts with fewer cores than the experiment's
//! processor count — in the limit a single-core CI container, where OS
//! threads merely timeshare — the thread-based variants in this crate
//! cannot exhibit real speedup. These `Sim*` runners execute the *same
//! algorithms* single-threaded, measure each work item's true serial cost,
//! and schedule the items on a [`VirtualCluster`] with per-message latency;
//! the reported `runtime_seconds` is the cluster's virtual makespan — the
//! wall time a real P-processor machine would have needed.
//!
//! Fidelity notes:
//!
//! * `SimSyncTsmo` follows exactly the synchronous schedule (dispatch →
//!   parallel chunks → barrier collect → selection) and produces the *same
//!   trajectory* as [`SyncTsmo`](crate::SyncTsmo) and the chunked
//!   sequential algorithm — tested.
//! * `SimAsyncTsmo` is an event-driven simulation of Algorithm 2: worker
//!   completions become timed events, and the decision function's four
//!   conditions are evaluated against virtual time.
//! * `SimCollaborativeTsmo` simulates the searchers event-interleaved by
//!   their virtual clocks; messages are charged `latency · P/2` to model
//!   interconnect contention on the shared-memory machine, which is what
//!   makes the collaborative runtime *grow* with the processor count as in
//!   the paper's tables.

use crate::config::TsmoConfig;
use crate::core_search::SearchCore;
use crate::fault_obs::record_fault;
use crate::neighborhood::{generate_chunk_tallied, Chunk, Neighbor};
use crate::outcome::{FrontEntry, TsmoOutcome};
use deme::{EvaluationBudget, SupervisorConfig, VirtualCluster};
use detrand::{streams, Xoshiro256StarStar};
use pareto::Archive;
use std::sync::Arc;
use tsmo_faults::{FaultHook, MsgFault, TaskFault};
use tsmo_obs::{metrics::names, ExchangeDirection, FaultKind, Recorder, SearchEvent};
use vrptw::Instance;

/// Executes `f` as processor `p`'s work: with `cost = None` the *measured*
/// wall cost is charged to the virtual clock ([`VirtualCluster::charge`]);
/// with a fixed cost the schedule is independent of the host's timing, which
/// makes the event-driven simulations deterministic (see
/// [`TsmoConfig::sim_eval_cost`]).
fn charge_with<R>(
    cluster: &mut VirtualCluster,
    p: usize,
    cost: Option<f64>,
    f: impl FnOnce() -> R,
) -> R {
    match cost {
        Some(c) => {
            let out = f();
            cluster.advance(p, c);
            out
        }
        None => cluster.charge(p, f),
    }
}

/// Simulated synchronous master–worker TSMO (virtual-time runtime).
pub struct SimSyncTsmo {
    cfg: TsmoConfig,
    processors: usize,
    speeds: Option<Vec<f64>>,
}

impl SimSyncTsmo {
    /// Creates the runner.
    ///
    /// # Panics
    /// Panics if `processors == 0`.
    pub fn new(cfg: TsmoConfig, processors: usize) -> Self {
        assert!(processors > 0, "need at least the master processor");
        Self {
            cfg,
            processors,
            speeds: None,
        }
    }

    /// Simulates a heterogeneous machine: `speeds[p]` is processor `p`'s
    /// relative speed (processor 0 is the master). The trajectory is
    /// unaffected — the synchronous barrier hides heterogeneity in wasted
    /// waiting time, which is exactly what the makespan then shows.
    ///
    /// # Panics
    /// Panics if the vector length differs from the processor count.
    pub fn with_speeds(mut self, speeds: Vec<f64>) -> Self {
        assert_eq!(speeds.len(), self.processors, "one speed per processor");
        self.speeds = Some(speeds);
        self
    }

    /// Runs to budget exhaustion; `runtime_seconds` is virtual.
    pub fn run(&self, inst: &Arc<Instance>) -> TsmoOutcome {
        self.run_with(inst, tsmo_obs::noop())
    }

    /// Runs with a telemetry sink attached. Because the simulation is
    /// single-threaded, the event stream (including worker task/result
    /// events) is byte-reproducible for a fixed seed.
    pub fn run_with(&self, inst: &Arc<Instance>, recorder: Arc<dyn Recorder>) -> TsmoOutcome {
        let mut cfg = self.cfg.clone();
        cfg.chunks = self.processors;
        let p = self.processors;
        let budget = EvaluationBudget::new(cfg.max_evaluations);
        let mut cluster = match &self.speeds {
            Some(s) => VirtualCluster::heterogeneous(s.clone(), cfg.sim_comm_latency),
            None => VirtualCluster::new(p, cfg.sim_comm_latency),
        };
        let mut core = SearchCore::with_recorder(
            Arc::clone(inst),
            cfg.clone(),
            Xoshiro256StarStar::seed_from_u64(cfg.seed),
            Arc::clone(&recorder),
            0,
        );
        let sizes = cfg.chunk_sizes();
        let mut tally = vrptw_operators::SampleTally::default();
        while !budget.exhausted() {
            let seeds = core.chunk_seeds();
            let granted: Vec<usize> = sizes
                .iter()
                .map(|&s| budget.try_consume(s as u64) as usize)
                .collect();
            recorder.counter_add(names::EVALUATIONS, granted.iter().map(|&g| g as u64).sum());
            // Dispatch: workers can start once the master's message arrives.
            #[allow(clippy::needless_range_loop)] // w is also the worker id
            for w in 1..p {
                if recorder.enabled() {
                    recorder.event(SearchEvent::WorkerTask {
                        worker: w as u32,
                        iteration: core.iteration() as u64,
                        count: granted[w] as u32,
                    });
                }
                let arrival = cluster.send_at(0, 1.0);
                cluster.receive(w, arrival);
            }
            // Chunks run "in parallel": each charged to its own processor.
            let mut chunks: Vec<Chunk> = Vec::with_capacity(p);
            for proc in (0..p).rev() {
                // Master's own chunk is chunk 0; workers hold 1..P. The
                // computation order here is irrelevant — only the virtual
                // clocks matter — but chunk order in the pool is preserved.
                let cost = cfg.sim_eval_cost.map(|c| c * granted[proc] as f64);
                let chunk = charge_with(&mut cluster, proc, cost, || {
                    generate_chunk_tallied(
                        inst,
                        core.current(),
                        seeds[proc],
                        granted[proc],
                        core.sample_params(),
                        core.iteration(),
                    )
                });
                chunks.push(chunk);
            }
            chunks.reverse();
            // Collect: the master waits for every worker's reply.
            #[allow(clippy::needless_range_loop)] // w is also the worker id
            for w in 1..p {
                if recorder.enabled() {
                    recorder.event(SearchEvent::WorkerResult {
                        worker: w as u32,
                        iteration: core.iteration() as u64,
                        neighbors: chunks[w].neighbors.len() as u32,
                    });
                }
                let arrival = cluster.send_at(w, 1.0);
                cluster.receive(0, arrival);
            }
            for chunk in &chunks {
                tally.merge(&chunk.tally);
            }
            let pool: Vec<Neighbor> = chunks.into_iter().flat_map(|c| c.neighbors).collect();
            if pool.is_empty() && budget.exhausted() {
                break;
            }
            let cost = cfg.sim_eval_cost.map(|c| c * pool.len() as f64);
            charge_with(&mut cluster, 0, cost, || core.step(pool));
        }
        let makespan = cluster.makespan();
        record_virtual_run(&*recorder, &cluster, makespan, p);
        core.note_tally(&tally);
        let (archive, trace, iterations) = core.finish();
        TsmoOutcome {
            archive,
            evaluations: budget.consumed(),
            iterations,
            runtime_seconds: makespan,
            trace,
        }
    }
}

/// Simulated asynchronous master–worker TSMO (virtual-time runtime).
pub struct SimAsyncTsmo {
    cfg: TsmoConfig,
    processors: usize,
    speeds: Option<Vec<f64>>,
    faults: Arc<dyn FaultHook>,
}

/// A worker's outstanding chunk in the event simulation.
struct Outstanding {
    /// Virtual time the result reaches the master.
    arrival: f64,
    chunk: Chunk,
}

/// Per-worker recovery state of the simulated supervisor mirror.
struct SimWorkerState {
    consecutive_panics: u32,
    respawns_used: u32,
    retired: bool,
}

impl SimAsyncTsmo {
    /// Creates the runner.
    ///
    /// # Panics
    /// Panics if `processors == 0`.
    pub fn new(cfg: TsmoConfig, processors: usize) -> Self {
        assert!(processors > 0, "need at least the master processor");
        Self {
            cfg,
            processors,
            speeds: None,
            faults: tsmo_faults::none(),
        }
    }

    /// Attaches a fault-injection hook (see the `tsmo-faults` crate). The
    /// simulation mirrors the thread-based supervisor deterministically in
    /// virtual time: an injected panic costs the worker a re-execution
    /// (bounded retries, then the task is lost), repeated panics
    /// quarantine and once respawn the virtual worker, and with every
    /// worker retired the master continues alone (degraded mode). With a
    /// fixed [`TsmoConfig::sim_eval_cost`] the full faulted event stream
    /// is byte-reproducible, and an inactive hook leaves the stream
    /// byte-identical to a run without a hook.
    pub fn with_fault_hook(mut self, hook: Arc<dyn FaultHook>) -> Self {
        self.faults = hook;
        self
    }

    /// Simulates a heterogeneous machine (see
    /// [`SimSyncTsmo::with_speeds`]): here slow workers simply deliver
    /// later and the decision function moves on without them — the paper's
    /// argument for why the asynchronous variant "should perform well on
    /// both homogenous and heterogenous systems".
    ///
    /// # Panics
    /// Panics if the vector length differs from the processor count.
    pub fn with_speeds(mut self, speeds: Vec<f64>) -> Self {
        assert_eq!(speeds.len(), self.processors, "one speed per processor");
        self.speeds = Some(speeds);
        self
    }

    /// Runs to budget exhaustion; `runtime_seconds` is virtual.
    pub fn run(&self, inst: &Arc<Instance>) -> TsmoOutcome {
        self.run_with(inst, tsmo_obs::noop())
    }

    /// Runs with a telemetry sink attached. The event-driven simulation is
    /// single-threaded and its decision function runs in virtual time, so —
    /// unlike the thread-based [`AsyncTsmo`](crate::AsyncTsmo) — the full
    /// event stream (staleness, worker traffic, iterations) is
    /// byte-reproducible for a fixed seed. This is the suite's determinism
    /// proof vehicle.
    pub fn run_with(&self, inst: &Arc<Instance>, recorder: Arc<dyn Recorder>) -> TsmoOutcome {
        let mut cfg = self.cfg.clone();
        cfg.chunks = self.processors;
        let p = self.processors;
        let budget = EvaluationBudget::new(cfg.max_evaluations);
        let mut cluster = match &self.speeds {
            Some(s) => VirtualCluster::heterogeneous(s.clone(), cfg.sim_comm_latency),
            None => VirtualCluster::new(p, cfg.sim_comm_latency),
        };
        let mut core = SearchCore::with_recorder(
            Arc::clone(inst),
            cfg.clone(),
            Xoshiro256StarStar::seed_from_u64(cfg.seed),
            Arc::clone(&recorder),
            0,
        );
        let chunk = (cfg.neighborhood_size / p).max(1);
        let max_wait = cfg.async_max_wait_ms as f64 / 1_000.0;
        let mut outstanding: Vec<Option<Outstanding>> = (1..p).map(|_| None).collect();
        let mut pool: Vec<Neighbor> = Vec::new();
        let mut tally = vrptw_operators::SampleTally::default();

        // Deterministic supervisor mirror: one fault draw per virtual
        // execution, with the same retry/quarantine/respawn policy (and the
        // same default knobs) as the thread-based `deme::Supervisor`. All
        // of it is skipped for an inactive hook, so the no-fault event
        // stream is byte-identical to a run without a hook.
        let hook = Arc::clone(&self.faults);
        let faults_on = hook.active();
        let sup = SupervisorConfig::default();
        let mut fault_seqs: Vec<u64> = vec![0; outstanding.len()];
        let mut workers: Vec<SimWorkerState> = (0..outstanding.len())
            .map(|_| SimWorkerState {
                consecutive_panics: 0,
                respawns_used: 0,
                retired: false,
            })
            .collect();
        let mut degraded = false;
        if faults_on {
            recorder.gauge_set(names::DEGRADED_MODE, 0.0);
        }

        let fold_arrived = |pool: &mut Vec<Neighbor>,
                            tally: &mut vrptw_operators::SampleTally,
                            outstanding: &mut Vec<Option<Outstanding>>,
                            now: f64,
                            iter: u64| {
            for (w, slot) in outstanding.iter_mut().enumerate() {
                if slot.as_ref().is_some_and(|o| o.arrival <= now) {
                    let o = slot.take().expect("checked above");
                    if recorder.enabled() {
                        recorder.event(SearchEvent::WorkerResult {
                            worker: (w + 1) as u32,
                            iteration: iter,
                            neighbors: o.chunk.neighbors.len() as u32,
                        });
                    }
                    tally.merge(&o.chunk.tally);
                    pool.extend(o.chunk.neighbors);
                }
            }
        };

        'search: loop {
            let now = cluster.clock(0);
            fold_arrived(
                &mut pool,
                &mut tally,
                &mut outstanding,
                now,
                core.iteration() as u64,
            );
            if budget.exhausted() {
                break 'search;
            }
            // Dispatch chunks to idle workers. The chunk is computed
            // immediately (its content does not depend on virtual time) and
            // delivered at the simulated completion instant.
            #[allow(clippy::needless_range_loop)] // w maps to processor w+1
            for w in 0..outstanding.len() {
                if outstanding[w].is_some() || workers[w].retired {
                    continue;
                }
                let granted = budget.try_consume(chunk as u64) as usize;
                if granted == 0 {
                    break;
                }
                recorder.counter_add(names::EVALUATIONS, granted as u64);
                if recorder.enabled() {
                    recorder.event(SearchEvent::WorkerTask {
                        worker: (w + 1) as u32,
                        iteration: core.iteration() as u64,
                        count: granted as u32,
                    });
                }
                let seed = core.next_seed();
                let proc = w + 1;
                // The task message travels master -> worker.
                let start = cluster.send_at(0, 1.0).max(cluster.clock(proc));
                cluster.advance_to(proc, start);
                let cost = cfg.sim_eval_cost.map(|c| c * granted as f64);
                let worker_chunk = charge_with(&mut cluster, proc, cost, || {
                    generate_chunk_tallied(
                        inst,
                        core.current(),
                        seed,
                        granted,
                        core.sample_params(),
                        core.iteration(),
                    )
                });
                let mut delivered = true;
                if faults_on {
                    let mut attempt: u32 = 0;
                    loop {
                        let seq = fault_seqs[w];
                        fault_seqs[w] += 1;
                        match hook.on_task(proc, seq) {
                            TaskFault::None => {
                                workers[w].consecutive_panics = 0;
                                break;
                            }
                            TaskFault::Stall { millis } => {
                                record_fault(&*recorder, proc as u32, seq, FaultKind::TaskStall);
                                cluster.advance(proc, millis as f64 / 1_000.0);
                                workers[w].consecutive_panics = 0;
                                break;
                            }
                            TaskFault::Late { millis } => {
                                record_fault(&*recorder, proc as u32, seq, FaultKind::TaskLate);
                                cluster.advance(proc, millis as f64 / 1_000.0);
                                workers[w].consecutive_panics = 0;
                                break;
                            }
                            TaskFault::Panic => {
                                record_fault(&*recorder, proc as u32, seq, FaultKind::TaskPanic);
                                workers[w].consecutive_panics += 1;
                                attempt += 1;
                                if workers[w].consecutive_panics >= sup.quarantine_after {
                                    recorder.counter_add(names::WORKERS_QUARANTINED, 1);
                                    if recorder.enabled() {
                                        recorder.event(SearchEvent::WorkerQuarantined {
                                            worker: proc as u32,
                                            iteration: core.iteration() as u64,
                                        });
                                    }
                                    if workers[w].respawns_used < sup.max_respawns {
                                        workers[w].respawns_used += 1;
                                        workers[w].consecutive_panics = 0;
                                        recorder.counter_add(names::WORKERS_RESPAWNED, 1);
                                        if recorder.enabled() {
                                            recorder.event(SearchEvent::WorkerRespawned {
                                                worker: proc as u32,
                                                iteration: core.iteration() as u64,
                                            });
                                        }
                                    } else {
                                        workers[w].retired = true;
                                        if !degraded && workers.iter().all(|st| st.retired) {
                                            degraded = true;
                                            recorder.gauge_set(names::DEGRADED_MODE, 1.0);
                                            if recorder.enabled() {
                                                recorder.event(SearchEvent::DegradedMode {
                                                    iteration: core.iteration() as u64,
                                                    live_workers: 0,
                                                });
                                            }
                                        }
                                    }
                                }
                                if workers[w].retired || attempt > sup.max_retries {
                                    recorder.counter_add(names::TASKS_LOST, 1);
                                    delivered = false;
                                    break;
                                }
                                recorder.counter_add(names::TASKS_RESENT, 1);
                                if recorder.enabled() {
                                    recorder.event(SearchEvent::TaskResent {
                                        worker: proc as u32,
                                        iteration: core.iteration() as u64,
                                        attempt,
                                    });
                                }
                                // The retried execution costs virtual time
                                // again (a nominal slice in measured mode).
                                cluster.advance(proc, cost.unwrap_or(1e-4));
                            }
                        }
                    }
                }
                if delivered {
                    let arrival = cluster.send_at(proc, 1.0);
                    outstanding[w] = Some(Outstanding {
                        arrival,
                        chunk: worker_chunk,
                    });
                }
            }
            // Master's own part.
            let granted = budget.try_consume(chunk as u64) as usize;
            if granted > 0 {
                recorder.counter_add(names::EVALUATIONS, granted as u64);
                let seed = core.next_seed();
                let cost = cfg.sim_eval_cost.map(|c| c * granted as f64);
                let own = charge_with(&mut cluster, 0, cost, || {
                    generate_chunk_tallied(
                        inst,
                        core.current(),
                        seed,
                        granted,
                        core.sample_params(),
                        core.iteration(),
                    )
                });
                tally.merge(&own.tally);
                pool.extend(own.neighbors);
            }
            // Decision function (Algorithm 2) in virtual time.
            let wait_started = cluster.clock(0);
            loop {
                let now = cluster.clock(0);
                fold_arrived(
                    &mut pool,
                    &mut tally,
                    &mut outstanding,
                    now,
                    core.iteration() as u64,
                );
                let current_vec = core.current().objectives().to_vector();
                let c1 = outstanding
                    .iter()
                    .zip(&workers)
                    .any(|(o, st)| o.is_none() && !st.retired);
                let c2 = pool
                    .iter()
                    .any(|nb| pareto::dominates(&nb.objectives.to_vector(), &current_vec));
                let c3 = now - wait_started >= max_wait;
                let c4 = budget.exhausted();
                if c1 || c2 || c3 || c4 || degraded {
                    break;
                }
                // Advance to the next event: the earliest arrival or the
                // wait bound, whichever comes first.
                let next_arrival = outstanding
                    .iter()
                    .flatten()
                    .map(|o| o.arrival)
                    .fold(f64::INFINITY, f64::min);
                let target = (wait_started + max_wait).min(next_arrival);
                if !target.is_finite() {
                    break; // no workers at all (p = 1)
                }
                cluster.advance_to(0, target.max(now + 1e-9));
            }
            if pool.is_empty() {
                if budget.exhausted() && outstanding.iter().all(|o| o.is_none()) {
                    break 'search;
                }
                continue 'search;
            }
            let taken = std::mem::take(&mut pool);
            let cost = cfg.sim_eval_cost.map(|c| c * taken.len() as f64);
            charge_with(&mut cluster, 0, cost, || core.step(taken));
        }
        if !pool.is_empty() {
            let taken = std::mem::take(&mut pool);
            let cost = cfg.sim_eval_cost.map(|c| c * taken.len() as f64);
            charge_with(&mut cluster, 0, cost, || core.step(taken));
        }
        let makespan = cluster.makespan();
        record_virtual_run(&*recorder, &cluster, makespan, p);
        core.note_tally(&tally);
        let (archive, trace, iterations) = core.finish();
        TsmoOutcome {
            archive,
            evaluations: budget.consumed(),
            iterations,
            runtime_seconds: makespan,
            trace,
        }
    }
}

/// Simulated collaborative multisearch TSMO (virtual-time runtime).
pub struct SimCollaborativeTsmo {
    cfg: TsmoConfig,
    searchers: usize,
    faults: Arc<dyn FaultHook>,
}

/// One searcher's state in the event-interleaved simulation.
struct SearcherSim {
    core: SearchCore,
    cfg: TsmoConfig,
    budget: EvaluationBudget,
    inbox: Vec<(f64, FrontEntry)>,
    /// Rotating communication list (peer indices).
    comm_list: Vec<usize>,
    next_peer: usize,
    initial_phase: bool,
    initial_stagnation: usize,
    improvements: u64,
    done: bool,
    iterations: usize,
}

impl SimCollaborativeTsmo {
    /// Creates the runner.
    ///
    /// # Panics
    /// Panics if `searchers == 0`.
    pub fn new(cfg: TsmoConfig, searchers: usize) -> Self {
        assert!(searchers > 0, "need at least one searcher");
        Self {
            cfg,
            searchers,
            faults: tsmo_faults::none(),
        }
    }

    /// Attaches a fault-injection hook (see the `tsmo-faults` crate).
    /// Mirrors the thread-based exchange faults deterministically in
    /// virtual time: a dropped improvement vanishes in flight (the
    /// communication-list rotation still advances), a delayed one arrives
    /// `ticks` extra latency units later. An inactive hook leaves the
    /// event stream byte-identical to a run without a hook.
    pub fn with_fault_hook(mut self, hook: Arc<dyn FaultHook>) -> Self {
        self.faults = hook;
        self
    }

    /// Runs all searchers to budget exhaustion; `runtime_seconds` is the
    /// virtual makespan over the searchers.
    pub fn run(&self, inst: &Arc<Instance>) -> TsmoOutcome {
        self.run_with(inst, tsmo_obs::noop())
    }

    /// Runs with a telemetry sink attached. The searchers are interleaved
    /// by their virtual clocks on one thread, so with a fixed
    /// [`TsmoConfig::sim_eval_cost`] the cross-searcher event stream is
    /// byte-reproducible — unlike the thread-based
    /// [`CollaborativeTsmo`](crate::CollaborativeTsmo).
    pub fn run_with(&self, inst: &Arc<Instance>, recorder: Arc<dyn Recorder>) -> TsmoOutcome {
        let n = self.searchers;
        let mut cluster = VirtualCluster::new(n, self.cfg.sim_comm_latency);
        // Interconnect contention grows with the searcher count (shared
        // memory bus on the modeled Origin 3800): half a latency unit per
        // searcher, so collaborative overhead grows roughly linearly in P
        // as in the paper's tables.
        let congestion = (n as f64 / 2.0).max(1.0);
        let unit_cost = self.cfg.sim_eval_cost;
        let mut rngs: Vec<Xoshiro256StarStar> = streams(self.cfg.seed, n);
        let hook = Arc::clone(&self.faults);
        let faults_on = hook.active();
        let mut exch_seqs: Vec<u64> = vec![0; n];

        let mut searchers: Vec<SearcherSim> = Vec::with_capacity(n);
        for (id, mut rng) in rngs.drain(..).enumerate() {
            let cfg = if id == 0 {
                self.cfg.clone()
            } else {
                self.cfg.perturbed(&mut rng)
            };
            let mut comm_list: Vec<usize> = (0..n).filter(|&x| x != id).collect();
            use detrand::Rng as _;
            rng.shuffle(&mut comm_list);
            searchers.push(SearcherSim {
                core: SearchCore::with_recorder(
                    Arc::clone(inst),
                    cfg.clone(),
                    rng,
                    Arc::clone(&recorder),
                    id as u32,
                ),
                budget: EvaluationBudget::new(cfg.max_evaluations),
                inbox: Vec::new(),
                comm_list,
                next_peer: 0,
                initial_phase: true,
                initial_stagnation: 0,
                improvements: 0,
                done: false,
                iterations: 0,
                cfg,
            });
        }

        // Event loop: always advance the live searcher with the earliest
        // virtual clock by one iteration.
        while let Some(s) = next_live(&searchers, &cluster) {
            let now = cluster.clock(s);
            // Deliver due messages (charged with the congestion factor).
            let mut due: Vec<FrontEntry> = Vec::new();
            searchers[s].inbox.retain(|(arrival, entry)| {
                if *arrival <= now {
                    due.push(entry.clone());
                    false
                } else {
                    true
                }
            });
            for entry in due {
                recorder.counter_add(names::EXCHANGE_RECEIVED, 1);
                if recorder.enabled() {
                    recorder.event(SearchEvent::Exchange {
                        searcher: s as u32,
                        // The wire format carries no sender id.
                        peer: s as u32,
                        direction: ExchangeDirection::Received,
                        objectives: entry.objectives.to_vector(),
                    });
                }
                let searcher = &mut searchers[s];
                charge_with(&mut cluster, s, unit_cost, || {
                    searcher.core.offer_to_nondom(entry);
                });
            }
            let granted = {
                let searcher = &searchers[s];
                searcher
                    .budget
                    .try_consume(searcher.cfg.neighborhood_size as u64) as usize
            };
            if granted == 0 {
                searchers[s].done = true;
                continue;
            }
            recorder.counter_add(names::EVALUATIONS, granted as u64);
            let report = {
                let searcher = &mut searchers[s];
                let seed = searcher.core.next_seed();
                let cost = unit_cost.map(|c| c * granted as f64);
                charge_with(&mut cluster, s, cost, || {
                    let chunk = generate_chunk_tallied(
                        inst,
                        searcher.core.current(),
                        seed,
                        granted,
                        searcher.core.sample_params(),
                        searcher.core.iteration(),
                    );
                    searcher.core.note_tally(&chunk.tally);
                    searcher.core.step(chunk.neighbors)
                })
            };
            searchers[s].iterations += 1;
            // Collaboration protocol.
            let improved = report.improved_archive;
            let searcher = &mut searchers[s];
            if searcher.initial_phase {
                if improved.is_some() {
                    searcher.initial_stagnation = 0;
                } else {
                    searcher.initial_stagnation += 1;
                    if searcher.initial_stagnation >= searcher.cfg.stagnation_limit {
                        searcher.initial_phase = false;
                    }
                }
            } else if let Some(entry) = improved {
                searcher.improvements += 1;
                // Same migration-interval gate as CollabSearcher::step_once:
                // skipped improvements precede the fault draw, so they
                // consume no fault sequence numbers in either build.
                let offered = (searcher.improvements - 1)
                    .is_multiple_of(searcher.cfg.exchange_interval.max(1) as u64);
                if offered && !searcher.comm_list.is_empty() {
                    let peer = searcher.comm_list[searcher.next_peer];
                    searcher.next_peer = (searcher.next_peer + 1) % searcher.comm_list.len();
                    let fault = if faults_on {
                        let seq = exch_seqs[s];
                        exch_seqs[s] += 1;
                        (seq, hook.on_exchange(s, seq))
                    } else {
                        (0, MsgFault::Deliver)
                    };
                    if let (seq, MsgFault::Drop) = fault {
                        // The message vanishes in flight; the rotation has
                        // already moved on, as in the thread-based variant.
                        record_fault(&*recorder, s as u32, seq, FaultKind::ExchangeDrop);
                        continue;
                    }
                    let extra_delay = match fault {
                        (seq, MsgFault::Delay { ticks }) => {
                            record_fault(&*recorder, s as u32, seq, FaultKind::ExchangeDelay);
                            cluster.latency() * congestion * ticks.max(1) as f64
                        }
                        _ => 0.0,
                    };
                    recorder.counter_add(names::EXCHANGE_SENT, 1);
                    if recorder.enabled() {
                        recorder.event(SearchEvent::Exchange {
                            searcher: s as u32,
                            peer: peer as u32,
                            direction: ExchangeDirection::Sent,
                            objectives: entry.objectives.to_vector(),
                        });
                    }
                    // Sending occupies the sender's processor too.
                    cluster.advance(s, cluster.latency() * congestion);
                    let arrival = cluster.send_at(s, congestion) + extra_delay;
                    searchers[peer].inbox.push((arrival, entry));
                }
            }
        }

        let makespan = cluster.makespan();
        record_virtual_run(&*recorder, &cluster, makespan, n);
        let mut merged = Archive::new(self.cfg.archive_capacity);
        let mut evaluations = 0;
        let mut iterations = 0;
        for s in searchers {
            evaluations += s.budget.consumed();
            iterations += s.iterations;
            let (archive, _, _) = s.core.finish();
            for entry in archive {
                merged.insert(entry);
            }
        }
        TsmoOutcome {
            archive: merged.into_items(),
            evaluations,
            iterations,
            runtime_seconds: makespan,
            trace: None,
        }
    }
}

/// Publishes virtual-runtime metrics for a finished simulation: the
/// makespan and, per processor, the fraction of the makespan covered by
/// its virtual clock (a utilization proxy — the clock stops at the
/// processor's last activity). These are *metrics*, derived from measured
/// work costs, so they vary run to run; the event stream does not.
fn record_virtual_run(
    recorder: &dyn Recorder,
    cluster: &VirtualCluster,
    makespan: f64,
    processors: usize,
) {
    recorder.gauge_set(names::RUNTIME_SECONDS, makespan);
    for p in 0..processors {
        let frac = if makespan > 0.0 {
            (cluster.clock(p) / makespan).min(1.0)
        } else {
            0.0
        };
        recorder.gauge_set(&names::worker_busy_fraction(p), frac);
    }
}

/// The live searcher with the earliest virtual clock, if any.
fn next_live(searchers: &[SearcherSim], cluster: &VirtualCluster) -> Option<usize> {
    searchers
        .iter()
        .enumerate()
        .filter(|(_, s)| !s.done)
        .min_by(|(a, _), (b, _)| {
            cluster
                .clock(*a)
                .partial_cmp(&cluster.clock(*b))
                .expect("clocks are not NaN")
        })
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential::SequentialTsmo;
    use vrptw::generator::{GeneratorConfig, InstanceClass};

    fn cfg() -> TsmoConfig {
        TsmoConfig {
            max_evaluations: 2_400,
            neighborhood_size: 60,
            ..TsmoConfig::default()
        }
    }

    fn norm(mut v: Vec<[f64; 3]>) -> Vec<[f64; 3]> {
        v.sort_by(|a, b| a.partial_cmp(b).expect("not NaN"));
        v
    }

    #[test]
    fn sim_sync_reproduces_sequential_trajectory() {
        let inst = Arc::new(GeneratorConfig::new(InstanceClass::R2, 40, 6).build());
        for p in [2usize, 3] {
            let mut seq_cfg = cfg().with_seed(7);
            seq_cfg.chunks = p;
            let seq = SequentialTsmo::new(seq_cfg).run(&inst);
            let sim = SimSyncTsmo::new(cfg().with_seed(7), p).run(&inst);
            assert_eq!(
                norm(seq.feasible_vectors()),
                norm(sim.feasible_vectors()),
                "p = {p}"
            );
            assert_eq!(seq.iterations, sim.iterations);
        }
    }

    #[test]
    fn sim_sync_shows_virtual_speedup() {
        // On ANY host — even single-core — the virtual makespan of the
        // synchronous variant must beat the sequential wall time, because
        // chunk generation dominates and parallelizes.
        let inst = Arc::new(GeneratorConfig::new(InstanceClass::R1, 80, 3).build());
        let c = TsmoConfig {
            max_evaluations: 6_000,
            neighborhood_size: 120,
            sim_comm_latency: 0.0001,
            ..TsmoConfig::default()
        };
        let mut seq_cfg = c.clone();
        seq_cfg.chunks = 4;
        let seq = SequentialTsmo::new(seq_cfg).run(&inst);
        let sim = SimSyncTsmo::new(c, 4).run(&inst);
        assert!(
            sim.runtime_seconds < seq.runtime_seconds,
            "virtual {:.3}s should beat sequential {:.3}s",
            sim.runtime_seconds,
            seq.runtime_seconds
        );
    }

    #[test]
    fn sim_async_consumes_budget_and_produces_front() {
        let inst = Arc::new(GeneratorConfig::new(InstanceClass::C2, 40, 4).build());
        let out = SimAsyncTsmo::new(cfg(), 3).run(&inst);
        assert_eq!(out.evaluations, 2_400);
        assert!(!out.archive.is_empty());
        assert!(out.runtime_seconds > 0.0);
        for e in &out.archive {
            assert!(e.solution.check(&inst).is_empty());
        }
    }

    #[test]
    fn sim_async_is_faster_than_sim_sync_with_heterogeneous_latency() {
        // The async variant's reason to exist: it avoids barrier waiting.
        // Under the same latency its virtual makespan should not exceed the
        // synchronous one by much; typically it is smaller.
        let inst = Arc::new(GeneratorConfig::new(InstanceClass::R1, 80, 8).build());
        let c = TsmoConfig {
            max_evaluations: 6_000,
            neighborhood_size: 120,
            sim_comm_latency: 0.002,
            ..TsmoConfig::default()
        };
        let sync = SimSyncTsmo::new(c.clone().with_seed(5), 6).run(&inst);
        let asy = SimAsyncTsmo::new(c.with_seed(5), 6).run(&inst);
        assert!(
            asy.runtime_seconds <= sync.runtime_seconds * 1.15,
            "async virtual {:.3}s should be at most ~sync virtual {:.3}s",
            asy.runtime_seconds,
            sync.runtime_seconds
        );
    }

    #[test]
    fn sim_collaborative_merges_and_sums() {
        let inst = Arc::new(GeneratorConfig::new(InstanceClass::R2, 30, 5).build());
        let out = SimCollaborativeTsmo::new(cfg(), 3).run(&inst);
        assert_eq!(out.evaluations, 3 * 2_400);
        assert!(out.archive.len() <= cfg().archive_capacity);
        assert!(!out.archive.is_empty());
    }

    #[test]
    fn sim_collaborative_runtime_grows_with_searchers() {
        let inst = Arc::new(GeneratorConfig::new(InstanceClass::R1, 50, 13).build());
        let c = TsmoConfig {
            max_evaluations: 4_000,
            neighborhood_size: 80,
            stagnation_limit: 10,
            sim_comm_latency: 0.002,
            ..TsmoConfig::default()
        };
        let small = SimCollaborativeTsmo::new(c.clone().with_seed(2), 2).run(&inst);
        let large = SimCollaborativeTsmo::new(c.with_seed(2), 8).run(&inst);
        // Each searcher does the same work; more searchers add comm cost,
        // so the makespan must not shrink.
        assert!(
            large.runtime_seconds >= small.runtime_seconds * 0.9,
            "8 searchers {:.3}s vs 2 searchers {:.3}s",
            large.runtime_seconds,
            small.runtime_seconds
        );
    }
}
