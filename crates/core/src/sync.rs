//! The synchronous master–worker variant (§III.C).

use crate::cancel::CancelToken;
use crate::config::TsmoConfig;
use crate::core_search::SearchCore;
use crate::neighborhood::{generate_chunk_tallied, Chunk};
use crate::outcome::TsmoOutcome;
use deme::{EvaluationBudget, MasterWorker, RunClock};
use detrand::Xoshiro256StarStar;
use std::sync::Arc;
use tsmo_obs::{metrics::names, Recorder, SearchEvent, Span};
use vrptw::solution::EvaluatedSolution;
use vrptw::Instance;
use vrptw_operators::SampleParams;

/// One unit of distributed neighborhood work.
struct Task {
    snapshot: EvaluatedSolution,
    seed: u64,
    count: usize,
    iteration: usize,
}

/// Synchronous master–worker TSMO.
///
/// "The master sends to each worker the current individual and the number
/// of neighbors to generate … When all neighbors are collected the master
/// continues with the selection and the rest of the iteration." The master
/// is processor 0 and computes its own chunk while the workers compute
/// theirs; the barrier reassembles chunks in order, so the trajectory is
/// bit-identical to [`SequentialTsmo`](crate::SequentialTsmo) with
/// `cfg.chunks = processors` and the same seed (tested in `lib.rs`).
pub struct SyncTsmo {
    cfg: TsmoConfig,
    processors: usize,
    cancel: CancelToken,
}

impl SyncTsmo {
    /// Creates the runner with `processors` total CPUs (master included).
    ///
    /// # Panics
    /// Panics if `processors == 0`.
    pub fn new(cfg: TsmoConfig, processors: usize) -> Self {
        assert!(processors > 0, "need at least the master processor");
        Self {
            cfg,
            processors,
            cancel: CancelToken::never(),
        }
    }

    /// Attaches a cooperative stop signal, checked by the master at the
    /// top of each iteration. Because the synchronous variant is
    /// bit-identical to the sequential algorithm, a run cancelled at
    /// iteration `k` equals the sequential run cancelled at `k`.
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = token;
        self
    }

    /// Runs the search to budget exhaustion.
    pub fn run(&self, inst: &Arc<Instance>) -> TsmoOutcome {
        self.run_with(inst, tsmo_obs::noop())
    }

    /// Runs the search with a telemetry sink attached. Worker busy
    /// fractions and queue depths land in the metrics registry; task and
    /// result events carry logical iteration numbers only, but their
    /// *interleaving* follows real thread timing — use the `Sim*` variants
    /// for byte-reproducible event streams.
    pub fn run_with(&self, inst: &Arc<Instance>, recorder: Arc<dyn Recorder>) -> TsmoOutcome {
        let clock = RunClock::start();
        let mut cfg = self.cfg.clone();
        cfg.chunks = self.processors;
        let budget = EvaluationBudget::new(cfg.max_evaluations);
        let params = SampleParams {
            feasibility: cfg.feasibility_criterion,
        };

        let pool = (self.processors > 1).then(|| {
            let inst = Arc::clone(inst);
            MasterWorker::<Task, Chunk>::spawn(self.processors - 1, move |_, t| {
                generate_chunk_tallied(&inst, &t.snapshot, t.seed, t.count, params, t.iteration)
            })
        });

        let mut core = SearchCore::with_recorder(
            Arc::clone(inst),
            cfg.clone(),
            Xoshiro256StarStar::seed_from_u64(cfg.seed),
            Arc::clone(&recorder),
            0,
        );
        let sizes = cfg.chunk_sizes();
        let mut tally = vrptw_operators::SampleTally::default();
        while !budget.exhausted() && !self.cancel.should_stop(core.iteration()) {
            let seeds = core.chunk_seeds();
            // Reserve budget per chunk in chunk order — the same split the
            // sequential algorithm makes, so the two stay in lockstep.
            let granted: Vec<usize> = sizes
                .iter()
                .map(|&s| budget.try_consume(s as u64) as usize)
                .collect();
            recorder.counter_add(names::EVALUATIONS, granted.iter().map(|&g| g as u64).sum());
            // Dispatch chunks 1..P to the workers.
            if let Some(pool) = &pool {
                let _span = Span::enter(&recorder, "dispatch", core.trace_id(), core.span_parent());
                for w in 0..pool.n_workers() {
                    if recorder.enabled() {
                        recorder.event(SearchEvent::WorkerTask {
                            worker: (w + 1) as u32,
                            iteration: core.iteration() as u64,
                            count: granted[w + 1] as u32,
                        });
                    }
                    pool.send(
                        w,
                        Task {
                            snapshot: core.current().clone(),
                            seed: seeds[w + 1],
                            count: granted[w + 1],
                            iteration: core.iteration(),
                        },
                    );
                }
            }
            // Master computes chunk 0 meanwhile. The "evaluate" span also
            // covers the barrier below: waiting for worker chunks is
            // evaluation time from the master's perspective.
            let eval_span = Span::enter(&recorder, "evaluate", core.trace_id(), core.span_parent());
            let master_chunk = generate_chunk_tallied(
                inst,
                core.current(),
                seeds[0],
                granted[0],
                params,
                core.iteration(),
            );
            tally.merge(&master_chunk.tally);
            let mut neighborhood = master_chunk.neighbors;
            // Barrier: collect one result per worker, reassembled in worker
            // (= chunk) order.
            if let Some(pool) = &pool {
                recorder.observe(names::RESULT_QUEUE_DEPTH, pool.result_queue_len() as f64);
                let mut slots: Vec<Option<Chunk>> = (0..pool.n_workers()).map(|_| None).collect();
                for _ in 0..pool.n_workers() {
                    let (w, chunk) = pool
                        .recv()
                        .unwrap_or_else(|e| panic!("synchronous barrier failed: {e}"));
                    if recorder.enabled() {
                        recorder.event(SearchEvent::WorkerResult {
                            worker: (w + 1) as u32,
                            iteration: core.iteration() as u64,
                            neighbors: chunk.neighbors.len() as u32,
                        });
                    }
                    slots[w] = Some(chunk);
                }
                for chunk in slots {
                    let chunk = chunk.expect("barrier collected every worker");
                    tally.merge(&chunk.tally);
                    neighborhood.extend(chunk.neighbors);
                }
            }
            drop(eval_span);
            if neighborhood.is_empty() && budget.exhausted() {
                break;
            }
            core.step(neighborhood);
        }
        let runtime_seconds = clock.seconds();
        if let Some(pool) = pool {
            record_pool_stats(&*recorder, &pool, runtime_seconds);
            pool.shutdown();
        }
        recorder.gauge_set(names::RUNTIME_SECONDS, runtime_seconds);
        recorder.gauge_set(&names::worker_busy_fraction(0), 1.0);
        core.note_tally(&tally);
        let (archive, trace, iterations) = core.finish();
        TsmoOutcome {
            archive,
            evaluations: budget.consumed(),
            iterations,
            runtime_seconds,
            trace,
        }
    }
}

/// Publishes per-worker busy fractions and task counters for a finished
/// master–worker run. Worker `w` of the pool is processor `w + 1` (the
/// master is processor 0). Shared with the asynchronous variant.
pub(crate) fn record_pool_stats<T: Send + 'static, R: Send + 'static>(
    recorder: &dyn Recorder,
    pool: &MasterWorker<T, R>,
    runtime_seconds: f64,
) {
    for (w, stats) in pool.worker_stats().iter().enumerate() {
        let frac = if runtime_seconds > 0.0 {
            (stats.busy_seconds / runtime_seconds).min(1.0)
        } else {
            0.0
        };
        recorder.gauge_set(&names::worker_busy_fraction(w + 1), frac);
        recorder.counter_add(&names::worker_tasks(w + 1), stats.tasks_completed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential::SequentialTsmo;
    use vrptw::generator::{GeneratorConfig, InstanceClass};

    fn cfg() -> TsmoConfig {
        TsmoConfig {
            max_evaluations: 2_400,
            neighborhood_size: 60,
            ..TsmoConfig::default()
        }
    }

    /// The paper's central claim for the synchronous variant: "the behavior
    /// remains unchanged" w.r.t. the sequential algorithm. With the chunked
    /// neighborhood scheme this is exact: same seed, same trajectory, same
    /// front.
    #[test]
    fn bit_identical_to_sequential_with_matching_chunks() {
        let inst = Arc::new(GeneratorConfig::new(InstanceClass::R2, 40, 6).build());
        for p in [2, 3, 4] {
            let seq_cfg = TsmoConfig { chunks: p, ..cfg() }.with_seed(77);
            let seq = SequentialTsmo::new(seq_cfg).run(&inst);
            let par = SyncTsmo::new(cfg().with_seed(77), p).run(&inst);
            assert_eq!(seq.iterations, par.iterations, "p = {p}");
            let sv = seq.feasible_vectors();
            let pv = par.feasible_vectors();
            assert_eq!(sv.len(), pv.len(), "p = {p}");
            let norm = |mut v: Vec<[f64; 3]>| {
                v.sort_by(|a, b| a.partial_cmp(b).expect("not NaN"));
                v
            };
            assert_eq!(norm(sv), norm(pv), "p = {p}: fronts must be identical");
        }
    }

    #[test]
    fn one_processor_degenerates_to_sequential() {
        let inst = Arc::new(GeneratorConfig::new(InstanceClass::C2, 30, 3).build());
        let seq = SequentialTsmo::new(cfg().with_seed(5)).run(&inst);
        let par = SyncTsmo::new(cfg().with_seed(5), 1).run(&inst);
        assert_eq!(seq.feasible_vectors(), par.feasible_vectors());
    }

    #[test]
    fn consumes_exact_budget_with_workers() {
        let inst = Arc::new(GeneratorConfig::new(InstanceClass::R1, 40, 2).build());
        let out = SyncTsmo::new(cfg(), 4).run(&inst);
        assert_eq!(out.evaluations, 2_400);
        assert!(!out.archive.is_empty());
    }

    #[test]
    #[should_panic]
    fn zero_processors_rejected() {
        SyncTsmo::new(cfg(), 0);
    }
}
