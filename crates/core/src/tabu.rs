//! The short-term memory: an arc-attribute tabu list.

use std::collections::HashMap;
use std::collections::VecDeque;
use vrptw_operators::Arc;

/// A fixed-length queue of recent moves' reversal attributes.
///
/// Tabu Search "stores recent moves in the tabu list \[and\] forbids to make
/// moves towards a configuration that it had already visited before". We
/// represent each accepted move by the set of giant-tour arcs it *removed*;
/// a candidate move is tabu if it would re-create any of those arcs (it
/// starts rebuilding a recently abandoned configuration). Arc attributes
/// are stable across route reindexing, which matters for the asynchronous
/// variant where neighbors of older solutions are still considered.
///
/// The queue holds the attributes of the last `tenure` accepted moves —
/// "because every iteration there is only one move made this is also the
/// number of iterations the solutions will stay in the tabu list".
#[derive(Debug, Clone)]
pub struct TabuList {
    tenure: usize,
    queue: VecDeque<Vec<Arc>>,
    /// Multiset of all arcs currently in the queue.
    counts: HashMap<Arc, usize>,
}

impl TabuList {
    /// An empty list remembering the last `tenure` moves.
    pub fn new(tenure: usize) -> Self {
        Self {
            tenure,
            queue: VecDeque::with_capacity(tenure + 1),
            counts: HashMap::new(),
        }
    }

    /// The configured tenure.
    pub fn tenure(&self) -> usize {
        self.tenure
    }

    /// Number of moves currently remembered.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether no moves are remembered yet.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Records an accepted move by the arcs it removed; forgets the oldest
    /// move when the tenure is exceeded. A zero tenure disables the memory.
    pub fn push(&mut self, removed_arcs: Vec<Arc>) {
        if self.tenure == 0 {
            return;
        }
        for &arc in &removed_arcs {
            *self.counts.entry(arc).or_insert(0) += 1;
        }
        self.queue.push_back(removed_arcs);
        while self.queue.len() > self.tenure {
            let old = self.queue.pop_front().expect("queue non-empty");
            for arc in old {
                match self.counts.get_mut(&arc) {
                    Some(c) if *c > 1 => *c -= 1,
                    Some(_) => {
                        self.counts.remove(&arc);
                    }
                    None => unreachable!("count bookkeeping out of sync"),
                }
            }
        }
    }

    /// Whether a move creating these arcs is forbidden.
    pub fn is_tabu(&self, created_arcs: &[Arc]) -> bool {
        created_arcs.iter().any(|arc| self.counts.contains_key(arc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recent_arcs_are_tabu_until_they_age_out() {
        let mut t = TabuList::new(2);
        t.push(vec![(1, 2), (3, 4)]);
        assert!(t.is_tabu(&[(1, 2)]));
        assert!(t.is_tabu(&[(9, 9), (3, 4)]));
        assert!(!t.is_tabu(&[(2, 1)]));
        t.push(vec![(5, 6)]);
        assert!(t.is_tabu(&[(1, 2)]));
        // Third push evicts the first move's arcs.
        t.push(vec![(7, 8)]);
        assert!(!t.is_tabu(&[(1, 2)]));
        assert!(!t.is_tabu(&[(3, 4)]));
        assert!(t.is_tabu(&[(5, 6)]));
        assert!(t.is_tabu(&[(7, 8)]));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn duplicate_arcs_counted_as_multiset() {
        let mut t = TabuList::new(3);
        t.push(vec![(1, 2)]);
        t.push(vec![(1, 2)]);
        t.push(vec![(0, 0)]);
        // Aging out one (1,2) must keep the other active.
        t.push(vec![(9, 9)]); // evicts first (1,2)
        assert!(t.is_tabu(&[(1, 2)]));
        t.push(vec![(8, 8)]); // evicts second (1,2)
        assert!(!t.is_tabu(&[(1, 2)]));
    }

    #[test]
    fn empty_move_is_allowed_and_remembered() {
        let mut t = TabuList::new(2);
        t.push(vec![]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_tabu(&[]));
        assert!(!t.is_tabu(&[(1, 1)]));
    }

    #[test]
    fn zero_tenure_never_forbids() {
        let mut t = TabuList::new(0);
        t.push(vec![(1, 2)]);
        assert!(t.is_empty());
        assert!(!t.is_tabu(&[(1, 2)]));
    }

    #[test]
    fn empty_candidate_is_never_tabu() {
        let mut t = TabuList::new(2);
        t.push(vec![(1, 2)]);
        assert!(!t.is_tabu(&[]));
    }

    #[test]
    fn tenure_bounds_queue_length() {
        let mut t = TabuList::new(5);
        for i in 0..100u16 {
            t.push(vec![(i, i + 1)]);
            assert!(t.len() <= 5);
        }
        // Only the last 5 remain tabu.
        assert!(t.is_tabu(&[(99, 100)]));
        assert!(t.is_tabu(&[(95, 96)]));
        assert!(!t.is_tabu(&[(94, 95)]));
    }
}
