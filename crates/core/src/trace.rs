//! Search-trajectory tracing for Fig. 1-style plots.
//!
//! The paper's Fig. 1 shows the asynchronous variant's trajectory in
//! objective space: every considered neighbor carries the number of the
//! iteration that *created* it, circles mark the solutions selected as
//! current, and — because the variant is asynchronous — a solution created
//! in iteration `k` may only be considered in iteration `k+δ`.
//!
//! An unbounded trace grows by `neighborhood_size` points per iteration
//! (~100 MB over a paper-sized run), so it can optionally be capped: with
//! [`Trace::bounded`] the trace keeps only the **most recent** `capacity`
//! points in a ring buffer and counts how many older ones were dropped.

use vrptw::Objectives;

/// One recorded event: a neighbor considered during selection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TracePoint {
    /// Iteration whose current solution generated this neighbor.
    pub iter_created: usize,
    /// Iteration in which it was considered for selection (equals
    /// `iter_created` for the synchronous/sequential variants).
    pub iter_considered: usize,
    /// The neighbor's objectives.
    pub objectives: Objectives,
    /// Whether it was chosen as the new current solution.
    pub chosen: bool,
}

/// A search trace, optionally bounded to the most recent points.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Stored points. At capacity this is a ring: the oldest point sits at
    /// `start`, not at index 0.
    points: Vec<TracePoint>,
    /// Ring cursor: index of the oldest point once the buffer wrapped.
    start: usize,
    /// Maximum number of retained points (`None` = unbounded).
    capacity: Option<usize>,
    /// Points overwritten because the buffer was full.
    dropped: usize,
}

impl Trace {
    /// An unbounded trace (`Trace::default()` is the same).
    pub fn unbounded() -> Self {
        Self::default()
    }

    /// A trace retaining at most the `capacity` most recent points
    /// (`None` = unbounded). A zero capacity retains nothing but still
    /// counts [`dropped`](Self::dropped) points.
    pub fn bounded(capacity: Option<usize>) -> Self {
        Self {
            capacity,
            ..Self::default()
        }
    }

    /// Records one considered neighbor, evicting the oldest point when the
    /// trace is at capacity.
    pub fn record(&mut self, point: TracePoint) {
        match self.capacity {
            Some(0) => self.dropped += 1,
            Some(cap) if self.points.len() == cap => {
                self.points[self.start] = point;
                self.start = (self.start + 1) % cap;
                self.dropped += 1;
            }
            _ => self.points.push(point),
        }
    }

    /// Number of retained points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether no points are retained.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Points overwritten (or never stored) because of the capacity bound.
    pub fn dropped(&self) -> usize {
        self.dropped
    }

    /// The retained points in consideration order (oldest first).
    pub fn iter(&self) -> impl Iterator<Item = &TracePoint> {
        self.points[self.start..]
            .iter()
            .chain(self.points[..self.start].iter())
    }

    /// Serializes to CSV (`iter_created,iter_considered,f1,f2,f3,chosen`).
    pub fn to_csv(&self) -> String {
        let mut out =
            String::from("iter_created,iter_considered,distance,vehicles,tardiness,chosen\n");
        for p in self.iter() {
            out.push_str(&format!(
                "{},{},{:.6},{},{:.6},{}\n",
                p.iter_created,
                p.iter_considered,
                p.objectives.distance,
                p.objectives.vehicles,
                p.objectives.tardiness,
                u8::from(p.chosen),
            ));
        }
        out
    }

    /// Points chosen as current solutions, in order — the trajectory line
    /// of Fig. 1.
    pub fn trajectory(&self) -> Vec<&TracePoint> {
        self.iter().filter(|p| p.chosen).collect()
    }

    /// Maximum staleness observed: how many iterations after its creation
    /// a neighbor was still considered (0 for synchronous runs).
    pub fn max_staleness(&self) -> usize {
        self.iter()
            .map(|p| p.iter_considered.saturating_sub(p.iter_created))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(created: usize, considered: usize, chosen: bool) -> TracePoint {
        TracePoint {
            iter_created: created,
            iter_considered: considered,
            objectives: Objectives {
                distance: 1.0,
                vehicles: 1,
                tardiness: 0.0,
            },
            chosen,
        }
    }

    #[test]
    fn trajectory_filters_chosen() {
        let mut t = Trace::default();
        t.record(pt(0, 0, false));
        t.record(pt(0, 0, true));
        t.record(pt(1, 1, true));
        assert_eq!(t.trajectory().len(), 2);
    }

    #[test]
    fn staleness_zero_for_synchronous_traces() {
        let mut t = Trace::default();
        t.record(pt(3, 3, false));
        t.record(pt(4, 4, true));
        assert_eq!(t.max_staleness(), 0);
    }

    #[test]
    fn staleness_measures_late_consideration() {
        let mut t = Trace::default();
        t.record(pt(2, 5, false));
        t.record(pt(4, 4, true));
        assert_eq!(t.max_staleness(), 3);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut t = Trace::default();
        t.record(pt(0, 1, true));
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("iter_created,"));
        assert!(lines[1].starts_with("0,1,"));
        assert!(lines[1].ends_with(",1"));
    }

    #[test]
    fn empty_trace_is_sane() {
        let t = Trace::default();
        assert_eq!(t.max_staleness(), 0);
        assert!(t.trajectory().is_empty());
        assert_eq!(t.to_csv().lines().count(), 1);
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn bounded_trace_keeps_most_recent_in_order() {
        let mut t = Trace::bounded(Some(3));
        for i in 0..7 {
            t.record(pt(i, i, false));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 4);
        let created: Vec<usize> = t.iter().map(|p| p.iter_created).collect();
        assert_eq!(created, vec![4, 5, 6], "oldest-first, most recent retained");
    }

    #[test]
    fn bounded_trace_below_capacity_behaves_like_unbounded() {
        let mut t = Trace::bounded(Some(10));
        t.record(pt(0, 0, true));
        t.record(pt(1, 1, false));
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 0);
        assert_eq!(t.trajectory().len(), 1);
        assert_eq!(t.to_csv().lines().count(), 3);
    }

    #[test]
    fn zero_capacity_counts_but_stores_nothing() {
        let mut t = Trace::bounded(Some(0));
        t.record(pt(0, 0, true));
        t.record(pt(1, 1, true));
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 2);
        assert_eq!(t.max_staleness(), 0);
    }

    #[test]
    fn wrapped_csv_and_staleness_follow_ring_order() {
        let mut t = Trace::bounded(Some(2));
        t.record(pt(0, 9, false)); // staleness 9, will be evicted
        t.record(pt(5, 6, false));
        t.record(pt(6, 6, true));
        assert_eq!(t.max_staleness(), 1, "evicted point no longer counts");
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with("5,6,"));
        assert!(lines[2].starts_with("6,6,"));
    }
}
