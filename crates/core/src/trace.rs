//! Search-trajectory tracing for Fig. 1-style plots.
//!
//! The paper's Fig. 1 shows the asynchronous variant's trajectory in
//! objective space: every considered neighbor carries the number of the
//! iteration that *created* it, circles mark the solutions selected as
//! current, and — because the variant is asynchronous — a solution created
//! in iteration `k` may only be considered in iteration `k+δ`.

use vrptw::Objectives;

/// One recorded event: a neighbor considered during selection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TracePoint {
    /// Iteration whose current solution generated this neighbor.
    pub iter_created: usize,
    /// Iteration in which it was considered for selection (equals
    /// `iter_created` for the synchronous/sequential variants).
    pub iter_considered: usize,
    /// The neighbor's objectives.
    pub objectives: Objectives,
    /// Whether it was chosen as the new current solution.
    pub chosen: bool,
}

/// A full search trace.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// All recorded points, in consideration order.
    pub points: Vec<TracePoint>,
}

impl Trace {
    /// Records one considered neighbor.
    pub fn record(&mut self, point: TracePoint) {
        self.points.push(point);
    }

    /// Serializes to CSV (`iter_created,iter_considered,f1,f2,f3,chosen`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("iter_created,iter_considered,distance,vehicles,tardiness,chosen\n");
        for p in &self.points {
            out.push_str(&format!(
                "{},{},{:.6},{},{:.6},{}\n",
                p.iter_created,
                p.iter_considered,
                p.objectives.distance,
                p.objectives.vehicles,
                p.objectives.tardiness,
                u8::from(p.chosen),
            ));
        }
        out
    }

    /// Points chosen as current solutions, in order — the trajectory line
    /// of Fig. 1.
    pub fn trajectory(&self) -> Vec<&TracePoint> {
        self.points.iter().filter(|p| p.chosen).collect()
    }

    /// Maximum staleness observed: how many iterations after its creation
    /// a neighbor was still considered (0 for synchronous runs).
    pub fn max_staleness(&self) -> usize {
        self.points
            .iter()
            .map(|p| p.iter_considered.saturating_sub(p.iter_created))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(created: usize, considered: usize, chosen: bool) -> TracePoint {
        TracePoint {
            iter_created: created,
            iter_considered: considered,
            objectives: Objectives { distance: 1.0, vehicles: 1, tardiness: 0.0 },
            chosen,
        }
    }

    #[test]
    fn trajectory_filters_chosen() {
        let mut t = Trace::default();
        t.record(pt(0, 0, false));
        t.record(pt(0, 0, true));
        t.record(pt(1, 1, true));
        assert_eq!(t.trajectory().len(), 2);
    }

    #[test]
    fn staleness_zero_for_synchronous_traces() {
        let mut t = Trace::default();
        t.record(pt(3, 3, false));
        t.record(pt(4, 4, true));
        assert_eq!(t.max_staleness(), 0);
    }

    #[test]
    fn staleness_measures_late_consideration() {
        let mut t = Trace::default();
        t.record(pt(2, 5, false));
        t.record(pt(4, 4, true));
        assert_eq!(t.max_staleness(), 3);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut t = Trace::default();
        t.record(pt(0, 1, true));
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("iter_created,"));
        assert!(lines[1].starts_with("0,1,"));
        assert!(lines[1].ends_with(",1"));
    }

    #[test]
    fn empty_trace_is_sane() {
        let t = Trace::default();
        assert_eq!(t.max_staleness(), 0);
        assert!(t.trajectory().is_empty());
        assert_eq!(t.to_csv().lines().count(), 1);
    }
}
