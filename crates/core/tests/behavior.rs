//! Behavioral tests of search-policy knobs: aspiration, tabu tenure,
//! restarts, and tracing semantics across variants.

use std::sync::Arc;
use tsmo_core::{
    AsyncTsmo, SequentialTsmo, SimAsyncTsmo, SimCollaborativeTsmo, SimSyncTsmo, TsmoConfig,
};
use vrptw::generator::{GeneratorConfig, InstanceClass};
use vrptw::Instance;

fn inst(class: InstanceClass, n: usize, seed: u64) -> Arc<Instance> {
    Arc::new(GeneratorConfig::new(class, n, seed).build())
}

fn cfg(evals: u64) -> TsmoConfig {
    TsmoConfig {
        max_evaluations: evals,
        neighborhood_size: 60,
        ..TsmoConfig::default()
    }
}

#[test]
fn aspiration_changes_the_search_but_keeps_it_valid() {
    let inst = inst(InstanceClass::R1, 40, 5);
    let plain = SequentialTsmo::new(TsmoConfig {
        aspiration: false,
        ..cfg(3_000)
    })
    .run(&inst);
    let aspire = SequentialTsmo::new(TsmoConfig {
        aspiration: true,
        ..cfg(3_000)
    })
    .run(&inst);
    for e in aspire.archive.iter().chain(&plain.archive) {
        assert!(e.solution.check(&inst).is_empty());
    }
    // With identical seeds, toggling aspiration generally alters the
    // trajectory (it admits tabu moves); at minimum both runs complete the
    // budget.
    assert_eq!(plain.evaluations, 3_000);
    assert_eq!(aspire.evaluations, 3_000);
}

#[test]
fn prefer_dominating_selection_intensifies() {
    use tsmo_core::SelectionRule;
    let inst = inst(InstanceClass::R2, 50, 14);
    let evals = 6_000;
    let random = SequentialTsmo::new(TsmoConfig {
        selection: SelectionRule::RandomNonDominated,
        ..cfg(evals).with_seed(2)
    })
    .run(&inst);
    let greedy = SequentialTsmo::new(TsmoConfig {
        selection: SelectionRule::PreferDominating,
        ..cfg(evals).with_seed(2)
    })
    .run(&inst);
    let (r, g) = (
        random.best_distance().expect("feasible"),
        greedy.best_distance().expect("feasible"),
    );
    // A single seed is noisy; assert the greedy rule is at least not much
    // worse — its intensification advantage is established statistically in
    // `ablation -- selection`.
    assert!(
        g < r * 1.1,
        "prefer-dominating {g} should be competitive with random {r}"
    );
}

#[test]
fn zero_tenure_still_searches() {
    let inst = inst(InstanceClass::R2, 30, 6);
    let out = SequentialTsmo::new(TsmoConfig {
        tabu_tenure: 0,
        ..cfg(2_000)
    })
    .run(&inst);
    assert_eq!(out.evaluations, 2_000);
    assert!(!out.archive.is_empty());
}

#[test]
fn huge_tenure_forces_frequent_restarts_but_completes() {
    let inst = inst(InstanceClass::R2, 30, 6);
    // With an enormous tenure almost everything becomes tabu quickly; the
    // restart path must keep the search alive.
    let out = SequentialTsmo::new(TsmoConfig {
        tabu_tenure: 10_000,
        stagnation_limit: 5,
        ..cfg(2_000)
    })
    .run(&inst);
    assert_eq!(out.evaluations, 2_000);
    assert!(!out.archive.is_empty());
}

#[test]
fn sequential_trace_has_zero_staleness_and_full_coverage() {
    let inst = inst(InstanceClass::C2, 30, 7);
    let out = SequentialTsmo::new(TsmoConfig {
        trace: true,
        ..cfg(1_200)
    })
    .run(&inst);
    let trace = out.trace.expect("tracing on");
    assert_eq!(
        trace.max_staleness(),
        0,
        "sequential neighbors are never stale"
    );
    // Every iteration selects at most one current.
    assert!(trace.trajectory().len() <= out.iterations);
    assert!(!trace.is_empty());
}

#[test]
fn async_thread_and_sim_agree_on_quality_ballpark() {
    let inst = inst(InstanceClass::R2, 40, 8);
    let threaded = AsyncTsmo::new(cfg(4_000).with_seed(3), 3).run(&inst);
    let simulated = SimAsyncTsmo::new(cfg(4_000).with_seed(3), 3).run(&inst);
    let (t, s) = (
        threaded.best_distance().expect("feasible"),
        simulated.best_distance().expect("feasible"),
    );
    assert!(
        (t - s).abs() / t < 0.3,
        "thread async {t} and simulated async {s} should land in the same region"
    );
}

#[test]
fn sim_collaborative_searchers_use_distinct_parameters() {
    // Indirect check: with several searchers the merged archive should not
    // be identical to a single searcher's run (the perturbation and
    // exchange change the search).
    let inst = inst(InstanceClass::R2, 35, 9);
    let one = SimCollaborativeTsmo::new(cfg(2_000).with_seed(4), 1).run(&inst);
    let four = SimCollaborativeTsmo::new(cfg(2_000).with_seed(4), 4).run(&inst);
    let vectors = |out: &tsmo_core::TsmoOutcome| -> Vec<[f64; 3]> {
        out.archive
            .iter()
            .map(|e| e.objectives.to_vector())
            .collect()
    };
    assert_ne!(
        vectors(&one),
        vectors(&four),
        "4 perturbed searchers must explore differently from 1"
    );
    assert_eq!(four.evaluations, 4 * 2_000);
}

#[test]
fn virtual_speedup_is_monotone_in_processors_for_sync() {
    let inst = inst(InstanceClass::R1, 60, 10);
    let c = TsmoConfig {
        max_evaluations: 5_000,
        neighborhood_size: 120,
        sim_comm_latency: 0.0002,
        ..TsmoConfig::default()
    };
    let t2 = SimSyncTsmo::new(c.clone().with_seed(1), 2)
        .run(&inst)
        .runtime_seconds;
    let t6 = SimSyncTsmo::new(c.with_seed(1), 6)
        .run(&inst)
        .runtime_seconds;
    assert!(
        t6 < t2 * 1.05,
        "with negligible latency, 6 virtual processors ({t6:.3}s) should not lose to 2 ({t2:.3}s)"
    );
}

#[test]
fn budgets_below_one_neighborhood_still_terminate() {
    let inst = inst(InstanceClass::C1, 25, 11);
    for evals in [1u64, 7, 59] {
        let out = SequentialTsmo::new(TsmoConfig {
            max_evaluations: evals,
            neighborhood_size: 60,
            ..TsmoConfig::default()
        })
        .run(&inst);
        assert_eq!(out.evaluations, evals);
        assert!(
            !out.archive.is_empty(),
            "initial solution always seeds the archive"
        );
    }
}
