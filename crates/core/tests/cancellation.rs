//! Cancellation contract tests: a run stopped by a [`CancelToken`] is a
//! clean *prefix* of the unstopped run — same trajectory, same telemetry,
//! same archive state, just truncated — and every stop cause is reported.

use std::sync::Arc;
use tsmo_core::{
    CancelToken, ParallelVariant, SequentialTsmo, StopCause, SyncTsmo, TsmoConfig, TsmoOutcome,
};
use tsmo_obs::{MemoryRecorder, Recorder};
use vrptw::generator::{GeneratorConfig, InstanceClass};
use vrptw::Instance;

fn inst() -> Arc<Instance> {
    Arc::new(GeneratorConfig::new(InstanceClass::R1, 30, 7).build())
}

fn cfg() -> TsmoConfig {
    TsmoConfig {
        max_evaluations: 6_000,
        neighborhood_size: 60,
        stagnation_limit: 20,
        ..TsmoConfig::default()
    }
}

fn fronts(out: &TsmoOutcome) -> Vec<[f64; 3]> {
    out.archive
        .iter()
        .map(|e| e.objectives.to_vector())
        .collect()
}

/// The headline determinism proof for the sequential variant: the token is
/// checked at the top of each iteration, before any randomness is drawn,
/// so an iteration-limited run emits a byte-identical prefix of the full
/// run's JSONL event stream (which pins its archive trajectory too).
#[test]
fn sequential_iteration_limited_run_is_a_byte_identical_prefix() {
    let inst = inst();
    let full_rec = MemoryRecorder::shared();
    let full =
        SequentialTsmo::new(cfg()).run_with(&inst, Arc::clone(&full_rec) as Arc<dyn Recorder>);
    let k: usize = 10;
    assert!(
        full.iterations > k,
        "full run too short ({} iterations) for a prefix at {k}",
        full.iterations
    );

    let token = CancelToken::with_iteration_limit(k as u64);
    let lim_rec = MemoryRecorder::shared();
    let limited = SequentialTsmo::new(cfg())
        .with_cancel_token(token.clone())
        .run_with(&inst, Arc::clone(&lim_rec) as Arc<dyn Recorder>);

    assert_eq!(limited.iterations, k, "stopped exactly at the limit");
    assert_eq!(token.cause(), Some(StopCause::IterationLimit));
    assert!(limited.evaluations < full.evaluations);

    let (full_jsonl, lim_jsonl) = (full_rec.events_jsonl(), lim_rec.events_jsonl());
    assert!(!lim_jsonl.is_empty(), "the truncated run emitted no events");
    assert!(
        full_jsonl.starts_with(&lim_jsonl),
        "truncated event stream is not a byte prefix of the full stream"
    );
}

/// The archive a cancelled run returns depends only on the iterations it
/// ran, not on the budget it *would* have had: the same limit under a 25x
/// larger evaluation budget yields a byte-identical front.
#[test]
fn truncated_front_is_independent_of_the_remaining_budget() {
    let inst = inst();
    let k: usize = 12;
    let small = SequentialTsmo::new(cfg())
        .with_cancel_token(CancelToken::with_iteration_limit(k as u64))
        .run(&inst);
    let big = SequentialTsmo::new(TsmoConfig {
        max_evaluations: 150_000,
        ..cfg()
    })
    .with_cancel_token(CancelToken::with_iteration_limit(k as u64))
    .run(&inst);
    assert_eq!(small.iterations, k);
    assert_eq!(big.iterations, k);
    assert_eq!(small.evaluations, big.evaluations);
    assert_eq!(fronts(&small), fronts(&big));
}

/// Parallel prefix determinism: the synchronous variant is bit-identical
/// to the sequential algorithm with the same chunking, so cancelling it at
/// iteration `k` lands on exactly the sequential run cancelled at `k`.
/// (Its *event interleaving* follows thread timing, so the comparison is
/// on outcomes, not bytes of telemetry.)
#[test]
fn sync_cancelled_at_k_equals_sequential_cancelled_at_k() {
    let inst = inst();
    let k: usize = 8;
    let p = 3;
    let seq = SequentialTsmo::new(TsmoConfig { chunks: p, ..cfg() })
        .with_cancel_token(CancelToken::with_iteration_limit(k as u64))
        .run(&inst);
    let sync = SyncTsmo::new(cfg(), p)
        .with_cancel_token(CancelToken::with_iteration_limit(k as u64))
        .run(&inst);
    assert_eq!(seq.iterations, k);
    assert_eq!(sync.iterations, k);
    assert_eq!(seq.evaluations, sync.evaluations);
    assert_eq!(fronts(&seq), fronts(&sync));
}

/// A wall-clock deadline truncates a long run to a valid best-so-far
/// outcome and reports `DeadlineExceeded`.
#[test]
fn deadline_exceeded_truncates_to_a_valid_outcome() {
    let inst = inst();
    let cfg = TsmoConfig {
        max_evaluations: 100_000_000,
        ..cfg()
    };
    let token = CancelToken::with_deadline(std::time::Duration::from_millis(80));
    let out = ParallelVariant::Sequential.run_with_cancel(
        &inst,
        &cfg,
        tsmo_obs::noop(),
        tsmo_faults::none(),
        token.clone(),
    );
    assert_eq!(token.cause(), Some(StopCause::DeadlineExceeded));
    assert!(out.evaluations < cfg.max_evaluations);
    for entry in &out.archive {
        assert!(
            entry.solution.check(&inst).is_empty(),
            "truncated run returned an invalid solution"
        );
    }
}

/// Explicit cancellation from another thread (the service's Cancel
/// endpoint) stops a threaded parallel run promptly and cleanly.
#[test]
fn explicit_cancel_stops_a_threaded_parallel_run() {
    let inst = inst();
    let cfg = TsmoConfig {
        max_evaluations: 100_000_000,
        ..cfg()
    };
    let token = CancelToken::never();
    let canceller = {
        let token = token.clone();
        std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(60));
            token.cancel();
        })
    };
    let out = ParallelVariant::Asynchronous(3).run_with_cancel(
        &inst,
        &cfg,
        tsmo_obs::noop(),
        tsmo_faults::none(),
        token.clone(),
    );
    canceller.join().expect("canceller thread");
    assert_eq!(token.cause(), Some(StopCause::Cancelled));
    assert!(out.evaluations < cfg.max_evaluations);
}

/// `run_with_cancel` threads the token through every variant: each one
/// stops on a small iteration limit long before the evaluation budget.
#[test]
fn every_variant_honors_the_iteration_limit() {
    let inst = inst();
    let cfg = TsmoConfig {
        max_evaluations: 10_000_000,
        ..cfg()
    };
    for variant in [
        ParallelVariant::Sequential,
        ParallelVariant::Synchronous(3),
        ParallelVariant::Asynchronous(3),
        ParallelVariant::Collaborative(3),
    ] {
        let token = CancelToken::with_iteration_limit(5);
        let out = variant.run_with_cancel(
            &inst,
            &cfg,
            tsmo_obs::noop(),
            tsmo_faults::none(),
            token.clone(),
        );
        assert_eq!(
            token.cause(),
            Some(StopCause::IterationLimit),
            "{variant:?} ignored the iteration limit"
        );
        assert!(
            out.evaluations < cfg.max_evaluations,
            "{variant:?} ran to budget exhaustion despite the limit"
        );
    }
}
