//! End-to-end fault-injection tests (see the `tsmo-faults` crate and
//! `deme::Supervisor`): a zero-rate plan is completely inert — the
//! telemetry event stream is byte-identical to a run without any fault
//! layer — while a chaotic plan is survived with a valid front and a
//! reproducible recovery trace.

use std::sync::Arc;
use tsmo_core::{AsyncTsmo, SimAsyncTsmo, SimCollaborativeTsmo, TsmoConfig};
use tsmo_faults::{FaultConfig, FaultPlan};
use tsmo_obs::{metrics::names, MemoryRecorder};
use vrptw::generator::{GeneratorConfig, InstanceClass};

fn cfg() -> TsmoConfig {
    TsmoConfig {
        max_evaluations: 2_400,
        neighborhood_size: 60,
        // Pin the per-evaluation virtual cost so the simulated schedules
        // (and hence the event streams) are byte-reproducible.
        sim_eval_cost: Some(1e-4),
        ..TsmoConfig::default()
    }
}

fn norm(mut v: Vec<[f64; 3]>) -> Vec<[f64; 3]> {
    v.sort_by(|a, b| a.partial_cmp(b).expect("not NaN"));
    v
}

#[test]
fn zero_fault_plan_event_stream_is_byte_identical() {
    let inst = Arc::new(GeneratorConfig::new(InstanceClass::R1, 40, 6).build());
    let zero = FaultPlan::shared(FaultConfig {
        seed: 99,
        ..FaultConfig::default()
    });
    assert!(zero.config().is_zero(), "default rates must all be zero");

    let bare_rec = MemoryRecorder::shared();
    let bare = SimAsyncTsmo::new(cfg().with_seed(11), 3).run_with(&inst, bare_rec.clone());

    let planned_rec = MemoryRecorder::shared();
    let planned = SimAsyncTsmo::new(cfg().with_seed(11), 3)
        .with_fault_hook(zero.clone())
        .run_with(&inst, planned_rec.clone());

    assert_eq!(
        bare_rec.events_jsonl(),
        planned_rec.events_jsonl(),
        "a zero-rate plan must not perturb the event stream by one byte"
    );
    assert_eq!(
        norm(bare.feasible_vectors()),
        norm(planned.feasible_vectors())
    );
    assert_eq!(bare.iterations, planned.iterations);
    assert_eq!(zero.stats().total(), 0, "nothing may be injected");
}

#[test]
fn sim_chaos_run_is_byte_reproducible_and_recovers() {
    let inst = Arc::new(GeneratorConfig::new(InstanceClass::C2, 40, 4).build());
    let run = |_: usize| {
        let rec = MemoryRecorder::shared();
        let plan = FaultPlan::shared(FaultConfig::uniform(7, 0.25));
        let out = SimAsyncTsmo::new(cfg().with_seed(3), 4)
            .with_fault_hook(plan)
            .run_with(&inst, rec.clone());
        (rec, out)
    };
    let (rec_a, out_a) = run(0);
    let (rec_b, out_b) = run(1);
    // Same plan, same seed: the faulted run replays byte-for-byte.
    assert_eq!(rec_a.events_jsonl(), rec_b.events_jsonl());
    assert_eq!(
        norm(out_a.feasible_vectors()),
        norm(out_b.feasible_vectors())
    );
    let metrics = rec_a.metrics();
    assert!(
        metrics.counter(names::FAULTS_INJECTED) > 0,
        "a 25% fault rate must inject something"
    );
    assert!(
        metrics.counter(names::TASKS_RESENT) > 0,
        "injected panics must be retried"
    );
    assert!(!out_a.archive.is_empty());
    for e in &out_a.archive {
        assert!(e.solution.check(&inst).is_empty());
    }
}

#[test]
fn sim_collaborative_survives_exchange_faults_reproducibly() {
    let inst = Arc::new(GeneratorConfig::new(InstanceClass::R2, 30, 5).build());
    let mut c = cfg().with_seed(5);
    c.stagnation_limit = 10;
    let run = |_: usize| {
        let rec = MemoryRecorder::shared();
        let plan = FaultPlan::shared(FaultConfig {
            seed: 13,
            exchange_drop_rate: 0.3,
            exchange_delay_rate: 0.3,
            ..FaultConfig::default()
        });
        let out = SimCollaborativeTsmo::new(c.clone(), 3)
            .with_fault_hook(plan.clone())
            .run_with(&inst, rec.clone());
        (rec, plan, out)
    };
    let (rec_a, plan_a, out_a) = run(0);
    let (rec_b, _, _) = run(1);
    assert_eq!(rec_a.events_jsonl(), rec_b.events_jsonl());
    assert!(
        plan_a.stats().total() > 0,
        "searchers exchange, so faults must fire"
    );
    assert!(!out_a.archive.is_empty());
    for e in &out_a.archive {
        assert!(e.solution.check(&inst).is_empty());
    }
}

#[test]
fn threaded_async_chaos_run_completes_with_valid_front() {
    let inst = Arc::new(GeneratorConfig::new(InstanceClass::R1, 40, 6).build());
    let c = TsmoConfig {
        max_evaluations: 4_000,
        neighborhood_size: 60,
        ..TsmoConfig::default()
    }
    .with_seed(7);
    let rec = MemoryRecorder::shared();
    let plan = FaultPlan::shared(FaultConfig::uniform(7, 0.2));
    let out = AsyncTsmo::new(c, 4)
        .with_fault_hook(plan.clone())
        .run_with(&inst, rec.clone());

    assert_eq!(out.evaluations, 4_000, "budget must be fully consumed");
    assert!(!out.archive.is_empty(), "chaos must not empty the front");
    let vectors: Vec<[f64; 3]> = out
        .archive
        .iter()
        .map(|e| e.objectives.to_vector())
        .collect();
    for (i, a) in vectors.iter().enumerate() {
        assert!(
            out.archive[i].solution.check(&inst).is_empty(),
            "archive entry {i} is not a valid solution"
        );
        for (j, b) in vectors.iter().enumerate() {
            if i != j {
                assert!(
                    !pareto::dominates(a, b),
                    "archive entries {i} and {j} are not mutually non-dominated"
                );
            }
        }
    }
    assert!(
        plan.stats().task_panics > 0,
        "a 20% fault rate over this budget must inject panics"
    );
    let metrics = rec.metrics();
    assert!(
        metrics.counter(names::TASKS_RESENT) > 0,
        "the supervisor must have resent panicked tasks"
    );
}
