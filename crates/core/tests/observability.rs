//! Telemetry contract tests: recording must never change the search, and
//! the deterministic variants must produce byte-identical event streams
//! for a fixed seed.

use std::sync::Arc;
use tsmo_core::{
    ParallelVariant, SequentialTsmo, SimAsyncTsmo, SimCollaborativeTsmo, TsmoConfig, TsmoOutcome,
};
use tsmo_obs::metrics::names;
use tsmo_obs::{parse_events_jsonl, MemoryRecorder, Recorder, SearchEvent};
use vrptw::generator::{GeneratorConfig, InstanceClass};
use vrptw::Instance;

fn inst() -> Arc<Instance> {
    Arc::new(GeneratorConfig::new(InstanceClass::R1, 30, 7).build())
}

fn cfg() -> TsmoConfig {
    TsmoConfig {
        max_evaluations: 3_000,
        neighborhood_size: 60,
        stagnation_limit: 20,
        // A fixed virtual evaluation cost makes the simulated schedules —
        // and therefore the Sim* event streams — reproducible.
        sim_eval_cost: Some(0.01),
        ..TsmoConfig::default()
    }
}

fn fronts(out: &TsmoOutcome) -> Vec<[f64; 3]> {
    out.archive
        .iter()
        .map(|e| e.objectives.to_vector())
        .collect()
}

#[test]
fn noop_and_recording_runs_are_identical_sequential() {
    let inst = inst();
    let plain = SequentialTsmo::new(cfg()).run(&inst);
    let recorder = MemoryRecorder::shared();
    let recorded =
        SequentialTsmo::new(cfg()).run_with(&inst, Arc::clone(&recorder) as Arc<dyn Recorder>);
    assert_eq!(plain.evaluations, recorded.evaluations);
    assert_eq!(plain.iterations, recorded.iterations);
    assert_eq!(fronts(&plain), fronts(&recorded));
    // And the recorder actually saw the run.
    assert_eq!(
        recorder.metrics().counter(names::EVALUATIONS),
        recorded.evaluations
    );
    assert!(recorder.event_count() > 0);
}

#[test]
fn noop_and_recording_runs_are_identical_for_every_sim_variant() {
    let inst = inst();
    for variant in [
        ParallelVariant::Synchronous(3),
        ParallelVariant::Asynchronous(3),
        ParallelVariant::Collaborative(3),
    ] {
        let plain = variant.run_simulated(&inst, &cfg());
        let recorder = MemoryRecorder::shared();
        let recorded =
            variant.run_simulated_with(&inst, &cfg(), Arc::clone(&recorder) as Arc<dyn Recorder>);
        assert_eq!(plain.evaluations, recorded.evaluations, "{variant:?}");
        assert_eq!(plain.iterations, recorded.iterations, "{variant:?}");
        assert_eq!(fronts(&plain), fronts(&recorded), "{variant:?}");
        assert!(recorder.event_count() > 0, "{variant:?} emitted no events");
    }
}

/// The determinism proof: with a fixed seed and a fixed virtual evaluation
/// cost, two recorded `SimAsyncTsmo` runs produce byte-identical JSONL
/// event streams, and the same front as an unrecorded run. (The threaded
/// async variant interleaves events by wall-clock timing, so the proof
/// uses the virtual-time simulation, which is the same algorithm.)
#[test]
fn sim_async_event_stream_is_byte_identical_across_runs() {
    let inst = inst();
    let noop_run = SimAsyncTsmo::new(cfg(), 3).run(&inst);
    let (r1, r2) = (MemoryRecorder::shared(), MemoryRecorder::shared());
    let rec1 = SimAsyncTsmo::new(cfg(), 3).run_with(&inst, Arc::clone(&r1) as Arc<dyn Recorder>);
    let rec2 = SimAsyncTsmo::new(cfg(), 3).run_with(&inst, Arc::clone(&r2) as Arc<dyn Recorder>);

    assert_eq!(
        fronts(&noop_run),
        fronts(&rec1),
        "recording changed the search"
    );
    assert_eq!(fronts(&rec1), fronts(&rec2));
    let (jsonl1, jsonl2) = (r1.events_jsonl(), r2.events_jsonl());
    assert!(!jsonl1.is_empty());
    assert_eq!(jsonl1, jsonl2, "event streams must be byte-identical");
}

/// tsmo-trace determinism: with a fixed seed, a fixed virtual evaluation
/// cost, an explicit trace id, and timeline sampling on, repeated runs
/// produce byte-identical span + timeline streams — the span layer adds
/// no wall-clock-dependent bytes to the deterministic stream.
#[test]
fn span_and_timeline_streams_are_byte_identical_across_runs() {
    let inst = inst();
    let trace_id = tsmo_obs::trace_id_from_seed(7);
    let traced_cfg = || TsmoConfig {
        trace_id: Some(trace_id),
        timeline_every: Some(500),
        ..cfg()
    };
    let (r1, r2) = (
        Arc::new(MemoryRecorder::new().with_span_events()),
        Arc::new(MemoryRecorder::new().with_span_events()),
    );
    SimAsyncTsmo::new(traced_cfg(), 3).run_with(&inst, Arc::clone(&r1) as Arc<dyn Recorder>);
    SimAsyncTsmo::new(traced_cfg(), 3).run_with(&inst, Arc::clone(&r2) as Arc<dyn Recorder>);
    let (jsonl1, jsonl2) = (r1.events_jsonl(), r2.events_jsonl());
    assert!(!jsonl1.is_empty());
    assert_eq!(
        jsonl1, jsonl2,
        "span + timeline streams must be byte-identical"
    );

    let events = r1.events();
    let mut open: Vec<u64> = Vec::new();
    let mut saw_sample = false;
    for ev in &events {
        match &ev.event {
            SearchEvent::SpanEnter { trace, span, .. } => {
                assert_eq!(*trace, trace_id);
                open.push(*span);
            }
            SearchEvent::SpanExit { trace, span, .. } => {
                assert_eq!(*trace, trace_id);
                assert!(
                    open.contains(span),
                    "span {span} exited without a matching enter"
                );
                open.retain(|s| s != span);
            }
            SearchEvent::FrontSample { evaluations, .. } => {
                saw_sample = true;
                assert!(*evaluations > 0);
            }
            _ => {}
        }
    }
    assert!(open.is_empty(), "spans left open: {open:?}");
    assert!(saw_sample, "no timeline samples were recorded");
}

/// The default recorder keeps the pre-span stream: span markers are
/// opt-in, but the wall-time profile folds either way.
#[test]
fn default_stream_has_no_span_events_but_the_profile_still_folds() {
    let inst = inst();
    let recorder = MemoryRecorder::shared();
    SequentialTsmo::new(cfg()).run_with(&inst, Arc::clone(&recorder) as Arc<dyn Recorder>);
    assert!(
        !recorder.events().iter().any(|e| matches!(
            e.event,
            SearchEvent::SpanEnter { .. } | SearchEvent::SpanExit { .. }
        )),
        "span events must be opt-in"
    );
    let profile = recorder.profile();
    for phase in [
        "search",
        "construct",
        "tabu",
        "select",
        "archive",
        "evaluate",
    ] {
        let stat = profile
            .get(phase)
            .unwrap_or_else(|| panic!("phase {phase:?} missing from the profile"));
        assert!(stat.calls > 0, "{phase} recorded no calls");
        assert!(stat.seconds >= 0.0);
    }
    // The root span covers the whole run, so every child phase's wall
    // time is bounded by it.
    let root = profile["search"].seconds;
    for phase in ["construct", "tabu", "select", "archive", "evaluate"] {
        assert!(
            profile[phase].seconds <= root,
            "{phase} outlived the root span"
        );
    }
}

#[test]
fn recorded_events_round_trip_through_jsonl() {
    let inst = inst();
    let recorder = MemoryRecorder::shared();
    SimAsyncTsmo::new(cfg(), 3).run_with(&inst, Arc::clone(&recorder) as Arc<dyn Recorder>);
    let parsed = parse_events_jsonl(&recorder.events_jsonl()).expect("stream parses back");
    assert_eq!(parsed, recorder.events());
    // The stream covers the event families the async runtime emits.
    let has = |pred: fn(&SearchEvent) -> bool| parsed.iter().any(|e| pred(&e.event));
    assert!(has(|e| matches!(e, SearchEvent::Iteration { .. })));
    assert!(has(|e| matches!(e, SearchEvent::WorkerTask { .. })));
    assert!(has(|e| matches!(e, SearchEvent::WorkerResult { .. })));
    assert!(has(|e| matches!(e, SearchEvent::ArchiveInsert { .. })));
}

#[test]
fn collaborative_sim_records_exchange_traffic() {
    let inst = inst();
    let recorder = MemoryRecorder::shared();
    let cfg = TsmoConfig {
        max_evaluations: 4_000,
        neighborhood_size: 40,
        stagnation_limit: 5, // leave the initial phase quickly
        sim_eval_cost: Some(0.01),
        ..TsmoConfig::default()
    };
    SimCollaborativeTsmo::new(cfg, 3).run_with(&inst, Arc::clone(&recorder) as Arc<dyn Recorder>);
    let metrics = recorder.metrics();
    let sent = metrics.counter(names::EXCHANGE_SENT);
    let received = metrics.counter(names::EXCHANGE_RECEIVED);
    assert!(sent > 0, "no archive-improving solution was ever exchanged");
    assert!(received <= sent, "cannot receive more than was sent");
    // Every send and receive became an event tagged with its searcher.
    let events = recorder.events();
    let exchanges = events
        .iter()
        .filter(|e| matches!(e.event, SearchEvent::Exchange { .. }))
        .count() as u64;
    assert_eq!(exchanges, sent + received);
}

#[test]
fn threaded_variants_accept_a_recorder_and_count_evaluations() {
    let inst = inst();
    let base = TsmoConfig {
        sim_eval_cost: None,
        ..cfg()
    };
    for variant in [
        ParallelVariant::Sequential,
        ParallelVariant::Synchronous(3),
        ParallelVariant::Asynchronous(3),
        ParallelVariant::Collaborative(3),
    ] {
        let recorder = MemoryRecorder::shared();
        let out = variant.run_with(&inst, &base, Arc::clone(&recorder) as Arc<dyn Recorder>);
        let metrics = recorder.metrics();
        assert_eq!(
            metrics.counter(names::EVALUATIONS),
            out.evaluations,
            "{variant:?} did not count every evaluation"
        );
        assert!(metrics.counter(names::ITERATIONS) > 0, "{variant:?}");
        let prom = recorder.prometheus();
        assert!(prom.contains("tsmo_runtime_seconds"), "{variant:?}");
        assert!(
            prom.contains("tsmo_worker_busy_fraction"),
            "{variant:?} reported no utilization"
        );
    }
}
