//! The shared evaluation budget.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// An atomically shared evaluation counter with a hard maximum.
///
/// Every paper experiment stops after a fixed number of solution
/// evaluations (100,000). In the parallel variants evaluations happen on
/// worker threads, so the counter must be shared: workers *reserve*
/// evaluations before performing them via [`EvaluationBudget::try_consume`],
/// which grants at most what is left. A grant of zero tells the caller the
/// search is over.
#[derive(Debug, Clone)]
pub struct EvaluationBudget {
    inner: Arc<Inner>,
}

#[derive(Debug)]
struct Inner {
    used: AtomicU64,
    max: u64,
}

impl EvaluationBudget {
    /// A budget allowing `max` evaluations in total.
    pub fn new(max: u64) -> Self {
        Self {
            inner: Arc::new(Inner {
                used: AtomicU64::new(0),
                max,
            }),
        }
    }

    /// Reserves up to `want` evaluations; returns how many were granted
    /// (possibly zero when the budget is exhausted).
    pub fn try_consume(&self, want: u64) -> u64 {
        if want == 0 {
            return 0;
        }
        let mut current = self.inner.used.load(Ordering::Relaxed);
        loop {
            if current >= self.inner.max {
                return 0;
            }
            let granted = want.min(self.inner.max - current);
            match self.inner.used.compare_exchange_weak(
                current,
                current + granted,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return granted,
                Err(actual) => current = actual,
            }
        }
    }

    /// Evaluations consumed so far.
    pub fn consumed(&self) -> u64 {
        self.inner.used.load(Ordering::Relaxed).min(self.inner.max)
    }

    /// Evaluations still available.
    pub fn remaining(&self) -> u64 {
        self.inner.max - self.consumed()
    }

    /// Whether the budget is used up.
    pub fn exhausted(&self) -> bool {
        self.remaining() == 0
    }

    /// The configured maximum.
    pub fn max(&self) -> u64 {
        self.inner.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn sequential_consumption() {
        let b = EvaluationBudget::new(10);
        assert_eq!(b.try_consume(4), 4);
        assert_eq!(b.consumed(), 4);
        assert_eq!(b.try_consume(4), 4);
        // Only 2 left: partial grant.
        assert_eq!(b.try_consume(4), 2);
        assert!(b.exhausted());
        assert_eq!(b.try_consume(1), 0);
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn zero_request_is_free() {
        let b = EvaluationBudget::new(5);
        assert_eq!(b.try_consume(0), 0);
        assert_eq!(b.consumed(), 0);
    }

    #[test]
    fn concurrent_consumption_never_overshoots() {
        let b = EvaluationBudget::new(100_000);
        let mut handles = Vec::new();
        for _ in 0..8 {
            let b = b.clone();
            handles.push(thread::spawn(move || {
                let mut got = 0u64;
                loop {
                    let g = b.try_consume(7);
                    if g == 0 {
                        break;
                    }
                    got += g;
                }
                got
            }));
        }
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 100_000, "grants must exactly exhaust the budget");
        assert!(b.exhausted());
    }

    #[test]
    fn clones_share_state() {
        let a = EvaluationBudget::new(10);
        let b = a.clone();
        a.try_consume(6);
        assert_eq!(b.remaining(), 4);
    }
}
