//! A small distributed-metaheuristics framework ("DEME" substrate).
//!
//! The paper's implementation "builds upon a framework called Distributed
//! metaheuristics or DEME for short" — a closed research framework. This
//! crate provides the roles that framework plays in the paper, implemented
//! with OS threads and crossbeam channels:
//!
//! * [`EvaluationBudget`] — a shared, atomically counted evaluation budget
//!   (the paper stops every variant after 100,000 evaluations, wherever
//!   those evaluations happen to be computed);
//! * [`MasterWorker`] — a master–worker pool for functional decomposition,
//!   supporting both the synchronous collect-everything pattern and the
//!   asynchronous partial-collection pattern of §III.C/D;
//! * [`Supervisor`] — a self-healing wrapper over [`MasterWorker`] that
//!   resends panicked tasks with a bounded retry budget, quarantines and
//!   respawns repeatedly failing workers, and degrades to master-local
//!   evaluation when live workers fall below quorum;
//! * [`multisearch`] — the rotating-communication-list topology of the
//!   collaborative multisearch variant (§III.E), with peer-liveness
//!   tracking (dead peers are skipped and probed for re-admission);
//! * [`RunClock`] — wall-clock measurement for the runtime/speedup columns.
//!
//! Nothing in here knows about vehicle routing: the framework is generic
//! over task, result, and message types.
//!
//! # Example
//!
//! ```
//! use deme::{EvaluationBudget, MasterWorker};
//!
//! // A shared budget: grants stop exactly at the maximum.
//! let budget = EvaluationBudget::new(100);
//! assert_eq!(budget.try_consume(60), 60);
//! assert_eq!(budget.try_consume(60), 40); // partial grant
//! assert!(budget.exhausted());
//!
//! // A worker pool computing squares; the barrier keeps worker order.
//! // Receives report worker panics as `Err(PoolError::WorkerPanicked)`
//! // instead of hanging the barrier.
//! let pool: MasterWorker<u64, u64> = MasterWorker::spawn(2, |_, x| x * x);
//! assert_eq!(pool.broadcast_collect(vec![3, 4]), Ok(vec![9, 16]));
//! pool.shutdown();
//! ```

mod budget;
mod master_worker;
pub mod multisearch;
mod supervisor;
#[doc(hidden)]
pub mod testkit;
pub mod virtual_time;

pub use budget::EvaluationBudget;
pub use master_worker::{MasterWorker, PoolError, WorkerStats};
pub use supervisor::{RecoveryEvent, RecoveryStats, Supervisor, SupervisorConfig};
pub use virtual_time::VirtualCluster;

use std::time::{Duration, Instant};

/// Wall-clock stopwatch for run-time reporting.
#[derive(Debug, Clone, Copy)]
pub struct RunClock {
    started: Instant,
}

impl Default for RunClock {
    fn default() -> Self {
        Self::start()
    }
}

impl RunClock {
    /// Starts the clock.
    pub fn start() -> Self {
        Self {
            started: Instant::now(),
        }
    }

    /// Time elapsed since start.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Elapsed seconds as `f64` (the unit of the paper's runtime columns).
    pub fn seconds(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_monotone() {
        let c = RunClock::start();
        let a = c.seconds();
        let b = c.seconds();
        assert!(b >= a);
        assert!(a >= 0.0);
    }
}
