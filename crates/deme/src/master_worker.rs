//! Master–worker functional decomposition.

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A pool of worker threads executing a shared task function.
///
/// The synchronous TS variant sends one task per worker and collects all
/// results before continuing; the asynchronous variant collects only what
/// has arrived (with a bounded wait) and folds late results into later
/// iterations. Both patterns are supported by the same primitive:
/// per-worker task channels plus a shared result channel tagged with the
/// worker id.
///
/// Worker threads shut down when the pool is dropped (their task channels
/// disconnect).
pub struct MasterWorker<T: Send + 'static, R: Send + 'static> {
    task_txs: Vec<Sender<T>>,
    result_rx: Receiver<(usize, R)>,
    handles: Vec<JoinHandle<()>>,
}

impl<T: Send + 'static, R: Send + 'static> MasterWorker<T, R> {
    /// Spawns `n_workers` threads, each applying `f` to incoming tasks.
    ///
    /// # Panics
    /// Panics if `n_workers == 0`.
    pub fn spawn<F>(n_workers: usize, f: F) -> Self
    where
        F: Fn(usize, T) -> R + Send + Sync + 'static,
    {
        assert!(n_workers > 0, "a pool needs at least one worker");
        let f = Arc::new(f);
        let (result_tx, result_rx) = unbounded::<(usize, R)>();
        let mut task_txs = Vec::with_capacity(n_workers);
        let mut handles = Vec::with_capacity(n_workers);
        for id in 0..n_workers {
            let (tx, rx) = unbounded::<T>();
            task_txs.push(tx);
            let f = Arc::clone(&f);
            let result_tx = result_tx.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("deme-worker-{id}"))
                    .spawn(move || {
                        // Exit when the master drops the task sender.
                        while let Ok(task) = rx.recv() {
                            let out = f(id, task);
                            if result_tx.send((id, out)).is_err() {
                                break; // master gone
                            }
                        }
                    })
                    .expect("failed to spawn worker thread"),
            );
        }
        Self { task_txs, result_rx, handles }
    }

    /// Number of workers in the pool.
    pub fn n_workers(&self) -> usize {
        self.task_txs.len()
    }

    /// Sends a task to a specific worker.
    ///
    /// # Panics
    /// Panics if the worker index is out of range or the worker died.
    pub fn send(&self, worker: usize, task: T) {
        self.task_txs[worker].send(task).expect("worker thread terminated unexpectedly");
    }

    /// Non-blocking receive of one `(worker, result)` pair.
    pub fn try_recv(&self) -> Option<(usize, R)> {
        self.result_rx.try_recv().ok()
    }

    /// Blocking receive with a timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<(usize, R)> {
        match self.result_rx.recv_timeout(timeout) {
            Ok(pair) => Some(pair),
            Err(RecvTimeoutError::Timeout) => None,
            Err(RecvTimeoutError::Disconnected) => {
                panic!("all workers terminated while results were expected")
            }
        }
    }

    /// Blocking receive.
    ///
    /// # Panics
    /// Panics if every worker has terminated (protocol error).
    pub fn recv(&self) -> (usize, R) {
        self.result_rx.recv().expect("all workers terminated while results were expected")
    }

    /// Sends one task to every worker and waits for exactly one result per
    /// worker — the synchronous barrier pattern. Results are returned in
    /// worker order (deterministic reassembly).
    ///
    /// `tasks.len()` must equal the number of workers.
    pub fn broadcast_collect(&self, tasks: Vec<T>) -> Vec<R> {
        assert_eq!(tasks.len(), self.n_workers(), "one task per worker");
        let n = tasks.len();
        for (w, task) in tasks.into_iter().enumerate() {
            self.send(w, task);
        }
        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        let mut received = 0;
        while received < n {
            let (w, r) = self.recv();
            assert!(slots[w].is_none(), "worker {w} replied twice to one broadcast");
            slots[w] = Some(r);
            received += 1;
        }
        slots.into_iter().map(|s| s.expect("all slots filled")).collect()
    }

    /// Drops the task channels and joins all workers.
    pub fn shutdown(mut self) {
        self.task_txs.clear();
        for h in std::mem::take(&mut self.handles) {
            h.join().expect("worker panicked");
        }
    }
}

impl<T: Send + 'static, R: Send + 'static> Drop for MasterWorker<T, R> {
    fn drop(&mut self) {
        // Disconnect tasks so workers exit; threads are detached if the
        // user did not call `shutdown` (they terminate promptly anyway).
        self.task_txs.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn broadcast_collect_returns_in_worker_order() {
        let pool: MasterWorker<u64, u64> = MasterWorker::spawn(4, |id, x| {
            // Make later workers slower: order must still hold.
            std::thread::sleep(Duration::from_millis((4 - id as u64) * 5));
            x * 10 + id as u64
        });
        let out = pool.broadcast_collect(vec![1, 2, 3, 4]);
        assert_eq!(out, vec![10, 21, 32, 43]);
        pool.shutdown();
    }

    #[test]
    fn repeated_broadcasts() {
        let pool: MasterWorker<u64, u64> = MasterWorker::spawn(3, |_, x| x + 1);
        for round in 0..50 {
            let out = pool.broadcast_collect(vec![round, round, round]);
            assert_eq!(out, vec![round + 1; 3]);
        }
        pool.shutdown();
    }

    #[test]
    fn async_partial_collection() {
        let pool: MasterWorker<u64, u64> = MasterWorker::spawn(2, |id, x| {
            if id == 1 {
                std::thread::sleep(Duration::from_millis(100));
            }
            x
        });
        pool.send(0, 7);
        pool.send(1, 9);
        // The fast worker's result arrives well before the slow one's.
        let first = pool.recv_timeout(Duration::from_millis(500)).expect("fast result");
        assert_eq!(first, (0, 7));
        // Nothing else yet (within a tight poll).
        assert!(pool.try_recv().is_none());
        // The slow result eventually arrives.
        let second = pool.recv_timeout(Duration::from_millis(500)).expect("slow result");
        assert_eq!(second, (1, 9));
        pool.shutdown();
    }

    #[test]
    fn workers_see_distinct_ids() {
        let seen = Arc::new(AtomicUsize::new(0));
        let seen2 = Arc::clone(&seen);
        let pool: MasterWorker<(), usize> = MasterWorker::spawn(4, move |id, ()| {
            seen2.fetch_or(1 << id, Ordering::Relaxed);
            id
        });
        let ids = pool.broadcast_collect(vec![(), (), (), ()]);
        assert_eq!(ids, vec![0, 1, 2, 3]);
        assert_eq!(seen.load(Ordering::Relaxed), 0b1111);
        pool.shutdown();
    }

    #[test]
    fn shutdown_joins_cleanly_with_pending_nothing() {
        let pool: MasterWorker<u64, u64> = MasterWorker::spawn(2, |_, x| x);
        pool.shutdown();
    }

    #[test]
    #[should_panic]
    fn zero_workers_rejected() {
        let _: MasterWorker<(), ()> = MasterWorker::spawn(0, |_, ()| ());
    }
}
