//! Master–worker functional decomposition.

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Why the master could not obtain a result from the pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolError {
    /// The task function panicked while processing a task. The worker
    /// thread **survives** and keeps serving its queue; only the result of
    /// the panicking task is lost. The master decides whether to resend,
    /// skip, or abort — [`crate::Supervisor`] implements the
    /// resend-with-budget policy on top of this signal, and
    /// [`MasterWorker::broadcast_collect`] retries each worker's task once
    /// before surfacing the error.
    WorkerPanicked {
        /// Which worker's task function panicked.
        worker: usize,
        /// The panic payload, when it was a string.
        message: String,
    },
    /// Every worker has been retired (or the pool is tearing down) and no
    /// further results can arrive. With a live pool this indicates a
    /// protocol error (results expected after the task channels were
    /// closed).
    Disconnected,
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::WorkerPanicked { worker, message } => {
                write!(
                    f,
                    "worker {worker} panicked while processing a task: {message}"
                )
            }
            PoolError::Disconnected => {
                write!(f, "all workers terminated while results were expected")
            }
        }
    }
}

impl std::error::Error for PoolError {}

/// A snapshot of one worker's activity counters.
///
/// Counters are cumulative per worker *slot*: a respawned worker keeps
/// adding to the same cell, so panic counts survive a respawn.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkerStats {
    /// Tasks completed successfully.
    pub tasks_completed: u64,
    /// Tasks whose function panicked.
    pub panics: u64,
    /// Wall-clock seconds spent inside the task function.
    pub busy_seconds: f64,
}

#[derive(Default)]
struct StatCell {
    busy_nanos: AtomicU64,
    tasks: AtomicU64,
    panics: AtomicU64,
}

impl StatCell {
    fn snapshot(&self) -> WorkerStats {
        WorkerStats {
            tasks_completed: self.tasks.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
            busy_seconds: self.busy_nanos.load(Ordering::Relaxed) as f64 * 1e-9,
        }
    }
}

enum Reply<R> {
    Ok(R),
    Panicked(String),
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

type TaskFn<T, R> = Arc<dyn Fn(usize, T) -> R + Send + Sync>;

/// A pool of worker threads executing a shared task function.
///
/// The synchronous TS variant sends one task per worker and collects all
/// results before continuing; the asynchronous variant collects only what
/// has arrived (with a bounded wait) and folds late results into later
/// iterations. Both patterns are supported by the same primitive:
/// per-worker task channels plus a shared result channel tagged with the
/// worker id.
///
/// # Failure semantics
///
/// A panic in the task function does **not** kill the worker: the panic is
/// caught, the worker keeps serving its queue, and the master receives
/// [`PoolError::WorkerPanicked`] in place of that task's result. The
/// receive methods distinguish the three observable states explicitly:
/// `Ok(Some(..))` — a result arrived; `Ok(None)` — nothing available yet
/// (empty / timeout, workers alive); `Err(..)` — a task panicked or every
/// worker is gone ([`PoolError::Disconnected`]). Earlier revisions
/// returned a silent `None` for both "not yet" and "never", which let a
/// synchronous barrier hang forever on a dead worker.
///
/// # Epochs, respawn, and retirement
///
/// Each worker slot carries an **epoch**. [`MasterWorker::respawn_worker`]
/// replaces a slot's thread with a fresh one and bumps the epoch; replies
/// tagged with an older epoch (queued work the old thread was still
/// draining) are silently discarded (counted by
/// [`MasterWorker::stale_results_discarded`]), so a respawn can never
/// deliver a duplicate or orphaned result. [`MasterWorker::retire_worker`]
/// closes a slot permanently. When every slot is retired the receive
/// methods report [`PoolError::Disconnected`].
///
/// Worker threads shut down when the pool is dropped (their task channels
/// disconnect).
pub struct MasterWorker<T: Send + 'static, R: Send + 'static> {
    /// `None` marks a retired slot.
    task_txs: Vec<Option<Sender<T>>>,
    /// Current epoch per worker slot; replies from older epochs are stale.
    epochs: Vec<u64>,
    result_rx: Receiver<(usize, u64, Reply<R>)>,
    /// Kept for respawned threads; never used to send from the master.
    result_tx: Sender<(usize, u64, Reply<R>)>,
    handles: Vec<JoinHandle<()>>,
    stats: Arc<Vec<StatCell>>,
    task_fn: TaskFn<T, R>,
    stale_discarded: AtomicU64,
}

fn spawn_worker_thread<T: Send + 'static, R: Send + 'static>(
    id: usize,
    epoch: u64,
    f: TaskFn<T, R>,
    stats: Arc<Vec<StatCell>>,
    result_tx: Sender<(usize, u64, Reply<R>)>,
    rx: Receiver<T>,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("deme-worker-{id}.{epoch}"))
        .spawn(move || {
            // Exit when the master drops (or replaces) the task sender.
            while let Ok(task) = rx.recv() {
                let started = Instant::now();
                let outcome = catch_unwind(AssertUnwindSafe(|| f(id, task)));
                let nanos = started.elapsed().as_nanos().min(u64::MAX as u128);
                stats[id]
                    .busy_nanos
                    .fetch_add(nanos as u64, Ordering::Relaxed);
                let reply = match outcome {
                    Ok(out) => {
                        stats[id].tasks.fetch_add(1, Ordering::Relaxed);
                        Reply::Ok(out)
                    }
                    Err(payload) => {
                        stats[id].panics.fetch_add(1, Ordering::Relaxed);
                        Reply::Panicked(panic_message(payload))
                    }
                };
                if result_tx.send((id, epoch, reply)).is_err() {
                    break; // master gone
                }
            }
        })
        .expect("failed to spawn worker thread")
}

impl<T: Send + 'static, R: Send + 'static> MasterWorker<T, R> {
    /// Spawns `n_workers` threads, each applying `f` to incoming tasks.
    ///
    /// # Panics
    /// Panics if `n_workers == 0`.
    pub fn spawn<F>(n_workers: usize, f: F) -> Self
    where
        F: Fn(usize, T) -> R + Send + Sync + 'static,
    {
        assert!(n_workers > 0, "a pool needs at least one worker");
        let f: TaskFn<T, R> = Arc::new(f);
        let stats: Arc<Vec<StatCell>> =
            Arc::new((0..n_workers).map(|_| StatCell::default()).collect());
        let (result_tx, result_rx) = unbounded::<(usize, u64, Reply<R>)>();
        let mut task_txs = Vec::with_capacity(n_workers);
        let mut handles = Vec::with_capacity(n_workers);
        for id in 0..n_workers {
            let (tx, rx) = unbounded::<T>();
            task_txs.push(Some(tx));
            handles.push(spawn_worker_thread(
                id,
                0,
                Arc::clone(&f),
                Arc::clone(&stats),
                result_tx.clone(),
                rx,
            ));
        }
        Self {
            task_txs,
            epochs: vec![0; n_workers],
            result_rx,
            result_tx,
            handles,
            stats,
            task_fn: f,
            stale_discarded: AtomicU64::new(0),
        }
    }

    /// Number of worker slots in the pool (live and retired).
    pub fn n_workers(&self) -> usize {
        self.task_txs.len()
    }

    /// Worker slots that can still accept tasks.
    pub fn live_workers(&self) -> usize {
        self.task_txs.iter().filter(|t| t.is_some()).count()
    }

    /// Whether `worker` can still accept tasks (not retired).
    pub fn is_live(&self, worker: usize) -> bool {
        self.task_txs[worker].is_some()
    }

    /// Current epoch of `worker` (bumped on respawn and retirement).
    pub fn worker_epoch(&self, worker: usize) -> u64 {
        self.epochs[worker]
    }

    /// Replies discarded because they arrived from a superseded epoch
    /// (work the old thread of a respawned/retired slot was draining).
    pub fn stale_results_discarded(&self) -> u64 {
        self.stale_discarded.load(Ordering::Relaxed)
    }

    /// Sends a task to a specific worker.
    ///
    /// # Panics
    /// Panics if the worker index is out of range or the slot was retired
    /// via [`MasterWorker::retire_worker`]. Workers survive task panics,
    /// so a live slot's channel cannot be closed from the worker side.
    pub fn send(&self, worker: usize, task: T) {
        self.task_txs[worker]
            .as_ref()
            .expect("task sent to a retired worker")
            .send(task)
            .expect("worker task channel disconnected");
    }

    /// Replaces `worker`'s thread with a fresh one and bumps the slot's
    /// epoch. The old thread drains whatever was queued on its channel and
    /// exits; its replies carry the old epoch and are discarded on
    /// receive. In-flight tasks of that worker are therefore **lost** from
    /// the caller's point of view and must be resent if still wanted
    /// (which [`crate::Supervisor`] does).
    ///
    /// Works on retired slots too, re-admitting them.
    pub fn respawn_worker(&mut self, worker: usize) {
        assert!(worker < self.n_workers(), "worker index out of range");
        self.epochs[worker] += 1;
        let (tx, rx) = unbounded::<T>();
        self.task_txs[worker] = Some(tx);
        self.handles.push(spawn_worker_thread(
            worker,
            self.epochs[worker],
            Arc::clone(&self.task_fn),
            Arc::clone(&self.stats),
            self.result_tx.clone(),
            rx,
        ));
    }

    /// Permanently closes `worker`'s slot: its task channel is dropped
    /// (the thread drains and exits) and the epoch is bumped so queued
    /// replies are discarded. Once every slot is retired the receive
    /// methods report [`PoolError::Disconnected`].
    pub fn retire_worker(&mut self, worker: usize) {
        assert!(worker < self.n_workers(), "worker index out of range");
        self.epochs[worker] += 1;
        self.task_txs[worker] = None;
    }

    fn admit(&self, (worker, epoch, reply): (usize, u64, Reply<R>)) -> Option<(usize, Reply<R>)> {
        if epoch == self.epochs[worker] {
            Some((worker, reply))
        } else {
            self.stale_discarded.fetch_add(1, Ordering::Relaxed);
            None
        }
    }

    /// Non-blocking receive of one `(worker, result)` pair. `Ok(None)`
    /// means the queue is empty but workers are alive.
    pub fn try_recv(&self) -> Result<Option<(usize, R)>, PoolError> {
        loop {
            match self.result_rx.try_recv() {
                Ok(tagged) => {
                    if let Some(pair) = self.admit(tagged) {
                        return unwrap_reply(pair).map(Some);
                    }
                }
                Err(TryRecvError::Empty) => {
                    return if self.live_workers() == 0 {
                        Err(PoolError::Disconnected)
                    } else {
                        Ok(None)
                    };
                }
                Err(TryRecvError::Disconnected) => return Err(PoolError::Disconnected),
            }
        }
    }

    /// Blocking receive with a timeout. `Ok(None)` means the timeout
    /// elapsed with workers still alive.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Option<(usize, R)>, PoolError> {
        let deadline = Instant::now() + timeout;
        loop {
            // A fully retired pool can only produce stale replies: drain
            // and report Disconnected without waiting out the timeout.
            if self.live_workers() == 0 {
                return match self.try_recv() {
                    Ok(None) => Err(PoolError::Disconnected),
                    other => other,
                };
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            match self.result_rx.recv_timeout(remaining) {
                Ok(tagged) => {
                    if let Some(pair) = self.admit(tagged) {
                        return unwrap_reply(pair).map(Some);
                    }
                }
                Err(RecvTimeoutError::Timeout) => return Ok(None),
                Err(RecvTimeoutError::Disconnected) => return Err(PoolError::Disconnected),
            }
        }
    }

    /// Blocking receive of the next result. Returns
    /// [`PoolError::Disconnected`] if every worker slot is retired while
    /// waiting.
    pub fn recv(&self) -> Result<(usize, R), PoolError> {
        loop {
            // Poll in slices: the master holds a result sender (for
            // respawns), so channel disconnection alone can no longer
            // signal a fully retired pool — the liveness check inside
            // `recv_timeout` does.
            match self.recv_timeout(Duration::from_millis(50))? {
                Some(pair) => return Ok(pair),
                None => continue,
            }
        }
    }

    /// Sends one task to every worker and waits for exactly one result per
    /// worker — the synchronous barrier pattern. Results are returned in
    /// worker order (deterministic reassembly).
    ///
    /// If a task panics, it is **resent once** to the same worker (which
    /// survives the panic); only a second panic of the same slot's task
    /// surfaces as [`PoolError::WorkerPanicked`]. This absorbs one-shot
    /// transient failures without involving a supervisor, at the cost of
    /// requiring `T: Clone`.
    ///
    /// `tasks.len()` must equal the number of workers, and all workers
    /// must be live.
    pub fn broadcast_collect(&self, tasks: Vec<T>) -> Result<Vec<R>, PoolError>
    where
        T: Clone,
    {
        assert_eq!(tasks.len(), self.n_workers(), "one task per worker");
        let n = tasks.len();
        for (w, task) in tasks.iter().cloned().enumerate() {
            self.send(w, task);
        }
        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        let mut retried = vec![false; n];
        let mut received = 0;
        while received < n {
            match self.recv() {
                Ok((w, r)) => {
                    assert!(
                        slots[w].is_none(),
                        "worker {w} replied twice to one broadcast"
                    );
                    slots[w] = Some(r);
                    received += 1;
                }
                Err(PoolError::WorkerPanicked { worker, message }) => {
                    if retried[worker] {
                        return Err(PoolError::WorkerPanicked { worker, message });
                    }
                    retried[worker] = true;
                    self.send(worker, tasks[worker].clone());
                }
                Err(e) => return Err(e),
            }
        }
        Ok(slots
            .into_iter()
            .map(|s| s.expect("all slots filled"))
            .collect())
    }

    /// Results queued but not yet received by the master.
    pub fn result_queue_len(&self) -> usize {
        self.result_rx.len()
    }

    /// Tasks queued for `worker` that it has not yet picked up (0 for a
    /// retired slot).
    pub fn task_queue_len(&self, worker: usize) -> usize {
        self.task_txs[worker].as_ref().map_or(0, |tx| tx.len())
    }

    /// Per-worker activity snapshots, indexed by worker slot. Counters
    /// are cumulative across respawns of the same slot.
    pub fn worker_stats(&self) -> Vec<WorkerStats> {
        self.stats.iter().map(StatCell::snapshot).collect()
    }

    /// Drops the task channels and joins all workers (including exited
    /// threads of respawned slots).
    pub fn shutdown(mut self) {
        self.task_txs.clear();
        for h in std::mem::take(&mut self.handles) {
            h.join().expect("worker thread itself panicked");
        }
    }
}

fn unwrap_reply<R>((worker, reply): (usize, Reply<R>)) -> Result<(usize, R), PoolError> {
    match reply {
        Reply::Ok(r) => Ok((worker, r)),
        Reply::Panicked(message) => Err(PoolError::WorkerPanicked { worker, message }),
    }
}

impl<T: Send + 'static, R: Send + 'static> Drop for MasterWorker<T, R> {
    fn drop(&mut self) {
        // Disconnect tasks so workers exit; threads are detached if the
        // user did not call `shutdown` (they terminate promptly anyway).
        self.task_txs.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn broadcast_collect_returns_in_worker_order() {
        let pool: MasterWorker<u64, u64> = MasterWorker::spawn(4, |id, x| {
            // Make later workers slower: order must still hold.
            std::thread::sleep(Duration::from_millis((4 - id as u64) * 5));
            x * 10 + id as u64
        });
        let out = pool.broadcast_collect(vec![1, 2, 3, 4]).expect("no panics");
        assert_eq!(out, vec![10, 21, 32, 43]);
        pool.shutdown();
    }

    #[test]
    fn repeated_broadcasts() {
        let pool: MasterWorker<u64, u64> = MasterWorker::spawn(3, |_, x| x + 1);
        for round in 0..50 {
            let out = pool
                .broadcast_collect(vec![round, round, round])
                .expect("no panics");
            assert_eq!(out, vec![round + 1; 3]);
        }
        pool.shutdown();
    }

    #[test]
    fn async_partial_collection() {
        let pool: MasterWorker<u64, u64> = MasterWorker::spawn(2, |id, x| {
            if id == 1 {
                std::thread::sleep(Duration::from_millis(100));
            }
            x
        });
        pool.send(0, 7);
        pool.send(1, 9);
        // The fast worker's result arrives well before the slow one's.
        let first = pool
            .recv_timeout(Duration::from_millis(500))
            .expect("alive")
            .expect("fast result");
        assert_eq!(first, (0, 7));
        // Nothing else yet (within a tight poll) — workers alive, so this
        // is Ok(None), not an error.
        assert_eq!(pool.try_recv(), Ok(None));
        // The slow result eventually arrives.
        let second = pool
            .recv_timeout(Duration::from_millis(500))
            .expect("alive")
            .expect("slow result");
        assert_eq!(second, (1, 9));
        pool.shutdown();
    }

    #[test]
    fn workers_see_distinct_ids() {
        let seen = Arc::new(AtomicUsize::new(0));
        let seen2 = Arc::clone(&seen);
        let pool: MasterWorker<(), usize> = MasterWorker::spawn(4, move |id, ()| {
            seen2.fetch_or(1 << id, Ordering::Relaxed);
            id
        });
        let ids = pool
            .broadcast_collect(vec![(), (), (), ()])
            .expect("no panics");
        assert_eq!(ids, vec![0, 1, 2, 3]);
        assert_eq!(seen.load(Ordering::Relaxed), 0b1111);
        pool.shutdown();
    }

    #[test]
    fn shutdown_joins_cleanly_with_pending_nothing() {
        let pool: MasterWorker<u64, u64> = MasterWorker::spawn(2, |_, x| x);
        pool.shutdown();
    }

    #[test]
    #[should_panic]
    fn zero_workers_rejected() {
        let _: MasterWorker<(), ()> = MasterWorker::spawn(0, |_, ()| ());
    }

    #[test]
    fn task_panic_surfaces_as_error_and_worker_survives() {
        let pool: MasterWorker<u64, u64> = MasterWorker::spawn(1, |_, x| {
            assert!(x != 13, "unlucky task");
            x * 2
        });
        pool.send(0, 13);
        match pool.recv() {
            Err(PoolError::WorkerPanicked { worker: 0, message }) => {
                assert!(message.contains("unlucky task"), "got: {message}");
            }
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
        // The same worker keeps serving tasks after the panic.
        pool.send(0, 4);
        assert_eq!(pool.recv(), Ok((0, 8)));
        let stats = pool.worker_stats();
        assert_eq!(stats[0].panics, 1);
        assert_eq!(stats[0].tasks_completed, 1);
        pool.shutdown();
    }

    #[test]
    fn broadcast_retries_transient_panic_once() {
        // Worker 1 fails on its first attempt only; the barrier absorbs it.
        let attempts = Arc::new(AtomicUsize::new(0));
        let attempts2 = Arc::clone(&attempts);
        let pool: MasterWorker<u64, u64> = MasterWorker::spawn(3, move |id, x| {
            if id == 1 && attempts2.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("transient failure");
            }
            x
        });
        let out = pool
            .broadcast_collect(vec![1, 2, 3])
            .expect("retry absorbs a single transient panic");
        assert_eq!(out, vec![1, 2, 3]);
        assert_eq!(pool.worker_stats()[1].panics, 1);
        pool.shutdown();
    }

    #[test]
    fn broadcast_fails_after_retry_on_persistent_panic() {
        let pool: MasterWorker<u64, u64> = MasterWorker::spawn(3, |id, x| {
            if id == 1 {
                panic!("worker 1 always fails");
            }
            x
        });
        let err = pool.broadcast_collect(vec![1, 2, 3]).unwrap_err();
        assert!(
            matches!(err, PoolError::WorkerPanicked { worker: 1, .. }),
            "got {err:?}"
        );
        // One original attempt plus exactly one retry.
        assert_eq!(pool.worker_stats()[1].panics, 2);
        pool.shutdown();
    }

    #[test]
    fn timeout_with_live_workers_is_ok_none() {
        let pool: MasterWorker<u64, u64> = MasterWorker::spawn(1, |_, x| x);
        assert_eq!(pool.recv_timeout(Duration::from_millis(5)), Ok(None));
        assert_eq!(pool.try_recv(), Ok(None));
        pool.shutdown();
    }

    #[test]
    fn queue_depths_are_observable() {
        let gate = Arc::new(std::sync::Barrier::new(2));
        let gate2 = Arc::clone(&gate);
        let pool: MasterWorker<u64, u64> = MasterWorker::spawn(1, move |_, x| {
            if x == 0 {
                gate2.wait(); // hold the worker until the master has queued up
            }
            x
        });
        pool.send(0, 0);
        pool.send(0, 1);
        pool.send(0, 2);
        // The worker is parked in task 0; tasks 1 and 2 sit in its queue.
        // (Depth may read 3 if the worker has not dequeued task 0 yet.)
        assert!(pool.task_queue_len(0) >= 2);
        gate.wait();
        let mut got = Vec::new();
        for _ in 0..3 {
            got.push(pool.recv().expect("alive").1);
        }
        assert_eq!(got, vec![0, 1, 2]);
        assert_eq!(pool.result_queue_len(), 0);
        pool.shutdown();
    }

    #[test]
    fn busy_stats_accumulate() {
        let pool: MasterWorker<u64, u64> = MasterWorker::spawn(2, |_, x| {
            std::thread::sleep(Duration::from_millis(5));
            x
        });
        let _ = pool.broadcast_collect(vec![1, 2]).expect("no panics");
        let stats = pool.worker_stats();
        for (w, s) in stats.iter().enumerate() {
            assert_eq!(s.tasks_completed, 1, "worker {w}");
            assert!(
                s.busy_seconds >= 0.004,
                "worker {w} busy {}",
                s.busy_seconds
            );
        }
        pool.shutdown();
    }

    #[test]
    fn respawn_discards_stale_replies_and_serves_fresh_tasks() {
        let gate = Arc::new(std::sync::Barrier::new(2));
        let gate2 = Arc::clone(&gate);
        let mut pool: MasterWorker<u64, u64> = MasterWorker::spawn(1, move |_, x| {
            if x == 0 {
                gate2.wait(); // hold epoch-0 thread until after the respawn
            }
            x + 100
        });
        pool.send(0, 0); // will complete in epoch 0, after the respawn
        assert_eq!(pool.worker_epoch(0), 0);
        pool.respawn_worker(0);
        assert_eq!(pool.worker_epoch(0), 1);
        gate.wait(); // release the old thread; its reply is now stale
        pool.send(0, 5); // served by the epoch-1 thread
        let got = pool.recv().expect("fresh worker alive");
        assert_eq!(got, (0, 105));
        // The stale epoch-0 reply was (or will shortly be) discarded.
        while pool.stale_results_discarded() == 0 {
            std::thread::sleep(Duration::from_millis(1));
            let _ = pool.try_recv();
        }
        assert_eq!(pool.stale_results_discarded(), 1);
        pool.shutdown();
    }

    #[test]
    fn retiring_all_workers_reports_disconnected() {
        let mut pool: MasterWorker<u64, u64> = MasterWorker::spawn(2, |_, x| x);
        pool.send(0, 1);
        assert_eq!(pool.recv(), Ok((0, 1)));
        pool.retire_worker(0);
        assert!(!pool.is_live(0));
        assert_eq!(pool.live_workers(), 1);
        // One live worker left: empty queue is still Ok(None).
        assert_eq!(pool.try_recv(), Ok(None));
        pool.retire_worker(1);
        assert_eq!(pool.live_workers(), 0);
        assert_eq!(pool.try_recv(), Err(PoolError::Disconnected));
        assert_eq!(
            pool.recv_timeout(Duration::from_secs(60)),
            Err(PoolError::Disconnected),
            "fully retired pool must not wait out the timeout"
        );
        assert_eq!(pool.recv(), Err(PoolError::Disconnected));
        pool.shutdown();
    }

    #[test]
    fn respawn_readmits_a_retired_worker() {
        let mut pool: MasterWorker<u64, u64> = MasterWorker::spawn(1, |_, x| x * 3);
        pool.retire_worker(0);
        assert_eq!(pool.try_recv(), Err(PoolError::Disconnected));
        pool.respawn_worker(0);
        assert!(pool.is_live(0));
        pool.send(0, 7);
        assert_eq!(pool.recv(), Ok((0, 21)));
        pool.shutdown();
    }
}
