//! The collaborative multisearch topology (§III.E of the paper).
//!
//! Every searcher owns a mailbox and a *communication list* — a randomly
//! initialized ordering of the other searchers. When a searcher finds an
//! improving solution it sends it to the **single** process at the head of
//! its list, then rotates the list (head moves to the bottom). This keeps
//! communication overhead small and prevents every process from converging
//! on the same region.
//!
//! # Peer liveness
//!
//! Peers can die (a searcher thread finishing early or crashing) or be
//! *suspected* dead by the sender (repeated undelivered exchanges under
//! fault injection). [`Endpoint::send_next`] tracks a live flag per peer:
//! delivery failures mark the peer dead, dead peers are skipped by the
//! rotation (the message fails over to the next live peer in list order
//! within the same call), and every [`Endpoint::probe_interval`]-th send
//! probes one dead peer with the real message — a successful probe
//! re-admits the peer into the rotation. Callers can also mark a peer
//! suspect explicitly with [`Endpoint::quarantine_peer`].

use crossbeam::channel::{unbounded, Receiver, Sender};
use detrand::Rng;
use std::cell::Cell;

/// Default number of sends between probes of a dead peer.
pub const DEFAULT_PROBE_INTERVAL: u64 = 8;

/// How an endpoint delivers a message to one peer.
///
/// The rotation, liveness tracking, failover, and probe re-admission in
/// [`Endpoint`] are all expressed against this trait, so the in-process
/// channel delivery and a network delivery (the cluster crate's TCP
/// transport) share the exact same semantics. `send` must detect failure
/// *within the call* and hand the undelivered message back, so the
/// rotation can fail over to the next live peer without losing it.
pub trait Transport<M>: Send {
    /// Delivers `msg` to the peer, or returns it on failure.
    fn send(&self, msg: M) -> Result<(), M>;
}

/// The in-process [`Transport`]: an unbounded channel to the peer's inbox.
pub struct ChannelTransport<M> {
    tx: Sender<M>,
}

impl<M> ChannelTransport<M> {
    /// Wraps a sender to a peer's inbox.
    pub fn new(tx: Sender<M>) -> Self {
        Self { tx }
    }
}

impl<M: Send> Transport<M> for ChannelTransport<M> {
    fn send(&self, msg: M) -> Result<(), M> {
        self.tx.send(msg).map_err(|e| e.0)
    }
}

/// A liveness transition observed by an endpoint, for telemetry. Drained
/// with [`Endpoint::take_peer_events`]; the endpoint itself only uses the
/// live flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeerEvent {
    /// The peer was marked dead (failed delivery or explicit quarantine).
    Died(usize),
    /// A probe delivered to the dead peer; it re-entered the rotation.
    Readmitted(usize),
}

struct PeerLink<M> {
    id: usize,
    tx: Box<dyn Transport<M>>,
    live: bool,
}

/// One searcher's endpoints in the multisearch network.
pub struct Endpoint<M> {
    /// This searcher's index in the network.
    pub id: usize,
    inbox: Receiver<M>,
    /// Links to the other peers, in communication-list order.
    comm_list: Vec<PeerLink<M>>,
    /// Rotation cursor.
    next: usize,
    /// Rotation cursor over dead peers for probing.
    probe_next: usize,
    /// Sends between dead-peer probes (0 disables probing).
    probe_interval: u64,
    /// Total send attempts (drives the probe cadence).
    attempts: u64,
    /// Messages actually delivered to a peer.
    sent: Cell<u64>,
    /// Messages drained from the inbox.
    received: Cell<u64>,
    /// Dead peers passed over by the rotation.
    skipped_dead: Cell<u64>,
    /// Sends dropped because no live peer could take them.
    undeliverable: Cell<u64>,
    /// Dead peers brought back by a successful probe.
    readmitted: Cell<u64>,
    /// Liveness transitions not yet drained by telemetry.
    peer_events: Vec<PeerEvent>,
}

impl<M> Endpoint<M> {
    /// Builds an endpoint from an inbox and explicit per-peer transports,
    /// in communication-list order. This is how the cluster crate wires
    /// TCP links into the same rotation; [`network`] uses it with
    /// [`ChannelTransport`] links.
    pub fn from_links(
        id: usize,
        inbox: Receiver<M>,
        links: Vec<(usize, Box<dyn Transport<M>>)>,
    ) -> Self {
        Self {
            id,
            inbox,
            comm_list: links
                .into_iter()
                .map(|(id, tx)| PeerLink { id, tx, live: true })
                .collect(),
            next: 0,
            probe_next: 0,
            probe_interval: DEFAULT_PROBE_INTERVAL,
            attempts: 0,
            sent: Cell::new(0),
            received: Cell::new(0),
            skipped_dead: Cell::new(0),
            undeliverable: Cell::new(0),
            readmitted: Cell::new(0),
            peer_events: Vec::new(),
        }
    }

    /// Drains every message currently waiting in the mailbox.
    pub fn drain(&self) -> Vec<M> {
        let mut out = Vec::new();
        while let Ok(m) = self.inbox.try_recv() {
            out.push(m);
        }
        self.received.set(self.received.get() + out.len() as u64);
        out
    }

    /// Sends `msg` to the peer at the head of the communication list and
    /// rotates the list, skipping peers marked dead — the message fails
    /// over to the next live peer in list order. A failed delivery marks
    /// that peer dead and the scan continues with the message. Returns the
    /// receiving peer's id, or `None` when nothing could take the message:
    /// a single-searcher network, or every peer dead/disconnected (the
    /// message is dropped and counted by
    /// [`Endpoint::undeliverable_count`] — normal near the end of a run).
    ///
    /// Every [`Endpoint::probe_interval`]-th call first offers the message
    /// to one dead peer; if that delivery succeeds the peer is re-admitted
    /// to the rotation.
    pub fn send_next(&mut self, msg: M) -> Option<usize> {
        if self.comm_list.is_empty() {
            return None;
        }
        self.attempts += 1;
        let mut msg = msg;

        // Probe phase: periodically test one dead peer with the real
        // message so a recovered searcher rejoins the rotation.
        if self.probe_interval > 0 && self.attempts.is_multiple_of(self.probe_interval) {
            if let Some(k) = self.next_dead_index() {
                match self.comm_list[k].tx.send(msg) {
                    Ok(()) => {
                        self.comm_list[k].live = true;
                        self.peer_events
                            .push(PeerEvent::Readmitted(self.comm_list[k].id));
                        self.readmitted.set(self.readmitted.get() + 1);
                        self.sent.set(self.sent.get() + 1);
                        return Some(self.comm_list[k].id);
                    }
                    Err(m) => msg = m, // still dead; fall through
                }
            }
        }

        let n = self.comm_list.len();
        for _ in 0..n {
            let k = self.next;
            self.next = (self.next + 1) % n;
            if !self.comm_list[k].live {
                self.skipped_dead.set(self.skipped_dead.get() + 1);
                continue;
            }
            match self.comm_list[k].tx.send(msg) {
                Ok(()) => {
                    self.sent.set(self.sent.get() + 1);
                    return Some(self.comm_list[k].id);
                }
                Err(m) => {
                    self.comm_list[k].live = false;
                    self.peer_events.push(PeerEvent::Died(self.comm_list[k].id));
                    msg = m;
                }
            }
        }
        self.undeliverable.set(self.undeliverable.get() + 1);
        None
    }

    /// Marks `peer` dead without a failed delivery — for callers that
    /// suspect a peer (e.g. repeated fault-injected drops). A later probe
    /// can re-admit it. Unknown ids are ignored.
    pub fn quarantine_peer(&mut self, peer: usize) {
        if let Some(link) = self.comm_list.iter_mut().find(|l| l.id == peer) {
            if link.live {
                link.live = false;
                self.peer_events.push(PeerEvent::Died(peer));
            }
        }
    }

    /// Marks `peer` live again without waiting for a probe — the
    /// administrative heal applied when a recovered node's re-admission is
    /// *announced* (a membership update) rather than detected. No
    /// liveness transition event is emitted and the readmitted counter is
    /// untouched; those track probe-driven recoveries. Unknown ids are
    /// ignored.
    pub fn revive_peer(&mut self, peer: usize) {
        if let Some(link) = self.comm_list.iter_mut().find(|l| l.id == peer) {
            link.live = true;
        }
    }

    /// Drains the liveness transitions observed since the last call, in
    /// occurrence order — the hook telemetry uses to emit `peer_dead` /
    /// `peer_readmitted` events without the endpoint knowing about obs.
    pub fn take_peer_events(&mut self) -> Vec<PeerEvent> {
        std::mem::take(&mut self.peer_events)
    }

    /// Whether `peer` is currently considered live (false for unknown ids).
    pub fn is_peer_live(&self, peer: usize) -> bool {
        self.comm_list.iter().any(|l| l.id == peer && l.live)
    }

    /// Peers currently in the rotation.
    pub fn live_peer_count(&self) -> usize {
        self.comm_list.iter().filter(|l| l.live).count()
    }

    /// Index (into `comm_list`) of the next dead peer to probe, rotating.
    fn next_dead_index(&mut self) -> Option<usize> {
        let n = self.comm_list.len();
        for step in 0..n {
            let k = (self.probe_next + step) % n;
            if !self.comm_list[k].live {
                self.probe_next = (k + 1) % n;
                return Some(k);
            }
        }
        None
    }

    /// Sets the probe cadence (0 disables dead-peer probing).
    pub fn set_probe_interval(&mut self, every_n_sends: u64) {
        self.probe_interval = every_n_sends;
    }

    /// Current probe cadence.
    pub fn probe_interval(&self) -> u64 {
        self.probe_interval
    }

    /// The peer order of the communication list (for tests/traces).
    pub fn peer_order(&self) -> Vec<usize> {
        let n = self.comm_list.len();
        (0..n)
            .map(|k| self.comm_list[(self.next + k) % n].id)
            .collect()
    }

    /// Messages delivered to peers so far.
    pub fn sent_count(&self) -> u64 {
        self.sent.get()
    }

    /// Messages drained from the inbox so far.
    pub fn received_count(&self) -> u64 {
        self.received.get()
    }

    /// Dead peers passed over by the rotation so far.
    pub fn skipped_dead_count(&self) -> u64 {
        self.skipped_dead.get()
    }

    /// Messages dropped because no live peer could take them.
    pub fn undeliverable_count(&self) -> u64 {
        self.undeliverable.get()
    }

    /// Dead peers re-admitted by a successful probe.
    pub fn readmitted_count(&self) -> u64 {
        self.readmitted.get()
    }

    /// Messages currently waiting in the inbox (queue depth).
    pub fn inbox_len(&self) -> usize {
        self.inbox.len()
    }
}

/// The communication-list order of endpoint `id` in an `n`-endpoint
/// network: the other `n − 1` peers, shuffled by the endpoint's own RNG
/// stream. Exposed so a *distributed* mesh (one process per node) can
/// rebuild the exact rotation [`network`] would have built in-process —
/// the draw must happen before any other use of the stream.
pub fn comm_order<R: Rng>(n: usize, id: usize, rng: &mut R) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).filter(|&p| p != id).collect();
    rng.shuffle(&mut order);
    order
}

/// Builds a fully connected network of `n` endpoints. Each endpoint's
/// communication list contains the other `n − 1` peers in an order shuffled
/// by its own RNG stream ("the communication list is initialized randomly
/// before the main loop and different for every process").
pub fn network<M: Send + 'static, R: Rng>(n: usize, rngs: &mut [R]) -> Vec<Endpoint<M>> {
    assert!(n > 0, "network needs at least one endpoint");
    assert!(rngs.len() >= n, "one RNG stream per endpoint required");
    let channels: Vec<(Sender<M>, Receiver<M>)> = (0..n).map(|_| unbounded()).collect();
    let mut endpoints = Vec::with_capacity(n);
    for (id, rng) in rngs.iter_mut().enumerate().take(n) {
        let order = comm_order(n, id, rng);
        let links = order
            .into_iter()
            .map(|p| {
                (
                    p,
                    Box::new(ChannelTransport::new(channels[p].0.clone())) as Box<dyn Transport<M>>,
                )
            })
            .collect::<Vec<_>>();
        endpoints.push(Endpoint::from_links(id, channels[id].1.clone(), links));
    }
    endpoints
}

#[cfg(test)]
mod tests {
    use super::*;
    use detrand::{streams, Xoshiro256StarStar};

    fn rngs(n: usize) -> Vec<Xoshiro256StarStar> {
        streams(99, n)
    }

    #[test]
    fn messages_reach_the_head_of_the_list() {
        let mut eps = network::<u32, _>(3, &mut rngs(3));
        let order = eps[0].peer_order();
        let target = match eps[0].send_next(42) {
            Some(peer) => peer,
            None => panic!("all peers live, delivery must succeed"),
        };
        assert_eq!(target, order[0]);
        let received = eps.iter().map(|e| e.drain()).collect::<Vec<_>>();
        for (id, msgs) in received.iter().enumerate() {
            if id == target {
                assert_eq!(msgs, &vec![42]);
            } else {
                assert!(msgs.is_empty());
            }
        }
    }

    #[test]
    fn list_rotates_round_robin() {
        let mut eps = network::<u32, _>(4, &mut rngs(4));
        let order = eps[1].peer_order();
        let mut targets = Vec::new();
        for i in 0..6 {
            match eps[1].send_next(i) {
                Some(peer) => targets.push(peer),
                None => panic!("all peers live, delivery must succeed"),
            }
        }
        // 3 peers, so targets cycle with period 3 following the list order.
        assert_eq!(&targets[0..3], &order[..]);
        assert_eq!(&targets[3..6], &order[..]);
    }

    #[test]
    fn lists_differ_between_endpoints() {
        // With 6 endpoints and independent shuffles, at least two of the
        // communication lists must differ (overwhelmingly likely; fixed
        // seed makes it deterministic).
        let eps = network::<u32, _>(6, &mut rngs(6));
        let orders: Vec<Vec<usize>> = eps
            .iter()
            .map(|e| {
                // Compare relative order of common peers by removing ids.
                e.peer_order()
            })
            .collect();
        let all_same = orders.windows(2).all(|w| {
            let a: Vec<usize> = w[0]
                .iter()
                .filter(|&&p| !w[1].contains(&p))
                .copied()
                .collect();
            a.is_empty() && w[0].len() == w[1].len()
        });
        // Orders contain different peer sets by construction; just ensure
        // the shuffles are not all the identity permutation.
        let identity_count = eps
            .iter()
            .filter(|e| {
                let sorted = {
                    let mut s = e.peer_order();
                    s.sort_unstable();
                    s
                };
                e.peer_order() == sorted
            })
            .count();
        assert!(
            identity_count < eps.len(),
            "all lists unshuffled is implausible"
        );
        let _ = all_same;
    }

    #[test]
    fn single_endpoint_network_sends_nowhere() {
        let mut eps = network::<u32, _>(1, &mut rngs(1));
        assert_eq!(eps[0].send_next(1), None);
        assert!(eps[0].drain().is_empty());
    }

    #[test]
    fn drain_collects_multiple_messages_in_order() {
        let mut eps = network::<u32, _>(2, &mut rngs(2));
        eps[0].send_next(1);
        eps[0].send_next(2);
        eps[0].send_next(3);
        assert_eq!(eps[1].drain(), vec![1, 2, 3]);
        assert!(eps[1].drain().is_empty());
    }

    #[test]
    fn dropped_peer_does_not_poison_sender() {
        let mut eps = network::<u32, _>(2, &mut rngs(2));
        let ep1 = eps.pop().expect("two endpoints built");
        drop(ep1);
        // Peer 1 is gone; sending must not panic. With no other peer to
        // fail over to, the message is dropped and counted.
        assert_eq!(eps[0].send_next(9), None);
        assert_eq!(eps[0].undeliverable_count(), 1);
        assert!(!eps[0].is_peer_live(1), "failed delivery marks peer dead");
        assert_eq!(eps[0].live_peer_count(), 0);
        // Subsequent sends skip the dead peer instead of re-attempting it
        // every time (probes excepted).
        assert_eq!(eps[0].send_next(10), None);
        assert!(eps[0].skipped_dead_count() >= 1);
    }

    #[test]
    fn delivery_fails_over_to_next_live_peer() {
        let mut eps = network::<u32, _>(3, &mut rngs(3));
        let order = eps[0].peer_order();
        let (first, second) = (order[0], order[1]);
        // Kill the head of the list; the message must reach the next peer
        // in the same send_next call.
        let dead = eps.iter().position(|e| e.id == first).expect("peer exists");
        let dead_ep = eps.remove(dead);
        drop(dead_ep);
        let target = eps[0].send_next(7);
        assert_eq!(target, Some(second));
        assert!(!eps[0].is_peer_live(first));
        assert_eq!(eps[0].sent_count(), 1);
        let receiver = eps.iter().find(|e| e.id == second).expect("peer exists");
        assert_eq!(receiver.drain(), vec![7]);
    }

    #[test]
    fn quarantined_peer_is_skipped_then_readmitted_by_probe() {
        let mut eps = network::<u32, _>(3, &mut rngs(3));
        let order = eps[0].peer_order();
        let suspect = order[0];
        eps[0].set_probe_interval(4);
        eps[0].quarantine_peer(suspect);
        assert!(!eps[0].is_peer_live(suspect));
        assert_eq!(eps[0].live_peer_count(), 1);
        // Sends 1–3 all go to the one live peer; send 4 probes the
        // suspect, whose channel is in fact healthy → re-admitted.
        let mut targets = Vec::new();
        for i in 0..4 {
            targets.push(eps[0].send_next(i));
        }
        assert!(targets[..3].iter().all(|t| *t == Some(order[1])));
        assert_eq!(targets[3], Some(suspect), "probe delivered the message");
        assert!(eps[0].is_peer_live(suspect));
        assert_eq!(eps[0].readmitted_count(), 1);
        assert_eq!(eps[0].live_peer_count(), 2);
        // All four messages were delivered somewhere.
        assert_eq!(eps[0].sent_count(), 4);
    }

    #[test]
    fn counters_track_sent_received_and_depth() {
        let mut eps = network::<u32, _>(2, &mut rngs(2));
        assert_eq!(eps[0].sent_count(), 0);
        eps[0].send_next(1);
        eps[0].send_next(2);
        assert_eq!(eps[0].sent_count(), 2);
        assert_eq!(eps[1].inbox_len(), 2);
        assert_eq!(eps[1].drain(), vec![1, 2]);
        assert_eq!(eps[1].received_count(), 2);
        assert_eq!(eps[1].inbox_len(), 0);
        // Undelivered sends (dropped peer) do not count as sent.
        let ep1 = eps.pop().expect("two endpoints built");
        drop(ep1);
        assert_eq!(eps[0].send_next(3), None);
        assert_eq!(eps[0].sent_count(), 2);
        assert_eq!(eps[0].undeliverable_count(), 1);
    }

    #[test]
    fn messages_cross_threads() {
        let mut eps = network::<u64, _>(3, &mut rngs(3));
        let ep2 = eps.pop().expect("three endpoints built");
        let ep1 = eps.pop().expect("three endpoints built");
        let mut ep0 = eps.pop().expect("three endpoints built");
        let handle = std::thread::spawn(move || {
            let mut got = Vec::new();
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
            while got.len() < 2 && std::time::Instant::now() < deadline {
                got.extend(ep1.drain());
                got.extend(ep2.drain());
                std::thread::yield_now();
            }
            got.len()
        });
        // Two sends hit both peers (round robin over 2 peers).
        ep0.send_next(10);
        ep0.send_next(20);
        assert_eq!(handle.join().unwrap(), 2);
    }
}
