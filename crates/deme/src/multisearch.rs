//! The collaborative multisearch topology (§III.E of the paper).
//!
//! Every searcher owns a mailbox and a *communication list* — a randomly
//! initialized ordering of the other searchers. When a searcher finds an
//! improving solution it sends it to the **single** process at the head of
//! its list, then rotates the list (head moves to the bottom). This keeps
//! communication overhead small and prevents every process from converging
//! on the same region.

use crossbeam::channel::{unbounded, Receiver, Sender};
use detrand::Rng;
use std::cell::Cell;

/// One searcher's endpoints in the multisearch network.
pub struct Endpoint<M> {
    /// This searcher's index in the network.
    pub id: usize,
    inbox: Receiver<M>,
    /// Senders to the other peers, in communication-list order.
    comm_list: Vec<(usize, Sender<M>)>,
    /// Rotation cursor.
    next: usize,
    /// Messages actually delivered to a peer.
    sent: Cell<u64>,
    /// Messages drained from the inbox.
    received: Cell<u64>,
}

impl<M> Endpoint<M> {
    /// Drains every message currently waiting in the mailbox.
    pub fn drain(&self) -> Vec<M> {
        let mut out = Vec::new();
        while let Ok(m) = self.inbox.try_recv() {
            out.push(m);
        }
        self.received.set(self.received.get() + out.len() as u64);
        out
    }

    /// Sends `msg` to the peer at the head of the communication list and
    /// rotates the list. Returns the receiving peer's id, or `None` for a
    /// single-searcher network (nothing to send to) or when the peer has
    /// already shut down (its mailbox is disconnected — normal near the end
    /// of a run, the message is simply dropped).
    pub fn send_next(&mut self, msg: M) -> Option<usize> {
        if self.comm_list.is_empty() {
            return None;
        }
        let (peer, tx) = &self.comm_list[self.next];
        let peer = *peer;
        let delivered = tx.send(msg).is_ok();
        self.next = (self.next + 1) % self.comm_list.len();
        if delivered {
            self.sent.set(self.sent.get() + 1);
        }
        delivered.then_some(peer)
    }

    /// The peer order of the communication list (for tests/traces).
    pub fn peer_order(&self) -> Vec<usize> {
        let n = self.comm_list.len();
        (0..n)
            .map(|k| self.comm_list[(self.next + k) % n].0)
            .collect()
    }

    /// Messages delivered to peers so far.
    pub fn sent_count(&self) -> u64 {
        self.sent.get()
    }

    /// Messages drained from the inbox so far.
    pub fn received_count(&self) -> u64 {
        self.received.get()
    }

    /// Messages currently waiting in the inbox (queue depth).
    pub fn inbox_len(&self) -> usize {
        self.inbox.len()
    }
}

/// Builds a fully connected network of `n` endpoints. Each endpoint's
/// communication list contains the other `n − 1` peers in an order shuffled
/// by its own RNG stream ("the communication list is initialized randomly
/// before the main loop and different for every process").
pub fn network<M, R: Rng>(n: usize, rngs: &mut [R]) -> Vec<Endpoint<M>> {
    assert!(n > 0, "network needs at least one endpoint");
    assert!(rngs.len() >= n, "one RNG stream per endpoint required");
    let channels: Vec<(Sender<M>, Receiver<M>)> = (0..n).map(|_| unbounded()).collect();
    let mut endpoints = Vec::with_capacity(n);
    for (id, rng) in rngs.iter_mut().enumerate().take(n) {
        let mut order: Vec<usize> = (0..n).filter(|&p| p != id).collect();
        rng.shuffle(&mut order);
        let comm_list = order
            .into_iter()
            .map(|p| (p, channels[p].0.clone()))
            .collect::<Vec<_>>();
        endpoints.push(Endpoint {
            id,
            inbox: channels[id].1.clone(),
            comm_list,
            next: 0,
            sent: Cell::new(0),
            received: Cell::new(0),
        });
    }
    endpoints
}

#[cfg(test)]
mod tests {
    use super::*;
    use detrand::{streams, Xoshiro256StarStar};

    fn rngs(n: usize) -> Vec<Xoshiro256StarStar> {
        streams(99, n)
    }

    #[test]
    fn messages_reach_the_head_of_the_list() {
        let mut eps = network::<u32, _>(3, &mut rngs(3));
        let order = eps[0].peer_order();
        let target = eps[0].send_next(42).unwrap();
        assert_eq!(target, order[0]);
        let received = eps.iter().map(|e| e.drain()).collect::<Vec<_>>();
        for (id, msgs) in received.iter().enumerate() {
            if id == target {
                assert_eq!(msgs, &vec![42]);
            } else {
                assert!(msgs.is_empty());
            }
        }
    }

    #[test]
    fn list_rotates_round_robin() {
        let mut eps = network::<u32, _>(4, &mut rngs(4));
        let order = eps[1].peer_order();
        let mut targets = Vec::new();
        for i in 0..6 {
            targets.push(eps[1].send_next(i).unwrap());
        }
        // 3 peers, so targets cycle with period 3 following the list order.
        assert_eq!(&targets[0..3], &order[..]);
        assert_eq!(&targets[3..6], &order[..]);
    }

    #[test]
    fn lists_differ_between_endpoints() {
        // With 6 endpoints and independent shuffles, at least two of the
        // communication lists must differ (overwhelmingly likely; fixed
        // seed makes it deterministic).
        let eps = network::<u32, _>(6, &mut rngs(6));
        let orders: Vec<Vec<usize>> = eps
            .iter()
            .map(|e| {
                // Compare relative order of common peers by removing ids.
                e.peer_order()
            })
            .collect();
        let all_same = orders.windows(2).all(|w| {
            let a: Vec<usize> = w[0]
                .iter()
                .filter(|&&p| !w[1].contains(&p))
                .copied()
                .collect();
            a.is_empty() && w[0].len() == w[1].len()
        });
        // Orders contain different peer sets by construction; just ensure
        // the shuffles are not all the identity permutation.
        let identity_count = eps
            .iter()
            .filter(|e| {
                let sorted = {
                    let mut s = e.peer_order();
                    s.sort_unstable();
                    s
                };
                e.peer_order() == sorted
            })
            .count();
        assert!(
            identity_count < eps.len(),
            "all lists unshuffled is implausible"
        );
        let _ = all_same;
    }

    #[test]
    fn single_endpoint_network_sends_nowhere() {
        let mut eps = network::<u32, _>(1, &mut rngs(1));
        assert_eq!(eps[0].send_next(1), None);
        assert!(eps[0].drain().is_empty());
    }

    #[test]
    fn drain_collects_multiple_messages_in_order() {
        let mut eps = network::<u32, _>(2, &mut rngs(2));
        eps[0].send_next(1);
        eps[0].send_next(2);
        eps[0].send_next(3);
        assert_eq!(eps[1].drain(), vec![1, 2, 3]);
        assert!(eps[1].drain().is_empty());
    }

    #[test]
    fn dropped_peer_does_not_poison_sender() {
        let mut eps = network::<u32, _>(2, &mut rngs(2));
        let ep1 = eps.pop().unwrap();
        drop(ep1);
        // Peer 1 is gone; sending must not panic, and reports non-delivery.
        assert_eq!(eps[0].send_next(9), None);
    }

    #[test]
    fn counters_track_sent_received_and_depth() {
        let mut eps = network::<u32, _>(2, &mut rngs(2));
        assert_eq!(eps[0].sent_count(), 0);
        eps[0].send_next(1);
        eps[0].send_next(2);
        assert_eq!(eps[0].sent_count(), 2);
        assert_eq!(eps[1].inbox_len(), 2);
        assert_eq!(eps[1].drain(), vec![1, 2]);
        assert_eq!(eps[1].received_count(), 2);
        assert_eq!(eps[1].inbox_len(), 0);
        // Undelivered sends (dropped peer) do not count as sent.
        let ep1 = eps.pop().unwrap();
        drop(ep1);
        assert_eq!(eps[0].send_next(3), None);
        assert_eq!(eps[0].sent_count(), 2);
    }

    #[test]
    fn messages_cross_threads() {
        let mut eps = network::<u64, _>(3, &mut rngs(3));
        let ep2 = eps.pop().unwrap();
        let ep1 = eps.pop().unwrap();
        let mut ep0 = eps.pop().unwrap();
        let handle = std::thread::spawn(move || {
            let mut got = Vec::new();
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
            while got.len() < 2 && std::time::Instant::now() < deadline {
                got.extend(ep1.drain());
                got.extend(ep2.drain());
                std::thread::yield_now();
            }
            got.len()
        });
        // Two sends hit both peers (round robin over 2 peers).
        ep0.send_next(10);
        ep0.send_next(20);
        assert_eq!(handle.join().unwrap(), 2);
    }
}
