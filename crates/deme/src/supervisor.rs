//! Self-healing wrapper around [`MasterWorker`].
//!
//! The pool itself ([`MasterWorker`]) only *reports* failures: a task
//! panic surfaces as [`PoolError::WorkerPanicked`] and a fully retired
//! pool as [`PoolError::Disconnected`]. The [`Supervisor`] turns those
//! reports into a recovery policy:
//!
//! * **Resend with budget** — a panicked task is resent to the next live
//!   worker (round-robin) with a small exponential backoff, up to
//!   [`SupervisorConfig::max_retries`] attempts; after that the task is
//!   declared lost and the caller simply never sees its result (in the
//!   asynchronous tabu search this is equivalent to a permanently stale
//!   neighbor and is sound by construction).
//! * **Quarantine + respawn** — [`SupervisorConfig::quarantine_after`]
//!   *consecutive* panics of one worker quarantine it: its in-flight
//!   tasks are redistributed and the slot is either respawned (fresh
//!   thread, bounded by [`SupervisorConfig::max_respawns`]) or retired.
//! * **Degraded mode** — when fewer than [`SupervisorConfig::quorum`]
//!   workers remain live, the supervisor stops expecting the pool to make
//!   progress and reports [`Supervisor::degraded`]; the caller is
//!   expected to fall back to master-local evaluation instead of
//!   aborting. The receive methods never return an error: every failure
//!   is absorbed into the policy above.
//!
//! Correlating a panic with the task that caused it relies on a FIFO
//! invariant: each worker is single-threaded and serves its task channel
//! in order, so per-worker replies (success *or* panic) come back in
//! dispatch order. The supervisor therefore keeps one FIFO of in-flight
//! tasks per worker and pops the front on every reply.
//!
//! Recovery actions are exposed two ways: aggregate [`RecoveryStats`]
//! and an ordered [`RecoveryEvent`] log drained with
//! [`Supervisor::take_events`] (so callers can forward transitions to a
//! telemetry recorder without this crate depending on one).

use std::collections::VecDeque;
use std::time::Duration;

use crate::master_worker::{MasterWorker, PoolError};

/// Tuning knobs for the recovery policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisorConfig {
    /// Maximum resend attempts per task before declaring it lost.
    pub max_retries: u32,
    /// Consecutive panics of one worker that trigger quarantine.
    pub quarantine_after: u32,
    /// Respawns allowed per worker slot before it is retired for good.
    pub max_respawns: u32,
    /// Minimum live workers; below this the supervisor enters degraded
    /// mode (master-local evaluation) instead of erroring.
    pub quorum: usize,
    /// Base backoff before a resend; attempt `k` waits `base << k`,
    /// capped by `backoff_cap`. Zero disables sleeping (useful in tests).
    pub backoff_base: Duration,
    /// Upper bound on a single backoff sleep.
    pub backoff_cap: Duration,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        Self {
            max_retries: 3,
            quarantine_after: 3,
            max_respawns: 1,
            quorum: 1,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(16),
        }
    }
}

/// One recovery action, in the order it was taken.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryEvent {
    /// A panicked/lost task was resent (to `worker`, as attempt `attempt`).
    TaskResent {
        /// Worker the task was resent to.
        worker: usize,
        /// Resend attempt number (1-based).
        attempt: u32,
    },
    /// A task exhausted its retry budget (or no live worker remained) and
    /// was dropped.
    TaskLost {
        /// Worker whose failure exhausted the budget.
        worker: usize,
    },
    /// A worker hit the consecutive-panic threshold and was pulled out of
    /// rotation.
    WorkerQuarantined {
        /// The quarantined worker.
        worker: usize,
    },
    /// A quarantined worker was replaced by a fresh thread.
    WorkerRespawned {
        /// The respawned worker slot.
        worker: usize,
    },
    /// Live workers fell below quorum; the caller should evaluate
    /// master-locally from here on.
    Degraded {
        /// Live workers remaining at the transition.
        live_workers: usize,
    },
}

/// Aggregate recovery counters (monotonic over the supervisor's life).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Tasks resent after a panic or a quarantine redistribution.
    pub tasks_resent: u64,
    /// Tasks dropped after exhausting the retry budget.
    pub tasks_lost: u64,
    /// Quarantine transitions.
    pub workers_quarantined: u64,
    /// Respawn transitions.
    pub workers_respawned: u64,
    /// Whether degraded mode was ever entered.
    pub degraded: bool,
}

struct Tracked<T> {
    task: T,
    attempt: u32,
}

struct WorkerState<T> {
    /// Tasks dispatched to this worker, oldest first.
    in_flight: VecDeque<Tracked<T>>,
    consecutive_panics: u32,
    respawns_used: u32,
    retired: bool,
}

impl<T> WorkerState<T> {
    fn new() -> Self {
        Self {
            in_flight: VecDeque::new(),
            consecutive_panics: 0,
            respawns_used: 0,
            retired: false,
        }
    }
}

/// Self-healing façade over a [`MasterWorker`] pool. See the module docs
/// for the policy.
///
/// All sends and receives must go through the supervisor (it owns the
/// pool) so the per-worker in-flight FIFOs stay accurate.
pub struct Supervisor<T: Send + Clone + 'static, R: Send + 'static> {
    pool: MasterWorker<T, R>,
    cfg: SupervisorConfig,
    workers: Vec<WorkerState<T>>,
    events: Vec<RecoveryEvent>,
    stats: RecoveryStats,
    degraded: bool,
    resend_cursor: usize,
}

impl<T: Send + Clone + 'static, R: Send + 'static> Supervisor<T, R> {
    /// Wraps `pool` with the recovery policy in `cfg`.
    pub fn new(pool: MasterWorker<T, R>, cfg: SupervisorConfig) -> Self {
        let n = pool.n_workers();
        Self {
            pool,
            cfg,
            workers: (0..n).map(|_| WorkerState::new()).collect(),
            events: Vec::new(),
            stats: RecoveryStats::default(),
            degraded: false,
            resend_cursor: 0,
        }
    }

    /// Total worker slots (live and retired).
    pub fn n_workers(&self) -> usize {
        self.workers.len()
    }

    /// Workers still in rotation.
    pub fn live_workers(&self) -> usize {
        self.workers.iter().filter(|w| !w.retired).count()
    }

    /// Whether `worker` is still in rotation.
    pub fn is_live(&self, worker: usize) -> bool {
        !self.workers[worker].retired
    }

    /// Whether `worker` is live with nothing in flight.
    pub fn is_idle(&self, worker: usize) -> bool {
        self.is_live(worker) && self.workers[worker].in_flight.is_empty()
    }

    /// Tasks currently in flight on `worker`.
    pub fn in_flight(&self, worker: usize) -> usize {
        self.workers[worker].in_flight.len()
    }

    /// True once live workers dropped below quorum; the caller should
    /// evaluate master-locally and stop dispatching.
    pub fn degraded(&self) -> bool {
        self.degraded
    }

    /// Aggregate recovery counters.
    pub fn stats(&self) -> RecoveryStats {
        self.stats
    }

    /// Drains the ordered recovery-action log accumulated since the last
    /// call (for forwarding into a telemetry recorder).
    pub fn take_events(&mut self) -> Vec<RecoveryEvent> {
        std::mem::take(&mut self.events)
    }

    /// Read access to the wrapped pool (queue depths, worker stats).
    pub fn pool(&self) -> &MasterWorker<T, R> {
        &self.pool
    }

    /// Shuts the wrapped pool down, joining all worker threads.
    pub fn shutdown(self) {
        self.pool.shutdown();
    }

    /// Dispatches `task` to `worker` (which must be live).
    ///
    /// # Panics
    /// Panics if `worker` is retired — check [`Supervisor::is_live`]
    /// first, or pick a target with [`Supervisor::idle_live_workers`].
    pub fn send(&mut self, worker: usize, task: T) {
        assert!(
            self.is_live(worker),
            "task dispatched to retired worker {worker}"
        );
        self.pool.send(worker, task.clone());
        self.workers[worker]
            .in_flight
            .push_back(Tracked { task, attempt: 0 });
    }

    /// Live workers with an empty in-flight queue, in slot order.
    pub fn idle_live_workers(&self) -> Vec<usize> {
        (0..self.n_workers()).filter(|&w| self.is_idle(w)).collect()
    }

    /// Non-blocking receive. Panics and dead workers are absorbed into
    /// the recovery policy; `None` means no result is ready (or the pool
    /// is degraded and will never produce one).
    pub fn try_recv(&mut self) -> Option<(usize, R)> {
        loop {
            match self.pool.try_recv() {
                Ok(Some((w, r))) => {
                    self.note_success(w);
                    return Some((w, r));
                }
                Ok(None) => return None,
                Err(e) => {
                    if !self.absorb_error(e) {
                        return None;
                    }
                }
            }
        }
    }

    /// Receive with a timeout; `None` on timeout or degraded pool. Same
    /// failure absorption as [`Supervisor::try_recv`].
    pub fn recv_timeout(&mut self, timeout: Duration) -> Option<(usize, R)> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            match self.pool.recv_timeout(remaining) {
                Ok(Some((w, r))) => {
                    self.note_success(w);
                    return Some((w, r));
                }
                Ok(None) => return None,
                Err(e) => {
                    if !self.absorb_error(e) {
                        return None;
                    }
                }
            }
        }
    }

    fn note_success(&mut self, worker: usize) {
        let state = &mut self.workers[worker];
        state.consecutive_panics = 0;
        // A reply can only correspond to the oldest dispatched task —
        // workers are single-threaded FIFOs.
        state.in_flight.pop_front();
    }

    /// Applies the recovery policy to a pool error. Returns `true` when
    /// receiving should continue (the error was absorbed), `false` when
    /// the caller should observe "no result" (pool collapsed).
    fn absorb_error(&mut self, err: PoolError) -> bool {
        match err {
            PoolError::WorkerPanicked { worker, .. } => {
                self.handle_panic(worker);
                true
            }
            PoolError::Disconnected => {
                self.collapse();
                false
            }
        }
    }

    fn handle_panic(&mut self, worker: usize) {
        let state = &mut self.workers[worker];
        state.consecutive_panics += 1;
        let failed = state.in_flight.pop_front();
        let quarantine = state.consecutive_panics >= self.cfg.quarantine_after;
        if let Some(t) = failed {
            self.resend(worker, t);
        }
        if quarantine {
            self.quarantine(worker);
        }
    }

    /// Resends a failed task to the next live worker (round-robin), or
    /// declares it lost when the budget or the pool is exhausted.
    fn resend(&mut self, origin: usize, mut tracked: Tracked<T>) {
        if tracked.attempt >= self.cfg.max_retries {
            self.stats.tasks_lost += 1;
            self.events.push(RecoveryEvent::TaskLost { worker: origin });
            return;
        }
        let Some(target) = self.next_live_worker() else {
            self.stats.tasks_lost += 1;
            self.events.push(RecoveryEvent::TaskLost { worker: origin });
            return;
        };
        tracked.attempt += 1;
        let backoff = self
            .cfg
            .backoff_base
            .saturating_mul(1u32 << tracked.attempt.min(16))
            .min(self.cfg.backoff_cap);
        if !backoff.is_zero() {
            std::thread::sleep(backoff);
        }
        self.pool.send(target, tracked.task.clone());
        self.stats.tasks_resent += 1;
        self.events.push(RecoveryEvent::TaskResent {
            worker: target,
            attempt: tracked.attempt,
        });
        self.workers[target].in_flight.push_back(tracked);
    }

    fn next_live_worker(&mut self) -> Option<usize> {
        let n = self.n_workers();
        for step in 0..n {
            let w = (self.resend_cursor + step) % n;
            if !self.workers[w].retired {
                self.resend_cursor = (w + 1) % n;
                return Some(w);
            }
        }
        None
    }

    /// Pulls `worker` out of rotation: redistributes its in-flight tasks,
    /// then either respawns the slot (budget permitting) or retires it.
    fn quarantine(&mut self, worker: usize) {
        self.stats.workers_quarantined += 1;
        self.events
            .push(RecoveryEvent::WorkerQuarantined { worker });
        let respawn = self.workers[worker].respawns_used < self.cfg.max_respawns;
        // The pool-side respawn/retire bumps the slot's epoch, so replies
        // to the redistributed tasks from the old thread are discarded —
        // no task can be answered twice.
        if respawn {
            self.pool.respawn_worker(worker);
            let state = &mut self.workers[worker];
            state.respawns_used += 1;
            state.consecutive_panics = 0;
            self.stats.workers_respawned += 1;
            self.events.push(RecoveryEvent::WorkerRespawned { worker });
        } else {
            self.pool.retire_worker(worker);
            self.workers[worker].retired = true;
        }
        let orphans: Vec<Tracked<T>> = self.workers[worker].in_flight.drain(..).collect();
        for t in orphans {
            self.resend(worker, t);
        }
        if self.live_workers() < self.cfg.quorum && !self.degraded {
            self.degraded = true;
            self.stats.degraded = true;
            self.events.push(RecoveryEvent::Degraded {
                live_workers: self.live_workers(),
            });
        }
    }

    /// Every worker is gone: mark the pool degraded and drop all
    /// in-flight tasks as lost.
    fn collapse(&mut self) {
        for w in 0..self.n_workers() {
            self.workers[w].retired = true;
            let lost = self.workers[w].in_flight.len() as u64;
            self.stats.tasks_lost += lost;
            for _ in 0..lost {
                self.events.push(RecoveryEvent::TaskLost { worker: w });
            }
            self.workers[w].in_flight.clear();
        }
        if !self.degraded {
            self.degraded = true;
            self.stats.degraded = true;
            self.events
                .push(RecoveryEvent::Degraded { live_workers: 0 });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn fast_cfg() -> SupervisorConfig {
        SupervisorConfig {
            backoff_base: Duration::ZERO,
            ..SupervisorConfig::default()
        }
    }

    #[test]
    fn resends_a_panicked_task_until_it_succeeds() {
        // Every task panics on its first execution, succeeds after.
        let tries = Arc::new(AtomicUsize::new(0));
        let tries2 = Arc::clone(&tries);
        let pool: MasterWorker<u64, u64> = MasterWorker::spawn(2, move |_, x| {
            if tries2.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("first execution fails");
            }
            x * 2
        });
        let mut sup = Supervisor::new(pool, fast_cfg());
        sup.send(0, 21);
        let got = sup
            .recv_timeout(Duration::from_secs(5))
            .expect("retry delivers the result");
        assert_eq!(got.1, 42);
        let stats = sup.stats();
        assert_eq!(stats.tasks_resent, 1);
        assert_eq!(stats.tasks_lost, 0);
        assert!(matches!(
            sup.take_events()[0],
            RecoveryEvent::TaskResent { attempt: 1, .. }
        ));
        sup.shutdown();
    }

    #[test]
    fn loses_a_task_after_the_retry_budget() {
        let pool: MasterWorker<u64, u64> =
            MasterWorker::spawn(2, |_, x| panic!("task {x} always fails"));
        let mut sup = Supervisor::new(
            pool,
            SupervisorConfig {
                max_retries: 2,
                quarantine_after: 100, // keep quarantine out of this test
                backoff_base: Duration::ZERO,
                ..SupervisorConfig::default()
            },
        );
        sup.send(0, 1);
        // Poll until the retry budget is burned through; no result ever
        // arrives, only recovery actions.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while sup.stats().tasks_lost == 0 && std::time::Instant::now() < deadline {
            assert_eq!(sup.recv_timeout(Duration::from_millis(20)), None);
        }
        let stats = sup.stats();
        assert_eq!(stats.tasks_resent, 2);
        assert_eq!(stats.tasks_lost, 1);
        assert!(sup
            .take_events()
            .iter()
            .any(|e| matches!(e, RecoveryEvent::TaskLost { .. })));
        sup.shutdown();
    }

    #[test]
    fn quarantines_and_respawns_after_consecutive_panics() {
        // Worker 0 panics on every task; worker 1 always succeeds. With
        // quarantine_after=2 and one respawn, worker 0 is pulled twice.
        let pool: MasterWorker<u64, u64> = MasterWorker::spawn(2, |id, x| {
            if id == 0 {
                panic!("worker 0 is broken");
            }
            x + 1
        });
        let mut sup = Supervisor::new(
            pool,
            SupervisorConfig {
                max_retries: 10,
                quarantine_after: 2,
                max_respawns: 1,
                quorum: 1,
                backoff_base: Duration::ZERO,
                ..SupervisorConfig::default()
            },
        );
        for x in 0..4 {
            if sup.is_live(0) {
                sup.send(0, x);
            } else {
                sup.send(1, x);
            }
            let got = sup.recv_timeout(Duration::from_secs(5));
            // Every task ends up on worker 1 eventually.
            assert_eq!(got, Some((1, x + 1)), "task {x}");
        }
        let stats = sup.stats();
        assert_eq!(stats.workers_quarantined, 2, "quarantined, then retired");
        assert_eq!(stats.workers_respawned, 1);
        assert!(!sup.is_live(0), "respawn budget exhausted => retired");
        assert!(!sup.degraded(), "quorum of 1 still met by worker 1");
        assert!(sup.stats().tasks_resent > 0);
        sup.shutdown();
    }

    #[test]
    fn degrades_below_quorum_instead_of_erroring() {
        let pool: MasterWorker<u64, u64> = MasterWorker::spawn(1, |_, _| panic!("always"));
        let mut sup = Supervisor::new(
            pool,
            SupervisorConfig {
                max_retries: 10,
                quarantine_after: 2,
                max_respawns: 0,
                quorum: 1,
                backoff_base: Duration::ZERO,
                ..SupervisorConfig::default()
            },
        );
        sup.send(0, 9);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while !sup.degraded() && std::time::Instant::now() < deadline {
            assert_eq!(sup.recv_timeout(Duration::from_millis(20)), None);
        }
        assert!(sup.degraded());
        assert_eq!(sup.live_workers(), 0);
        let events = sup.take_events();
        assert!(events
            .iter()
            .any(|e| matches!(e, RecoveryEvent::WorkerQuarantined { worker: 0 })));
        assert!(events
            .iter()
            .any(|e| matches!(e, RecoveryEvent::Degraded { live_workers: 0 })));
        // Further receives are calm no-result answers, not panics/errors.
        assert_eq!(sup.try_recv(), None);
        sup.shutdown();
    }

    #[test]
    fn idle_tracking_follows_in_flight_counts() {
        let pool: MasterWorker<u64, u64> = MasterWorker::spawn(2, |_, x| x);
        let mut sup = Supervisor::new(pool, fast_cfg());
        assert_eq!(sup.idle_live_workers(), vec![0, 1]);
        sup.send(0, 1);
        assert_eq!(sup.in_flight(0), 1);
        assert_eq!(sup.idle_live_workers(), vec![1]);
        let got = sup.recv_timeout(Duration::from_secs(5)).expect("result");
        assert_eq!(got, (0, 1));
        assert!(sup.is_idle(0));
        assert_eq!(sup.idle_live_workers(), vec![0, 1]);
        sup.shutdown();
    }

    #[test]
    fn quarantine_redistributes_queued_in_flight_tasks() {
        // Worker 0 panics on every task. Queue three tasks on it at once:
        // the first two panics trigger quarantine (threshold 2), and the
        // third (still queued) task must be redistributed to worker 1,
        // not silently dropped.
        let pool: MasterWorker<u64, u64> = MasterWorker::spawn(2, |id, x| {
            if id == 0 {
                panic!("worker 0 is broken");
            }
            x * 10
        });
        let mut sup = Supervisor::new(
            pool,
            SupervisorConfig {
                max_retries: 10,
                quarantine_after: 2,
                max_respawns: 0,
                quorum: 1,
                backoff_base: Duration::ZERO,
                ..SupervisorConfig::default()
            },
        );
        sup.send(0, 1);
        sup.send(0, 2);
        sup.send(0, 3);
        let mut got = Vec::new();
        while got.len() < 3 {
            match sup.recv_timeout(Duration::from_secs(5)) {
                Some((_, r)) => got.push(r),
                None => break,
            }
        }
        got.sort_unstable();
        assert_eq!(got, vec![10, 20, 30], "all three tasks recovered");
        assert!(!sup.is_live(0));
        sup.shutdown();
    }
}
