//! Conformance suite for [`Transport`](crate::multisearch::Transport)
//! implementations, run against a full [`Endpoint`] mesh.
//!
//! The rotation semantics — head-of-list delivery, dead-peer skip,
//! same-call failover, probe re-admission — are properties of the
//! *endpoint*, but whether they survive a given transport depends on that
//! transport detecting failure within the `send` call. This suite states
//! the contract once; the in-process channel transport (here) and the
//! cluster crate's TCP transport both run it through a [`MeshHarness`].
//!
//! Hidden from docs: this is test infrastructure exported so downstream
//! crates can prove their transports conform, not public API.

use crate::multisearch::{network, Endpoint, PeerEvent};
use detrand::streams;

/// A mesh of endpoints over the transport under test, plus the knobs the
/// suite needs to create partitions.
pub trait MeshHarness {
    /// Mutable access to endpoint `i`'s rotation state.
    fn endpoint(&mut self, i: usize) -> &mut Endpoint<u32>;
    /// Drains everything delivered to peer `i` so far, waiting for
    /// in-flight network deliveries if the transport is asynchronous.
    fn recv_all(&mut self, i: usize) -> Vec<u32>;
    /// Makes deliveries to peer `i` fail from now on (peer crash).
    fn kill(&mut self, i: usize);
    /// Restores deliveries to peer `i`; returns `false` when the
    /// transport cannot model recovery (a dropped channel receiver is
    /// gone for good) and the suite skips the revival case.
    fn revive(&mut self, i: usize) -> bool;
}

/// Runs every conformance case. `make(n)` must return a fresh, fully
/// live mesh of `n` endpoints; the suite panics on the first violation.
pub fn run_transport_suite<H: MeshHarness, F: FnMut(usize) -> H>(mut make: F) {
    delivery_follows_rotation(&mut make(4));
    failed_delivery_fails_over_in_the_same_call(&mut make(3));
    quarantined_peer_is_probed_and_readmitted(&mut make(3));
    killed_then_revived_peer_rejoins_via_probe(&mut make(3));
    recovered_peer_receives_regular_exchanges_again(&mut make(4));
}

fn delivery_follows_rotation<H: MeshHarness>(h: &mut H) {
    let order = h.endpoint(0).peer_order();
    assert_eq!(order.len(), 3);
    let mut targets = Vec::new();
    for i in 0..6 {
        targets.push(h.endpoint(0).send_next(i).expect("all peers live"));
    }
    assert_eq!(&targets[0..3], &order[..], "first cycle follows the list");
    assert_eq!(&targets[3..6], &order[..], "list rotates round robin");
    for &p in &order {
        assert_eq!(h.recv_all(p).len(), 2, "peer {p} got its two messages");
    }
    assert_eq!(h.endpoint(0).sent_count(), 6);
}

fn failed_delivery_fails_over_in_the_same_call<H: MeshHarness>(h: &mut H) {
    let order = h.endpoint(0).peer_order();
    let (head, second) = (order[0], order[1]);
    h.kill(head);
    let target = h.endpoint(0).send_next(7);
    assert_eq!(
        target,
        Some(second),
        "message fails over to the next live peer within one send_next call"
    );
    assert!(!h.endpoint(0).is_peer_live(head), "failed peer marked dead");
    assert_eq!(h.endpoint(0).sent_count(), 1);
    assert_eq!(
        h.recv_all(second),
        vec![7],
        "failover preserved the payload"
    );
    assert_eq!(
        h.endpoint(0).take_peer_events(),
        vec![PeerEvent::Died(head)],
        "death transition is observable exactly once"
    );
}

fn quarantined_peer_is_probed_and_readmitted<H: MeshHarness>(h: &mut H) {
    let order = h.endpoint(0).peer_order();
    let (suspect, healthy) = (order[0], order[1]);
    h.endpoint(0).set_probe_interval(4);
    h.endpoint(0).quarantine_peer(suspect);
    let mut targets = Vec::new();
    for i in 0..4 {
        targets.push(h.endpoint(0).send_next(i));
    }
    assert!(
        targets[..3].iter().all(|t| *t == Some(healthy)),
        "quarantined peer is skipped by the rotation"
    );
    assert_eq!(
        targets[3],
        Some(suspect),
        "the probe send carries the real message to the suspect"
    );
    assert!(h.endpoint(0).is_peer_live(suspect));
    assert_eq!(h.endpoint(0).readmitted_count(), 1);
    assert_eq!(h.recv_all(suspect), vec![3]);
    assert_eq!(
        h.endpoint(0).take_peer_events(),
        vec![PeerEvent::Died(suspect), PeerEvent::Readmitted(suspect)]
    );
}

fn killed_then_revived_peer_rejoins_via_probe<H: MeshHarness>(h: &mut H) {
    let order = h.endpoint(0).peer_order();
    let victim = order[0];
    h.kill(victim);
    h.endpoint(0).set_probe_interval(2);
    assert_ne!(h.endpoint(0).send_next(0), Some(victim));
    assert!(!h.endpoint(0).is_peer_live(victim));
    if !h.revive(victim) {
        return; // transport cannot model recovery; nothing more to prove
    }
    let mut readmitted = false;
    for i in 1..10 {
        if h.endpoint(0).send_next(i) == Some(victim) {
            readmitted = true;
            break;
        }
    }
    assert!(readmitted, "a probe re-admitted the revived peer");
    assert!(h.endpoint(0).is_peer_live(victim));
    let events = h.endpoint(0).take_peer_events();
    assert!(events.contains(&PeerEvent::Died(victim)));
    assert!(events.contains(&PeerEvent::Readmitted(victim)));
}

/// Re-admission is not the end of the story: after the probe brings a
/// recovered peer back, it must receive *regular* rotation traffic again,
/// not just the one probe-carried message. Quarantine (the transport keeps
/// working, so this runs on every harness), probe back in, then disable
/// probes entirely — whatever the peer receives from here on came through
/// the ordinary rotation.
fn recovered_peer_receives_regular_exchanges_again<H: MeshHarness>(h: &mut H) {
    let order = h.endpoint(0).peer_order();
    let victim = order[0];
    h.endpoint(0).set_probe_interval(3);
    h.endpoint(0).quarantine_peer(victim);
    let mut value = 0u32;
    while !h.endpoint(0).is_peer_live(victim) {
        h.endpoint(0).send_next(value);
        value += 1;
        assert!(value < 32, "probe never re-admitted the quarantined peer");
    }
    assert!(
        !h.recv_all(victim).is_empty(),
        "the re-admitting probe carried a real message"
    );
    // Probes are now effectively off; two full cycles must hand the
    // recovered peer exactly its two rotation slots.
    h.endpoint(0).set_probe_interval(1_000_000);
    let mut hits = 0;
    for _ in 0..order.len() * 2 {
        if h.endpoint(0).send_next(value) == Some(victim) {
            hits += 1;
        }
        value += 1;
    }
    assert_eq!(hits, 2, "recovered peer rejoined the regular rotation");
    assert_eq!(
        h.recv_all(victim).len(),
        2,
        "regular exchanges flow to the recovered peer again"
    );
}

/// The in-process reference harness: a [`network`] of channel endpoints.
/// `kill` drops the victim's whole endpoint (receiver included), which is
/// exactly how a finished searcher thread disappears; channels cannot be
/// revived, so `revive` reports unsupported.
pub struct ChannelMesh {
    endpoints: Vec<Option<Endpoint<u32>>>,
}

impl ChannelMesh {
    /// A fresh all-live mesh of `n` endpoints (fixed seed).
    pub fn new(n: usize) -> Self {
        let mut rngs = streams(99, n);
        Self {
            endpoints: network(n, &mut rngs).into_iter().map(Some).collect(),
        }
    }
}

impl MeshHarness for ChannelMesh {
    fn endpoint(&mut self, i: usize) -> &mut Endpoint<u32> {
        self.endpoints[i].as_mut().expect("endpoint killed")
    }

    fn recv_all(&mut self, i: usize) -> Vec<u32> {
        self.endpoint(i).drain()
    }

    fn kill(&mut self, i: usize) {
        self.endpoints[i] = None;
    }

    fn revive(&mut self, _i: usize) -> bool {
        false
    }
}
