//! Deterministic virtual-time simulation of a message-passing cluster.
//!
//! The paper measured runtimes and speedups on an SGI Origin 3800 with 128
//! processors. When the reproduction host has fewer cores than the
//! experiment needs (in the limit: a single-core container, where OS
//! threads can only timeshare), real wall-clock measurements cannot show
//! parallel speedup at all. This module substitutes the machine: work is
//! executed on one thread, each unit's cost is measured while it runs
//! alone, and per-processor **virtual clocks** plus a simple interconnect
//! model (per-message latency, with a congestion factor for many-way
//! collaborative traffic) yield the makespan a real cluster would have
//! achieved. The simulated parallel variants in `tsmo-core` are built on
//! this; DESIGN.md documents the substitution.
//!
//! The model is deliberately simple and fully deterministic given the
//! measured costs:
//!
//! * every processor has a clock, advanced by the measured duration of
//!   each work item executed "on" it;
//! * a message sent at time `t` arrives at `t + latency` (the receiver can
//!   process it once its own clock has reached the arrival time);
//! * a barrier sets every clock to the maximum;
//! * the run's `makespan` is the maximum clock.

use std::time::Instant;

/// A simulated cluster of `n` processors with per-message latency and
/// optional per-processor speed factors (heterogeneous machines).
#[derive(Debug, Clone)]
pub struct VirtualCluster {
    clocks: Vec<f64>,
    /// Relative speed of each processor (1.0 = reference speed); measured
    /// work costs are divided by this when charged.
    speeds: Vec<f64>,
    latency: f64,
}

impl VirtualCluster {
    /// A homogeneous cluster of `n` processors whose messages take
    /// `latency` seconds.
    ///
    /// # Panics
    /// Panics if `n == 0` or the latency is negative.
    pub fn new(n: usize, latency: f64) -> Self {
        assert!(n > 0, "a cluster needs at least one processor");
        assert!(latency >= 0.0, "latency cannot be negative");
        Self {
            clocks: vec![0.0; n],
            speeds: vec![1.0; n],
            latency,
        }
    }

    /// A heterogeneous cluster: `speeds[p]` is processor `p`'s relative
    /// speed (0.5 = half as fast as the reference; measured costs charged
    /// to it take twice as long in virtual time). The paper motivates the
    /// asynchronous variant with exactly this setting: "the asynchronous
    /// algorithms are interesting as they should perform well on both
    /// homogenous and heterogenous systems".
    ///
    /// # Panics
    /// Panics on an empty or non-positive speed vector, or negative latency.
    pub fn heterogeneous(speeds: Vec<f64>, latency: f64) -> Self {
        assert!(!speeds.is_empty(), "a cluster needs at least one processor");
        assert!(speeds.iter().all(|&s| s > 0.0), "speeds must be positive");
        assert!(latency >= 0.0, "latency cannot be negative");
        Self {
            clocks: vec![0.0; speeds.len()],
            speeds,
            latency,
        }
    }

    /// Processor `p`'s relative speed.
    pub fn speed(&self, p: usize) -> f64 {
        self.speeds[p]
    }

    /// Number of processors.
    pub fn n_processors(&self) -> usize {
        self.clocks.len()
    }

    /// The configured per-message latency.
    pub fn latency(&self) -> f64 {
        self.latency
    }

    /// Processor `p`'s current virtual time.
    pub fn clock(&self, p: usize) -> f64 {
        self.clocks[p]
    }

    /// Manually advances processor `p` by `dt` seconds.
    ///
    /// # Panics
    /// Panics if `dt` is negative.
    pub fn advance(&mut self, p: usize, dt: f64) {
        assert!(dt >= 0.0, "cannot advance backwards");
        self.clocks[p] += dt;
    }

    /// Moves processor `p`'s clock forward to `t` (no-op if already past).
    pub fn advance_to(&mut self, p: usize, t: f64) {
        if t > self.clocks[p] {
            self.clocks[p] = t;
        }
    }

    /// Executes `f` "on" processor `p`: the closure runs immediately on the
    /// calling thread, its wall-clock duration is measured, and `p`'s
    /// virtual clock advances by that duration divided by the processor's
    /// speed factor. On an otherwise idle host this measures the work's
    /// true serial cost.
    pub fn charge<R>(&mut self, p: usize, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let out = f();
        self.clocks[p] += start.elapsed().as_secs_f64() / self.speeds[p];
        out
    }

    /// Sends a message from `from` (at its current time): returns the
    /// virtual arrival time at the destination. `congestion` scales the
    /// latency — pass 1.0 for point-to-point master–worker traffic, or a
    /// larger factor to model interconnect contention (the collaborative
    /// variant charges a factor proportional to the processor count, which
    /// is what makes its runtime grow with P as in the paper's tables).
    pub fn send_at(&self, from: usize, congestion: f64) -> f64 {
        self.clocks[from] + self.latency * congestion.max(0.0)
    }

    /// Receives a message that arrived at `arrival` on processor `p`: `p`'s
    /// clock moves to at least the arrival time.
    pub fn receive(&mut self, p: usize, arrival: f64) {
        self.advance_to(p, arrival);
    }

    /// Synchronizes every clock to the maximum (a full barrier).
    pub fn barrier(&mut self) {
        let max = self.makespan();
        for c in &mut self.clocks {
            *c = max;
        }
    }

    /// The cluster's makespan so far — the virtual runtime of the program.
    pub fn makespan(&self) -> f64 {
        self.clocks.iter().copied().fold(0.0, f64::max)
    }

    /// The earliest clock — which processor would act next in an
    /// event-driven schedule. Returns `(processor, time)`.
    pub fn earliest(&self) -> (usize, f64) {
        self.clocks
            .iter()
            .copied()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.partial_cmp(b).expect("clocks are not NaN"))
            .expect("cluster is non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_advances_only_the_target_clock() {
        let mut c = VirtualCluster::new(3, 0.0);
        let out = c.charge(1, || {
            std::thread::sleep(std::time::Duration::from_millis(5));
            42
        });
        assert_eq!(out, 42);
        assert_eq!(c.clock(0), 0.0);
        assert!(c.clock(1) >= 0.005);
        assert_eq!(c.clock(2), 0.0);
        assert_eq!(c.makespan(), c.clock(1));
    }

    #[test]
    fn messages_add_latency() {
        let mut c = VirtualCluster::new(2, 0.1);
        c.advance(0, 1.0);
        let arrival = c.send_at(0, 1.0);
        assert!((arrival - 1.1).abs() < 1e-12);
        c.receive(1, arrival);
        assert!((c.clock(1) - 1.1).abs() < 1e-12);
        // A receiver already past the arrival time is not rewound.
        c.advance(1, 5.0);
        c.receive(1, 2.0);
        assert!((c.clock(1) - 6.1).abs() < 1e-12);
    }

    #[test]
    fn congestion_scales_latency() {
        let mut c = VirtualCluster::new(2, 0.01);
        c.advance(0, 1.0);
        assert!((c.send_at(0, 12.0) - 1.12).abs() < 1e-12);
        assert!((c.send_at(0, 1.0) - 1.01).abs() < 1e-12);
    }

    #[test]
    fn barrier_synchronizes() {
        let mut c = VirtualCluster::new(4, 0.0);
        c.advance(2, 3.5);
        c.barrier();
        for p in 0..4 {
            assert_eq!(c.clock(p), 3.5);
        }
    }

    #[test]
    fn earliest_finds_the_next_actor() {
        let mut c = VirtualCluster::new(3, 0.0);
        c.advance(0, 2.0);
        c.advance(1, 1.0);
        c.advance(2, 3.0);
        assert_eq!(c.earliest(), (1, 1.0));
    }

    #[test]
    fn parallel_work_beats_serial_in_virtual_time() {
        // The whole point: 4 equal work items on 4 processors finish in
        // ~1 unit of virtual time, not 4. Sleep overshoot under a loaded
        // test runner makes tight ratios flaky, so use a work item long
        // enough that only a >2x overshoot of a single sleep could push
        // the parallel makespan past three quarters of the serial one.
        let work = || std::thread::sleep(std::time::Duration::from_millis(20));
        let mut serial = VirtualCluster::new(1, 0.0);
        for _ in 0..4 {
            serial.charge(0, work);
        }
        let mut parallel = VirtualCluster::new(4, 0.0);
        for p in 0..4 {
            parallel.charge(p, work);
        }
        assert!(
            parallel.makespan() < serial.makespan() * 0.75,
            "parallel {} vs serial {}",
            parallel.makespan(),
            serial.makespan()
        );
    }

    #[test]
    fn heterogeneous_speeds_stretch_charged_time() {
        let mut c = VirtualCluster::heterogeneous(vec![1.0, 0.5, 2.0], 0.0);
        let work = || std::thread::sleep(std::time::Duration::from_millis(20));
        c.charge(0, work);
        c.charge(1, work);
        c.charge(2, work);
        // The half-speed processor is charged about twice the reference
        // time, the double-speed one about half. Sleep overshoot under a
        // loaded test runner makes exact ratios flaky, so assert the
        // ordering (which would need a >2x overshoot to invert) and the
        // guaranteed lower bounds from the minimum sleep duration.
        assert!(
            c.clock(1) > c.clock(0) && c.clock(0) > c.clock(2),
            "expected clock(1) > clock(0) > clock(2), got {} / {} / {}",
            c.clock(1),
            c.clock(0),
            c.clock(2)
        );
        assert!(
            c.clock(1) >= 0.040,
            "half speed charges at least 2x: {}",
            c.clock(1)
        );
        assert!(
            c.clock(2) >= 0.010,
            "double speed charges at least 0.5x: {}",
            c.clock(2)
        );
        assert_eq!(c.speed(1), 0.5);
    }

    #[test]
    #[should_panic]
    fn non_positive_speed_rejected() {
        VirtualCluster::heterogeneous(vec![1.0, 0.0], 0.0);
    }

    #[test]
    #[should_panic]
    fn zero_processors_rejected() {
        VirtualCluster::new(0, 0.0);
    }

    #[test]
    #[should_panic]
    fn negative_advance_rejected() {
        VirtualCluster::new(1, 0.0).advance(0, -1.0);
    }
}
