//! Failure-path coverage for the worker pool and its supervisor: how
//! `PoolError` surfaces, how the pool distinguishes "nothing yet" from
//! "never", and how the recovery layer turns failures into resends.

use deme::{MasterWorker, PoolError, RecoveryEvent, Supervisor, SupervisorConfig};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn flaky_pool(fail_every: usize) -> (MasterWorker<u64, u64>, Arc<AtomicUsize>) {
    // Panics on every `fail_every`-th task (1-based), doubles otherwise.
    let calls = Arc::new(AtomicUsize::new(0));
    let calls2 = Arc::clone(&calls);
    let pool = MasterWorker::spawn(2, move |_, x: u64| {
        let k = calls2.fetch_add(1, Ordering::SeqCst) + 1;
        if k.is_multiple_of(fail_every) {
            panic!("scripted failure on call {k}");
        }
        x * 2
    });
    (pool, calls)
}

#[test]
fn broadcast_collect_surfaces_panic_with_worker_id_and_message() {
    let pool: MasterWorker<u64, u64> = MasterWorker::spawn(3, |id, x| {
        if id == 2 {
            panic!("broken evaluation on worker {id}");
        }
        x + 1
    });
    match pool.broadcast_collect(vec![1, 2, 3]) {
        Err(PoolError::WorkerPanicked { worker, message }) => {
            assert_eq!(worker, 2);
            assert!(message.contains("broken evaluation"), "got: {message}");
        }
        other => panic!("expected WorkerPanicked, got {other:?}"),
    }
    // The panicking worker was tried twice (initial + one retry); the
    // healthy workers completed their tasks exactly once.
    let stats = pool.worker_stats();
    assert_eq!(stats[2].panics, 2);
    assert_eq!(stats[2].tasks_completed, 0);
    assert_eq!(stats[0].tasks_completed, 1);
    assert_eq!(stats[1].tasks_completed, 1);
    pool.shutdown();
}

#[test]
fn recv_timeout_distinguishes_empty_alive_from_disconnected() {
    let mut pool: MasterWorker<u64, u64> = MasterWorker::spawn(2, |_, x| x);
    // Empty but alive: a timeout, not an error.
    assert_eq!(pool.recv_timeout(Duration::from_millis(10)), Ok(None));
    // Retire everything: the same call now reports Disconnected, and does
    // so promptly rather than waiting out a long timeout.
    pool.retire_worker(0);
    pool.retire_worker(1);
    let started = std::time::Instant::now();
    assert_eq!(
        pool.recv_timeout(Duration::from_secs(30)),
        Err(PoolError::Disconnected)
    );
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "disconnected pool must fail fast"
    );
    pool.shutdown();
}

#[test]
fn worker_stats_count_panics_per_worker() {
    let pool: MasterWorker<u64, u64> = MasterWorker::spawn(2, |_, x| {
        assert!(x % 2 == 0, "odd task");
        x
    });
    // Worker 0: two panics and one success. Worker 1: untouched.
    for task in [1, 3, 4] {
        pool.send(0, task);
        let _ = pool.recv();
    }
    let stats = pool.worker_stats();
    assert_eq!(stats[0].panics, 2);
    assert_eq!(stats[0].tasks_completed, 1);
    assert_eq!(stats[1].panics, 0);
    assert_eq!(stats[1].tasks_completed, 0);
    pool.shutdown();
}

#[test]
fn supervisor_recovers_every_task_under_periodic_panics() {
    // Every 5th call panics; the supervisor must still deliver all 30
    // results, with at least one resend along the way and nothing lost.
    let (pool, _calls) = flaky_pool(5);
    let mut sup = Supervisor::new(
        pool,
        SupervisorConfig {
            max_retries: 5,
            quarantine_after: 4,
            backoff_base: Duration::ZERO,
            ..SupervisorConfig::default()
        },
    );
    let mut expected: u64 = 0;
    for x in 0..30u64 {
        let w = x as usize % 2;
        if sup.is_live(w) {
            sup.send(w, x);
        } else {
            let fallback = (0..sup.n_workers()).find(|&v| sup.is_live(v));
            sup.send(fallback.expect("a live worker remains"), x);
        }
        expected += x * 2;
    }
    let mut collected: u64 = 0;
    let mut n = 0;
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while n < 30 && std::time::Instant::now() < deadline {
        if let Some((_, r)) = sup.recv_timeout(Duration::from_millis(100)) {
            collected += r;
            n += 1;
        }
    }
    assert_eq!(n, 30, "every task recovered");
    assert_eq!(collected, expected);
    let stats = sup.stats();
    assert!(stats.tasks_resent >= 1, "stats: {stats:?}");
    assert_eq!(stats.tasks_lost, 0, "stats: {stats:?}");
    let events = sup.take_events();
    assert!(events
        .iter()
        .any(|e| matches!(e, RecoveryEvent::TaskResent { .. })));
    sup.shutdown();
}
