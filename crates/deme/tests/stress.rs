//! Concurrency stress tests of the framework: budget + pool + network
//! working together the way the search variants use them.

use deme::{multisearch, EvaluationBudget, MasterWorker};
use detrand::streams;
use std::time::Duration;

/// Workers racing on one budget must hand out exactly the maximum, and the
/// master must see every granted unit back in results.
#[test]
fn budget_and_pool_account_exactly_under_contention() {
    let budget = EvaluationBudget::new(10_000);
    let pool: MasterWorker<u64, u64> = {
        let budget = budget.clone();
        MasterWorker::spawn(4, move |_, want| budget.try_consume(want))
    };
    let mut granted_total = 0u64;
    let mut outstanding = 0usize;
    // Keep all workers saturated with uneven requests.
    let mut next = 0usize;
    for i in 0..5_000u64 {
        pool.send(next, (i % 7) + 1);
        next = (next + 1) % 4;
        outstanding += 1;
        if outstanding >= 16 {
            let (_, granted) = pool.recv().expect("workers alive");
            granted_total += granted;
            outstanding -= 1;
        }
    }
    while outstanding > 0 {
        let (_, granted) = pool.recv().expect("workers alive");
        granted_total += granted;
        outstanding -= 1;
    }
    assert_eq!(granted_total, 10_000);
    assert!(budget.exhausted());
    pool.shutdown();
}

/// A full multisearch network with concurrent senders: every message sent
/// is received exactly once, nothing is duplicated or lost.
#[test]
fn multisearch_network_is_lossless_under_threads() {
    const N: usize = 6;
    const MSGS_PER_PEER: usize = 500;
    let mut rngs = streams(7, N);
    let endpoints = multisearch::network::<(usize, usize), _>(N, &mut rngs);

    let received: Vec<Vec<(usize, usize)>> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for mut ep in endpoints {
            handles.push(scope.spawn(move || {
                let me = ep.id;
                let mut got = Vec::new();
                for k in 0..MSGS_PER_PEER {
                    ep.send_next((me, k));
                    got.extend(ep.drain());
                }
                // Drain stragglers until every peer has finished sending.
                let deadline = std::time::Instant::now() + Duration::from_secs(10);
                while got.len() < MSGS_PER_PEER && std::time::Instant::now() < deadline {
                    got.extend(ep.drain());
                    std::thread::yield_now();
                }
                got
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("peer panicked"))
            .collect()
    });

    // Every peer sends one message per round to exactly one other peer;
    // with a full round-robin rotation each peer also receives exactly
    // MSGS_PER_PEER messages in total (every sender's list contains it
    // the same number of times per rotation cycle).
    let total: usize = received.iter().map(|r| r.len()).sum();
    assert_eq!(total, N * MSGS_PER_PEER, "messages lost or duplicated");
    // Message payloads are unique (sender, sequence) pairs.
    let mut seen = std::collections::HashSet::new();
    for r in &received {
        for &msg in r {
            assert!(seen.insert(msg), "duplicate delivery of {msg:?}");
        }
    }
}

/// The pool survives bursty broadcast/collect cycles interleaved with
/// asynchronous one-off sends.
#[test]
fn pool_mixed_usage_patterns() {
    let pool: MasterWorker<u64, u64> = MasterWorker::spawn(3, |id, x| x * 3 + id as u64);
    for round in 0..100u64 {
        if round % 3 == 0 {
            let out = pool
                .broadcast_collect(vec![round, round, round])
                .expect("no panics");
            assert_eq!(out, vec![3 * round, 3 * round + 1, 3 * round + 2]);
        } else {
            pool.send((round % 3) as usize, round);
            let (w, r) = pool.recv().expect("workers alive");
            assert_eq!(r, 3 * round + w as u64);
        }
    }
    pool.shutdown();
}
