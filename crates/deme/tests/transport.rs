//! The transport conformance suite over the in-process channel transport.
//! The cluster crate runs the identical suite over its TCP transport, so
//! the rotation semantics are proven transport-independent.

use deme::testkit::{run_transport_suite, ChannelMesh};

#[test]
fn channel_transport_passes_the_conformance_suite() {
    run_transport_suite(ChannelMesh::new);
}
