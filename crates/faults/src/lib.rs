//! Deterministic, seed-driven fault injection for the TSMO parallel runtime.
//!
//! Beham's asynchronous master–worker algorithm (Algorithm 2) exists
//! because real worker pools straggle and fail: the master must make
//! progress from a *partial* neighborhood. To test the recovery machinery
//! that makes this possible (`deme::Supervisor`, multisearch peer
//! liveness), this crate injects faults — worker-task panics, stalls, late
//! returns, and dropped/delayed multisearch exchange messages — from a
//! **reproducible plan**.
//!
//! Reproducibility is the design constraint everything here serves:
//!
//! * every decision is a *pure function* of `(fault seed, site, seq)`,
//!   hashed through [`detrand::SplitMix64`]. Two runs with the same fault
//!   seed inject exactly the same faults at the same logical points, no
//!   matter how OS threads interleave;
//! * an **all-zero plan** ([`FaultConfig::default`]) returns
//!   [`TaskFault::None`]/[`MsgFault::Deliver`] for every query and injects
//!   nothing, so a run wired through it is byte-identical to a run without
//!   the fault layer (asserted in `crates/core/tests/faults.rs`);
//! * the hook itself is stateless apart from relaxed counters, so it can be
//!   shared across worker threads without serializing them.
//!
//! Emitters consult the plan through the [`FaultHook`] trait, whose default
//! methods are no-ops — production code paths pay a single virtual call
//! (guarded by [`FaultHook::active`]) when no chaos is configured.

use detrand::{RandomSource, SplitMix64};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// What to do to one worker task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskFault {
    /// Execute normally.
    None,
    /// Panic inside the task function. The `deme` pool catches the panic
    /// and surfaces `PoolError::WorkerPanicked`; the supervisor resends.
    Panic,
    /// Stall *before* computing for this many milliseconds (real time in
    /// the thread-based variants, `millis / 1000` virtual seconds in the
    /// `Sim*` variants).
    Stall {
        /// Delay duration in milliseconds.
        millis: u64,
    },
    /// Compute normally but deliver the result late by this many
    /// milliseconds — the straggler case the async decision function is
    /// built for.
    Late {
        /// Delay duration in milliseconds.
        millis: u64,
    },
}

/// What to do to one multisearch exchange message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgFault {
    /// Deliver normally.
    Deliver,
    /// Silently drop the message (the receiver never sees it).
    Drop,
    /// Deliver after this many sender ticks (loop iterations in the
    /// thread-based variant, virtual latency units in the simulation).
    Delay {
        /// Delay in sender ticks.
        ticks: u64,
    },
}

/// The category of an injected fault, for telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A worker task was made to panic.
    TaskPanic,
    /// A worker task was stalled before computing.
    TaskStall,
    /// A worker task's result was delivered late.
    TaskLate,
    /// An exchange message was dropped.
    ExchangeDrop,
    /// An exchange message was delayed.
    ExchangeDelay,
}

impl FaultKind {
    /// Stable string form, used in events.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultKind::TaskPanic => "task_panic",
            FaultKind::TaskStall => "task_stall",
            FaultKind::TaskLate => "task_late",
            FaultKind::ExchangeDrop => "exchange_drop",
            FaultKind::ExchangeDelay => "exchange_delay",
        }
    }

    /// Parses the string form back (inverse of [`as_str`](Self::as_str)).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "task_panic" => Some(FaultKind::TaskPanic),
            "task_stall" => Some(FaultKind::TaskStall),
            "task_late" => Some(FaultKind::TaskLate),
            "exchange_drop" => Some(FaultKind::ExchangeDrop),
            "exchange_delay" => Some(FaultKind::ExchangeDelay),
            _ => None,
        }
    }
}

/// Injection decision point for the parallel runtime. All methods default
/// to "no fault", so the no-op implementation costs one virtual call.
pub trait FaultHook: Send + Sync {
    /// Whether this hook can ever inject anything. Emitters may skip
    /// bookkeeping (sequence counters, event construction) entirely when
    /// this returns `false`.
    fn active(&self) -> bool {
        false
    }

    /// Decision for the `seq`-th task dispatched to `worker`.
    fn on_task(&self, _worker: usize, _seq: u64) -> TaskFault {
        TaskFault::None
    }

    /// Decision for the `seq`-th exchange message sent by `sender`.
    fn on_exchange(&self, _sender: usize, _seq: u64) -> MsgFault {
        MsgFault::Deliver
    }
}

/// Injects nothing, ever. The default hook.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl FaultHook for NoFaults {}

/// A shared handle to the no-op hook.
pub fn none() -> Arc<dyn FaultHook> {
    Arc::new(NoFaults)
}

/// Rates and magnitudes of the injected faults. All rates are
/// probabilities in `[0, 1]` per decision point; the default is all-zero
/// (inject nothing).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Seed of the fault plan. Independent from the search seed: the same
    /// search can be replayed under different chaos, and vice versa.
    pub seed: u64,
    /// Probability that a worker task panics.
    pub task_panic_rate: f64,
    /// Probability that a worker task stalls before computing.
    pub task_stall_rate: f64,
    /// Stall duration in milliseconds.
    pub stall_millis: u64,
    /// Probability that a worker task returns late.
    pub task_late_rate: f64,
    /// Lateness in milliseconds.
    pub late_millis: u64,
    /// Probability that an exchange message is dropped.
    pub exchange_drop_rate: f64,
    /// Probability that an exchange message is delayed.
    pub exchange_delay_rate: f64,
    /// Exchange delay in sender ticks.
    pub delay_ticks: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            task_panic_rate: 0.0,
            task_stall_rate: 0.0,
            stall_millis: 2,
            task_late_rate: 0.0,
            late_millis: 2,
            exchange_drop_rate: 0.0,
            exchange_delay_rate: 0.0,
            delay_ticks: 2,
        }
    }
}

impl FaultConfig {
    /// The CLI's one-knob chaos profile: `rate` is split evenly between
    /// panics and stalls on the task side, and between drops and delays on
    /// the exchange side. `uniform(seed, 0.0)` is the all-zero plan.
    pub fn uniform(seed: u64, rate: f64) -> Self {
        let rate = rate.clamp(0.0, 1.0);
        Self {
            seed,
            task_panic_rate: rate / 2.0,
            task_stall_rate: rate / 2.0,
            task_late_rate: 0.0,
            exchange_drop_rate: rate / 2.0,
            exchange_delay_rate: rate / 2.0,
            ..Self::default()
        }
    }

    /// Chaos confined to the exchange path: `rate` is split evenly
    /// between message drops and delays, task faults stay at zero. This
    /// is the profile the cluster uses — the same plan perturbs
    /// in-process channels and real sockets identically, because the
    /// decision happens in the searcher loop before the transport is
    /// asked to deliver.
    pub fn exchange_only(seed: u64, rate: f64) -> Self {
        let rate = rate.clamp(0.0, 1.0);
        Self {
            seed,
            exchange_drop_rate: rate / 2.0,
            exchange_delay_rate: rate / 2.0,
            ..Self::default()
        }
    }

    /// Whether every rate is zero (the plan can never inject).
    pub fn is_zero(&self) -> bool {
        self.task_panic_rate == 0.0
            && self.task_stall_rate == 0.0
            && self.task_late_rate == 0.0
            && self.exchange_drop_rate == 0.0
            && self.exchange_delay_rate == 0.0
    }
}

/// Totals of what a [`FaultPlan`] actually injected, by kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InjectionStats {
    /// Tasks made to panic.
    pub task_panics: u64,
    /// Tasks stalled.
    pub task_stalls: u64,
    /// Task results made late.
    pub task_lates: u64,
    /// Exchange messages dropped.
    pub exchange_drops: u64,
    /// Exchange messages delayed.
    pub exchange_delays: u64,
}

impl InjectionStats {
    /// Total faults injected across all kinds.
    pub fn total(&self) -> u64 {
        self.task_panics
            + self.task_stalls
            + self.task_lates
            + self.exchange_drops
            + self.exchange_delays
    }
}

/// A deterministic fault plan.
///
/// Each decision hashes `(seed, site, seq)` through its own
/// [`SplitMix64`] stream, so the answer for a given logical point is fixed
/// at construction and independent of call order or thread timing — the
/// property that makes chaos runs replayable and the zero plan inert.
pub struct FaultPlan {
    cfg: FaultConfig,
    task_panics: AtomicU64,
    task_stalls: AtomicU64,
    task_lates: AtomicU64,
    exchange_drops: AtomicU64,
    exchange_delays: AtomicU64,
}

/// Domain-separation constants for the two decision families.
const DOMAIN_TASK: u64 = 0x7461736B_00000000; // "task"
const DOMAIN_EXCHANGE: u64 = 0x65786368_00000000; // "exch"

fn draw(seed: u64, domain: u64, site: usize, seq: u64) -> f64 {
    // One hashed SplitMix64 step per decision: mix the coordinates into the
    // seed, then take a uniform f64 from the high 53 bits, exactly like
    // `Rng::next_f64`.
    let mut sm = SplitMix64::new(
        seed ^ domain
            ^ (site as u64).wrapping_mul(0x9E3779B97F4A7C15)
            ^ seq.wrapping_mul(0xD1B54A32D192ED03),
    );
    (sm.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl FaultPlan {
    /// Builds a plan from the given rates.
    pub fn new(cfg: FaultConfig) -> Self {
        Self {
            cfg,
            task_panics: AtomicU64::new(0),
            task_stalls: AtomicU64::new(0),
            task_lates: AtomicU64::new(0),
            exchange_drops: AtomicU64::new(0),
            exchange_delays: AtomicU64::new(0),
        }
    }

    /// A shared plan ready to hand to a search run.
    pub fn shared(cfg: FaultConfig) -> Arc<FaultPlan> {
        Arc::new(Self::new(cfg))
    }

    /// The configured rates.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Snapshot of what has been injected so far.
    pub fn stats(&self) -> InjectionStats {
        InjectionStats {
            task_panics: self.task_panics.load(Ordering::Relaxed),
            task_stalls: self.task_stalls.load(Ordering::Relaxed),
            task_lates: self.task_lates.load(Ordering::Relaxed),
            exchange_drops: self.exchange_drops.load(Ordering::Relaxed),
            exchange_delays: self.exchange_delays.load(Ordering::Relaxed),
        }
    }

    /// The decision itself, without counting — pure, for tests and replay
    /// tooling.
    pub fn peek_task(&self, worker: usize, seq: u64) -> TaskFault {
        let u = draw(self.cfg.seed, DOMAIN_TASK, worker, seq);
        if u < self.cfg.task_panic_rate {
            TaskFault::Panic
        } else if u < self.cfg.task_panic_rate + self.cfg.task_stall_rate {
            TaskFault::Stall {
                millis: self.cfg.stall_millis,
            }
        } else if u < self.cfg.task_panic_rate + self.cfg.task_stall_rate + self.cfg.task_late_rate
        {
            TaskFault::Late {
                millis: self.cfg.late_millis,
            }
        } else {
            TaskFault::None
        }
    }

    /// Pure exchange decision (see [`peek_task`](Self::peek_task)).
    pub fn peek_exchange(&self, sender: usize, seq: u64) -> MsgFault {
        let u = draw(self.cfg.seed, DOMAIN_EXCHANGE, sender, seq);
        if u < self.cfg.exchange_drop_rate {
            MsgFault::Drop
        } else if u < self.cfg.exchange_drop_rate + self.cfg.exchange_delay_rate {
            MsgFault::Delay {
                ticks: self.cfg.delay_ticks,
            }
        } else {
            MsgFault::Deliver
        }
    }
}

impl FaultHook for FaultPlan {
    fn active(&self) -> bool {
        !self.cfg.is_zero()
    }

    fn on_task(&self, worker: usize, seq: u64) -> TaskFault {
        let fault = self.peek_task(worker, seq);
        match fault {
            TaskFault::Panic => {
                self.task_panics.fetch_add(1, Ordering::Relaxed);
            }
            TaskFault::Stall { .. } => {
                self.task_stalls.fetch_add(1, Ordering::Relaxed);
            }
            TaskFault::Late { .. } => {
                self.task_lates.fetch_add(1, Ordering::Relaxed);
            }
            TaskFault::None => {}
        }
        fault
    }

    fn on_exchange(&self, sender: usize, seq: u64) -> MsgFault {
        let fault = self.peek_exchange(sender, seq);
        match fault {
            MsgFault::Drop => {
                self.exchange_drops.fetch_add(1, Ordering::Relaxed);
            }
            MsgFault::Delay { .. } => {
                self.exchange_delays.fetch_add(1, Ordering::Relaxed);
            }
            MsgFault::Deliver => {}
        }
        fault
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chaotic() -> FaultConfig {
        FaultConfig {
            seed: 42,
            task_panic_rate: 0.2,
            task_stall_rate: 0.1,
            task_late_rate: 0.05,
            exchange_drop_rate: 0.15,
            exchange_delay_rate: 0.1,
            ..FaultConfig::default()
        }
    }

    #[test]
    fn zero_plan_is_inert_and_inactive() {
        let plan = FaultPlan::new(FaultConfig::default());
        assert!(!plan.active());
        for worker in 0..4 {
            for seq in 0..500 {
                assert_eq!(plan.on_task(worker, seq), TaskFault::None);
                assert_eq!(plan.on_exchange(worker, seq), MsgFault::Deliver);
            }
        }
        assert_eq!(plan.stats().total(), 0);
        assert!(FaultConfig::uniform(7, 0.0).is_zero());
    }

    #[test]
    fn decisions_are_pure_functions_of_site_and_seq() {
        let a = FaultPlan::new(chaotic());
        let b = FaultPlan::new(chaotic());
        // Query b in a scrambled order; answers must still match a's.
        let mut points: Vec<(usize, u64)> =
            (0..8).flat_map(|w| (0..200).map(move |s| (w, s))).collect();
        points.reverse();
        let scrambled: Vec<_> = points.iter().map(|&(w, s)| b.peek_task(w, s)).collect();
        points.reverse();
        for (i, &(w, s)) in points.iter().enumerate() {
            assert_eq!(a.peek_task(w, s), scrambled[points.len() - 1 - i]);
            assert_eq!(a.peek_exchange(w, s), b.peek_exchange(w, s));
        }
    }

    #[test]
    fn different_seeds_give_different_plans() {
        let a = FaultPlan::new(FaultConfig {
            seed: 1,
            ..chaotic()
        });
        let b = FaultPlan::new(FaultConfig {
            seed: 2,
            ..chaotic()
        });
        let differs = (0..2000).any(|s| a.peek_task(0, s) != b.peek_task(0, s));
        assert!(differs, "seeds 1 and 2 produced identical task plans");
    }

    #[test]
    fn rates_are_approximately_respected() {
        let plan = FaultPlan::new(chaotic());
        let n = 20_000u64;
        let mut panics = 0u64;
        for seq in 0..n {
            if plan.on_task(0, seq) == TaskFault::Panic {
                panics += 1;
            }
        }
        let rate = panics as f64 / n as f64;
        assert!(
            (rate - 0.2).abs() < 0.02,
            "panic rate {rate} far from configured 0.2"
        );
        let stats = plan.stats();
        assert_eq!(stats.task_panics, panics);
        assert!(stats.task_stalls > 0);
    }

    #[test]
    fn uniform_profile_splits_the_rate() {
        let cfg = FaultConfig::uniform(9, 0.4);
        assert_eq!(cfg.task_panic_rate, 0.2);
        assert_eq!(cfg.task_stall_rate, 0.2);
        assert_eq!(cfg.exchange_drop_rate, 0.2);
        assert_eq!(cfg.exchange_delay_rate, 0.2);
        assert!(!cfg.is_zero());
        // Rates above 1 are clamped.
        let wild = FaultConfig::uniform(9, 7.0);
        assert!(wild.task_panic_rate <= 0.5);
    }

    #[test]
    fn exchange_only_profile_leaves_tasks_alone() {
        let cfg = FaultConfig::exchange_only(5, 0.3);
        assert_eq!(cfg.task_panic_rate, 0.0);
        assert_eq!(cfg.task_stall_rate, 0.0);
        assert_eq!(cfg.task_late_rate, 0.0);
        assert_eq!(cfg.exchange_drop_rate, 0.15);
        assert_eq!(cfg.exchange_delay_rate, 0.15);
        assert!(!cfg.is_zero());
        assert!(FaultConfig::exchange_only(5, 0.0).is_zero());
        let plan = FaultPlan::new(FaultConfig::exchange_only(5, 0.9));
        assert!((0..200).all(|s| plan.peek_task(0, s) == TaskFault::None));
        assert!((0..200).any(|s| plan.peek_exchange(0, s) != MsgFault::Deliver));
    }

    #[test]
    fn fault_kind_round_trips() {
        for kind in [
            FaultKind::TaskPanic,
            FaultKind::TaskStall,
            FaultKind::TaskLate,
            FaultKind::ExchangeDrop,
            FaultKind::ExchangeDelay,
        ] {
            assert_eq!(FaultKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(FaultKind::parse("mystery"), None);
    }

    #[test]
    fn noop_hook_defaults_are_silent() {
        let hook = none();
        assert!(!hook.active());
        assert_eq!(hook.on_task(3, 17), TaskFault::None);
        assert_eq!(hook.on_exchange(1, 4), MsgFault::Deliver);
    }
}
