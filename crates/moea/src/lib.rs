//! NSGA-II adapted to the multiobjective CVRPTW.
//!
//! The paper's stated future work is "a comparison between the TSMO
//! versions here and the well established multiobjective evolutionary
//! algorithms in both runtime and solution quality". This crate implements
//! that comparator: NSGA-II (Deb et al. 2000) with routing-specific
//! variation operators — best-cost route crossover and neighborhood-move
//! mutation — over the same three objectives and the same evaluation
//! accounting as the tabu searches, so the two families can be compared on
//! equal budgets by the ablation harness.

mod nsga2;
mod paes;
mod sorting;
mod spea2;
mod variation;

pub use nsga2::{Nsga2, Nsga2Config, Nsga2Outcome};
pub use paes::{Paes, PaesConfig, PaesOutcome};
pub use sorting::{crowded_compare, fast_non_dominated_sort};
pub use spea2::{Spea2, Spea2Config, Spea2Outcome};
pub use variation::{best_cost_route_crossover, mutate};
