//! The NSGA-II main loop.

use crate::sorting::{crowded_compare, fast_non_dominated_sort, rank_and_crowd};
use crate::variation::{best_cost_route_crossover, mutate};
use deme::{EvaluationBudget, RunClock};
use detrand::{Rng, Xoshiro256StarStar};
use pareto::{crowding_distances, Dominance};
use std::sync::Arc;
use tsmo_core::CancelToken;
use vrptw::{Instance, Objectives, Solution};
use vrptw_construct::randomized_i1;

/// NSGA-II parameters.
#[derive(Debug, Clone)]
pub struct Nsga2Config {
    /// Population size (and offspring count per generation).
    pub population: usize,
    /// Total evaluation budget, counted like the tabu searches count theirs.
    pub max_evaluations: u64,
    /// Probability of crossover per offspring (else the receiver parent is
    /// cloned before mutation).
    pub crossover_rate: f64,
    /// Probability of mutating each offspring.
    pub mutation_rate: f64,
    /// Master seed.
    pub seed: u64,
    /// Solutions seeding the initial population (resume/racing). The first
    /// `population` entries fill initial slots — each consuming one
    /// evaluation exactly like a cold construction, so warm and cold runs
    /// spend equal budgets — and the remainder is constructed with
    /// randomized I1. Empty leaves the cold start byte-identical.
    pub warm_start: Vec<Solution>,
}

impl Default for Nsga2Config {
    fn default() -> Self {
        Self {
            population: 60,
            max_evaluations: 100_000,
            crossover_rate: 0.9,
            mutation_rate: 0.3,
            seed: 0,
            warm_start: Vec::new(),
        }
    }
}

/// One population member.
#[derive(Debug, Clone)]
struct Individual {
    solution: Solution,
    objectives: Objectives,
    vector: [f64; 3],
}

impl Dominance for Individual {
    fn objectives(&self) -> &[f64] {
        &self.vector
    }
}

/// Result of an NSGA-II run.
#[derive(Debug, Clone)]
pub struct Nsga2Outcome {
    /// The final population's first front.
    pub front: Vec<(Solution, Objectives)>,
    /// Evaluations consumed.
    pub evaluations: u64,
    /// Generations completed.
    pub generations: usize,
    /// Wall-clock seconds.
    pub runtime_seconds: f64,
}

impl Nsga2Outcome {
    /// Front members without time-window violations, as objective vectors.
    pub fn feasible_vectors(&self) -> Vec<[f64; 3]> {
        self.front
            .iter()
            .filter(|(_, o)| o.is_time_feasible(1e-6))
            .map(|(_, o)| o.to_vector())
            .collect()
    }

    /// Best feasible total distance.
    pub fn best_distance(&self) -> Option<f64> {
        self.front
            .iter()
            .filter(|(_, o)| o.is_time_feasible(1e-6))
            .map(|(_, o)| o.distance)
            .min_by(|a, b| a.partial_cmp(b).expect("not NaN"))
    }
}

/// The NSGA-II runner.
pub struct Nsga2 {
    cfg: Nsga2Config,
}

impl Nsga2 {
    /// Creates the runner.
    ///
    /// # Panics
    /// Panics if the population is smaller than 2.
    pub fn new(cfg: Nsga2Config) -> Self {
        assert!(
            cfg.population >= 2,
            "population must hold at least two parents"
        );
        Self { cfg }
    }

    /// Runs to budget exhaustion.
    pub fn run(&self, inst: &Arc<Instance>) -> Nsga2Outcome {
        self.run_with_cancel(inst, CancelToken::never())
    }

    /// Runs until the budget is exhausted or the token stops the run.
    ///
    /// The token is checked at the top of each generation, before any
    /// randomness is drawn, so a truncated run's population trajectory is
    /// a byte-identical prefix of the unstopped run's — the same contract
    /// the TSMO variants honor (`tsmo_core::CancelToken`).
    pub fn run_with_cancel(&self, inst: &Arc<Instance>, cancel: CancelToken) -> Nsga2Outcome {
        let clock = RunClock::start();
        let cfg = &self.cfg;
        let budget = EvaluationBudget::new(cfg.max_evaluations);
        let mut rng = Xoshiro256StarStar::seed_from_u64(cfg.seed);

        let evaluate = |sol: Solution, inst: &Instance| -> Individual {
            let objectives = sol.evaluate(inst);
            Individual {
                solution: sol,
                objectives,
                vector: objectives.to_vector(),
            }
        };

        // Initial population: warm-start seeds first, randomized I1
        // constructions for the remaining slots.
        let init = budget.try_consume(cfg.population as u64) as usize;
        let mut pop: Vec<Individual> = (0..init.max(2))
            .map(|i| {
                let sol = match cfg.warm_start.get(i) {
                    Some(s) => s.clone(),
                    None => randomized_i1(inst, &mut rng),
                };
                evaluate(sol, inst)
            })
            .collect();

        let mut generations = 0;
        while !budget.exhausted() && !cancel.should_stop(generations) {
            let (rank, crowd) = rank_and_crowd(&pop);
            let offspring_budget = budget.try_consume(cfg.population as u64) as usize;
            if offspring_budget == 0 {
                break;
            }
            let mut offspring = Vec::with_capacity(offspring_budget);
            for _ in 0..offspring_budget {
                let p1 = tournament(&pop, &rank, &crowd, &mut rng);
                let p2 = tournament(&pop, &rank, &crowd, &mut rng);
                let mut child = if rng.bernoulli(cfg.crossover_rate) {
                    best_cost_route_crossover(inst, &pop[p1].solution, &pop[p2].solution, &mut rng)
                } else {
                    pop[p1].solution.clone()
                };
                if rng.bernoulli(cfg.mutation_rate) {
                    child = mutate(inst, &child, &mut rng);
                }
                offspring.push(evaluate(child, inst));
            }
            // Environmental selection over parents + offspring.
            pop.extend(offspring);
            pop = environmental_selection(pop, cfg.population);
            generations += 1;
        }

        let fronts = fast_non_dominated_sort(&pop);
        let front = fronts
            .first()
            .map(|f| {
                f.iter()
                    .map(|&i| (pop[i].solution.clone(), pop[i].objectives))
                    .collect()
            })
            .unwrap_or_default();
        Nsga2Outcome {
            front,
            evaluations: budget.consumed(),
            generations,
            runtime_seconds: clock.seconds(),
        }
    }
}

/// Binary tournament by the crowded-comparison operator.
fn tournament<R: Rng>(pop: &[Individual], rank: &[usize], crowd: &[f64], rng: &mut R) -> usize {
    let a = rng.index(pop.len());
    let b = rng.index(pop.len());
    match crowded_compare(rank[a], crowd[a], rank[b], crowd[b]) {
        std::cmp::Ordering::Greater => b,
        _ => a,
    }
}

/// Keeps the best `target` individuals: whole fronts while they fit, the
/// last front truncated by crowding distance.
fn environmental_selection(pop: Vec<Individual>, target: usize) -> Vec<Individual> {
    let fronts = fast_non_dominated_sort(&pop);
    let mut keep: Vec<usize> = Vec::with_capacity(target);
    for front in fronts {
        if keep.len() + front.len() <= target {
            keep.extend(front);
        } else {
            let members: Vec<&Individual> = front.iter().map(|&i| &pop[i]).collect();
            let dist = crowding_distances(&members);
            let mut order: Vec<usize> = (0..front.len()).collect();
            order.sort_by(|&x, &y| {
                dist[y]
                    .partial_cmp(&dist[x])
                    .expect("crowding distances are not NaN")
            });
            keep.extend(
                order
                    .into_iter()
                    .take(target - keep.len())
                    .map(|k| front[k]),
            );
            break;
        }
    }
    let mut flags = vec![false; pop.len()];
    for &i in &keep {
        flags[i] = true;
    }
    pop.into_iter()
        .zip(flags)
        .filter_map(|(ind, keep)| keep.then_some(ind))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vrptw::generator::{GeneratorConfig, InstanceClass};

    fn small() -> Nsga2Config {
        Nsga2Config {
            population: 20,
            max_evaluations: 1_000,
            ..Default::default()
        }
    }

    #[test]
    fn runs_to_budget_and_returns_front() {
        let inst = Arc::new(GeneratorConfig::new(InstanceClass::R2, 30, 3).build());
        let out = Nsga2::new(small()).run(&inst);
        assert_eq!(out.evaluations, 1_000);
        assert!(out.generations > 0);
        assert!(!out.front.is_empty());
        for (sol, _) in &out.front {
            assert!(sol.check(&inst).is_empty());
        }
    }

    #[test]
    fn front_is_mutually_non_dominated() {
        let inst = Arc::new(GeneratorConfig::new(InstanceClass::C2, 30, 6).build());
        let out = Nsga2::new(small()).run(&inst);
        let vecs: Vec<[f64; 3]> = out.front.iter().map(|(_, o)| o.to_vector()).collect();
        assert_eq!(pareto::non_dominated_indices(&vecs).len(), vecs.len());
    }

    #[test]
    fn deterministic_for_same_seed() {
        let inst = Arc::new(GeneratorConfig::new(InstanceClass::R1, 25, 9).build());
        let a = Nsga2::new(Nsga2Config { seed: 7, ..small() }).run(&inst);
        let b = Nsga2::new(Nsga2Config { seed: 7, ..small() }).run(&inst);
        assert_eq!(a.feasible_vectors(), b.feasible_vectors());
        assert_eq!(a.generations, b.generations);
    }

    #[test]
    fn evolution_improves_over_initialization() {
        let inst = Arc::new(GeneratorConfig::new(InstanceClass::R2, 40, 4).build());
        let quick = Nsga2::new(Nsga2Config {
            population: 24,
            max_evaluations: 24, // initialization only
            ..Default::default()
        })
        .run(&inst);
        let long = Nsga2::new(Nsga2Config {
            population: 24,
            max_evaluations: 3_000,
            ..Default::default()
        })
        .run(&inst);
        let (q, l) = (
            quick.best_distance().expect("feasible"),
            long.best_distance().expect("feasible"),
        );
        assert!(l <= q, "evolution should not be worse: {l} vs {q}");
    }

    #[test]
    fn environmental_selection_respects_target_and_elitism() {
        let inst = Arc::new(GeneratorConfig::new(InstanceClass::R2, 20, 1).build());
        let mut rng = Xoshiro256StarStar::seed_from_u64(2);
        let pop: Vec<Individual> = (0..30)
            .map(|_| {
                let s = randomized_i1(&inst, &mut rng);
                let o = s.evaluate(&inst);
                Individual {
                    solution: s,
                    vector: o.to_vector(),
                    objectives: o,
                }
            })
            .collect();
        let best_distance = pop
            .iter()
            .map(|i| i.objectives.distance)
            .fold(f64::INFINITY, f64::min);
        let kept = environmental_selection(pop, 10);
        assert_eq!(kept.len(), 10);
        // Elitism: a best-distance individual is non-dominated in f1 and
        // must survive.
        assert!(kept
            .iter()
            .any(|i| (i.objectives.distance - best_distance).abs() < 1e-9));
    }
}
