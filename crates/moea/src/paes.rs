//! PAES — the Pareto Archived Evolution Strategy (Knowles & Corne 2000),
//! cited by the paper alongside NSGA-II and SPEA2 (§III.A, reference [13]).
//!
//! PAES is the minimal MO metaheuristic: a (1+1) evolution strategy whose
//! only population is the *archive*, maintained with an **adaptive
//! hypergrid** instead of crowding distances. It is an interesting
//! comparator for TSMO precisely because both are trajectory methods: one
//! solution walks through the space, and an archive of non-dominated
//! solutions is the result — PAES without tabu memory, TSMO without the
//! grid.

use crate::variation::mutate;
use deme::{EvaluationBudget, RunClock};
use detrand::Xoshiro256StarStar;
use pareto::{compare, DomRelation};
use std::sync::Arc;
use tsmo_core::CancelToken;
use vrptw::{Instance, Objectives, Solution};
use vrptw_construct::randomized_i1;

/// PAES parameters.
#[derive(Debug, Clone)]
pub struct PaesConfig {
    /// Archive capacity.
    pub archive: usize,
    /// Grid subdivisions per objective are `2^depth`.
    pub depth: u32,
    /// Total evaluation budget.
    pub max_evaluations: u64,
    /// Master seed.
    pub seed: u64,
    /// Solutions seeding the archive (resume/racing): the first becomes
    /// the walking solution, the rest (up to the archive capacity) are
    /// inserted, each consuming one evaluation. Empty leaves the cold
    /// start byte-identical.
    pub warm_start: Vec<Solution>,
}

impl Default for PaesConfig {
    fn default() -> Self {
        Self {
            archive: 30,
            depth: 4,
            max_evaluations: 100_000,
            seed: 0,
            warm_start: Vec::new(),
        }
    }
}

/// An archive member.
#[derive(Debug, Clone)]
struct Member {
    solution: Solution,
    objectives: Objectives,
    vector: [f64; 3],
}

/// The adaptive hypergrid archive of PAES.
///
/// Objective space is bracketed by the archive's current bounding box and
/// divided into `2^depth` cells per dimension; cell population counts
/// drive both the replacement policy (evict from the most crowded cell)
/// and the acceptance rule (prefer solutions in less crowded cells).
#[derive(Debug)]
struct GridArchive {
    members: Vec<Member>,
    capacity: usize,
    depth: u32,
}

impl GridArchive {
    fn new(capacity: usize, depth: u32) -> Self {
        Self {
            members: Vec::with_capacity(capacity + 1),
            capacity,
            depth,
        }
    }

    /// The grid cell of `v` under the current bounds.
    fn region(&self, v: &[f64; 3]) -> [u32; 3] {
        let divisions = 1u32 << self.depth;
        let mut lo = [f64::INFINITY; 3];
        let mut hi = [f64::NEG_INFINITY; 3];
        for m in &self.members {
            for d in 0..3 {
                lo[d] = lo[d].min(m.vector[d]);
                hi[d] = hi[d].max(m.vector[d]);
            }
        }
        let mut cell = [0u32; 3];
        for d in 0..3 {
            let span = (hi[d] - lo[d]).max(1e-12);
            let x = ((v[d] - lo[d]) / span).clamp(0.0, 1.0);
            cell[d] = ((x * divisions as f64) as u32).min(divisions - 1);
        }
        cell
    }

    /// Number of members sharing `v`'s cell.
    fn crowding(&self, v: &[f64; 3]) -> usize {
        let cell = self.region(v);
        self.members
            .iter()
            .filter(|m| self.region(&m.vector) == cell)
            .count()
    }

    /// Tries to insert a non-dominated candidate; evicts a member of the
    /// most crowded cell when full. Returns whether the candidate stayed.
    fn insert(&mut self, member: Member) -> bool {
        // Dominance maintenance.
        let mut i = 0;
        while i < self.members.len() {
            match compare(&self.members[i].vector, &member.vector) {
                DomRelation::Dominates | DomRelation::Equal => return false,
                DomRelation::DominatedBy => {
                    self.members.swap_remove(i);
                }
                DomRelation::Incomparable => i += 1,
            }
        }
        self.members.push(member);
        if self.members.len() > self.capacity {
            // Evict from the most crowded cell (never the newcomer if it
            // sits in a less crowded cell).
            let crowds: Vec<usize> = self
                .members
                .iter()
                .map(|m| self.crowding(&m.vector))
                .collect();
            let max_crowd = *crowds.iter().max().expect("non-empty");
            let victim = self
                .members
                .iter()
                .enumerate()
                .position(|(i, _)| crowds[i] == max_crowd)
                .expect("a most-crowded member exists");
            let evicted_newcomer = victim == self.members.len() - 1;
            self.members.swap_remove(victim);
            return !evicted_newcomer;
        }
        true
    }
}

/// Result of a PAES run.
#[derive(Debug, Clone)]
pub struct PaesOutcome {
    /// Final archive (mutually non-dominated).
    pub front: Vec<(Solution, Objectives)>,
    /// Evaluations consumed.
    pub evaluations: u64,
    /// Accepted moves (trajectory length).
    pub accepted: usize,
    /// Wall-clock seconds.
    pub runtime_seconds: f64,
}

impl PaesOutcome {
    /// Front members without time-window violations, as objective vectors.
    pub fn feasible_vectors(&self) -> Vec<[f64; 3]> {
        self.front
            .iter()
            .filter(|(_, o)| o.is_time_feasible(1e-6))
            .map(|(_, o)| o.to_vector())
            .collect()
    }
}

/// The (1+1)-PAES runner.
pub struct Paes {
    cfg: PaesConfig,
}

impl Paes {
    /// Creates the runner.
    ///
    /// # Panics
    /// Panics if the archive capacity is zero.
    pub fn new(cfg: PaesConfig) -> Self {
        assert!(cfg.archive > 0, "archive capacity must be positive");
        Self { cfg }
    }

    /// Runs to budget exhaustion.
    pub fn run(&self, inst: &Arc<Instance>) -> PaesOutcome {
        self.run_with_cancel(inst, CancelToken::never())
    }

    /// Runs until the budget is exhausted or the token stops the run.
    ///
    /// The token is checked at the top of each (1+1) step, before the
    /// mutation randomness is drawn, so a truncated trajectory is a
    /// byte-identical prefix of the unstopped one (the
    /// `tsmo_core::CancelToken` contract).
    pub fn run_with_cancel(&self, inst: &Arc<Instance>, cancel: CancelToken) -> PaesOutcome {
        let clock = RunClock::start();
        let cfg = &self.cfg;
        let budget = EvaluationBudget::new(cfg.max_evaluations);
        let mut rng = Xoshiro256StarStar::seed_from_u64(cfg.seed);

        let evaluate = |sol: Solution, inst: &Instance| -> Member {
            let objectives = sol.evaluate(inst);
            Member {
                solution: sol,
                objectives,
                vector: objectives.to_vector(),
            }
        };

        budget.try_consume(1);
        let mut current = if let Some(first) = cfg.warm_start.first() {
            evaluate(first.clone(), inst)
        } else {
            evaluate(randomized_i1(inst, &mut rng), inst)
        };
        let mut archive = GridArchive::new(cfg.archive, cfg.depth);
        archive.insert(current.clone());
        for seed in cfg.warm_start.iter().skip(1).take(cfg.archive) {
            if budget.try_consume(1) == 0 {
                break;
            }
            archive.insert(evaluate(seed.clone(), inst));
        }
        let mut accepted = 0;

        let mut steps = 0usize;
        while !cancel.should_stop(steps) && budget.try_consume(1) == 1 {
            steps += 1;
            let candidate = evaluate(mutate(inst, &current.solution, &mut rng), inst);
            match compare(&current.vector, &candidate.vector) {
                DomRelation::Dominates | DomRelation::Equal => continue, // reject
                DomRelation::DominatedBy => {
                    archive.insert(candidate.clone());
                    current = candidate;
                    accepted += 1;
                }
                DomRelation::Incomparable => {
                    // Archive-mediated acceptance: accept if the candidate
                    // lands in a less crowded region than the current.
                    let went_in = archive.insert(candidate.clone());
                    if went_in
                        && archive.crowding(&candidate.vector) <= archive.crowding(&current.vector)
                    {
                        current = candidate;
                        accepted += 1;
                    }
                }
            }
        }

        PaesOutcome {
            front: archive
                .members
                .into_iter()
                .map(|m| (m.solution, m.objectives))
                .collect(),
            evaluations: budget.consumed(),
            accepted,
            runtime_seconds: clock.seconds(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vrptw::generator::{GeneratorConfig, InstanceClass};

    fn small() -> PaesConfig {
        PaesConfig {
            archive: 10,
            max_evaluations: 2_000,
            ..Default::default()
        }
    }

    #[test]
    fn runs_to_budget_with_valid_front() {
        let inst = Arc::new(GeneratorConfig::new(InstanceClass::R2, 30, 3).build());
        let out = Paes::new(small()).run(&inst);
        assert_eq!(out.evaluations, 2_000);
        assert!(!out.front.is_empty());
        assert!(out.front.len() <= 10);
        for (sol, _) in &out.front {
            assert!(sol.check(&inst).is_empty());
        }
        assert!(out.accepted > 0, "a (1+1)-ES that never moves is broken");
    }

    #[test]
    fn front_is_mutually_non_dominated() {
        let inst = Arc::new(GeneratorConfig::new(InstanceClass::C2, 30, 6).build());
        let out = Paes::new(small()).run(&inst);
        let vecs: Vec<[f64; 3]> = out.front.iter().map(|(_, o)| o.to_vector()).collect();
        assert_eq!(pareto::non_dominated_indices(&vecs).len(), vecs.len());
    }

    #[test]
    fn deterministic_for_same_seed() {
        let inst = Arc::new(GeneratorConfig::new(InstanceClass::R1, 25, 9).build());
        let a = Paes::new(PaesConfig { seed: 7, ..small() }).run(&inst);
        let b = Paes::new(PaesConfig { seed: 7, ..small() }).run(&inst);
        assert_eq!(a.feasible_vectors(), b.feasible_vectors());
        assert_eq!(a.accepted, b.accepted);
    }

    #[test]
    fn grid_archive_dominance_maintenance() {
        let mk = |v: [f64; 3]| Member {
            solution: Solution::from_routes(vec![vec![1]]),
            objectives: Objectives {
                distance: v[0],
                vehicles: v[1] as usize,
                tardiness: v[2],
            },
            vector: v,
        };
        let mut g = GridArchive::new(5, 3);
        assert!(g.insert(mk([5.0, 5.0, 5.0])));
        assert!(g.insert(mk([3.0, 6.0, 5.0])));
        assert!(!g.insert(mk([6.0, 6.0, 6.0]))); // dominated
        assert!(g.insert(mk([1.0, 1.0, 1.0]))); // dominates everything
        assert_eq!(g.members.len(), 1);
    }

    #[test]
    fn grid_archive_respects_capacity_via_crowding() {
        let mk = |x: f64| Member {
            solution: Solution::from_routes(vec![vec![1]]),
            objectives: Objectives {
                distance: x,
                vehicles: 1,
                tardiness: 100.0 - x,
            },
            vector: [x, 1.0, 100.0 - x],
        };
        let mut g = GridArchive::new(4, 2);
        for x in [0.0, 10.0, 11.0, 12.0, 90.0, 100.0] {
            g.insert(mk(x));
        }
        assert_eq!(g.members.len(), 4);
        // Unlike crowding-distance truncation, PAES eviction only targets
        // the most crowded *cell*; the low-end cluster {0,10,11,12} shares
        // one cell and must lose members, while the sparse high end
        // {90, 100} survives untouched.
        assert!(g.members.iter().any(|m| m.vector[0] == 90.0));
        assert!(g.members.iter().any(|m| m.vector[0] == 100.0));
        let low_cluster = g.members.iter().filter(|m| m.vector[0] <= 12.0).count();
        assert_eq!(low_cluster, 2, "two evictions must hit the crowded cell");
    }

    #[test]
    fn region_is_stable_for_identical_vectors() {
        let mk = |x: f64| Member {
            solution: Solution::from_routes(vec![vec![1]]),
            objectives: Objectives {
                distance: x,
                vehicles: 1,
                tardiness: 0.0,
            },
            vector: [x, 1.0, 0.0],
        };
        let mut g = GridArchive::new(8, 3);
        g.insert(mk(0.0));
        g.insert(mk(100.0));
        let r1 = g.region(&[50.0, 1.0, 0.0]);
        let r2 = g.region(&[50.0, 1.0, 0.0]);
        assert_eq!(r1, r2);
        assert_ne!(g.region(&[0.0, 1.0, 0.0]), g.region(&[100.0, 1.0, 0.0]));
    }
}
