//! Fast non-dominated sorting and the crowded comparison operator
//! (Deb et al., NSGA-II).

use pareto::{crowding_distances, dominates, Dominance};
use std::cmp::Ordering;

/// Partitions `items` into Pareto fronts: `result[0]` is the set of indices
/// of non-dominated items, `result[1]` the items only dominated by front 0,
/// and so on. The classical O(M·N²) algorithm.
pub fn fast_non_dominated_sort<T: Dominance>(items: &[T]) -> Vec<Vec<usize>> {
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let mut dominated_by: Vec<Vec<usize>> = vec![Vec::new(); n]; // p dominates these
    let mut domination_count = vec![0usize; n];
    for p in 0..n {
        for q in 0..n {
            if p == q {
                continue;
            }
            if dominates(items[p].objectives(), items[q].objectives()) {
                dominated_by[p].push(q);
            } else if dominates(items[q].objectives(), items[p].objectives()) {
                domination_count[p] += 1;
            }
        }
    }
    let mut fronts: Vec<Vec<usize>> = Vec::new();
    let mut current: Vec<usize> = (0..n).filter(|&p| domination_count[p] == 0).collect();
    while !current.is_empty() {
        let mut next = Vec::new();
        for &p in &current {
            for &q in &dominated_by[p] {
                domination_count[q] -= 1;
                if domination_count[q] == 0 {
                    next.push(q);
                }
            }
        }
        fronts.push(std::mem::replace(&mut current, next));
    }
    fronts
}

/// The crowded-comparison operator `≺_n`: lower rank wins; within a rank,
/// larger crowding distance wins.
pub fn crowded_compare(rank_a: usize, crowd_a: f64, rank_b: usize, crowd_b: f64) -> Ordering {
    rank_a.cmp(&rank_b).then_with(|| {
        crowd_b
            .partial_cmp(&crowd_a)
            .expect("crowding distances are not NaN")
    })
}

/// Convenience: ranks (front index per item) and crowding distances
/// (computed within each front) for a population.
pub fn rank_and_crowd<T: Dominance>(items: &[T]) -> (Vec<usize>, Vec<f64>) {
    let fronts = fast_non_dominated_sort(items);
    let mut rank = vec![0usize; items.len()];
    let mut crowd = vec![0.0f64; items.len()];
    for (r, front) in fronts.iter().enumerate() {
        let members: Vec<&T> = front.iter().map(|&i| &items[i]).collect();
        let dists = crowding_distances(&members);
        for (&i, d) in front.iter().zip(dists) {
            rank[i] = r;
            crowd[i] = d;
        }
    }
    (rank, crowd)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_into_correct_fronts() {
        let pts = vec![
            vec![1.0, 1.0], // front 0
            vec![2.0, 2.0], // front 1 (dominated by 0)
            vec![0.5, 3.0], // front 0
            vec![3.0, 3.0], // front 2
            vec![2.5, 1.5], // front 1 (dominated by [1,1] only)
        ];
        let fronts = fast_non_dominated_sort(&pts);
        assert_eq!(fronts.len(), 3);
        let f0: std::collections::HashSet<usize> = fronts[0].iter().copied().collect();
        assert_eq!(f0, [0usize, 2].into_iter().collect());
        let f1: std::collections::HashSet<usize> = fronts[1].iter().copied().collect();
        assert_eq!(f1, [1usize, 4].into_iter().collect());
        assert_eq!(fronts[2], vec![3]);
    }

    #[test]
    fn all_non_dominated_is_one_front() {
        let pts = vec![vec![1.0, 3.0], vec![2.0, 2.0], vec![3.0, 1.0]];
        let fronts = fast_non_dominated_sort(&pts);
        assert_eq!(fronts.len(), 1);
        assert_eq!(fronts[0].len(), 3);
    }

    #[test]
    fn chain_gives_singleton_fronts() {
        let pts = vec![vec![3.0, 3.0], vec![1.0, 1.0], vec![2.0, 2.0]];
        let fronts = fast_non_dominated_sort(&pts);
        assert_eq!(fronts, vec![vec![1], vec![2], vec![0]]);
    }

    #[test]
    fn empty_population() {
        assert!(fast_non_dominated_sort::<Vec<f64>>(&[]).is_empty());
    }

    #[test]
    fn crowded_compare_prefers_rank_then_space() {
        assert_eq!(crowded_compare(0, 0.1, 1, 9.9), Ordering::Less);
        assert_eq!(crowded_compare(2, 0.1, 1, 0.0), Ordering::Greater);
        assert_eq!(crowded_compare(1, 5.0, 1, 2.0), Ordering::Less);
        assert_eq!(crowded_compare(1, 2.0, 1, 2.0), Ordering::Equal);
    }

    #[test]
    fn rank_and_crowd_shapes() {
        let pts = vec![vec![1.0, 1.0], vec![2.0, 2.0], vec![0.5, 3.0]];
        let (rank, crowd) = rank_and_crowd(&pts);
        assert_eq!(rank, vec![0, 1, 0]);
        assert_eq!(crowd.len(), 3);
        // Front-0 members (2 points) both get infinite crowding.
        assert!(crowd[0].is_infinite());
        assert!(crowd[2].is_infinite());
    }
}
