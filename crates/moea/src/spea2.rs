//! SPEA2 (Zitzler, Laumanns & Thiele 2001) adapted to the CVRPTW.
//!
//! The paper cites SPEA2 alongside NSGA-II as the established
//! multiobjective EAs that TSMO should eventually be compared against
//! (§III.A and §V). This implementation follows the original report:
//! strength/raw-fitness plus k-th-nearest-neighbor density, environmental
//! selection into a fixed-size archive with distance-based truncation, and
//! binary tournaments on the archive — using the same routing variation
//! operators as our NSGA-II.

use crate::variation::{best_cost_route_crossover, mutate};
use deme::{EvaluationBudget, RunClock};
use detrand::{Rng, Xoshiro256StarStar};
use pareto::dominates;
use std::sync::Arc;
use tsmo_core::CancelToken;
use vrptw::{Instance, Objectives, Solution};
use vrptw_construct::randomized_i1;

/// SPEA2 parameters.
#[derive(Debug, Clone)]
pub struct Spea2Config {
    /// Population size (offspring per generation).
    pub population: usize,
    /// Archive size `N̄` (environmental selection target).
    pub archive: usize,
    /// Total evaluation budget.
    pub max_evaluations: u64,
    /// Crossover probability per offspring.
    pub crossover_rate: f64,
    /// Mutation probability per offspring.
    pub mutation_rate: f64,
    /// Master seed.
    pub seed: u64,
    /// Solutions seeding the initial population (resume/racing); same
    /// budget accounting and fill rule as [`crate::Nsga2Config::warm_start`].
    pub warm_start: Vec<Solution>,
}

impl Default for Spea2Config {
    fn default() -> Self {
        Self {
            population: 60,
            archive: 30,
            max_evaluations: 100_000,
            crossover_rate: 0.9,
            mutation_rate: 0.3,
            seed: 0,
            warm_start: Vec::new(),
        }
    }
}

#[derive(Debug, Clone)]
struct Individual {
    solution: Solution,
    objectives: Objectives,
    vector: [f64; 3],
}

/// Result of a SPEA2 run.
#[derive(Debug, Clone)]
pub struct Spea2Outcome {
    /// Non-dominated members of the final archive.
    pub front: Vec<(Solution, Objectives)>,
    /// Evaluations consumed.
    pub evaluations: u64,
    /// Generations completed.
    pub generations: usize,
    /// Wall-clock seconds.
    pub runtime_seconds: f64,
}

impl Spea2Outcome {
    /// Front members without time-window violations, as objective vectors.
    pub fn feasible_vectors(&self) -> Vec<[f64; 3]> {
        self.front
            .iter()
            .filter(|(_, o)| o.is_time_feasible(1e-6))
            .map(|(_, o)| o.to_vector())
            .collect()
    }
}

/// The SPEA2 runner.
pub struct Spea2 {
    cfg: Spea2Config,
}

impl Spea2 {
    /// Creates the runner.
    ///
    /// # Panics
    /// Panics if population or archive sizes are below 2.
    pub fn new(cfg: Spea2Config) -> Self {
        assert!(
            cfg.population >= 2 && cfg.archive >= 2,
            "sizes must be at least 2"
        );
        Self { cfg }
    }

    /// Runs to budget exhaustion.
    pub fn run(&self, inst: &Arc<Instance>) -> Spea2Outcome {
        self.run_with_cancel(inst, CancelToken::never())
    }

    /// Runs until the budget is exhausted or the token stops the run.
    ///
    /// The token is checked once per generation — after environmental
    /// selection, before any mating randomness is drawn — so a truncated
    /// run returns the same archive the unstopped run held at that
    /// generation (the `tsmo_core::CancelToken` prefix contract).
    pub fn run_with_cancel(&self, inst: &Arc<Instance>, cancel: CancelToken) -> Spea2Outcome {
        let clock = RunClock::start();
        let cfg = &self.cfg;
        let budget = EvaluationBudget::new(cfg.max_evaluations);
        let mut rng = Xoshiro256StarStar::seed_from_u64(cfg.seed);
        let evaluate = |sol: Solution, inst: &Instance| -> Individual {
            let objectives = sol.evaluate(inst);
            Individual {
                solution: sol,
                objectives,
                vector: objectives.to_vector(),
            }
        };

        let init = budget.try_consume(cfg.population as u64) as usize;
        let mut population: Vec<Individual> = (0..init.max(2))
            .map(|i| {
                let sol = match cfg.warm_start.get(i) {
                    Some(s) => s.clone(),
                    None => randomized_i1(inst, &mut rng),
                };
                evaluate(sol, inst)
            })
            .collect();
        let mut archive: Vec<Individual> = Vec::new();
        let mut generations = 0;

        loop {
            // Fitness over P ∪ A, then environmental selection into A.
            let mut union = population.clone();
            union.extend(archive.iter().cloned());
            let fitness = spea2_fitness(&union);
            archive = environmental_selection(union, &fitness, cfg.archive);
            if budget.exhausted() || cancel.should_stop(generations) {
                break;
            }
            // Mating selection + variation.
            let offspring_budget = budget.try_consume(cfg.population as u64) as usize;
            if offspring_budget == 0 {
                break;
            }
            let arch_fitness = spea2_fitness(&archive);
            let mut offspring = Vec::with_capacity(offspring_budget);
            for _ in 0..offspring_budget {
                let p1 = tournament(&archive, &arch_fitness, &mut rng);
                let p2 = tournament(&archive, &arch_fitness, &mut rng);
                let mut child = if rng.bernoulli(cfg.crossover_rate) {
                    best_cost_route_crossover(
                        inst,
                        &archive[p1].solution,
                        &archive[p2].solution,
                        &mut rng,
                    )
                } else {
                    archive[p1].solution.clone()
                };
                if rng.bernoulli(cfg.mutation_rate) {
                    child = mutate(inst, &child, &mut rng);
                }
                offspring.push(evaluate(child, inst));
            }
            population = offspring;
            generations += 1;
        }

        // Final front: non-dominated archive members.
        let front = archive
            .iter()
            .filter(|i| !archive.iter().any(|j| dominates(&j.vector, &i.vector)))
            .map(|i| (i.solution.clone(), i.objectives))
            .collect();
        Spea2Outcome {
            front,
            evaluations: budget.consumed(),
            generations,
            runtime_seconds: clock.seconds(),
        }
    }
}

/// SPEA2 fitness `F = R + D` for every member of `items`.
fn spea2_fitness(items: &[Individual]) -> Vec<f64> {
    let n = items.len();
    // Strength: how many others each individual dominates.
    let mut strength = vec![0usize; n];
    for i in 0..n {
        for j in 0..n {
            if i != j && dominates(&items[i].vector, &items[j].vector) {
                strength[i] += 1;
            }
        }
    }
    // Raw fitness: sum of the strengths of the dominators.
    let mut raw = vec![0.0f64; n];
    for i in 0..n {
        for j in 0..n {
            if i != j && dominates(&items[j].vector, &items[i].vector) {
                raw[i] += strength[j] as f64;
            }
        }
    }
    // Density: 1 / (σ_k + 2) with k = √n.
    let k = (n as f64).sqrt().floor() as usize;
    let mut fitness = Vec::with_capacity(n);
    for i in 0..n {
        let mut dists: Vec<f64> = (0..n)
            .filter(|&j| j != i)
            .map(|j| euclid(&items[i].vector, &items[j].vector))
            .collect();
        dists.sort_by(|a, b| a.partial_cmp(b).expect("distances are not NaN"));
        let sigma_k = dists
            .get(k.saturating_sub(1).min(dists.len().saturating_sub(1)))
            .copied()
            .unwrap_or(0.0);
        fitness.push(raw[i] + 1.0 / (sigma_k + 2.0));
    }
    fitness
}

fn euclid(a: &[f64; 3], b: &[f64; 3]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).powi(2))
        .sum::<f64>()
        .sqrt()
}

/// Keeps the non-dominated members (F < 1), truncating by repeated removal
/// of the most crowded point when too many, or filling with the
/// best-fitness dominated members when too few.
fn environmental_selection(
    union: Vec<Individual>,
    fitness: &[f64],
    target: usize,
) -> Vec<Individual> {
    let mut selected: Vec<usize> = (0..union.len()).filter(|&i| fitness[i] < 1.0).collect();
    if selected.len() < target {
        // Fill with the best of the rest.
        let mut rest: Vec<usize> = (0..union.len()).filter(|&i| fitness[i] >= 1.0).collect();
        rest.sort_by(|&a, &b| fitness[a].partial_cmp(&fitness[b]).expect("not NaN"));
        selected.extend(rest.into_iter().take(target - selected.len()));
    } else {
        // Truncation: repeatedly drop the member with the smallest
        // nearest-neighbor distance (ties broken by the next distance —
        // approximated here by the plain minimum, which suffices for the
        // archive sizes in play).
        while selected.len() > target {
            let mut worst = 0;
            let mut worst_d = f64::INFINITY;
            for (si, &i) in selected.iter().enumerate() {
                let mut best = f64::INFINITY;
                for &j in &selected {
                    if i != j {
                        best = best.min(euclid(&union[i].vector, &union[j].vector));
                    }
                }
                if best < worst_d {
                    worst_d = best;
                    worst = si;
                }
            }
            selected.swap_remove(worst);
        }
    }
    let mut keep = vec![false; union.len()];
    for &i in &selected {
        keep[i] = true;
    }
    union
        .into_iter()
        .zip(keep)
        .filter_map(|(ind, k)| k.then_some(ind))
        .collect()
}

/// Binary tournament by SPEA2 fitness (lower is better).
fn tournament<R: Rng>(pool: &[Individual], fitness: &[f64], rng: &mut R) -> usize {
    let a = rng.index(pool.len());
    let b = rng.index(pool.len());
    if fitness[b] < fitness[a] {
        b
    } else {
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vrptw::generator::{GeneratorConfig, InstanceClass};

    fn small() -> Spea2Config {
        Spea2Config {
            population: 20,
            archive: 10,
            max_evaluations: 1_000,
            ..Default::default()
        }
    }

    #[test]
    fn runs_to_budget_and_returns_valid_front() {
        let inst = Arc::new(GeneratorConfig::new(InstanceClass::R2, 30, 3).build());
        let out = Spea2::new(small()).run(&inst);
        assert_eq!(out.evaluations, 1_000);
        assert!(out.generations > 0);
        assert!(!out.front.is_empty());
        for (sol, _) in &out.front {
            assert!(sol.check(&inst).is_empty());
        }
    }

    #[test]
    fn front_is_mutually_non_dominated() {
        let inst = Arc::new(GeneratorConfig::new(InstanceClass::C2, 30, 6).build());
        let out = Spea2::new(small()).run(&inst);
        let vecs: Vec<[f64; 3]> = out.front.iter().map(|(_, o)| o.to_vector()).collect();
        assert_eq!(pareto::non_dominated_indices(&vecs).len(), vecs.len());
    }

    #[test]
    fn deterministic_for_same_seed() {
        let inst = Arc::new(GeneratorConfig::new(InstanceClass::R1, 25, 9).build());
        let a = Spea2::new(Spea2Config { seed: 7, ..small() }).run(&inst);
        let b = Spea2::new(Spea2Config { seed: 7, ..small() }).run(&inst);
        assert_eq!(a.feasible_vectors(), b.feasible_vectors());
    }

    #[test]
    fn fitness_of_non_dominated_is_below_one() {
        let mk = |v: [f64; 3]| Individual {
            solution: Solution::from_routes(vec![vec![1]]),
            objectives: Objectives {
                distance: v[0],
                vehicles: v[1] as usize,
                tardiness: v[2],
            },
            vector: v,
        };
        let items = vec![
            mk([1.0, 1.0, 0.0]), // non-dominated
            mk([2.0, 2.0, 0.0]), // dominated by 0
            mk([0.5, 3.0, 0.0]), // non-dominated
        ];
        let f = spea2_fitness(&items);
        assert!(f[0] < 1.0);
        assert!(f[2] < 1.0);
        assert!(f[1] >= 1.0, "dominated members have raw fitness >= 1");
    }

    #[test]
    fn truncation_respects_target_size() {
        let mk = |x: f64, y: f64| Individual {
            solution: Solution::from_routes(vec![vec![1]]),
            objectives: Objectives {
                distance: x,
                vehicles: 1,
                tardiness: y,
            },
            vector: [x, 1.0, y],
        };
        // Seven mutually non-dominated points on a line.
        let union: Vec<Individual> = (0..7).map(|i| mk(i as f64, 6.0 - i as f64)).collect();
        let fitness = spea2_fitness(&union);
        let kept = environmental_selection(union, &fitness, 4);
        assert_eq!(kept.len(), 4);
    }
}
