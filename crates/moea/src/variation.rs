//! Routing-specific variation operators for NSGA-II.

use detrand::Rng;
use vrptw::solution::EvaluatedSolution;
use vrptw::{evaluate_route, Instance, SiteId, Solution};
use vrptw_operators::{sample_move, SampleParams};

/// Best-cost route crossover (BCRC).
///
/// Takes one random route of the donor parent, removes its customers from
/// a copy of the receiver parent, and re-inserts each at the receiver
/// position with the least added cost (distance plus heavily weighted
/// tardiness), opening a new route when the fleet allows and nothing else
/// is capacity-feasible. The child inherits the receiver's overall
/// structure with a donor-route-sized infusion of genetic material — the
/// standard crossover family for VRPTW representations where a naive
/// permutation crossover would break the routing invariants.
pub fn best_cost_route_crossover<R: Rng>(
    inst: &Instance,
    receiver: &Solution,
    donor: &Solution,
    rng: &mut R,
) -> Solution {
    let donor_route = &donor.routes()[rng.index(donor.routes().len())];
    let displaced: Vec<SiteId> = donor_route.clone();
    let mut routes: Vec<Vec<SiteId>> = receiver
        .routes()
        .iter()
        .map(|r| {
            r.iter()
                .copied()
                .filter(|c| !displaced.contains(c))
                .collect()
        })
        .filter(|r: &Vec<SiteId>| !r.is_empty())
        .collect();

    for &customer in &displaced {
        insert_best(inst, &mut routes, customer);
    }
    Solution::from_routes(routes)
}

/// Inserts `customer` at the cheapest capacity-feasible position across all
/// routes (cost = Δdistance + 1000·Δtardiness); opens a new route when
/// allowed and otherwise falls back to the least-loaded route.
fn insert_best(inst: &Instance, routes: &mut Vec<Vec<SiteId>>, customer: SiteId) {
    let demand = inst.site(customer).demand;
    let mut best: Option<(usize, usize, f64)> = None;
    for (ri, route) in routes.iter().enumerate() {
        let base = evaluate_route(inst, route);
        if base.load + demand > inst.capacity() {
            continue;
        }
        for pos in 0..=route.len() {
            let mut cand = route.clone();
            cand.insert(pos, customer);
            let e = evaluate_route(inst, &cand);
            let cost = (e.distance - base.distance) + 1e3 * (e.tardiness - base.tardiness);
            if best.is_none_or(|(_, _, b)| cost < b) {
                best = Some((ri, pos, cost));
            }
        }
    }
    // A dedicated route is often the cheapest feasible option; consider it
    // when the fleet has slack.
    if routes.len() < inst.max_vehicles() {
        let solo = evaluate_route(inst, &[customer]);
        let cost = solo.distance + 1e3 * solo.tardiness;
        if best.is_none_or(|(_, _, b)| cost < b) {
            routes.push(vec![customer]);
            return;
        }
    }
    match best {
        Some((ri, pos, _)) => routes[ri].insert(pos, customer),
        None => {
            // Capacity-infeasible everywhere and no fleet slack: overload
            // the least-loaded route (mirrors the constructors' fallback).
            let ri = routes
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    let la = evaluate_route(inst, a).load;
                    let lb = evaluate_route(inst, b).load;
                    la.partial_cmp(&lb).expect("loads are not NaN")
                })
                .map(|(i, _)| i)
                .expect("at least one route exists");
            routes[ri].push(customer);
        }
    }
}

/// Mutation: one random neighborhood move (the same operator vocabulary as
/// the tabu search, including the local feasibility criterion). Returns the
/// solution unchanged when no move can be sampled.
pub fn mutate<R: Rng>(inst: &Instance, solution: &Solution, rng: &mut R) -> Solution {
    let snapshot = EvaluatedSolution::new(solution.clone(), inst);
    for _ in 0..20 {
        if let Some(c) = sample_move(rng, inst, &snapshot, SampleParams::default()) {
            return solution.patched(&c.patch);
        }
    }
    solution.clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use detrand::Xoshiro256StarStar;
    use vrptw::generator::{GeneratorConfig, InstanceClass};
    use vrptw_construct::{nearest_neighbor, randomized_i1};

    fn setup() -> (Instance, Solution, Solution) {
        let inst = GeneratorConfig::new(InstanceClass::R2, 30, 7).build();
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        let a = randomized_i1(&inst, &mut rng);
        let b = nearest_neighbor(&inst);
        (inst, a, b)
    }

    #[test]
    fn crossover_preserves_permutation_invariant() {
        let (inst, a, b) = setup();
        let mut rng = Xoshiro256StarStar::seed_from_u64(5);
        for _ in 0..30 {
            let child = best_cost_route_crossover(&inst, &a, &b, &mut rng);
            assert!(child.check(&inst).is_empty());
            let child2 = best_cost_route_crossover(&inst, &b, &a, &mut rng);
            assert!(child2.check(&inst).is_empty());
        }
    }

    #[test]
    fn crossover_mixes_parents() {
        let (inst, a, b) = setup();
        let mut rng = Xoshiro256StarStar::seed_from_u64(9);
        let mut differs_from_receiver = false;
        for _ in 0..20 {
            let child = best_cost_route_crossover(&inst, &a, &b, &mut rng);
            if child != a {
                differs_from_receiver = true;
            }
        }
        assert!(
            differs_from_receiver,
            "crossover never produced new material"
        );
    }

    #[test]
    fn mutation_preserves_invariant_and_usually_changes_something() {
        let (inst, a, _) = setup();
        let mut rng = Xoshiro256StarStar::seed_from_u64(3);
        let mut changed = 0;
        for _ in 0..30 {
            let m = mutate(&inst, &a, &mut rng);
            assert!(m.check(&inst).is_empty());
            if m != a {
                changed += 1;
            }
        }
        assert!(changed > 15, "mutation changed only {changed}/30 offspring");
    }

    #[test]
    fn crossover_respects_capacity_when_packable() {
        let (inst, a, b) = setup();
        let mut rng = Xoshiro256StarStar::seed_from_u64(11);
        let child = best_cost_route_crossover(&inst, &a, &b, &mut rng);
        for route in child.routes() {
            assert!(evaluate_route(&inst, route).load <= inst.capacity());
        }
    }
}
