//! Cancellation contract tests for the MOEAs, mirroring
//! `crates/core/tests/cancellation.rs`: a run stopped by a
//! [`CancelToken`] is a clean *prefix* of the unstopped run — the token is
//! checked before any randomness is drawn, so the truncated trajectory,
//! archive, and budget accounting depend only on where the run stopped,
//! never on the budget it would have had.

use moea::{Nsga2, Nsga2Config, Paes, PaesConfig, Spea2, Spea2Config};
use std::sync::Arc;
use tsmo_core::{CancelToken, StopCause};
use vrptw::generator::{GeneratorConfig, InstanceClass};
use vrptw::Instance;

fn inst() -> Arc<Instance> {
    Arc::new(GeneratorConfig::new(InstanceClass::R1, 30, 7).build())
}

fn nsga2_cfg(max_evaluations: u64) -> Nsga2Config {
    Nsga2Config {
        population: 20,
        max_evaluations,
        ..Default::default()
    }
}

fn spea2_cfg(max_evaluations: u64) -> Spea2Config {
    Spea2Config {
        population: 20,
        archive: 10,
        max_evaluations,
        ..Default::default()
    }
}

fn paes_cfg(max_evaluations: u64) -> PaesConfig {
    PaesConfig {
        archive: 10,
        max_evaluations,
        ..Default::default()
    }
}

/// Every MOEA stops on a small iteration limit long before the budget and
/// latches the cause on the token, like the TSMO variants.
#[test]
fn every_algorithm_honors_the_iteration_limit() {
    let inst = inst();
    let budget = 1_000_000;

    let token = CancelToken::with_iteration_limit(3);
    let n = Nsga2::new(nsga2_cfg(budget)).run_with_cancel(&inst, token.clone());
    assert_eq!(token.cause(), Some(StopCause::IterationLimit), "nsga2");
    assert_eq!(n.generations, 3);
    assert!(n.evaluations < budget);

    let token = CancelToken::with_iteration_limit(3);
    let s = Spea2::new(spea2_cfg(budget)).run_with_cancel(&inst, token.clone());
    assert_eq!(token.cause(), Some(StopCause::IterationLimit), "spea2");
    assert!(s.evaluations < budget);

    let token = CancelToken::with_iteration_limit(50);
    let p = Paes::new(paes_cfg(budget)).run_with_cancel(&inst, token.clone());
    assert_eq!(token.cause(), Some(StopCause::IterationLimit), "paes");
    assert!(p.evaluations < budget);
    assert!(!p.front.is_empty());
}

/// The prefix property: the front a limited run returns depends only on
/// the iterations it ran, not on the budget it *would* have had — the
/// same limit under a 25x larger budget yields an identical front and
/// identical evaluation count.
#[test]
fn truncated_front_is_independent_of_the_remaining_budget() {
    let inst = inst();

    let token = CancelToken::with_iteration_limit(4);
    let small = Nsga2::new(nsga2_cfg(4_000)).run_with_cancel(&inst, token);
    let token = CancelToken::with_iteration_limit(4);
    let big = Nsga2::new(nsga2_cfg(100_000)).run_with_cancel(&inst, token);
    assert_eq!(small.evaluations, big.evaluations, "nsga2 budgets");
    assert_eq!(small.front, big.front, "nsga2 fronts");

    let token = CancelToken::with_iteration_limit(4);
    let small = Spea2::new(spea2_cfg(4_000)).run_with_cancel(&inst, token);
    let token = CancelToken::with_iteration_limit(4);
    let big = Spea2::new(spea2_cfg(100_000)).run_with_cancel(&inst, token);
    assert_eq!(small.evaluations, big.evaluations, "spea2 budgets");
    assert_eq!(small.front, big.front, "spea2 fronts");

    let token = CancelToken::with_iteration_limit(120);
    let small = Paes::new(paes_cfg(4_000)).run_with_cancel(&inst, token);
    let token = CancelToken::with_iteration_limit(120);
    let big = Paes::new(paes_cfg(100_000)).run_with_cancel(&inst, token);
    assert_eq!(small.evaluations, big.evaluations, "paes budgets");
    assert_eq!(small.front, big.front, "paes fronts");
    assert_eq!(small.accepted, big.accepted, "paes trajectories");
}

/// A truncated run returns only valid solutions (the front is usable as a
/// best-so-far result, exactly like a deadline-truncated TSMO job).
#[test]
fn truncated_fronts_are_valid() {
    let inst = inst();
    let token = CancelToken::with_iteration_limit(2);
    let out = Nsga2::new(nsga2_cfg(1_000_000)).run_with_cancel(&inst, token);
    assert!(!out.front.is_empty());
    for (sol, _) in &out.front {
        assert!(sol.check(&inst).is_empty(), "invalid solution in front");
    }
}

/// Explicit cancellation from another thread (the service's Cancel
/// endpoint, or the portfolio scheduler reclaiming a slice) stops a run
/// promptly and reports `Cancelled`.
#[test]
fn explicit_cancel_stops_a_running_algorithm() {
    let inst = inst();
    let token = CancelToken::never();
    let canceller = {
        let token = token.clone();
        std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(60));
            token.cancel();
        })
    };
    let out = Nsga2::new(nsga2_cfg(1_000_000_000)).run_with_cancel(&inst, token.clone());
    canceller.join().expect("canceller thread");
    assert_eq!(token.cause(), Some(StopCause::Cancelled));
    assert!(out.evaluations < 1_000_000_000);
}

/// Warm-start parity: seeding from a previous front is deterministic and
/// spends exactly the budget a cold run spends, so raced resume slices
/// stay comparable at equal budgets.
#[test]
fn warm_start_is_deterministic_and_spends_equal_budget() {
    let inst = inst();
    let first = Nsga2::new(nsga2_cfg(800)).run(&inst);
    let pool: Vec<_> = first.front.iter().map(|(s, _)| s.clone()).collect();
    assert!(!pool.is_empty());

    let warm_cfg = Nsga2Config {
        warm_start: pool.clone(),
        ..nsga2_cfg(800)
    };
    let a = Nsga2::new(warm_cfg.clone()).run(&inst);
    let b = Nsga2::new(warm_cfg).run(&inst);
    assert_eq!(a.front, b.front, "warm-started runs must be reproducible");
    assert_eq!(
        a.evaluations, first.evaluations,
        "equal budget warm vs cold"
    );

    let warm = Spea2Config {
        warm_start: pool.clone(),
        ..spea2_cfg(800)
    };
    let a = Spea2::new(warm.clone()).run(&inst);
    let b = Spea2::new(warm).run(&inst);
    assert_eq!(a.front, b.front);

    let warm = PaesConfig {
        warm_start: pool,
        ..paes_cfg(800)
    };
    let a = Paes::new(warm.clone()).run(&inst);
    let b = Paes::new(warm).run(&inst);
    assert_eq!(a.front, b.front);
    assert_eq!(a.evaluations, b.evaluations);
}
