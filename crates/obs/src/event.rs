//! Structured search events and their JSONL encoding.
//!
//! Events carry **logical** time only: a sequence number assigned by the
//! recorder at append, plus whatever algorithmic counters (iteration,
//! staleness) the emitter provides. No wall-clock values appear in events,
//! so two runs with the same seed produce byte-identical streams. Runtime
//! measurements (busy fractions, queue depths over time) belong in the
//! metrics registry instead.

use crate::json::{self, Json};
use crate::names::events as en;
use std::fmt::Write as _;

/// Why the search restarted from memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestartReason {
    /// The admissible neighborhood was empty (`s ∉ N`).
    EmptyPool,
    /// `M_archive` was unchanged for the configured stagnation limit.
    Stagnation,
}

impl RestartReason {
    fn as_str(self) -> &'static str {
        match self {
            RestartReason::EmptyPool => "empty_pool",
            RestartReason::Stagnation => "stagnation",
        }
    }

    fn from_str(s: &str) -> Option<Self> {
        match s {
            "empty_pool" => Some(RestartReason::EmptyPool),
            "stagnation" => Some(RestartReason::Stagnation),
            _ => None,
        }
    }
}

/// Direction of a collaborative-multisearch exchange, from the emitting
/// searcher's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExchangeDirection {
    /// The searcher broadcast an improving solution to a peer.
    Sent,
    /// The searcher drained a solution from its inbox.
    Received,
}

impl ExchangeDirection {
    fn as_str(self) -> &'static str {
        match self {
            ExchangeDirection::Sent => "sent",
            ExchangeDirection::Received => "received",
        }
    }

    fn from_str(s: &str) -> Option<Self> {
        match s {
            "sent" => Some(ExchangeDirection::Sent),
            "received" => Some(ExchangeDirection::Received),
            _ => None,
        }
    }
}

/// The category of an injected fault. Mirrors `tsmo_faults::FaultKind`
/// (kept as a plain string pair here so the obs crate stays
/// zero-dependency).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A worker task was made to panic.
    TaskPanic,
    /// A worker task was stalled before computing.
    TaskStall,
    /// A worker task's result was delivered late.
    TaskLate,
    /// An exchange message was dropped.
    ExchangeDrop,
    /// An exchange message was delayed.
    ExchangeDelay,
}

impl FaultKind {
    fn as_str(self) -> &'static str {
        match self {
            FaultKind::TaskPanic => "task_panic",
            FaultKind::TaskStall => "task_stall",
            FaultKind::TaskLate => "task_late",
            FaultKind::ExchangeDrop => "exchange_drop",
            FaultKind::ExchangeDelay => "exchange_delay",
        }
    }

    fn from_str(s: &str) -> Option<Self> {
        match s {
            "task_panic" => Some(FaultKind::TaskPanic),
            "task_stall" => Some(FaultKind::TaskStall),
            "task_late" => Some(FaultKind::TaskLate),
            "exchange_drop" => Some(FaultKind::ExchangeDrop),
            "exchange_delay" => Some(FaultKind::ExchangeDelay),
            _ => None,
        }
    }
}

/// One structured event from the search. `searcher` is 0 for the
/// single-searcher variants and the collaborative searcher index otherwise.
#[derive(Debug, Clone, PartialEq)]
pub enum SearchEvent {
    /// One selection step completed.
    Iteration {
        /// Emitting searcher.
        searcher: u32,
        /// Iteration number the step ran as.
        iteration: u64,
        /// Neighbors offered to selection.
        pool: u32,
        /// Neighbors that survived the tabu/aspiration filter.
        admissible: u32,
        /// Objective vector of the selected neighbor (`None` on restart
        /// steps with an empty admissible set).
        chosen: Option<[f64; 3]>,
    },
    /// The search restarted from `M_nondom ∪ M_archive`.
    Restart {
        /// Emitting searcher.
        searcher: u32,
        /// Iteration at which the restart happened.
        iteration: u64,
        /// What triggered it.
        reason: RestartReason,
    },
    /// A solution entered `M_archive`.
    ArchiveInsert {
        /// Emitting searcher.
        searcher: u32,
        /// Iteration of the insertion.
        iteration: u64,
        /// The inserted objective vector.
        objectives: [f64; 3],
    },
    /// The archive stagnation streak reached the configured limit; a
    /// restart from memory follows on the same iteration.
    SearchStagnated {
        /// Emitting searcher.
        searcher: u32,
        /// Iteration at which the limit was hit.
        iteration: u64,
        /// Consecutive steps without an `M_archive` change.
        streak: u64,
    },
    /// A neighbor was rejected (or rescued) by the tabu list.
    TabuHit {
        /// Emitting searcher.
        searcher: u32,
        /// Iteration of the check.
        iteration: u64,
        /// Whether aspiration rescued the neighbor anyway.
        aspired: bool,
    },
    /// A collaborative exchange on the communication lists.
    Exchange {
        /// Emitting searcher.
        searcher: u32,
        /// The peer on the other end.
        peer: u32,
        /// Sent or received.
        direction: ExchangeDirection,
        /// The exchanged objective vector.
        objectives: [f64; 3],
    },
    /// The master dispatched a neighborhood task to a worker.
    WorkerTask {
        /// Receiving worker.
        worker: u32,
        /// Iteration the task was generated for.
        iteration: u64,
        /// Neighbors requested.
        count: u32,
    },
    /// A worker returned an evaluated chunk to the master.
    WorkerResult {
        /// Responding worker.
        worker: u32,
        /// Iteration the chunk was generated for.
        iteration: u64,
        /// Neighbors delivered.
        neighbors: u32,
    },
    /// Stale neighbors were consumed by a step (asynchronous variants:
    /// results generated from an older current solution).
    Staleness {
        /// Emitting searcher.
        searcher: u32,
        /// Iteration that consumed the stale neighbors.
        iteration: u64,
        /// Age in iterations of the oldest neighbor in the step's pool.
        max_staleness: u64,
        /// How many neighbors in the pool were stale (age > 0).
        stale: u32,
    },
    /// The fault layer injected a fault (see the `tsmo-faults` crate).
    FaultInjected {
        /// The decision site: the worker id for task faults, the sending
        /// searcher for exchange faults.
        site: u32,
        /// The site-local decision sequence number.
        seq: u64,
        /// What was injected.
        kind: FaultKind,
    },
    /// The supervisor resent a panicked or lost task.
    TaskResent {
        /// The worker the task is resent *to*.
        worker: u32,
        /// Master iteration at resend time.
        iteration: u64,
        /// Resend attempt number for this task (1-based).
        attempt: u32,
    },
    /// A worker exceeded its consecutive-panic limit and was taken out of
    /// the dispatch rotation.
    WorkerQuarantined {
        /// The quarantined worker.
        worker: u32,
        /// Master iteration at quarantine time.
        iteration: u64,
    },
    /// A quarantined worker was replaced with a fresh thread and
    /// re-admitted to the rotation.
    WorkerRespawned {
        /// The respawned worker.
        worker: u32,
        /// Master iteration at respawn time.
        iteration: u64,
    },
    /// The live worker pool fell below the quorum; the master continues
    /// alone (sequential evaluation) instead of erroring.
    DegradedMode {
        /// Master iteration when degradation began.
        iteration: u64,
        /// Live workers remaining at that point.
        live_workers: u32,
    },
    /// A communication-list peer was declared dead after a failed
    /// delivery (in-process channel or network transport alike).
    PeerDead {
        /// The searcher that observed the failure.
        searcher: u32,
        /// The peer declared dead.
        peer: u32,
    },
    /// A dead peer answered a probe and re-entered the rotation.
    PeerReadmitted {
        /// The searcher whose probe succeeded.
        searcher: u32,
        /// The peer re-admitted.
        peer: u32,
    },
    /// A node was admitted into the cluster membership (late join or
    /// re-admission after a kill); the epoch bumps with every transition.
    MemberJoined {
        /// The admitted node's member index.
        node: u32,
        /// Membership epoch after the admission.
        epoch: u64,
    },
    /// A node left the cluster membership (graceful leave or declared
    /// dead by the control plane).
    MemberLeft {
        /// The departed node's member index.
        node: u32,
        /// Membership epoch after the departure.
        epoch: u64,
    },
    /// The rebalancer assigned a node its contiguous slice of global
    /// searcher ids after a membership change.
    SliceRebalanced {
        /// Membership epoch the assignment belongs to.
        epoch: u64,
        /// The node receiving the slice.
        node: u32,
        /// First global searcher id of the slice.
        start: u32,
        /// Number of ids in the slice.
        len: u32,
    },
    /// A node checkpointed its archive to its ring successor.
    ArchiveReplicated {
        /// The node whose archive was checkpointed.
        node: u32,
        /// The ring successor now holding the replica.
        holder: u32,
        /// Entries in the checkpointed front.
        entries: u32,
    },
    /// The solver service admitted a job to its queue.
    JobAdmitted {
        /// Service-assigned job id.
        job: u64,
        /// Queue depth right after admission.
        depth: u32,
    },
    /// The solver service rejected a submission with `QueueFull`.
    JobRejected {
        /// Service-assigned id the job would have received.
        job: u64,
        /// Queue depth at rejection time (the configured capacity).
        depth: u32,
    },
    /// A job's run was truncated by an explicit cancel request.
    JobCancelled {
        /// The cancelled job.
        job: u64,
    },
    /// A job's run was truncated by its deadline.
    JobDeadlineExceeded {
        /// The expired job.
        job: u64,
    },
    /// A job reached a terminal state with a result front available.
    JobCompleted {
        /// The finished job.
        job: u64,
        /// Search iterations the run performed.
        iterations: u64,
        /// Whether the run was stopped early (cancel or deadline).
        truncated: bool,
    },
    /// A profiling span opened. Carries only logical fields — the wall
    /// time of the span feeds the profiler/metrics, never the stream.
    SpanEnter {
        /// The run's trace id (shared by a whole distributed run).
        trace: u64,
        /// Recorder-assigned span id, unique within the recorder.
        span: u64,
        /// Enclosing span id (0 for a root span).
        parent: u64,
        /// Phase name, e.g. `evaluate` or `archive`.
        name: String,
    },
    /// A profiling span closed.
    SpanExit {
        /// The run's trace id.
        trace: u64,
        /// The span being closed.
        span: u64,
        /// Phase name (repeated so exits are self-describing).
        name: String,
    },
    /// Periodic convergence sample of the live archive's front quality.
    FrontSample {
        /// Emitting searcher.
        searcher: u32,
        /// Iteration at sample time.
        iteration: u64,
        /// Evaluations consumed by this searcher at sample time.
        evaluations: u64,
        /// Entries in `M_archive`.
        size: u32,
        /// 2-D hypervolume of the archive projected to
        /// (distance, vehicles).
        hypervolume: f64,
        /// Coverage `C(archive, M_nondom)` — the fraction of `M_nondom`
        /// weakly dominated by the live archive.
        coverage: f64,
    },
    /// A portfolio round finished and one contender's front was scored
    /// against the union of the other contenders' fronts.
    RoundScored {
        /// Portfolio round index (0-based).
        round: u32,
        /// Contender index within the portfolio.
        contender: u32,
        /// Mean coverage `C(this, other)` over the other contenders.
        coverage: f64,
        /// Hypervolume of the contender's front (reallocation tiebreak).
        hypervolume: f64,
    },
    /// The portfolio scheduler granted a contender its slice of the next
    /// round's evaluation budget.
    BudgetReallocated {
        /// Round the slice is granted *for* (1-based; round 0 slices are
        /// the uniform opening allocation).
        round: u32,
        /// Receiving contender.
        contender: u32,
        /// Evaluations in the granted slice.
        evaluations: u64,
    },
    /// A contender pinned at the budget floor was retired from the race;
    /// its share flows back to the live contenders.
    ContenderRetired {
        /// Round after which the retirement took effect.
        round: u32,
        /// The retired contender.
        contender: u32,
    },
}

impl SearchEvent {
    /// The event's wire `type` string, from the central
    /// [`names::events`](crate::names::events) registry. The JSONL
    /// writer and parser both go through these constants, so the two
    /// sides cannot drift.
    pub fn type_name(&self) -> &'static str {
        match self {
            SearchEvent::Iteration { .. } => en::ITERATION,
            SearchEvent::Restart { .. } => en::RESTART,
            SearchEvent::ArchiveInsert { .. } => en::ARCHIVE_INSERT,
            SearchEvent::SearchStagnated { .. } => en::SEARCH_STAGNATED,
            SearchEvent::TabuHit { .. } => en::TABU_HIT,
            SearchEvent::Exchange { .. } => en::EXCHANGE,
            SearchEvent::WorkerTask { .. } => en::WORKER_TASK,
            SearchEvent::WorkerResult { .. } => en::WORKER_RESULT,
            SearchEvent::Staleness { .. } => en::STALENESS,
            SearchEvent::FaultInjected { .. } => en::FAULT_INJECTED,
            SearchEvent::TaskResent { .. } => en::TASK_RESENT,
            SearchEvent::WorkerQuarantined { .. } => en::WORKER_QUARANTINED,
            SearchEvent::WorkerRespawned { .. } => en::WORKER_RESPAWNED,
            SearchEvent::DegradedMode { .. } => en::DEGRADED_MODE,
            SearchEvent::PeerDead { .. } => en::PEER_DEAD,
            SearchEvent::PeerReadmitted { .. } => en::PEER_READMITTED,
            SearchEvent::MemberJoined { .. } => en::MEMBER_JOINED,
            SearchEvent::MemberLeft { .. } => en::MEMBER_LEFT,
            SearchEvent::SliceRebalanced { .. } => en::SLICE_REBALANCED,
            SearchEvent::ArchiveReplicated { .. } => en::ARCHIVE_REPLICATED,
            SearchEvent::JobAdmitted { .. } => en::JOB_ADMITTED,
            SearchEvent::JobRejected { .. } => en::JOB_REJECTED,
            SearchEvent::JobCancelled { .. } => en::JOB_CANCELLED,
            SearchEvent::JobDeadlineExceeded { .. } => en::JOB_DEADLINE_EXCEEDED,
            SearchEvent::JobCompleted { .. } => en::JOB_COMPLETED,
            SearchEvent::SpanEnter { .. } => en::SPAN_ENTER,
            SearchEvent::SpanExit { .. } => en::SPAN_EXIT,
            SearchEvent::FrontSample { .. } => en::FRONT_SAMPLE,
            SearchEvent::RoundScored { .. } => en::ROUND_SCORED,
            SearchEvent::BudgetReallocated { .. } => en::BUDGET_REALLOCATED,
            SearchEvent::ContenderRetired { .. } => en::CONTENDER_RETIRED,
        }
    }
}

/// An event stamped with its logical sequence number.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedEvent {
    /// Position in the recorder's stream, starting at 0.
    pub seq: u64,
    /// The event itself.
    pub event: SearchEvent,
}

fn write_vector(out: &mut String, v: &[f64; 3]) {
    out.push('[');
    for (i, x) in v.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json::write_f64(out, *x);
    }
    out.push(']');
}

impl TimedEvent {
    /// Encodes the event as one JSON line (no trailing newline). Field
    /// order is fixed, so equal events encode byte-identically.
    pub fn to_json_line(&self) -> String {
        let mut s = String::with_capacity(96);
        let _ = write!(
            s,
            "{{\"seq\":{},\"type\":\"{}\"",
            self.seq,
            self.event.type_name()
        );
        match &self.event {
            SearchEvent::Iteration {
                searcher,
                iteration,
                pool,
                admissible,
                chosen,
            } => {
                let _ = write!(
                    s,
                    ",\"searcher\":{searcher},\"iteration\":{iteration},\"pool\":{pool},\"admissible\":{admissible},\"chosen\":"
                );
                match chosen {
                    Some(v) => write_vector(&mut s, v),
                    None => s.push_str("null"),
                }
            }
            SearchEvent::Restart {
                searcher,
                iteration,
                reason,
            } => {
                let _ = write!(
                    s,
                    ",\"searcher\":{searcher},\"iteration\":{iteration},\"reason\":\"{}\"",
                    reason.as_str()
                );
            }
            SearchEvent::ArchiveInsert {
                searcher,
                iteration,
                objectives,
            } => {
                let _ = write!(
                    s,
                    ",\"searcher\":{searcher},\"iteration\":{iteration},\"objectives\":"
                );
                write_vector(&mut s, objectives);
            }
            SearchEvent::SearchStagnated {
                searcher,
                iteration,
                streak,
            } => {
                let _ = write!(
                    s,
                    ",\"searcher\":{searcher},\"iteration\":{iteration},\"streak\":{streak}"
                );
            }
            SearchEvent::TabuHit {
                searcher,
                iteration,
                aspired,
            } => {
                let _ = write!(
                    s,
                    ",\"searcher\":{searcher},\"iteration\":{iteration},\"aspired\":{aspired}"
                );
            }
            SearchEvent::Exchange {
                searcher,
                peer,
                direction,
                objectives,
            } => {
                let _ = write!(
                    s,
                    ",\"searcher\":{searcher},\"peer\":{peer},\"direction\":\"{}\",\"objectives\":",
                    direction.as_str()
                );
                write_vector(&mut s, objectives);
            }
            SearchEvent::WorkerTask {
                worker,
                iteration,
                count,
            } => {
                let _ = write!(
                    s,
                    ",\"worker\":{worker},\"iteration\":{iteration},\"count\":{count}"
                );
            }
            SearchEvent::WorkerResult {
                worker,
                iteration,
                neighbors,
            } => {
                let _ = write!(
                    s,
                    ",\"worker\":{worker},\"iteration\":{iteration},\"neighbors\":{neighbors}"
                );
            }
            SearchEvent::Staleness {
                searcher,
                iteration,
                max_staleness,
                stale,
            } => {
                let _ = write!(
                    s,
                    ",\"searcher\":{searcher},\"iteration\":{iteration},\"max_staleness\":{max_staleness},\"stale\":{stale}"
                );
            }
            SearchEvent::FaultInjected { site, seq, kind } => {
                let _ = write!(
                    s,
                    ",\"site\":{site},\"fault_seq\":{seq},\"kind\":\"{}\"",
                    kind.as_str()
                );
            }
            SearchEvent::TaskResent {
                worker,
                iteration,
                attempt,
            } => {
                let _ = write!(
                    s,
                    ",\"worker\":{worker},\"iteration\":{iteration},\"attempt\":{attempt}"
                );
            }
            SearchEvent::WorkerQuarantined { worker, iteration } => {
                let _ = write!(s, ",\"worker\":{worker},\"iteration\":{iteration}");
            }
            SearchEvent::WorkerRespawned { worker, iteration } => {
                let _ = write!(s, ",\"worker\":{worker},\"iteration\":{iteration}");
            }
            SearchEvent::DegradedMode {
                iteration,
                live_workers,
            } => {
                let _ = write!(
                    s,
                    ",\"iteration\":{iteration},\"live_workers\":{live_workers}"
                );
            }
            SearchEvent::PeerDead { searcher, peer } => {
                let _ = write!(s, ",\"searcher\":{searcher},\"peer\":{peer}");
            }
            SearchEvent::PeerReadmitted { searcher, peer } => {
                let _ = write!(s, ",\"searcher\":{searcher},\"peer\":{peer}");
            }
            SearchEvent::MemberJoined { node, epoch } => {
                let _ = write!(s, ",\"node\":{node},\"epoch\":{epoch}");
            }
            SearchEvent::MemberLeft { node, epoch } => {
                let _ = write!(s, ",\"node\":{node},\"epoch\":{epoch}");
            }
            SearchEvent::SliceRebalanced {
                epoch,
                node,
                start,
                len,
            } => {
                let _ = write!(
                    s,
                    ",\"epoch\":{epoch},\"node\":{node},\"start\":{start},\"len\":{len}"
                );
            }
            SearchEvent::ArchiveReplicated {
                node,
                holder,
                entries,
            } => {
                let _ = write!(
                    s,
                    ",\"node\":{node},\"holder\":{holder},\"entries\":{entries}"
                );
            }
            SearchEvent::JobAdmitted { job, depth } => {
                let _ = write!(s, ",\"job\":{job},\"depth\":{depth}");
            }
            SearchEvent::JobRejected { job, depth } => {
                let _ = write!(s, ",\"job\":{job},\"depth\":{depth}");
            }
            SearchEvent::JobCancelled { job } => {
                let _ = write!(s, ",\"job\":{job}");
            }
            SearchEvent::JobDeadlineExceeded { job } => {
                let _ = write!(s, ",\"job\":{job}");
            }
            SearchEvent::JobCompleted {
                job,
                iterations,
                truncated,
            } => {
                let _ = write!(
                    s,
                    ",\"job\":{job},\"iterations\":{iterations},\"truncated\":{truncated}"
                );
            }
            SearchEvent::SpanEnter {
                trace,
                span,
                parent,
                name,
            } => {
                let _ = write!(
                    s,
                    ",\"trace\":{trace},\"span\":{span},\"parent\":{parent},\"name\":"
                );
                json::write_str(&mut s, name);
            }
            SearchEvent::SpanExit { trace, span, name } => {
                let _ = write!(s, ",\"trace\":{trace},\"span\":{span},\"name\":");
                json::write_str(&mut s, name);
            }
            SearchEvent::FrontSample {
                searcher,
                iteration,
                evaluations,
                size,
                hypervolume,
                coverage,
            } => {
                let _ = write!(
                    s,
                    ",\"searcher\":{searcher},\"iteration\":{iteration},\"evaluations\":{evaluations},\"size\":{size},\"hypervolume\":"
                );
                json::write_f64(&mut s, *hypervolume);
                s.push_str(",\"coverage\":");
                json::write_f64(&mut s, *coverage);
            }
            SearchEvent::RoundScored {
                round,
                contender,
                coverage,
                hypervolume,
            } => {
                let _ = write!(
                    s,
                    ",\"round\":{round},\"contender\":{contender},\"coverage\":"
                );
                json::write_f64(&mut s, *coverage);
                s.push_str(",\"hypervolume\":");
                json::write_f64(&mut s, *hypervolume);
            }
            SearchEvent::BudgetReallocated {
                round,
                contender,
                evaluations,
            } => {
                let _ = write!(
                    s,
                    ",\"round\":{round},\"contender\":{contender},\"evaluations\":{evaluations}"
                );
            }
            SearchEvent::ContenderRetired { round, contender } => {
                let _ = write!(s, ",\"round\":{round},\"contender\":{contender}");
            }
        }
        s.push('}');
        s
    }

    /// Parses one JSONL line produced by [`to_json_line`].
    ///
    /// [`to_json_line`]: TimedEvent::to_json_line
    pub fn parse_json_line(line: &str) -> Result<Self, String> {
        let doc = json::parse(line).map_err(|e| e.to_string())?;
        let seq = field_u64(&doc, "seq")?;
        let kind = doc
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| "missing 'type' field".to_string())?;
        let event = match kind {
            en::ITERATION => SearchEvent::Iteration {
                searcher: field_u32(&doc, "searcher")?,
                iteration: field_u64(&doc, "iteration")?,
                pool: field_u32(&doc, "pool")?,
                admissible: field_u32(&doc, "admissible")?,
                chosen: match doc.get("chosen") {
                    Some(Json::Null) | None => None,
                    Some(v) => Some(vector_from(v)?),
                },
            },
            en::RESTART => SearchEvent::Restart {
                searcher: field_u32(&doc, "searcher")?,
                iteration: field_u64(&doc, "iteration")?,
                reason: doc
                    .get("reason")
                    .and_then(Json::as_str)
                    .and_then(RestartReason::from_str)
                    .ok_or_else(|| "bad 'reason' field".to_string())?,
            },
            en::ARCHIVE_INSERT => SearchEvent::ArchiveInsert {
                searcher: field_u32(&doc, "searcher")?,
                iteration: field_u64(&doc, "iteration")?,
                objectives: vector_field(&doc, "objectives")?,
            },
            en::SEARCH_STAGNATED => SearchEvent::SearchStagnated {
                searcher: field_u32(&doc, "searcher")?,
                iteration: field_u64(&doc, "iteration")?,
                streak: field_u64(&doc, "streak")?,
            },
            en::TABU_HIT => SearchEvent::TabuHit {
                searcher: field_u32(&doc, "searcher")?,
                iteration: field_u64(&doc, "iteration")?,
                aspired: doc
                    .get("aspired")
                    .and_then(Json::as_bool)
                    .ok_or_else(|| "bad 'aspired' field".to_string())?,
            },
            en::EXCHANGE => SearchEvent::Exchange {
                searcher: field_u32(&doc, "searcher")?,
                peer: field_u32(&doc, "peer")?,
                direction: doc
                    .get("direction")
                    .and_then(Json::as_str)
                    .and_then(ExchangeDirection::from_str)
                    .ok_or_else(|| "bad 'direction' field".to_string())?,
                objectives: vector_field(&doc, "objectives")?,
            },
            en::WORKER_TASK => SearchEvent::WorkerTask {
                worker: field_u32(&doc, "worker")?,
                iteration: field_u64(&doc, "iteration")?,
                count: field_u32(&doc, "count")?,
            },
            en::WORKER_RESULT => SearchEvent::WorkerResult {
                worker: field_u32(&doc, "worker")?,
                iteration: field_u64(&doc, "iteration")?,
                neighbors: field_u32(&doc, "neighbors")?,
            },
            en::STALENESS => SearchEvent::Staleness {
                searcher: field_u32(&doc, "searcher")?,
                iteration: field_u64(&doc, "iteration")?,
                max_staleness: field_u64(&doc, "max_staleness")?,
                stale: field_u32(&doc, "stale")?,
            },
            en::FAULT_INJECTED => SearchEvent::FaultInjected {
                site: field_u32(&doc, "site")?,
                seq: field_u64(&doc, "fault_seq")?,
                kind: doc
                    .get("kind")
                    .and_then(Json::as_str)
                    .and_then(FaultKind::from_str)
                    .ok_or_else(|| "bad 'kind' field".to_string())?,
            },
            en::TASK_RESENT => SearchEvent::TaskResent {
                worker: field_u32(&doc, "worker")?,
                iteration: field_u64(&doc, "iteration")?,
                attempt: field_u32(&doc, "attempt")?,
            },
            en::WORKER_QUARANTINED => SearchEvent::WorkerQuarantined {
                worker: field_u32(&doc, "worker")?,
                iteration: field_u64(&doc, "iteration")?,
            },
            en::WORKER_RESPAWNED => SearchEvent::WorkerRespawned {
                worker: field_u32(&doc, "worker")?,
                iteration: field_u64(&doc, "iteration")?,
            },
            en::DEGRADED_MODE => SearchEvent::DegradedMode {
                iteration: field_u64(&doc, "iteration")?,
                live_workers: field_u32(&doc, "live_workers")?,
            },
            en::PEER_DEAD => SearchEvent::PeerDead {
                searcher: field_u32(&doc, "searcher")?,
                peer: field_u32(&doc, "peer")?,
            },
            en::PEER_READMITTED => SearchEvent::PeerReadmitted {
                searcher: field_u32(&doc, "searcher")?,
                peer: field_u32(&doc, "peer")?,
            },
            en::MEMBER_JOINED => SearchEvent::MemberJoined {
                node: field_u32(&doc, "node")?,
                epoch: field_u64(&doc, "epoch")?,
            },
            en::MEMBER_LEFT => SearchEvent::MemberLeft {
                node: field_u32(&doc, "node")?,
                epoch: field_u64(&doc, "epoch")?,
            },
            en::SLICE_REBALANCED => SearchEvent::SliceRebalanced {
                epoch: field_u64(&doc, "epoch")?,
                node: field_u32(&doc, "node")?,
                start: field_u32(&doc, "start")?,
                len: field_u32(&doc, "len")?,
            },
            en::ARCHIVE_REPLICATED => SearchEvent::ArchiveReplicated {
                node: field_u32(&doc, "node")?,
                holder: field_u32(&doc, "holder")?,
                entries: field_u32(&doc, "entries")?,
            },
            en::JOB_ADMITTED => SearchEvent::JobAdmitted {
                job: field_u64(&doc, "job")?,
                depth: field_u32(&doc, "depth")?,
            },
            en::JOB_REJECTED => SearchEvent::JobRejected {
                job: field_u64(&doc, "job")?,
                depth: field_u32(&doc, "depth")?,
            },
            en::JOB_CANCELLED => SearchEvent::JobCancelled {
                job: field_u64(&doc, "job")?,
            },
            en::JOB_DEADLINE_EXCEEDED => SearchEvent::JobDeadlineExceeded {
                job: field_u64(&doc, "job")?,
            },
            en::JOB_COMPLETED => SearchEvent::JobCompleted {
                job: field_u64(&doc, "job")?,
                iterations: field_u64(&doc, "iterations")?,
                truncated: doc
                    .get("truncated")
                    .and_then(Json::as_bool)
                    .ok_or_else(|| "bad 'truncated' field".to_string())?,
            },
            en::SPAN_ENTER => SearchEvent::SpanEnter {
                trace: field_u64(&doc, "trace")?,
                span: field_u64(&doc, "span")?,
                parent: field_u64(&doc, "parent")?,
                name: field_str(&doc, "name")?,
            },
            en::SPAN_EXIT => SearchEvent::SpanExit {
                trace: field_u64(&doc, "trace")?,
                span: field_u64(&doc, "span")?,
                name: field_str(&doc, "name")?,
            },
            en::FRONT_SAMPLE => SearchEvent::FrontSample {
                searcher: field_u32(&doc, "searcher")?,
                iteration: field_u64(&doc, "iteration")?,
                evaluations: field_u64(&doc, "evaluations")?,
                size: field_u32(&doc, "size")?,
                hypervolume: field_f64(&doc, "hypervolume")?,
                coverage: field_f64(&doc, "coverage")?,
            },
            en::ROUND_SCORED => SearchEvent::RoundScored {
                round: field_u32(&doc, "round")?,
                contender: field_u32(&doc, "contender")?,
                coverage: field_f64(&doc, "coverage")?,
                hypervolume: field_f64(&doc, "hypervolume")?,
            },
            en::BUDGET_REALLOCATED => SearchEvent::BudgetReallocated {
                round: field_u32(&doc, "round")?,
                contender: field_u32(&doc, "contender")?,
                evaluations: field_u64(&doc, "evaluations")?,
            },
            en::CONTENDER_RETIRED => SearchEvent::ContenderRetired {
                round: field_u32(&doc, "round")?,
                contender: field_u32(&doc, "contender")?,
            },
            other => return Err(format!("unknown event type '{other}'")),
        };
        Ok(TimedEvent { seq, event })
    }
}

/// Parses a whole JSONL stream (blank lines are skipped). Returns the
/// failing 1-based line number alongside the message on error.
pub fn parse_events_jsonl(input: &str) -> Result<Vec<TimedEvent>, String> {
    let mut events = Vec::new();
    for (i, line) in input.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        events.push(TimedEvent::parse_json_line(line).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(events)
}

fn field_u64(doc: &Json, key: &str) -> Result<u64, String> {
    doc.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("bad '{key}' field"))
}

fn field_u32(doc: &Json, key: &str) -> Result<u32, String> {
    field_u64(doc, key)?
        .try_into()
        .map_err(|_| format!("'{key}' out of u32 range"))
}

fn field_f64(doc: &Json, key: &str) -> Result<f64, String> {
    doc.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("bad '{key}' field"))
}

fn field_str(doc: &Json, key: &str) -> Result<String, String> {
    doc.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("bad '{key}' field"))
}

fn vector_from(v: &Json) -> Result<[f64; 3], String> {
    match v {
        Json::Array(items) if items.len() == 3 => {
            let mut out = [0.0; 3];
            for (i, item) in items.iter().enumerate() {
                out[i] = item
                    .as_f64()
                    .ok_or_else(|| "non-numeric objective".to_string())?;
            }
            Ok(out)
        }
        _ => Err("objective vector must be a 3-element array".to_string()),
    }
}

fn vector_field(doc: &Json, key: &str) -> Result<[f64; 3], String> {
    vector_from(
        doc.get(key)
            .ok_or_else(|| format!("missing '{key}' field"))?,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<SearchEvent> {
        vec![
            SearchEvent::Iteration {
                searcher: 0,
                iteration: 12,
                pool: 60,
                admissible: 58,
                chosen: Some([1234.5, 11.0, 0.0]),
            },
            SearchEvent::Iteration {
                searcher: 2,
                iteration: 13,
                pool: 60,
                admissible: 0,
                chosen: None,
            },
            SearchEvent::Restart {
                searcher: 1,
                iteration: 40,
                reason: RestartReason::Stagnation,
            },
            SearchEvent::Restart {
                searcher: 0,
                iteration: 3,
                reason: RestartReason::EmptyPool,
            },
            SearchEvent::ArchiveInsert {
                searcher: 0,
                iteration: 7,
                objectives: [987.25, 10.0, 3.5],
            },
            SearchEvent::SearchStagnated {
                searcher: 1,
                iteration: 39,
                streak: 25,
            },
            SearchEvent::TabuHit {
                searcher: 0,
                iteration: 9,
                aspired: true,
            },
            SearchEvent::Exchange {
                searcher: 3,
                peer: 1,
                direction: ExchangeDirection::Sent,
                objectives: [500.0, 9.0, 0.0],
            },
            SearchEvent::WorkerTask {
                worker: 4,
                iteration: 100,
                count: 15,
            },
            SearchEvent::WorkerResult {
                worker: 4,
                iteration: 100,
                neighbors: 15,
            },
            SearchEvent::Staleness {
                searcher: 0,
                iteration: 101,
                max_staleness: 3,
                stale: 12,
            },
            SearchEvent::FaultInjected {
                site: 2,
                seq: 45,
                kind: FaultKind::TaskPanic,
            },
            SearchEvent::FaultInjected {
                site: 0,
                seq: 3,
                kind: FaultKind::ExchangeDelay,
            },
            SearchEvent::TaskResent {
                worker: 1,
                iteration: 17,
                attempt: 2,
            },
            SearchEvent::WorkerQuarantined {
                worker: 3,
                iteration: 30,
            },
            SearchEvent::WorkerRespawned {
                worker: 3,
                iteration: 31,
            },
            SearchEvent::DegradedMode {
                iteration: 55,
                live_workers: 1,
            },
            SearchEvent::PeerDead {
                searcher: 2,
                peer: 5,
            },
            SearchEvent::PeerReadmitted {
                searcher: 2,
                peer: 5,
            },
            SearchEvent::MemberJoined { node: 4, epoch: 3 },
            SearchEvent::MemberLeft { node: 2, epoch: 4 },
            SearchEvent::SliceRebalanced {
                epoch: 4,
                node: 1,
                start: 6,
                len: 3,
            },
            SearchEvent::ArchiveReplicated {
                node: 2,
                holder: 3,
                entries: 17,
            },
            SearchEvent::JobAdmitted { job: 7, depth: 3 },
            SearchEvent::JobRejected { job: 8, depth: 4 },
            SearchEvent::JobCancelled { job: 7 },
            SearchEvent::JobDeadlineExceeded { job: 6 },
            SearchEvent::JobCompleted {
                job: 7,
                iterations: 250,
                truncated: true,
            },
            SearchEvent::SpanEnter {
                trace: 0xFFFF_FFFF_FFFF,
                span: 2,
                parent: 1,
                name: "evaluate".to_string(),
            },
            SearchEvent::SpanExit {
                trace: 0xFFFF_FFFF_FFFF,
                span: 2,
                name: "evaluate".to_string(),
            },
            SearchEvent::FrontSample {
                searcher: 1,
                iteration: 42,
                evaluations: 2000,
                size: 9,
                hypervolume: 1234.5,
                coverage: 0.75,
            },
            SearchEvent::RoundScored {
                round: 2,
                contender: 1,
                coverage: 0.625,
                hypervolume: 9876.5,
            },
            SearchEvent::BudgetReallocated {
                round: 3,
                contender: 0,
                evaluations: 4500,
            },
            SearchEvent::ContenderRetired {
                round: 3,
                contender: 2,
            },
        ]
    }

    #[test]
    fn every_variant_round_trips() {
        for (seq, event) in samples().into_iter().enumerate() {
            let timed = TimedEvent {
                seq: seq as u64,
                event,
            };
            let line = timed.to_json_line();
            let parsed = TimedEvent::parse_json_line(&line).expect("parse back");
            assert_eq!(parsed, timed, "mismatch for {line}");
            // Re-encoding the parsed event reproduces the bytes exactly.
            assert_eq!(parsed.to_json_line(), line);
        }
    }

    #[test]
    fn stream_parse_reports_line_numbers() {
        let good = TimedEvent {
            seq: 0,
            event: SearchEvent::TabuHit {
                searcher: 0,
                iteration: 1,
                aspired: false,
            },
        };
        let input = format!("{}\n\nnot json\n", good.to_json_line());
        let err = parse_events_jsonl(&input).unwrap_err();
        assert!(err.starts_with("line 3:"), "unexpected error: {err}");
        let ok = parse_events_jsonl(&format!("{}\n", good.to_json_line())).unwrap();
        assert_eq!(ok.len(), 1);
    }

    #[test]
    fn unknown_type_is_rejected() {
        let err = TimedEvent::parse_json_line(r#"{"seq":0,"type":"mystery"}"#).unwrap_err();
        assert!(err.contains("mystery"));
    }
}
