//! Structured search events and their JSONL encoding.
//!
//! Events carry **logical** time only: a sequence number assigned by the
//! recorder at append, plus whatever algorithmic counters (iteration,
//! staleness) the emitter provides. No wall-clock values appear in events,
//! so two runs with the same seed produce byte-identical streams. Runtime
//! measurements (busy fractions, queue depths over time) belong in the
//! metrics registry instead.

use crate::json::{self, Json};
use std::fmt::Write as _;

/// Why the search restarted from memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestartReason {
    /// The admissible neighborhood was empty (`s ∉ N`).
    EmptyPool,
    /// `M_archive` was unchanged for the configured stagnation limit.
    Stagnation,
}

impl RestartReason {
    fn as_str(self) -> &'static str {
        match self {
            RestartReason::EmptyPool => "empty_pool",
            RestartReason::Stagnation => "stagnation",
        }
    }

    fn from_str(s: &str) -> Option<Self> {
        match s {
            "empty_pool" => Some(RestartReason::EmptyPool),
            "stagnation" => Some(RestartReason::Stagnation),
            _ => None,
        }
    }
}

/// Direction of a collaborative-multisearch exchange, from the emitting
/// searcher's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExchangeDirection {
    /// The searcher broadcast an improving solution to a peer.
    Sent,
    /// The searcher drained a solution from its inbox.
    Received,
}

impl ExchangeDirection {
    fn as_str(self) -> &'static str {
        match self {
            ExchangeDirection::Sent => "sent",
            ExchangeDirection::Received => "received",
        }
    }

    fn from_str(s: &str) -> Option<Self> {
        match s {
            "sent" => Some(ExchangeDirection::Sent),
            "received" => Some(ExchangeDirection::Received),
            _ => None,
        }
    }
}

/// One structured event from the search. `searcher` is 0 for the
/// single-searcher variants and the collaborative searcher index otherwise.
#[derive(Debug, Clone, PartialEq)]
pub enum SearchEvent {
    /// One selection step completed.
    Iteration {
        /// Emitting searcher.
        searcher: u32,
        /// Iteration number the step ran as.
        iteration: u64,
        /// Neighbors offered to selection.
        pool: u32,
        /// Neighbors that survived the tabu/aspiration filter.
        admissible: u32,
        /// Objective vector of the selected neighbor (`None` on restart
        /// steps with an empty admissible set).
        chosen: Option<[f64; 3]>,
    },
    /// The search restarted from `M_nondom ∪ M_archive`.
    Restart {
        /// Emitting searcher.
        searcher: u32,
        /// Iteration at which the restart happened.
        iteration: u64,
        /// What triggered it.
        reason: RestartReason,
    },
    /// A solution entered `M_archive`.
    ArchiveInsert {
        /// Emitting searcher.
        searcher: u32,
        /// Iteration of the insertion.
        iteration: u64,
        /// The inserted objective vector.
        objectives: [f64; 3],
    },
    /// A neighbor was rejected (or rescued) by the tabu list.
    TabuHit {
        /// Emitting searcher.
        searcher: u32,
        /// Iteration of the check.
        iteration: u64,
        /// Whether aspiration rescued the neighbor anyway.
        aspired: bool,
    },
    /// A collaborative exchange on the communication lists.
    Exchange {
        /// Emitting searcher.
        searcher: u32,
        /// The peer on the other end.
        peer: u32,
        /// Sent or received.
        direction: ExchangeDirection,
        /// The exchanged objective vector.
        objectives: [f64; 3],
    },
    /// The master dispatched a neighborhood task to a worker.
    WorkerTask {
        /// Receiving worker.
        worker: u32,
        /// Iteration the task was generated for.
        iteration: u64,
        /// Neighbors requested.
        count: u32,
    },
    /// A worker returned an evaluated chunk to the master.
    WorkerResult {
        /// Responding worker.
        worker: u32,
        /// Iteration the chunk was generated for.
        iteration: u64,
        /// Neighbors delivered.
        neighbors: u32,
    },
    /// Stale neighbors were consumed by a step (asynchronous variants:
    /// results generated from an older current solution).
    Staleness {
        /// Emitting searcher.
        searcher: u32,
        /// Iteration that consumed the stale neighbors.
        iteration: u64,
        /// Age in iterations of the oldest neighbor in the step's pool.
        max_staleness: u64,
        /// How many neighbors in the pool were stale (age > 0).
        stale: u32,
    },
}

/// An event stamped with its logical sequence number.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedEvent {
    /// Position in the recorder's stream, starting at 0.
    pub seq: u64,
    /// The event itself.
    pub event: SearchEvent,
}

fn write_vector(out: &mut String, v: &[f64; 3]) {
    out.push('[');
    for (i, x) in v.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json::write_f64(out, *x);
    }
    out.push(']');
}

impl TimedEvent {
    /// Encodes the event as one JSON line (no trailing newline). Field
    /// order is fixed, so equal events encode byte-identically.
    pub fn to_json_line(&self) -> String {
        let mut s = String::with_capacity(96);
        let _ = write!(s, "{{\"seq\":{}", self.seq);
        match &self.event {
            SearchEvent::Iteration {
                searcher,
                iteration,
                pool,
                admissible,
                chosen,
            } => {
                let _ = write!(
                    s,
                    ",\"type\":\"iteration\",\"searcher\":{searcher},\"iteration\":{iteration},\"pool\":{pool},\"admissible\":{admissible},\"chosen\":"
                );
                match chosen {
                    Some(v) => write_vector(&mut s, v),
                    None => s.push_str("null"),
                }
            }
            SearchEvent::Restart {
                searcher,
                iteration,
                reason,
            } => {
                let _ = write!(
                    s,
                    ",\"type\":\"restart\",\"searcher\":{searcher},\"iteration\":{iteration},\"reason\":\"{}\"",
                    reason.as_str()
                );
            }
            SearchEvent::ArchiveInsert {
                searcher,
                iteration,
                objectives,
            } => {
                let _ = write!(
                    s,
                    ",\"type\":\"archive_insert\",\"searcher\":{searcher},\"iteration\":{iteration},\"objectives\":"
                );
                write_vector(&mut s, objectives);
            }
            SearchEvent::TabuHit {
                searcher,
                iteration,
                aspired,
            } => {
                let _ = write!(
                    s,
                    ",\"type\":\"tabu_hit\",\"searcher\":{searcher},\"iteration\":{iteration},\"aspired\":{aspired}"
                );
            }
            SearchEvent::Exchange {
                searcher,
                peer,
                direction,
                objectives,
            } => {
                let _ = write!(
                    s,
                    ",\"type\":\"exchange\",\"searcher\":{searcher},\"peer\":{peer},\"direction\":\"{}\",\"objectives\":",
                    direction.as_str()
                );
                write_vector(&mut s, objectives);
            }
            SearchEvent::WorkerTask {
                worker,
                iteration,
                count,
            } => {
                let _ = write!(
                    s,
                    ",\"type\":\"worker_task\",\"worker\":{worker},\"iteration\":{iteration},\"count\":{count}"
                );
            }
            SearchEvent::WorkerResult {
                worker,
                iteration,
                neighbors,
            } => {
                let _ = write!(
                    s,
                    ",\"type\":\"worker_result\",\"worker\":{worker},\"iteration\":{iteration},\"neighbors\":{neighbors}"
                );
            }
            SearchEvent::Staleness {
                searcher,
                iteration,
                max_staleness,
                stale,
            } => {
                let _ = write!(
                    s,
                    ",\"type\":\"staleness\",\"searcher\":{searcher},\"iteration\":{iteration},\"max_staleness\":{max_staleness},\"stale\":{stale}"
                );
            }
        }
        s.push('}');
        s
    }

    /// Parses one JSONL line produced by [`to_json_line`].
    ///
    /// [`to_json_line`]: TimedEvent::to_json_line
    pub fn parse_json_line(line: &str) -> Result<Self, String> {
        let doc = json::parse(line).map_err(|e| e.to_string())?;
        let seq = field_u64(&doc, "seq")?;
        let kind = doc
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| "missing 'type' field".to_string())?;
        let event = match kind {
            "iteration" => SearchEvent::Iteration {
                searcher: field_u32(&doc, "searcher")?,
                iteration: field_u64(&doc, "iteration")?,
                pool: field_u32(&doc, "pool")?,
                admissible: field_u32(&doc, "admissible")?,
                chosen: match doc.get("chosen") {
                    Some(Json::Null) | None => None,
                    Some(v) => Some(vector_from(v)?),
                },
            },
            "restart" => SearchEvent::Restart {
                searcher: field_u32(&doc, "searcher")?,
                iteration: field_u64(&doc, "iteration")?,
                reason: doc
                    .get("reason")
                    .and_then(Json::as_str)
                    .and_then(RestartReason::from_str)
                    .ok_or_else(|| "bad 'reason' field".to_string())?,
            },
            "archive_insert" => SearchEvent::ArchiveInsert {
                searcher: field_u32(&doc, "searcher")?,
                iteration: field_u64(&doc, "iteration")?,
                objectives: vector_field(&doc, "objectives")?,
            },
            "tabu_hit" => SearchEvent::TabuHit {
                searcher: field_u32(&doc, "searcher")?,
                iteration: field_u64(&doc, "iteration")?,
                aspired: doc
                    .get("aspired")
                    .and_then(Json::as_bool)
                    .ok_or_else(|| "bad 'aspired' field".to_string())?,
            },
            "exchange" => SearchEvent::Exchange {
                searcher: field_u32(&doc, "searcher")?,
                peer: field_u32(&doc, "peer")?,
                direction: doc
                    .get("direction")
                    .and_then(Json::as_str)
                    .and_then(ExchangeDirection::from_str)
                    .ok_or_else(|| "bad 'direction' field".to_string())?,
                objectives: vector_field(&doc, "objectives")?,
            },
            "worker_task" => SearchEvent::WorkerTask {
                worker: field_u32(&doc, "worker")?,
                iteration: field_u64(&doc, "iteration")?,
                count: field_u32(&doc, "count")?,
            },
            "worker_result" => SearchEvent::WorkerResult {
                worker: field_u32(&doc, "worker")?,
                iteration: field_u64(&doc, "iteration")?,
                neighbors: field_u32(&doc, "neighbors")?,
            },
            "staleness" => SearchEvent::Staleness {
                searcher: field_u32(&doc, "searcher")?,
                iteration: field_u64(&doc, "iteration")?,
                max_staleness: field_u64(&doc, "max_staleness")?,
                stale: field_u32(&doc, "stale")?,
            },
            other => return Err(format!("unknown event type '{other}'")),
        };
        Ok(TimedEvent { seq, event })
    }
}

/// Parses a whole JSONL stream (blank lines are skipped). Returns the
/// failing 1-based line number alongside the message on error.
pub fn parse_events_jsonl(input: &str) -> Result<Vec<TimedEvent>, String> {
    let mut events = Vec::new();
    for (i, line) in input.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        events.push(TimedEvent::parse_json_line(line).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(events)
}

fn field_u64(doc: &Json, key: &str) -> Result<u64, String> {
    doc.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("bad '{key}' field"))
}

fn field_u32(doc: &Json, key: &str) -> Result<u32, String> {
    field_u64(doc, key)?
        .try_into()
        .map_err(|_| format!("'{key}' out of u32 range"))
}

fn vector_from(v: &Json) -> Result<[f64; 3], String> {
    match v {
        Json::Array(items) if items.len() == 3 => {
            let mut out = [0.0; 3];
            for (i, item) in items.iter().enumerate() {
                out[i] = item
                    .as_f64()
                    .ok_or_else(|| "non-numeric objective".to_string())?;
            }
            Ok(out)
        }
        _ => Err("objective vector must be a 3-element array".to_string()),
    }
}

fn vector_field(doc: &Json, key: &str) -> Result<[f64; 3], String> {
    vector_from(
        doc.get(key)
            .ok_or_else(|| format!("missing '{key}' field"))?,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<SearchEvent> {
        vec![
            SearchEvent::Iteration {
                searcher: 0,
                iteration: 12,
                pool: 60,
                admissible: 58,
                chosen: Some([1234.5, 11.0, 0.0]),
            },
            SearchEvent::Iteration {
                searcher: 2,
                iteration: 13,
                pool: 60,
                admissible: 0,
                chosen: None,
            },
            SearchEvent::Restart {
                searcher: 1,
                iteration: 40,
                reason: RestartReason::Stagnation,
            },
            SearchEvent::Restart {
                searcher: 0,
                iteration: 3,
                reason: RestartReason::EmptyPool,
            },
            SearchEvent::ArchiveInsert {
                searcher: 0,
                iteration: 7,
                objectives: [987.25, 10.0, 3.5],
            },
            SearchEvent::TabuHit {
                searcher: 0,
                iteration: 9,
                aspired: true,
            },
            SearchEvent::Exchange {
                searcher: 3,
                peer: 1,
                direction: ExchangeDirection::Sent,
                objectives: [500.0, 9.0, 0.0],
            },
            SearchEvent::WorkerTask {
                worker: 4,
                iteration: 100,
                count: 15,
            },
            SearchEvent::WorkerResult {
                worker: 4,
                iteration: 100,
                neighbors: 15,
            },
            SearchEvent::Staleness {
                searcher: 0,
                iteration: 101,
                max_staleness: 3,
                stale: 12,
            },
        ]
    }

    #[test]
    fn every_variant_round_trips() {
        for (seq, event) in samples().into_iter().enumerate() {
            let timed = TimedEvent {
                seq: seq as u64,
                event,
            };
            let line = timed.to_json_line();
            let parsed = TimedEvent::parse_json_line(&line).expect("parse back");
            assert_eq!(parsed, timed, "mismatch for {line}");
            // Re-encoding the parsed event reproduces the bytes exactly.
            assert_eq!(parsed.to_json_line(), line);
        }
    }

    #[test]
    fn stream_parse_reports_line_numbers() {
        let good = TimedEvent {
            seq: 0,
            event: SearchEvent::TabuHit {
                searcher: 0,
                iteration: 1,
                aspired: false,
            },
        };
        let input = format!("{}\n\nnot json\n", good.to_json_line());
        let err = parse_events_jsonl(&input).unwrap_err();
        assert!(err.starts_with("line 3:"), "unexpected error: {err}");
        let ok = parse_events_jsonl(&format!("{}\n", good.to_json_line())).unwrap();
        assert_eq!(ok.len(), 1);
    }

    #[test]
    fn unknown_type_is_rejected() {
        let err = TimedEvent::parse_json_line(r#"{"seq":0,"type":"mystery"}"#).unwrap_err();
        assert!(err.contains("mystery"));
    }
}
