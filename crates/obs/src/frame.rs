//! Length-prefixed framing for the suite's TCP protocols.
//!
//! A frame is a big-endian `u32` payload length followed by that many
//! bytes of UTF-8 (in practice: one JSON document produced by the
//! writers in this crate's [`json`](crate::json) module). The solver
//! service (`tsmo-serve`) and the distributed search mesh
//! (`tsmo-cluster`) both speak this framing, so it lives here with the
//! JSON support rather than in either protocol crate.

use std::io::{self, Read, Write};

/// Upper bound on a frame payload (16 MiB). A Solomon instance file is a
/// few kilobytes; anything near this limit is a protocol error, not data.
pub const MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

/// Writes one frame (length prefix + payload).
pub fn write_frame<W: Write>(w: &mut W, payload: &str) -> io::Result<()> {
    let bytes = payload.as_bytes();
    if bytes.len() as u64 > MAX_FRAME_LEN as u64 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds MAX_FRAME_LEN", bytes.len()),
        ));
    }
    w.write_all(&(bytes.len() as u32).to_be_bytes())?;
    w.write_all(bytes)?;
    w.flush()
}

/// Reads one frame. Returns `Ok(None)` on a clean EOF at a frame
/// boundary (the peer closed the connection between messages).
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<String>> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len_buf);
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME_LEN"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    String::from_utf8(payload)
        .map(Some)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame payload is not UTF-8"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "first").unwrap();
        write_frame(&mut buf, "{\"second\":2}").unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap().as_deref(), Some("first"));
        assert_eq!(
            read_frame(&mut cursor).unwrap().as_deref(),
            Some("{\"second\":2}")
        );
        assert_eq!(read_frame(&mut cursor).unwrap(), None, "clean EOF");
    }

    #[test]
    fn oversized_frame_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME_LEN + 1).to_be_bytes());
        let mut cursor = std::io::Cursor::new(buf);
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn truncated_frame_is_an_error_not_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "complete").unwrap();
        buf.truncate(buf.len() - 3);
        let mut cursor = std::io::Cursor::new(buf);
        assert!(read_frame(&mut cursor).is_err());
    }
}
