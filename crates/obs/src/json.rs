//! A minimal JSON value, encoder, and parser.
//!
//! The telemetry layer is zero-dependency by design, so the JSONL event
//! sink carries its own JSON support. The subset is what [`SearchEvent`]
//! needs: objects with string keys, strings, numbers, booleans, null, and
//! arrays of numbers. Encoding is deterministic — object keys are written
//! in the order given, and `f64` uses Rust's shortest round-trip `Display`
//! — so identical event streams serialize byte-identically.
//!
//! [`SearchEvent`]: crate::SearchEvent

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value (subset: no nested objects inside arrays).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Number(f64),
    /// A string (escape handling for `\" \\ \n \t \r \u00XX`).
    String(String),
    /// An array of values.
    Array(Vec<Json>),
    /// An object. `BTreeMap` because parsed objects are looked up by key;
    /// encoding order is handled by the writer, not this map.
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// The value as a finite number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Number(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= u64::MAX as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(map) => map.get(key),
            _ => None,
        }
    }
}

/// Appends a JSON string literal (with escaping) to `out`.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a JSON number to `out`. NaN and infinities are not valid JSON;
/// they encode as `null` (the telemetry layer never produces them).
pub fn write_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        let _ = write!(out, "{x}");
    } else {
        out.push_str("null");
    }
}

/// Parse error: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON document, requiring it to consume the whole input.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\') {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.error("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("\\u escape is not a scalar"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.error("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || c == b'.' || c == b'e' || c == b'E' || c == b'+' || c == b'-')
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| ParseError {
                offset: start,
                message: format!("invalid number '{text}'"),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_object() {
        let v = parse(r#"{"a": 1, "b": -2.5, "c": "x", "d": true, "e": null}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(1));
        assert_eq!(v.get("b").and_then(Json::as_f64), Some(-2.5));
        assert_eq!(v.get("c").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("d").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("e"), Some(&Json::Null));
    }

    #[test]
    fn parses_number_arrays() {
        let v = parse(r#"{"obj": [1.5, 2, 30.25]}"#).unwrap();
        match v.get("obj") {
            Some(Json::Array(items)) => {
                let xs: Vec<f64> = items.iter().filter_map(Json::as_f64).collect();
                assert_eq!(xs, vec![1.5, 2.0, 30.25]);
            }
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let mut out = String::new();
        write_str(&mut out, "a\"b\\c\nd\te\u{1}");
        let v = parse(&format!("{{\"s\": {out}}}")).unwrap();
        assert_eq!(
            v.get("s").and_then(Json::as_str),
            Some("a\"b\\c\nd\te\u{1}")
        );
    }

    #[test]
    fn f64_display_round_trips() {
        for x in [0.0, 1.0, -3.25, 1234.5678, 1e-9, f64::MAX] {
            let mut out = String::new();
            write_f64(&mut out, x);
            assert_eq!(parse(&out).unwrap().as_f64(), Some(x));
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse(r#"{"a": 1} trailing"#).is_err());
        assert!(parse("nul").is_err());
    }
}
