//! # tsmo-obs — deterministic telemetry for the TSMO suite
//!
//! Zero-dependency observability layer used by the search core, the
//! parallel runtimes, and the bench binaries. It has three pieces:
//!
//! * **Structured events** ([`SearchEvent`], [`TimedEvent`]): a typed
//!   JSONL stream of what the search did — iterations, restarts, archive
//!   insertions, tabu hits, collaborative exchanges, worker task/result
//!   traffic, staleness, hierarchical profiling spans ([`Span`],
//!   [`trace_id_from_seed`]), and convergence samples. Events carry
//!   *logical* timestamps (a sequence number assigned at append), so two
//!   runs with the same seed produce byte-identical streams — span wall
//!   times go to the metrics side only. [`parse_events_jsonl`] reads a
//!   stream back for tests and tooling.
//! * **Metrics** ([`MetricsRegistry`], [`names`]): typed
//!   counters, gauges, and fixed-bucket histograms with Prometheus text
//!   exposition ([`MetricsRegistry::to_prometheus`]) and a human-readable
//!   end-of-run summary ([`MetricsRegistry::summary`]). Gauges derived
//!   from wall clocks (worker busy fractions, runtime) live here, *not*
//!   in the event stream.
//! * **Recorders** ([`Recorder`], [`NoopRecorder`], [`MemoryRecorder`]):
//!   emitters hold an `Arc<dyn Recorder>`; the no-op recorder's methods
//!   are empty default bodies, so an uninstrumented run pays one virtual
//!   call per metric touch and nothing per event (guard event
//!   construction with [`Recorder::enabled`]).
//!
//! Determinism contract: with a fixed seed, the *event* stream is a pure
//! function of the search trajectory. Recorders must never influence the
//! search (no RNG draws, no time-dependent control flow on the emitter
//! side), which the suite's no-op-equivalence tests enforce.

#![warn(missing_docs)]

mod event;
pub mod frame;
pub mod json;
pub mod metrics;
pub mod names;
mod recorder;
mod span;

pub use event::{
    parse_events_jsonl, ExchangeDirection, FaultKind, RestartReason, SearchEvent, TimedEvent,
};
pub use json::{Json, ParseError};
pub use metrics::{Histogram, MetricsRegistry};
pub use recorder::{noop, MemoryRecorder, NoopRecorder, Recorder, SpanStat, Stopwatch};
pub use span::{span_parent, trace_id_from_seed, Span};
