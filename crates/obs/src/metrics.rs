//! Typed metrics: counters, gauges, histograms, and text exposition.
//!
//! Metric names follow Prometheus conventions and may carry a label block,
//! e.g. `tsmo_worker_busy_fraction{worker="0"}`. The registry stores plain
//! values keyed by the full sample name in a `BTreeMap`, so exposition
//! order is deterministic. Unlike events, metrics *may* hold wall-clock
//! derived values (busy fractions, runtimes) — they feed dashboards and
//! summaries, not the reproducibility proof.

use crate::json::{self, Json};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Shared metric names, so emitters and consumers agree. Re-exported
/// from the crate-level [`crate::names`] registry module, which is the
/// single source of truth for every metric and event-type string.
pub use crate::names;

/// Histogram bucket upper bounds (`+Inf` is implicit). Tuned for the small
/// integer quantities the search emits (pool sizes, staleness, depths).
pub const DEFAULT_BUCKETS: [f64; 9] = [0.0, 1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0];

/// A fixed-bucket histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Observation count per bucket in [`DEFAULT_BUCKETS`] order.
    pub buckets: [u64; DEFAULT_BUCKETS.len()],
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
    /// Largest observed value (`None` when empty).
    pub max: Option<f64>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: [0; DEFAULT_BUCKETS.len()],
            count: 0,
            sum: 0.0,
            max: None,
        }
    }
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&mut self, value: f64) {
        for (i, bound) in DEFAULT_BUCKETS.iter().enumerate() {
            if value <= *bound {
                self.buckets[i] += 1;
            }
        }
        self.count += 1;
        self.sum += value;
        self.max = Some(self.max.map_or(value, |m| m.max(value)));
    }

    /// Mean observed value (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }
}

/// Deterministically ordered store of all metric families.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

/// `tsmo_worker_busy_fraction{worker="0"}` → `tsmo_worker_busy_fraction`.
fn family(sample_name: &str) -> &str {
    sample_name.split('{').next().unwrap_or(sample_name)
}

/// Whether `name` is a bare metric name the 0.0.4 exposition format
/// accepts: `[a-zA-Z_:][a-zA-Z0-9_:]*`.
fn is_clean_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Rewrites a bare metric name so every character is legal, replacing
/// offenders with `_` (a leading digit gets an underscore prefix).
fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() || out.starts_with(|c: char| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Escapes a label value for the exposition format: `\` → `\\`,
/// `"` → `\"`, newline → `\n`.
fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Parses a label-block body (`k="v",k2="v2"`) into unescaped pairs.
/// Returns `None` on any malformation (missing `=`, unquoted value,
/// unterminated string).
fn parse_label_block(body: &str) -> Option<Vec<(String, String)>> {
    let mut pairs = Vec::new();
    let mut chars = body.chars().peekable();
    loop {
        let mut key = String::new();
        while let Some(&c) = chars.peek() {
            if c == '=' {
                break;
            }
            key.push(c);
            chars.next();
        }
        if key.is_empty() || chars.next() != Some('=') || chars.next() != Some('"') {
            return None;
        }
        let mut value = String::new();
        loop {
            match chars.next()? {
                '\\' => match chars.next()? {
                    'n' => value.push('\n'),
                    c => value.push(c),
                },
                '"' => break,
                c => value.push(c),
            }
        }
        pairs.push((key, value));
        match chars.next() {
            None => return Some(pairs),
            Some(',') => continue,
            Some(_) => return None,
        }
    }
}

/// Whether a full sample name (family plus optional label block) is
/// already legal exposition syntax with no characters needing escapes.
fn sample_is_clean(name: &str) -> bool {
    match name.find('{') {
        None => is_clean_metric_name(name),
        Some(brace) => {
            if !is_clean_metric_name(&name[..brace]) {
                return false;
            }
            let Some(body) = name[brace + 1..].strip_suffix('}') else {
                return false;
            };
            match parse_label_block(body) {
                Some(pairs) => pairs
                    .iter()
                    .all(|(k, v)| is_clean_metric_name(k) && !v.contains(['"', '\\', '\n'])),
                None => false,
            }
        }
    }
}

/// Returns a sample name guaranteed to be legal 0.0.4 exposition
/// syntax. Clean names pass through borrowed; dirty family/label-key
/// characters become `_`, label values get escaped, and a name whose
/// label block cannot be parsed at all is flattened to a bare
/// sanitized name.
fn sanitize_sample(name: &str) -> std::borrow::Cow<'_, str> {
    if sample_is_clean(name) {
        return std::borrow::Cow::Borrowed(name);
    }
    let owned = match name.find('{') {
        None => sanitize_metric_name(name),
        Some(brace) => {
            let body = name[brace + 1..].strip_suffix('}');
            match body.and_then(parse_label_block) {
                Some(pairs) => {
                    let mut out = sanitize_metric_name(&name[..brace]);
                    out.push('{');
                    for (i, (k, v)) in pairs.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        out.push_str(&sanitize_metric_name(k));
                        out.push_str("=\"");
                        out.push_str(&escape_label_value(v));
                        out.push('"');
                    }
                    out.push('}');
                    out
                }
                None => sanitize_metric_name(name),
            }
        }
    };
    std::borrow::Cow::Owned(owned)
}

/// Inserts `key="value"` as the *first* label of a sample name,
/// preserving any existing label block. Used by federation to stamp a
/// node id onto every sample of a fetched registry.
fn labeled_sample(name: &str, key: &str, value: &str) -> String {
    let escaped = escape_label_value(value);
    match name.find('{') {
        Some(brace) => format!(
            "{}{{{key}=\"{escaped}\",{}",
            &name[..brace],
            &name[brace + 1..]
        ),
        None => format!("{name}{{{key}=\"{escaped}\"}}"),
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to a counter, creating it at zero first.
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Sets a gauge to `value`.
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Sets a gauge to the max of its current value and `value`.
    pub fn gauge_max(&mut self, name: &str, value: f64) {
        let slot = self
            .gauges
            .entry(name.to_string())
            .or_insert(f64::NEG_INFINITY);
        if value > *slot {
            *slot = value;
        }
    }

    /// Records one histogram observation.
    pub fn observe(&mut self, name: &str, value: f64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .observe(value);
    }

    /// Reads a counter (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Reads a gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Reads a histogram.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Iterates every counter in name order. Consumers that need to
    /// *discover* samples — `servectl top` scanning for labeled operator
    /// families, federation views scanning for `tsmo_node_up` gauges —
    /// use this instead of guessing names.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterates every gauge in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Merges another registry into this one: counters add, gauges take
    /// the maximum (they are all "largest seen" or fractions where max is
    /// the conservative combine), histogram buckets add.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, delta) in &other.counters {
            self.counter_add(name, *delta);
        }
        for (name, value) in &other.gauges {
            self.gauge_max(name, *value);
        }
        for (name, hist) in &other.histograms {
            let slot = self.histograms.entry(name.clone()).or_default();
            for (b, add) in slot.buckets.iter_mut().zip(hist.buckets.iter()) {
                *b += add;
            }
            slot.count += hist.count;
            slot.sum += hist.sum;
            slot.max = match (slot.max, hist.max) {
                (Some(a), Some(b)) => Some(a.max(b)),
                (a, b) => a.or(b),
            };
        }
    }

    /// Renders the registry in the Prometheus text exposition format.
    /// Output is fully deterministic given equal registry contents.
    /// Sample names are validated on the way out: illegal family or
    /// label-key characters become `_` and label values are escaped, so
    /// a hostile or buggy emitter cannot corrupt the exposition.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_family = String::new();
        for (name, value) in &self.counters {
            let name = sanitize_sample(name);
            let fam = family(&name);
            if fam != last_family {
                let _ = writeln!(out, "# TYPE {fam} counter");
                last_family = fam.to_string();
            }
            let _ = writeln!(out, "{name} {value}");
        }
        last_family.clear();
        for (name, value) in &self.gauges {
            let name = sanitize_sample(name);
            let fam = family(&name);
            if fam != last_family {
                let _ = writeln!(out, "# TYPE {fam} gauge");
                last_family = fam.to_string();
            }
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, hist) in &self.histograms {
            let name = sanitize_sample(name);
            let (fam, labels) = match name.find('{') {
                Some(brace) => (&name[..brace], &name[brace + 1..name.len() - 1]),
                None => (name.as_ref(), ""),
            };
            let sep = if labels.is_empty() { "" } else { "," };
            let _ = writeln!(out, "# TYPE {fam} histogram");
            for (bound, count) in DEFAULT_BUCKETS.iter().zip(hist.buckets.iter()) {
                let _ = writeln!(out, "{fam}_bucket{{{labels}{sep}le=\"{bound}\"}} {count}");
            }
            let _ = writeln!(
                out,
                "{fam}_bucket{{{labels}{sep}le=\"+Inf\"}} {}",
                hist.count
            );
            if labels.is_empty() {
                let _ = writeln!(out, "{fam}_sum {}", hist.sum);
                let _ = writeln!(out, "{fam}_count {}", hist.count);
            } else {
                let _ = writeln!(out, "{fam}_sum{{{labels}}} {}", hist.sum);
                let _ = writeln!(out, "{fam}_count{{{labels}}} {}", hist.count);
            }
        }
        out
    }

    /// Serializes the registry as one JSON object with `counters`,
    /// `gauges`, and `histograms` sections. Key order is the registry's
    /// deterministic `BTreeMap` order, so equal registries serialize
    /// byte-identically. This is the structured wire form used by the
    /// mesh metrics-fetch protocol (the Prometheus text form cannot be
    /// merged after rendering).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_str(&mut out, name);
            let _ = write!(out, ":{value}");
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_str(&mut out, name);
            out.push(':');
            json::write_f64(&mut out, *value);
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, hist)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_str(&mut out, name);
            out.push_str(":{\"buckets\":[");
            for (j, b) in hist.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{b}");
            }
            let _ = write!(out, "],\"count\":{},\"sum\":", hist.count);
            json::write_f64(&mut out, hist.sum);
            out.push_str(",\"max\":");
            match hist.max {
                Some(m) => json::write_f64(&mut out, m),
                None => out.push_str("null"),
            }
            out.push('}');
        }
        out.push_str("}}");
        out
    }

    /// Parses a registry serialized by [`to_json`].
    ///
    /// [`to_json`]: MetricsRegistry::to_json
    pub fn from_json(text: &str) -> Result<Self, String> {
        let doc = json::parse(text).map_err(|e| e.to_string())?;
        let mut reg = MetricsRegistry::new();
        let section = |key: &str| -> Result<BTreeMap<String, Json>, String> {
            match doc.get(key) {
                Some(Json::Object(map)) => Ok(map.clone()),
                None => Ok(BTreeMap::new()),
                Some(_) => Err(format!("'{key}' is not an object")),
            }
        };
        for (name, value) in section("counters")? {
            let v = value
                .as_u64()
                .ok_or_else(|| format!("counter '{name}' is not a u64"))?;
            reg.counters.insert(name, v);
        }
        for (name, value) in section("gauges")? {
            let v = value
                .as_f64()
                .ok_or_else(|| format!("gauge '{name}' is not a number"))?;
            reg.gauges.insert(name, v);
        }
        for (name, value) in section("histograms")? {
            let mut hist = Histogram::default();
            let buckets = match value.get("buckets") {
                Some(Json::Array(items)) if items.len() == DEFAULT_BUCKETS.len() => items,
                _ => return Err(format!("histogram '{name}' has a bad bucket array")),
            };
            for (slot, item) in hist.buckets.iter_mut().zip(buckets.iter()) {
                *slot = item
                    .as_u64()
                    .ok_or_else(|| format!("histogram '{name}' has a non-u64 bucket"))?;
            }
            hist.count = value
                .get("count")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("histogram '{name}' has a bad count"))?;
            hist.sum = value
                .get("sum")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("histogram '{name}' has a bad sum"))?;
            hist.max = match value.get("max") {
                Some(Json::Null) | None => None,
                Some(v) => Some(
                    v.as_f64()
                        .ok_or_else(|| format!("histogram '{name}' has a bad max"))?,
                ),
            };
            reg.histograms.insert(name, hist);
        }
        Ok(reg)
    }

    /// Returns a copy with `key="value"` inserted as the first label of
    /// every sample name. Federation uses this to stamp the origin node
    /// onto a fetched registry before merging, so per-node series stay
    /// distinguishable in the combined exposition.
    pub fn with_label(&self, key: &str, value: &str) -> MetricsRegistry {
        let mut out = MetricsRegistry::new();
        for (name, v) in &self.counters {
            out.counters.insert(labeled_sample(name, key, value), *v);
        }
        for (name, v) in &self.gauges {
            out.gauges.insert(labeled_sample(name, key, value), *v);
        }
        for (name, h) in &self.histograms {
            out.histograms
                .insert(labeled_sample(name, key, value), h.clone());
        }
        out
    }

    /// Renders a human-readable end-of-run summary.
    pub fn summary(&self) -> String {
        let mut out = String::from("== run summary ==\n");
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, value) in &self.counters {
                let _ = writeln!(out, "  {name:<55} {value}");
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, value) in &self.gauges {
                let _ = writeln!(out, "  {name:<55} {value:.4}");
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms (count / mean / max):\n");
            for (name, hist) in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {name:<55} {} / {:.2} / {:.0}",
                    hist.count,
                    hist.mean().unwrap_or(0.0),
                    hist.max.unwrap_or(0.0)
                );
            }
        }
        out
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_read_back() {
        let mut m = MetricsRegistry::new();
        m.counter_add(names::ITERATIONS, 3);
        m.counter_add(names::ITERATIONS, 2);
        assert_eq!(m.counter(names::ITERATIONS), 5);
        assert_eq!(m.counter("never_touched"), 0);
    }

    #[test]
    fn gauge_max_keeps_largest() {
        let mut m = MetricsRegistry::new();
        m.gauge_max(names::STALENESS_MAX, 2.0);
        m.gauge_max(names::STALENESS_MAX, 7.0);
        m.gauge_max(names::STALENESS_MAX, 4.0);
        assert_eq!(m.gauge(names::STALENESS_MAX), Some(7.0));
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let mut h = Histogram::default();
        for v in [0.0, 1.0, 3.0, 30.0] {
            h.observe(v);
        }
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 34.0);
        assert_eq!(h.max, Some(30.0));
        // le=0 sees one, le=1 two, le=5 three, le=50 all four.
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 2);
        assert_eq!(h.buckets[3], 3);
        assert_eq!(h.buckets[6], 4);
    }

    #[test]
    fn prometheus_output_is_deterministic_and_typed() {
        let mut m = MetricsRegistry::new();
        m.counter_add(names::RESTARTS_STAGNATION, 2);
        m.counter_add(names::RESTARTS_EMPTY_POOL, 1);
        m.gauge_set(&names::worker_busy_fraction(0), 0.75);
        m.observe(names::POOL_SIZE, 60.0);
        let text = m.to_prometheus();
        assert_eq!(text, m.clone().to_prometheus());
        assert!(text.contains("# TYPE tsmo_restarts_total counter"));
        // One TYPE line covers both labeled samples of the family.
        assert_eq!(text.matches("# TYPE tsmo_restarts_total").count(), 1);
        assert!(text.contains("tsmo_restarts_total{reason=\"empty_pool\"} 1"));
        assert!(text.contains("tsmo_worker_busy_fraction{worker=\"0\"} 0.75"));
        assert!(text.contains("tsmo_pool_size_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("tsmo_pool_size_count 1"));
    }

    #[test]
    fn merge_adds_counters_and_maxes_gauges() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        a.counter_add(names::ITERATIONS, 10);
        b.counter_add(names::ITERATIONS, 5);
        a.gauge_max(names::STALENESS_MAX, 3.0);
        b.gauge_max(names::STALENESS_MAX, 9.0);
        a.observe(names::POOL_SIZE, 10.0);
        b.observe(names::POOL_SIZE, 20.0);
        a.merge(&b);
        assert_eq!(a.counter(names::ITERATIONS), 15);
        assert_eq!(a.gauge(names::STALENESS_MAX), Some(9.0));
        let h = a.histogram(names::POOL_SIZE).unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 30.0);
    }

    #[test]
    fn merge_adds_histogram_buckets_elementwise() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        for v in [0.0, 3.0] {
            a.observe(names::POOL_SIZE, v);
        }
        for v in [1.0, 100.0] {
            b.observe(names::POOL_SIZE, v);
        }
        a.merge(&b);
        let h = a.histogram(names::POOL_SIZE).unwrap();
        // le=0: {0} → 1; le=1: {0,1} → 2; le=5: {0,3,1} → 3; le=100: all 4.
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 2);
        assert_eq!(h.buckets[3], 3);
        assert_eq!(h.buckets[7], 4);
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 104.0);
        assert_eq!(h.max, Some(100.0));
    }

    #[test]
    fn merge_unions_disjoint_names() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        a.counter_add(names::ITERATIONS, 1);
        b.counter_add(names::EVALUATIONS, 2);
        a.gauge_set(names::ARCHIVE_SIZE, 5.0);
        b.gauge_set(names::RUNTIME_SECONDS, 1.5);
        b.observe(names::NEIGHBOR_STALENESS, 2.0);
        a.merge(&b);
        assert_eq!(a.counter(names::ITERATIONS), 1);
        assert_eq!(a.counter(names::EVALUATIONS), 2);
        assert_eq!(a.gauge(names::ARCHIVE_SIZE), Some(5.0));
        assert_eq!(a.gauge(names::RUNTIME_SECONDS), Some(1.5));
        assert_eq!(a.histogram(names::NEIGHBOR_STALENESS).unwrap().count, 1);
    }

    #[test]
    fn merge_gauges_keep_maximum() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        a.gauge_set(names::STALENESS_MAX, 4.0);
        b.gauge_set(names::STALENESS_MAX, 2.0);
        a.merge(&b);
        assert_eq!(a.gauge(names::STALENESS_MAX), Some(4.0));
        b.merge(&a);
        assert_eq!(b.gauge(names::STALENESS_MAX), Some(4.0));
    }

    #[test]
    fn prometheus_sanitizes_bad_names_and_label_values() {
        let mut m = MetricsRegistry::new();
        m.counter_add("bad name\nwith{newline", 1);
        m.counter_add("ok_total{instance=\"a\"b\"}", 2);
        m.counter_add("2leading_digit", 3);
        m.gauge_set("quote\"gauge", 1.0);
        let text = m.to_prometheus();
        // Every exposition line is `name[{labels}] value` with a clean
        // family name and escaped label values.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let fam = line.split(['{', ' ']).next().unwrap();
            assert!(is_clean_metric_name(fam), "dirty family in line: {line}");
        }
        assert!(text.contains("bad_name_with_newline 1"));
        // The malformed label block (raw quote inside the value) was
        // flattened into a bare sanitized name.
        assert!(text.contains("ok_total_instance__a_b__ 2"));
        assert!(text.contains("_2leading_digit 3"));
        assert!(text.contains("quote_gauge 1"));
    }

    #[test]
    fn prometheus_escapes_parseable_label_values() {
        let mut m = MetricsRegistry::new();
        m.counter_add("ok_total{path=\"a\\\\b\"}", 7);
        let text = m.to_prometheus();
        assert!(text.contains("ok_total{path=\"a\\\\b\"} 7"));
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let mut m = MetricsRegistry::new();
        m.counter_add(names::ITERATIONS, 42);
        m.counter_add(
            &names::operator_counter(names::OPERATOR_PROPOSED, "relocate"),
            7,
        );
        m.gauge_set(names::RUNTIME_SECONDS, 1.25);
        m.gauge_set(names::STALENESS_MAX, 3.0);
        m.observe(names::POOL_SIZE, 60.0);
        m.observe(names::POOL_SIZE, 2.0);
        let text = m.to_json();
        let back = MetricsRegistry::from_json(&text).expect("parse back");
        assert_eq!(back, m);
        // Serialization is deterministic.
        assert_eq!(back.to_json(), text);
        let empty = MetricsRegistry::from_json(&MetricsRegistry::new().to_json()).unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn with_label_prepends_node_label_everywhere() {
        let mut m = MetricsRegistry::new();
        m.counter_add(names::ITERATIONS, 3);
        m.counter_add(&names::worker_busy_fraction(0), 1);
        m.observe(names::POOL_SIZE, 5.0);
        let tagged = m.with_label("node", "2");
        assert_eq!(tagged.counter("tsmo_iterations_total{node=\"2\"}"), 3);
        assert_eq!(
            tagged.counter("tsmo_worker_busy_fraction{node=\"2\",worker=\"0\"}"),
            1
        );
        assert_eq!(
            tagged
                .histogram("tsmo_pool_size{node=\"2\"}")
                .map(|h| h.count),
            Some(1)
        );
        // Labeled histograms expose per-series bucket/sum/count lines.
        let text = tagged.to_prometheus();
        assert!(text.contains("tsmo_pool_size_bucket{node=\"2\",le=\"+Inf\"} 1"));
        assert!(text.contains("tsmo_pool_size_count{node=\"2\"} 1"));
    }

    #[test]
    fn summary_mentions_all_sections() {
        let mut m = MetricsRegistry::new();
        m.counter_add(names::ITERATIONS, 1);
        m.gauge_set(names::RUNTIME_SECONDS, 1.5);
        m.observe(names::POOL_SIZE, 3.0);
        let s = m.summary();
        assert!(s.contains("counters:"));
        assert!(s.contains("gauges:"));
        assert!(s.contains("histograms"));
        assert!(s.contains(names::ITERATIONS));
    }
}
